//! Semantics-perturbing mutations of [`Design`]s.
//!
//! RTLCheck's value claim is that it *detects* RTL consistency bugs, so the
//! verifier itself needs to be validated against more than the single §7.1
//! store-drop defect. This module is the fault-injection layer: a
//! [`Mutation`] is a named, deterministic edit of a built design's IR —
//! drop a stall, remove a forwarding path, flip an arbiter priority
//! comparison, overwrite a buffer without its pending check, skip a reset
//! value, commit at the wrong time/address — and the mutation campaign
//! (`rtlcheck mutate`, `bench::mutation`) proves the generated properties
//! kill the mutants.
//!
//! Mutations are **name-based**: the Multi-V-scale family bakes each litmus
//! test's programs into the design, so there is one design *per test*, but
//! signal names (`core0_stall_DX`, `mem_prev_addr`, …) are stable across
//! all of them. A single catalog entry therefore applies to every per-test
//! build of its target microarchitecture.
//!
//! Application is copy-on-write over the expression arena: edited cones get
//! fresh nodes, everything else is shared, and no signal is ever added or
//! removed — the `SignalId` handles held by [`crate::multi_vscale::MultiVscale`]
//! / [`crate::five_stage::FiveStage`] stay valid on the mutant. Every
//! mutant is re-finalized through exactly the same validation as a freshly
//! built design (widths, driver agreement, wire topological order), so an
//! ill-formed mutation is a clean [`MutateError`], never a corrupt design.

use std::collections::HashMap;
use std::fmt;

use crate::builder;
use crate::cone::ConeSet;
use crate::design::{Design, DesignError, Signal, SignalId, SignalKind};
use crate::expr::{mask, BinOp, Expr, ExprId};
use crate::isa::{self, PC_STEP};

/// The bug family a mutation belongs to (the campaign's taxonomy).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum MutationFamily {
    /// A stall/backpressure condition is dropped.
    DropStall,
    /// A forwarding/bypass path is removed or mis-gated.
    RemoveForwarding,
    /// An arbiter/selection comparison is inverted (priority flip).
    PriorityFlip,
    /// A buffer or array is written without its pending/valid check.
    BufferOverwrite,
    /// A register's reset value is wrong or missing.
    SkipResetInit,
    /// A commit uses the wrong cycle's address/data (order swap).
    SwapCommitOrder,
}

impl MutationFamily {
    /// Stable lower-snake label (used in reports and JSON).
    pub fn label(self) -> &'static str {
        match self {
            MutationFamily::DropStall => "drop_stall",
            MutationFamily::RemoveForwarding => "remove_forwarding",
            MutationFamily::PriorityFlip => "priority_flip",
            MutationFamily::BufferOverwrite => "buffer_overwrite",
            MutationFamily::SkipResetInit => "skip_reset_init",
            MutationFamily::SwapCommitOrder => "swap_commit_order",
        }
    }
}

impl fmt::Display for MutationFamily {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Selects the signal(s) an operation applies to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SignalSel {
    /// Exactly one signal, by full name.
    Named(String),
    /// Every signal named `<prefix><decimal index>` (e.g. `Indexed("mem_")`
    /// selects `mem_0`, `mem_1`, … but *not* `mem_prev_addr`), in
    /// [`SignalId`] order.
    Indexed(String),
}

impl SignalSel {
    fn resolve(&self, design: &Design) -> Result<Vec<SignalId>, MutateError> {
        let ids: Vec<SignalId> = match self {
            SignalSel::Named(name) => design
                .signal_by_name(name)
                .map(|id| vec![id])
                .ok_or_else(|| MutateError::UnknownSignal(name.clone()))?,
            SignalSel::Indexed(prefix) => design
                .signals()
                .filter(|(_, s)| {
                    s.name.strip_prefix(prefix.as_str()).is_some_and(|rest| {
                        !rest.is_empty() && rest.bytes().all(|b| b.is_ascii_digit())
                    })
                })
                .map(|(id, _)| id)
                .collect(),
        };
        if ids.is_empty() {
            return Err(MutateError::UnknownSignal(self.to_string()));
        }
        Ok(ids)
    }
}

impl fmt::Display for SignalSel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SignalSel::Named(n) => f.write_str(n),
            SignalSel::Indexed(p) => write!(f, "{p}<index>"),
        }
    }
}

/// One primitive IR edit. Cone-surgery operations locate their target node
/// by a deterministic pre-order walk (condition/left operand first, each
/// shared node counted once) of the selected signal's driving cone — the
/// wire's expression or the register's next-state expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MutationOp {
    /// Replace a wire's driver with a constant (e.g. tie a stall to 0).
    TieWire {
        /// Wire(s) to tie.
        target: SignalSel,
        /// Constant value (must fit the wire's width).
        value: u64,
    },
    /// Replace a register's reset value (`None` = leave it free).
    SetRegInit {
        /// Register(s) to edit.
        target: SignalSel,
        /// New reset value.
        init: Option<u64>,
    },
    /// AND the condition of the `occurrence`-th mux in the cone with
    /// `guard == guard_value` — the mux only selects its then-arm when the
    /// extra condition also holds.
    GateMuxCond {
        /// Signal whose cone is edited.
        target: SignalSel,
        /// Which mux (pre-order).
        occurrence: usize,
        /// Guard signal (compared at its own width).
        guard: String,
        /// Value the guard must equal for the mux to fire.
        guard_value: u64,
    },
    /// Swap the then/else arms of the `occurrence`-th mux in the cone.
    SwapMuxArms {
        /// Signal whose cone is edited.
        target: SignalSel,
        /// Which mux (pre-order).
        occurrence: usize,
    },
    /// Invert the `occurrence`-th equality (`==` ↔ `!=`) in the cone.
    FlipEq {
        /// Signal whose cone is edited.
        target: SignalSel,
        /// Which equality/inequality (pre-order).
        occurrence: usize,
    },
    /// Replace the `occurrence`-th AND in the cone by one of its operands,
    /// dropping the other condition entirely.
    DropAndOperand {
        /// Signal whose cone is edited.
        target: SignalSel,
        /// Which AND (pre-order).
        occurrence: usize,
        /// Keep the left operand (`true`) or the right (`false`).
        keep_lhs: bool,
    },
    /// Replace the `occurrence`-th OR in the cone by one of its operands,
    /// dropping the other term entirely.
    DropOrOperand {
        /// Signal whose cone is edited.
        target: SignalSel,
        /// Which OR (pre-order).
        occurrence: usize,
        /// Keep the left operand (`true`) or the right (`false`).
        keep_lhs: bool,
    },
    /// Substitute every read of signal `from` inside the cone with a read
    /// of signal `to` (widths must match).
    RedirectSig {
        /// Signal whose cone is edited.
        target: SignalSel,
        /// Signal reads to replace.
        from: String,
        /// Replacement signal.
        to: String,
    },
}

/// Why a mutation could not be applied.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MutateError {
    /// The selector matched no signal in this design.
    UnknownSignal(String),
    /// The target exists but is not the required kind (wire/register).
    WrongKind {
        /// Signal name.
        signal: String,
        /// What the operation needed.
        expected: &'static str,
    },
    /// The cone has fewer matching nodes than `occurrence` requires.
    NoSuchNode {
        /// Signal whose cone was searched.
        signal: String,
        /// What was searched for (`mux`, `eq`, `and`, `sig read`).
        node: &'static str,
        /// Requested occurrence.
        occurrence: usize,
        /// How many the cone actually contains.
        found: usize,
    },
    /// A constant/init value does not fit the target's width.
    ValueTooWide {
        /// Signal name.
        signal: String,
        /// Offending value.
        value: u64,
        /// The signal's width.
        width: u8,
    },
    /// Two signals that must agree in width do not.
    WidthMismatch {
        /// Explanation.
        detail: String,
    },
    /// The edited design failed re-finalization.
    Invalid(DesignError),
}

impl fmt::Display for MutateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MutateError::UnknownSignal(s) => write!(f, "no signal matches `{s}`"),
            MutateError::WrongKind { signal, expected } => {
                write!(f, "signal `{signal}` is not a {expected}")
            }
            MutateError::NoSuchNode {
                signal,
                node,
                occurrence,
                found,
            } => write!(
                f,
                "cone of `{signal}` has {found} {node} node(s); occurrence {occurrence} requested"
            ),
            MutateError::ValueTooWide {
                signal,
                value,
                width,
            } => write!(f, "value {value} does not fit `{signal}` ({width} bits)"),
            MutateError::WidthMismatch { detail } => write!(f, "width mismatch: {detail}"),
            MutateError::Invalid(e) => write!(f, "mutated design is ill-formed: {e}"),
        }
    }
}

impl std::error::Error for MutateError {}

impl From<DesignError> for MutateError {
    fn from(e: DesignError) -> Self {
        MutateError::Invalid(e)
    }
}

/// A named, deterministic design mutation: a taxonomy family plus a list of
/// primitive IR edits applied in order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Mutation {
    /// Stable identifier (used by `--mutants`, reports, and JSON).
    pub name: String,
    /// Taxonomy family.
    pub family: MutationFamily,
    /// One-line human description of the injected bug.
    pub description: String,
    /// The edits, applied in order.
    pub ops: Vec<MutationOp>,
}

impl Mutation {
    /// Applies the mutation to a design, producing the mutant.
    ///
    /// The mutant keeps every signal (ids, names, widths) of the original —
    /// only drivers, reset values, and the module name change. The module
    /// name gains a `__<mutation>` suffix so emitted Verilog (and hence the
    /// graph-cache fingerprint, which hashes it) differs even for
    /// init-only mutants.
    ///
    /// # Errors
    ///
    /// Returns a [`MutateError`] if any op's target is missing or of the
    /// wrong shape, or if the edited design fails re-finalization.
    pub fn apply(&self, design: &Design) -> Result<Design, MutateError> {
        let mut signals = design.signals.clone();
        let mut exprs = design.exprs.clone();

        for op in &self.ops {
            apply_op(op, design, &mut signals, &mut exprs)?;
        }

        builder::finalize(
            format!("{}__{}", design.name, self.name),
            signals,
            exprs,
            design.by_name.clone(),
            design.num_inputs,
            design.num_regs,
        )
        .map_err(MutateError::from)
    }

    /// The set of cones this mutation invalidates on `design`.
    ///
    /// Exact by construction: the mutation is applied and the mutant
    /// diffed against the baseline at the fingerprint level
    /// ([`ConeSet::diff`]), so the result is precisely the signals whose
    /// value functions (or reset values) change — already closed over
    /// transitive combinational readers. Falls back to the conservative
    /// all-dirty set if the mutant were ever structurally incompatible
    /// (catalog mutations never are: they rewrite drivers, not tables).
    ///
    /// # Errors
    ///
    /// Propagates any [`MutateError`] from applying the mutation.
    pub fn dirty_cones(&self, design: &Design) -> Result<ConeSet, MutateError> {
        let mutant = self.apply(design)?;
        Ok(ConeSet::diff(design, &mutant).unwrap_or_else(|| ConeSet::all(design)))
    }
}

impl fmt::Display for Mutation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} [{}]: {}", self.name, self.family, self.description)
    }
}

/// The driving cone root of a signal: a wire's expression or a register's
/// next-state expression.
fn cone_root(signals: &[Signal], id: SignalId) -> Result<ExprId, MutateError> {
    match signals[id.0].kind {
        SignalKind::Wire { expr } => Ok(expr),
        SignalKind::Reg { next, .. } => Ok(next),
        SignalKind::Input { .. } => Err(MutateError::WrongKind {
            signal: signals[id.0].name.clone(),
            expected: "wire or register",
        }),
    }
}

fn set_cone_root(signals: &mut [Signal], id: SignalId, root: ExprId) {
    match &mut signals[id.0].kind {
        SignalKind::Wire { expr } => *expr = root,
        SignalKind::Reg { next, .. } => *next = root,
        SignalKind::Input { .. } => unreachable!("cone_root rejected inputs"),
    }
}

/// Pre-order walk of a cone (cond/lhs first), each shared node visited
/// once, collecting nodes matching `pred` in visit order.
fn matching_nodes(exprs: &[Expr], root: ExprId, pred: impl Fn(&Expr) -> bool) -> Vec<ExprId> {
    let mut seen = vec![false; exprs.len()];
    let mut found = Vec::new();
    let mut stack = vec![root];
    // An explicit stack with children pushed in reverse keeps the walk
    // pre-order (parent, then cond/lhs before else/rhs).
    while let Some(e) = stack.pop() {
        if seen[e.0] {
            continue;
        }
        seen[e.0] = true;
        let node = &exprs[e.0];
        if pred(node) {
            found.push(e);
        }
        match *node {
            Expr::Const { .. } | Expr::Sig(_) => {}
            Expr::Unary { arg, .. } => stack.push(arg),
            Expr::Binary { lhs, rhs, .. } => {
                stack.push(rhs);
                stack.push(lhs);
            }
            Expr::Mux { cond, then_, else_ } => {
                stack.push(else_);
                stack.push(then_);
                stack.push(cond);
            }
        }
    }
    found
}

/// Copy-on-write rebuild of `root` with `subst` node replacements: any node
/// in `subst` maps to its replacement; ancestors of replaced nodes get
/// fresh arena entries, untouched subtrees keep their ids.
fn rebuild(
    exprs: &mut Vec<Expr>,
    root: ExprId,
    subst: &HashMap<ExprId, ExprId>,
    memo: &mut HashMap<ExprId, ExprId>,
) -> ExprId {
    if let Some(&r) = subst.get(&root) {
        return r;
    }
    if let Some(&m) = memo.get(&root) {
        return m;
    }
    let rebuilt = match exprs[root.0] {
        Expr::Const { .. } | Expr::Sig(_) => root,
        Expr::Unary { op, arg } => {
            let a = rebuild(exprs, arg, subst, memo);
            if a == arg {
                root
            } else {
                push(exprs, Expr::Unary { op, arg: a })
            }
        }
        Expr::Binary { op, lhs, rhs } => {
            let l = rebuild(exprs, lhs, subst, memo);
            let r = rebuild(exprs, rhs, subst, memo);
            if l == lhs && r == rhs {
                root
            } else {
                push(exprs, Expr::Binary { op, lhs: l, rhs: r })
            }
        }
        Expr::Mux { cond, then_, else_ } => {
            let c = rebuild(exprs, cond, subst, memo);
            let t = rebuild(exprs, then_, subst, memo);
            let e = rebuild(exprs, else_, subst, memo);
            if c == cond && t == then_ && e == else_ {
                root
            } else {
                push(
                    exprs,
                    Expr::Mux {
                        cond: c,
                        then_: t,
                        else_: e,
                    },
                )
            }
        }
    };
    memo.insert(root, rebuilt);
    rebuilt
}

fn push(exprs: &mut Vec<Expr>, e: Expr) -> ExprId {
    let id = ExprId(exprs.len());
    exprs.push(e);
    id
}

/// Finds the `occurrence`-th node matching `pred` in the cone, or errors
/// with an exact count.
fn nth_node(
    exprs: &[Expr],
    root: ExprId,
    signal: &str,
    node: &'static str,
    occurrence: usize,
    pred: impl Fn(&Expr) -> bool,
) -> Result<ExprId, MutateError> {
    let found = matching_nodes(exprs, root, pred);
    found
        .get(occurrence)
        .copied()
        .ok_or_else(|| MutateError::NoSuchNode {
            signal: signal.to_string(),
            node,
            occurrence,
            found: found.len(),
        })
}

fn apply_op(
    op: &MutationOp,
    design: &Design,
    signals: &mut Vec<Signal>,
    exprs: &mut Vec<Expr>,
) -> Result<(), MutateError> {
    // Cone surgery rewrites `target`'s root with `subst` applied.
    let surgery = |signals: &mut Vec<Signal>,
                   exprs: &mut Vec<Expr>,
                   id: SignalId,
                   subst: HashMap<ExprId, ExprId>|
     -> Result<(), MutateError> {
        let root = cone_root(signals, id)?;
        let mut memo = HashMap::new();
        let new_root = rebuild(exprs, root, &subst, &mut memo);
        set_cone_root(signals, id, new_root);
        Ok(())
    };

    match op {
        MutationOp::TieWire { target, value } => {
            for id in target.resolve(design)? {
                let (name, width) = (signals[id.0].name.clone(), signals[id.0].width);
                let SignalKind::Wire { expr } = &mut signals[id.0].kind else {
                    return Err(MutateError::WrongKind {
                        signal: name,
                        expected: "wire",
                    });
                };
                if mask(*value, width) != *value {
                    return Err(MutateError::ValueTooWide {
                        signal: name,
                        value: *value,
                        width,
                    });
                }
                *expr = push(
                    exprs,
                    Expr::Const {
                        value: *value,
                        width,
                    },
                );
            }
        }
        MutationOp::SetRegInit { target, init } => {
            for id in target.resolve(design)? {
                let (name, width) = (signals[id.0].name.clone(), signals[id.0].width);
                let SignalKind::Reg { init: slot, .. } = &mut signals[id.0].kind else {
                    return Err(MutateError::WrongKind {
                        signal: name,
                        expected: "register",
                    });
                };
                if let Some(v) = init {
                    if mask(*v, width) != *v {
                        return Err(MutateError::ValueTooWide {
                            signal: name,
                            value: *v,
                            width,
                        });
                    }
                }
                *slot = *init;
            }
        }
        MutationOp::GateMuxCond {
            target,
            occurrence,
            guard,
            guard_value,
        } => {
            let guard_id = design
                .signal_by_name(guard)
                .ok_or_else(|| MutateError::UnknownSignal(guard.clone()))?;
            let guard_width = design.signal(guard_id).width;
            if mask(*guard_value, guard_width) != *guard_value {
                return Err(MutateError::ValueTooWide {
                    signal: guard.clone(),
                    value: *guard_value,
                    width: guard_width,
                });
            }
            for id in target.resolve(design)? {
                let name = signals[id.0].name.clone();
                let root = cone_root(signals, id)?;
                let m = nth_node(exprs, root, &name, "mux", *occurrence, |e| {
                    matches!(e, Expr::Mux { .. })
                })?;
                let Expr::Mux { cond, then_, else_ } = exprs[m.0] else {
                    unreachable!("nth_node matched a mux")
                };
                let g = push(exprs, Expr::Sig(guard_id));
                let v = push(
                    exprs,
                    Expr::Const {
                        value: *guard_value,
                        width: guard_width,
                    },
                );
                let cmp = push(
                    exprs,
                    Expr::Binary {
                        op: BinOp::Eq,
                        lhs: g,
                        rhs: v,
                    },
                );
                let gated = push(
                    exprs,
                    Expr::Binary {
                        op: BinOp::And,
                        lhs: cond,
                        rhs: cmp,
                    },
                );
                let new_mux = push(
                    exprs,
                    Expr::Mux {
                        cond: gated,
                        then_,
                        else_,
                    },
                );
                surgery(signals, exprs, id, HashMap::from([(m, new_mux)]))?;
            }
        }
        MutationOp::SwapMuxArms { target, occurrence } => {
            for id in target.resolve(design)? {
                let name = signals[id.0].name.clone();
                let root = cone_root(signals, id)?;
                let m = nth_node(exprs, root, &name, "mux", *occurrence, |e| {
                    matches!(e, Expr::Mux { .. })
                })?;
                let Expr::Mux { cond, then_, else_ } = exprs[m.0] else {
                    unreachable!("nth_node matched a mux")
                };
                let swapped = push(
                    exprs,
                    Expr::Mux {
                        cond,
                        then_: else_,
                        else_: then_,
                    },
                );
                surgery(signals, exprs, id, HashMap::from([(m, swapped)]))?;
            }
        }
        MutationOp::FlipEq { target, occurrence } => {
            for id in target.resolve(design)? {
                let name = signals[id.0].name.clone();
                let root = cone_root(signals, id)?;
                let m = nth_node(exprs, root, &name, "eq", *occurrence, |e| {
                    matches!(
                        e,
                        Expr::Binary {
                            op: BinOp::Eq | BinOp::Ne,
                            ..
                        }
                    )
                })?;
                let Expr::Binary { op, lhs, rhs } = exprs[m.0] else {
                    unreachable!("nth_node matched a comparison")
                };
                let flipped = match op {
                    BinOp::Eq => BinOp::Ne,
                    BinOp::Ne => BinOp::Eq,
                    _ => unreachable!("nth_node matched eq/ne"),
                };
                let new = push(
                    exprs,
                    Expr::Binary {
                        op: flipped,
                        lhs,
                        rhs,
                    },
                );
                surgery(signals, exprs, id, HashMap::from([(m, new)]))?;
            }
        }
        MutationOp::DropAndOperand {
            target,
            occurrence,
            keep_lhs,
        }
        | MutationOp::DropOrOperand {
            target,
            occurrence,
            keep_lhs,
        } => {
            let (want, label): (BinOp, &'static str) =
                if matches!(op, MutationOp::DropAndOperand { .. }) {
                    (BinOp::And, "and")
                } else {
                    (BinOp::Or, "or")
                };
            for id in target.resolve(design)? {
                let name = signals[id.0].name.clone();
                let root = cone_root(signals, id)?;
                let m = nth_node(
                    exprs,
                    root,
                    &name,
                    label,
                    *occurrence,
                    |e| matches!(e, Expr::Binary { op, .. } if *op == want),
                )?;
                let Expr::Binary { lhs, rhs, .. } = exprs[m.0] else {
                    unreachable!("nth_node matched a binary op")
                };
                let kept = if *keep_lhs { lhs } else { rhs };
                surgery(signals, exprs, id, HashMap::from([(m, kept)]))?;
            }
        }
        MutationOp::RedirectSig { target, from, to } => {
            let from_id = design
                .signal_by_name(from)
                .ok_or_else(|| MutateError::UnknownSignal(from.clone()))?;
            let to_id = design
                .signal_by_name(to)
                .ok_or_else(|| MutateError::UnknownSignal(to.clone()))?;
            let (fw, tw) = (design.signal(from_id).width, design.signal(to_id).width);
            if fw != tw {
                return Err(MutateError::WidthMismatch {
                    detail: format!("`{from}` is {fw} bits but `{to}` is {tw} bits"),
                });
            }
            for id in target.resolve(design)? {
                let name = signals[id.0].name.clone();
                let root = cone_root(signals, id)?;
                let reads = matching_nodes(exprs, root, |e| *e == Expr::Sig(from_id));
                if reads.is_empty() {
                    return Err(MutateError::NoSuchNode {
                        signal: name,
                        node: "sig read",
                        occurrence: 0,
                        found: 0,
                    });
                }
                let replacement = push(exprs, Expr::Sig(to_id));
                let subst = reads.into_iter().map(|r| (r, replacement)).collect();
                surgery(signals, exprs, id, subst)?;
            }
        }
    }
    Ok(())
}

/// Which microarchitecture a catalog targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CatalogTarget {
    /// Multi-V-scale with the **fixed** memory (bugs are injected into the
    /// correct design; [`crate::multi_vscale::MemoryImpl::Buggy`] is the
    /// paper's own mutant).
    MultiVscale,
    /// The five-stage SC multicore ([`crate::five_stage`]).
    FiveStage,
    /// The TSO store-buffer variant ([`crate::tso`]).
    Tso,
}

impl CatalogTarget {
    /// Stable label (used by `--design` and reports).
    pub fn label(self) -> &'static str {
        match self {
            CatalogTarget::MultiVscale => "multi_vscale",
            CatalogTarget::FiveStage => "five_stage",
            CatalogTarget::Tso => "tso",
        }
    }

    /// Parses a `--design` value.
    pub fn parse(s: &str) -> Option<CatalogTarget> {
        match s {
            "multi_vscale" | "multi-vscale" | "vscale" => Some(CatalogTarget::MultiVscale),
            "five_stage" | "five-stage" => Some(CatalogTarget::FiveStage),
            "tso" => Some(CatalogTarget::Tso),
            _ => None,
        }
    }

    /// All campaign targets, in report order.
    pub fn all() -> [CatalogTarget; 3] {
        [
            CatalogTarget::MultiVscale,
            CatalogTarget::FiveStage,
            CatalogTarget::Tso,
        ]
    }
}

impl fmt::Display for CatalogTarget {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

fn named(n: &str) -> SignalSel {
    SignalSel::Named(n.to_string())
}

fn mem_words() -> SignalSel {
    SignalSel::Indexed("mem_".to_string())
}

/// The fixed mutant catalog for a target design. Deterministic: same
/// target, same list, same order. Every entry applies to every per-test
/// build of the target (ops only reference signals that exist regardless
/// of the litmus test's shape).
pub fn catalog(target: CatalogTarget) -> Vec<Mutation> {
    match target {
        CatalogTarget::MultiVscale => multi_vscale_catalog(),
        CatalogTarget::FiveStage => five_stage_catalog(),
        CatalogTarget::Tso => tso_catalog(),
    }
}

fn multi_vscale_catalog() -> Vec<Mutation> {
    vec![
        Mutation {
            name: "store_drop_when_busy".into(),
            family: MutationFamily::BufferOverwrite,
            description: "memory write is suppressed while a new store issues: the first of two \
                          back-to-back stores is dropped (the §7.1 wdata bug, re-seeded into the \
                          fixed memory)"
                .into(),
            ops: vec![MutationOp::GateMuxCond {
                target: mem_words(),
                occurrence: 0,
                guard: "mem_req_is_store".into(),
                guard_value: 0,
            }],
        },
        Mutation {
            name: "drop_stall_core0".into(),
            family: MutationFamily::DropStall,
            description: "core 0's DX stall is tied low: ungranted memory ops advance and their \
                          accesses are silently dropped"
                .into(),
            ops: vec![MutationOp::TieWire {
                target: named("core0_stall_DX"),
                value: 0,
            }],
        },
        Mutation {
            name: "commit_wrong_core".into(),
            family: MutationFamily::PriorityFlip,
            description: "the write-data bus priority comparison is inverted: stores commit \
                          another core's WB data"
                .into(),
            ops: vec![MutationOp::FlipEq {
                target: named("mem_wdata_bus"),
                occurrence: 0,
            }],
        },
        Mutation {
            name: "commit_addr_early".into(),
            family: MutationFamily::SwapCommitOrder,
            description: "the memory write decodes this cycle's request address instead of the \
                          previous cycle's: data and address belong to different stores"
                .into(),
            ops: vec![MutationOp::RedirectSig {
                target: mem_words(),
                from: "mem_prev_addr".into(),
                to: "mem_req_addr".into(),
            }],
        },
        Mutation {
            name: "commit_data_dx".into(),
            family: MutationFamily::SwapCommitOrder,
            description: "core 0's slot on the write-data bus taps the DX-stage data register \
                          instead of the WB-stage one: the committed data belongs to the \
                          *following* instruction (loads carry 0, so a store followed by a load \
                          silently writes 0)"
                .into(),
            ops: vec![MutationOp::RedirectSig {
                target: named("mem_wdata_bus"),
                from: "core0_store_data_WB".into(),
                to: "core0_data_DX".into(),
            }],
        },
        Mutation {
            name: "skip_reset_pc0".into(),
            family: MutationFamily::SkipResetInit,
            description: "core 0's fetch PC resets one slot late: the core's first instruction \
                          never executes"
                .into(),
            ops: vec![MutationOp::SetRegInit {
                target: named("core0_PC_IF"),
                init: Some(isa::pc_base(0) + PC_STEP),
            }],
        },
        Mutation {
            name: "halt_ignores_stall".into(),
            family: MutationFamily::DropStall,
            description: "core 0 latches halted even while DX stalls — semantically equivalent \
                          on this pipeline (halt never stalls), so the verifier should NOT kill \
                          it: a deliberate equivalent mutant"
                .into(),
            ops: vec![MutationOp::DropAndOperand {
                target: named("core0_halted"),
                occurrence: 0,
                keep_lhs: false,
            }],
        },
    ]
}

fn tso_catalog() -> Vec<Mutation> {
    use crate::multi_vscale::NUM_CORES;
    vec![
        Mutation {
            name: "sbuf_overwrite".into(),
            family: MutationFamily::BufferOverwrite,
            description: "the flush stall is dropped entirely: stores, halts and fences retire \
                          without waiting for the store buffer, so a retiring store overwrites \
                          the buffered one"
                .into(),
            // stall_DX = or(load_stall, flush_stall): keep only load_stall.
            ops: (0..NUM_CORES)
                .map(|c| MutationOp::DropOrOperand {
                    target: named(&format!("core{c}_stall_DX")),
                    occurrence: 0,
                    keep_lhs: true,
                })
                .collect(),
        },
        Mutation {
            name: "drop_stall_core0".into(),
            family: MutationFamily::DropStall,
            description: "core 0's DX stall is tied low: stores overwrite the single-entry \
                          store buffer and the halt retires without flushing it"
                .into(),
            ops: vec![MutationOp::TieWire {
                target: named("core0_stall_DX"),
                value: 0,
            }],
        },
        Mutation {
            name: "forward_without_valid".into(),
            family: MutationFamily::RemoveForwarding,
            description: "loads forward from the store buffer on an address match even when the \
                          buffer is empty, returning stale buffered data"
                .into(),
            // fwd = and(sbuf_valid, addr_match): keep only addr_match.
            ops: (0..NUM_CORES)
                .map(|c| MutationOp::DropAndOperand {
                    target: named(&format!("core{c}_load_data_WB")),
                    occurrence: 0,
                    keep_lhs: false,
                })
                .collect(),
        },
        Mutation {
            name: "drain_wrong_addr".into(),
            family: MutationFamily::SwapCommitOrder,
            description: "core 0's drain writes to the address currently in its WB stage instead \
                          of the buffered store's address"
                .into(),
            ops: vec![MutationOp::RedirectSig {
                target: mem_words(),
                from: "core0_sbuf_addr".into(),
                to: "core0_addr_WB".into(),
            }],
        },
        Mutation {
            name: "skip_reset_pc0".into(),
            family: MutationFamily::SkipResetInit,
            description: "core 0's fetch PC resets one slot late: the core's first instruction \
                          never executes"
                .into(),
            ops: vec![MutationOp::SetRegInit {
                target: named("core0_PC_IF"),
                init: Some(isa::pc_base(0) + PC_STEP),
            }],
        },
        Mutation {
            name: "drain_addr_decode_flipped".into(),
            family: MutationFamily::PriorityFlip,
            description: "core 0's drain address decode is inverted: its buffered stores land \
                          in every word except the right one"
                .into(),
            // First eq in a mem word's cone is core 0's sbuf_addr match.
            ops: vec![MutationOp::FlipEq {
                target: mem_words(),
                occurrence: 0,
            }],
        },
    ]
}

fn five_stage_catalog() -> Vec<Mutation> {
    vec![
        Mutation {
            name: "drop_stall_core0".into(),
            family: MutationFamily::DropStall,
            description: "core 0's MEM stall is tied low: ungranted memory ops advance and \
                          their accesses are silently dropped"
                .into(),
            ops: vec![MutationOp::TieWire {
                target: named("core0_stall_MEM"),
                value: 0,
            }],
        },
        Mutation {
            name: "write_without_grant".into(),
            family: MutationFamily::BufferOverwrite,
            description: "a store in MEM writes the array regardless of the arbiter grant".into(),
            ops: vec![MutationOp::DropAndOperand {
                target: mem_words(),
                occurrence: 0,
                keep_lhs: false,
            }],
        },
        Mutation {
            name: "priority_flip_core0".into(),
            family: MutationFamily::PriorityFlip,
            description: "the write-enable grant comparison for core 0 is inverted: core 0's \
                          stores write exactly when NOT granted"
                .into(),
            ops: vec![MutationOp::FlipEq {
                target: mem_words(),
                occurrence: 0,
            }],
        },
        Mutation {
            name: "latch_stale_load".into(),
            family: MutationFamily::RemoveForwarding,
            description: "the WB load-data latch arms are swapped: a completing load holds the \
                          previous value and bubbles latch stray combinational reads"
                .into(),
            ops: (0..crate::five_stage::NUM_CORES)
                .map(|c| MutationOp::SwapMuxArms {
                    target: named(&format!("core{c}_load_data_WB")),
                    occurrence: 0,
                })
                .collect(),
        },
        Mutation {
            name: "skip_reset_pc0".into(),
            family: MutationFamily::SkipResetInit,
            description: "core 0's fetch PC resets one slot late: the core's first instruction \
                          never executes"
                .into(),
            ops: vec![MutationOp::SetRegInit {
                target: named("core0_PC_IF"),
                init: Some(isa::pc_base(0) + PC_STEP),
            }],
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::multi_vscale::{MemoryImpl, MultiVscale};
    use crate::sim::Simulator;
    use rtlcheck_litmus::suite;

    fn mp_design() -> Design {
        let mp = suite::get("mp").unwrap();
        MultiVscale::build(&mp, MemoryImpl::Fixed).design
    }

    #[test]
    fn catalogs_apply_to_every_suite_test() {
        for target in CatalogTarget::all() {
            for t in suite::all() {
                let design = match target {
                    CatalogTarget::MultiVscale => MultiVscale::build(&t, MemoryImpl::Fixed).design,
                    CatalogTarget::FiveStage => crate::five_stage::FiveStage::build(&t).design,
                    CatalogTarget::Tso => crate::tso::build(&t).design,
                };
                for m in catalog(target) {
                    let mutant = m
                        .apply(&design)
                        .unwrap_or_else(|e| panic!("{target}/{}/{}: {e}", t.name(), m.name));
                    assert_eq!(mutant.num_regs(), design.num_regs());
                    assert_eq!(mutant.num_inputs(), design.num_inputs());
                    assert_eq!(
                        mutant.name(),
                        format!("{}__{}", design.name(), m.name),
                        "mutant is renamed"
                    );
                }
            }
        }
    }

    #[test]
    fn catalog_names_are_unique_per_target() {
        for target in CatalogTarget::all() {
            let names: Vec<String> = catalog(target).into_iter().map(|m| m.name).collect();
            let mut deduped = names.clone();
            deduped.sort();
            deduped.dedup();
            assert_eq!(deduped.len(), names.len(), "{target}: {names:?}");
        }
    }

    #[test]
    fn tie_wire_changes_simulation() {
        let d = mp_design();
        let m = &multi_vscale_catalog()[1]; // drop_stall_core0
        assert_eq!(m.name, "drop_stall_core0");
        let mutant = m.apply(&d).unwrap();
        let stall = mutant.signal_by_name("core0_stall_DX").unwrap();
        let sim = Simulator::new(&mutant);
        let pins: Vec<_> = mutant
            .free_init_regs()
            .into_iter()
            .map(|r| (r, 0))
            .collect();
        let mut s = sim.initial_state_with(&pins).unwrap();
        // Never grant core 0: the original design would stall; the mutant
        // never does.
        for _ in 0..8 {
            assert_eq!(sim.peek(&s, &[3], stall), 0);
            s = sim.step(&s, &[3]);
        }
    }

    #[test]
    fn store_drop_mutant_reproduces_the_7_1_drop() {
        // On the mutated fixed memory, two back-to-back stores drop the
        // first one — the same architectural effect as MemoryImpl::Buggy
        // (see multi_vscale::tests::back_to_back_stores_drop_on_buggy_memory_only).
        let d = mp_design();
        let m = &multi_vscale_catalog()[0];
        assert_eq!(m.name, "store_drop_when_busy");
        let mutant = m.apply(&d).unwrap();
        let sim = Simulator::new(&mutant);
        let mem0 = mutant.signal_by_name("mem_0").unwrap();
        let mem1 = mutant.signal_by_name("mem_1").unwrap();
        let pins = vec![(mem0, 0), (mem1, 0)];
        let mut s = sim.initial_state_with(&pins).unwrap();
        for g in [0u64, 0, 0, 2, 2, 2, 2, 2] {
            s = sim.step(&s, &[g]);
        }
        assert_eq!(sim.peek(&s, &[2], mem0), 0, "first store dropped");
        assert_eq!(sim.peek(&s, &[2], mem1), 1, "second store lands");
    }

    #[test]
    fn equivalent_mutant_simulates_identically() {
        let d = mp_design();
        let m = multi_vscale_catalog()
            .into_iter()
            .find(|m| m.name == "halt_ignores_stall")
            .unwrap();
        let mutant = m.apply(&d).unwrap();
        let sim_a = Simulator::new(&d);
        let sim_b = Simulator::new(&mutant);
        let pins: Vec<_> = d.free_init_regs().into_iter().map(|r| (r, 0)).collect();
        let mut a = sim_a.initial_state_with(&pins).unwrap();
        let mut b = sim_b.initial_state_with(&pins).unwrap();
        for i in 0..40u64 {
            let g = [i % 4];
            a = sim_a.step(&a, &g);
            b = sim_b.step(&b, &g);
            assert_eq!(a, b, "cycle {i}");
        }
    }

    #[test]
    fn unknown_signal_is_a_clean_error() {
        let d = mp_design();
        let m = Mutation {
            name: "bogus".into(),
            family: MutationFamily::DropStall,
            description: String::new(),
            ops: vec![MutationOp::TieWire {
                target: named("no_such_wire"),
                value: 0,
            }],
        };
        assert!(matches!(
            m.apply(&d),
            Err(MutateError::UnknownSignal(s)) if s == "no_such_wire"
        ));
    }

    #[test]
    fn occurrence_out_of_range_reports_the_count() {
        let d = mp_design();
        let m = Mutation {
            name: "deep".into(),
            family: MutationFamily::PriorityFlip,
            description: String::new(),
            ops: vec![MutationOp::SwapMuxArms {
                target: named("mem_req_is_store"),
                occurrence: 99,
            }],
        };
        match m.apply(&d) {
            Err(MutateError::NoSuchNode {
                occurrence: 99,
                found,
                ..
            }) => assert!(found < 99),
            other => panic!("expected NoSuchNode, got {other:?}"),
        }
    }

    #[test]
    fn occurrence_error_message_states_requested_and_total() {
        let d = mp_design();
        let probe = |occurrence: usize| -> Result<Design, MutateError> {
            Mutation {
                name: "deep".into(),
                family: MutationFamily::PriorityFlip,
                description: String::new(),
                ops: vec![MutationOp::SwapMuxArms {
                    target: named("mem_req_is_store"),
                    occurrence,
                }],
            }
            .apply(&d)
        };
        let err = probe(99).unwrap_err();
        let MutateError::NoSuchNode { found: total, .. } = err else {
            panic!("expected NoSuchNode, got {err:?}")
        };
        assert_eq!(
            err.to_string(),
            format!("cone of `mem_req_is_store` has {total} mux node(s); occurrence 99 requested"),
            "message must state both the total count and the requested occurrence"
        );
        // `found` really is the total occurrence count: one past the last
        // fails with the same count, the last one itself succeeds.
        assert!(matches!(
            probe(total),
            Err(MutateError::NoSuchNode { occurrence, found, .. })
                if occurrence == total && found == total
        ));
        assert!(total > 0, "the request-decode cone contains muxes");
        assert!(probe(total - 1).is_ok());
    }

    #[test]
    fn dirty_cones_tracks_value_changes() {
        let d = mp_design();
        let m = multi_vscale_catalog()
            .into_iter()
            .find(|m| m.name == "drop_stall_core0")
            .unwrap();
        let dirty = m.dirty_cones(&d).unwrap();
        let stall = d.signal_by_name("core0_stall_DX").unwrap();
        assert!(dirty.wire_dirty(stall), "the tied wire itself is dirty");
        assert!(
            !dirty.regs.is_empty(),
            "registers reading the stall inherit the dirt"
        );
        assert!(dirty.init_regs.is_empty());
        // The dirt agrees with the cone partition: every invalidated cone
        // either has a dirty root or reads a dirty wire, and at least one
        // cone survives untouched (the mutation is local).
        let cones = d.cones();
        let hit = cones.invalidated(&dirty);
        assert!(!hit.is_empty());
        assert!(hit.len() < cones.len(), "not every cone is invalidated");
        for (i, c) in cones.cones().iter().enumerate() {
            let dirty_root = dirty.reg_dirty(c.root);
            let reads_dirty = dirty.wires.iter().any(|&w| c.reads(w));
            assert_eq!(hit.contains(&i), dirty_root || reads_dirty);
        }
    }

    #[test]
    fn dirty_cones_init_only_mutant_is_init_only() {
        let d = mp_design();
        let m = multi_vscale_catalog()
            .into_iter()
            .find(|m| m.name == "skip_reset_pc0")
            .unwrap();
        let dirty = m.dirty_cones(&d).unwrap();
        assert!(dirty.wires.is_empty());
        assert!(dirty.regs.is_empty(), "next functions are untouched");
        assert_eq!(
            dirty.init_regs,
            vec![d.signal_by_name("core0_PC_IF").unwrap()]
        );
    }

    #[test]
    fn value_too_wide_is_rejected() {
        let d = mp_design();
        let m = Mutation {
            name: "wide".into(),
            family: MutationFamily::SkipResetInit,
            description: String::new(),
            ops: vec![MutationOp::SetRegInit {
                target: named("first"),
                init: Some(2),
            }],
        };
        assert!(matches!(m.apply(&d), Err(MutateError::ValueTooWide { .. })));
    }

    #[test]
    fn redirect_requires_matching_widths() {
        let d = mp_design();
        let m = Mutation {
            name: "mismatch".into(),
            family: MutationFamily::SwapCommitOrder,
            description: String::new(),
            ops: vec![MutationOp::RedirectSig {
                target: mem_words(),
                from: "mem_prev_addr".into(),
                to: "first".into(),
            }],
        };
        assert!(matches!(
            m.apply(&d),
            Err(MutateError::WidthMismatch { .. })
        ));
    }

    #[test]
    fn mutants_share_untouched_cones() {
        // Copy-on-write: the mutant's arena extends the original's; the
        // original design is untouched.
        let d = mp_design();
        let before = d.exprs.len();
        let m = &multi_vscale_catalog()[0];
        let mutant = m.apply(&d).unwrap();
        assert_eq!(d.exprs.len(), before, "original untouched");
        assert!(mutant.exprs.len() > before, "mutant extends the arena");
        // Untouched signals keep their exact driver ids.
        let wdata_bus = d.signal_by_name("mem_wdata_bus").unwrap();
        assert_eq!(d.signal(wdata_bus).kind, mutant.signal(wdata_bus).kind);
    }
}

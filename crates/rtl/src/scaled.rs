//! A scaled-up Multi-V-style design for exercising modular composition.
//!
//! The Multi-V-scale platform has a few dozen registers, all of which the
//! arbiter couples into essentially one module region — good for the flat
//! backends, useless for measuring composition. This module builds the
//! topology the composed backend is *for*: one shared "hub" register (the
//! arbiter-like state everyone's verdict depends on) plus many shallow
//! per-lane registers (per-core trackers) whose next-state functions read
//! only the shared primary input. Every lane is its own module region, so
//! the region partition has `lanes + 1` regions — well over twice
//! Multi-V-scale's cone count at the default size.
//!
//! Crucially the *reachable product space stays small*: the lanes are
//! input-determined (after one step a lane's value is a function of the
//! last input only), so the flat graph has roughly
//! `|hub states| × |input valuations|` nodes regardless of the lane count.
//! Flat row construction still evaluates every lane's next function on
//! every (node, input) edge — work linear in `lanes` — while the composed
//! backend memoizes each region's row against its tiny interface state.
//! Same graph, very different build cost: exactly the flat-vs-composed gap
//! EXPERIMENTS.md measures.

use crate::builder::DesignBuilder;
use crate::design::Design;

/// Default lane count used by the `composed` bench workload: `1 + 128`
/// registers, ≥ 2× Multi-V-scale's cone count.
pub const DEFAULT_LANES: usize = 128;

/// Builds the scaled hub-and-lanes design with the given number of lane
/// registers (plus the one hub register).
///
/// # Panics
///
/// Panics if `lanes` is 0 (the hub alone is not a composition benchmark).
pub fn build(lanes: usize) -> Design {
    assert!(lanes > 0, "scaled design needs at least one lane");
    let mut b = DesignBuilder::new(format!("scaled{lanes}"));
    let op = b.input("op", 2);

    // The hub: an 8-bit accumulator stepping by an odd, input-selected
    // increment, so it walks all 256 values — the "deep" shared state.
    let mut inc = b.lit(7, 8);
    for v in (0..3u64).rev() {
        let cond = b.eq_lit(op, v);
        let val = b.lit(2 * v + 1, 8);
        inc = b.mux(cond, val, inc);
    }
    let inc_w = b.wire("hub_inc", inc);
    let hub = b.reg("hub", 8, Some(0));
    let hub_e = b.sig(hub);
    let inc_e = b.sig(inc_w);
    let hub_next = b.add(hub_e, inc_e);
    b.set_next(hub, hub_next);

    // A shared 4-bit widening of the input, read by every lane. Wires do
    // not link regions (only register reads do), so each lane stays a
    // singleton region with `op` as its lone cut signal.
    let mut sel = b.lit(3, 4);
    for v in (0..3u64).rev() {
        let cond = b.eq_lit(op, v);
        let val = b.lit(v, 4);
        sel = b.mux(cond, val, sel);
    }
    let opw = b.wire("opw", sel);
    let opw_e = b.sig(opw);

    // The lanes: 4-bit input-determined trackers, each with a distinct
    // offset so their value functions (and fingerprints) differ.
    for j in 0..lanes {
        let lane = b.reg(format!("lane{j:03}"), 4, Some((j % 16) as u64));
        let k = b.lit(((j * 5 + 3) % 16) as u64, 4);
        let next = b.add(opw_e, k);
        b.set_next(lane, next);
    }
    b.build().expect("scaled design is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::region::RegionPartition;
    use crate::sim::Simulator;

    #[test]
    fn every_lane_is_its_own_region() {
        let d = build(8);
        assert_eq!(d.num_regs(), 9);
        assert_eq!(d.num_inputs(), 1);
        let p = RegionPartition::of(&d);
        assert_eq!(p.len(), 9, "hub + one region per lane");
        let op = d.signal_by_name("op").unwrap();
        let lane0 = d.signal_by_name("lane000").unwrap();
        let r = p.region_of(lane0).unwrap();
        assert_eq!(p.regions()[r].regs, vec![lane0]);
        assert_eq!(p.regions()[r].cuts, vec![op], "lanes cut on the input");
        let hub = d.signal_by_name("hub").unwrap();
        let hr = p.region_of(hub).unwrap();
        assert!(p.regions()[hr].cuts.contains(&op));
    }

    #[test]
    fn hub_steps_and_lanes_track_the_input() {
        let d = build(4);
        let sim = Simulator::new(&d);
        let hub = d.signal_by_name("hub").unwrap();
        let lane1 = d.signal_by_name("lane001").unwrap();
        let s0 = sim.initial_state().unwrap();
        let s1 = sim.step(&s0, &[2]);
        assert_eq!(sim.peek(&s1, &[0], hub), 5, "op=2 selects increment 5");
        assert_eq!(sim.peek(&s1, &[0], lane1), 10);
        // Input-determined: two different starting lane values converge.
        let s2 = sim.step(&s1, &[2]);
        assert_eq!(sim.peek(&s2, &[0], lane1), sim.peek(&s1, &[0], lane1));
    }

    #[test]
    fn default_size_doubles_multi_vscale_cones() {
        use crate::multi_vscale::{MemoryImpl, MultiVscale};
        let d = build(DEFAULT_LANES);
        let mp = rtlcheck_litmus::suite::get("mp").unwrap();
        let mv = MultiVscale::build(&mp, MemoryImpl::Fixed);
        assert!(
            d.num_regs() >= 2 * mv.design.num_regs(),
            "scaled ({}) must have ≥2× multi_vscale's cones ({})",
            d.num_regs(),
            mv.design.num_regs()
        );
    }
}

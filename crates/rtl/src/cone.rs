//! Fan-in cone analysis and per-cone fingerprints.
//!
//! A *cone* is the transitive combinational fan-in of one register's
//! next-state expression: the set of signals whose current-cycle values the
//! register reads when computing its next value. Wires are expanded
//! through; registers and primary inputs are leaves (their current values
//! are given by the state and the input valuation, not recomputed).
//!
//! Two artifacts come out of this module:
//!
//! * [`Design::cones`] — the cone partition itself, one [`Cone`] per
//!   register in a stable topological order (registers in dense-index
//!   order, which is declaration order; supports sorted by signal id).
//!   Used to map a dirty signal set to the cones it invalidates.
//! * [`cone_fingerprints`] — a per-signal FNV-1a fingerprint vector where
//!   each entry digests exactly the signal's *value function*: a wire's
//!   fingerprint folds the fingerprints of the wires it reads
//!   (transitively) but only the names of registers and inputs, and a
//!   register's fingerprint digests its next-state expression the same
//!   way. Two designs with equal signal tables and equal fingerprints at
//!   ordinal `i` therefore compute identical values for signal `i` at any
//!   (state, input) point — the property the incremental engine's
//!   edge-row splicing rests on.
//!
//! [`ConeSet::diff`] compares two structurally compatible designs (e.g. a
//! baseline and a catalog mutant) and classifies every divergence as a
//! dirty wire (value function changed), a dirty register (next-state
//! function changed), or an init-only register (reset value changed, next
//! function intact). Register initial values are deliberately *excluded*
//! from the fingerprint vector so the three classes stay separable; whole-
//! design cache keys must fold the init values in separately.

use std::collections::HashMap;

use crate::design::{Design, SignalId, SignalKind};
use crate::expr::{BinOp, Expr, ExprId, UnOp};

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Minimal FNV-1a accumulator (same constants as the verifier's cache
/// keys, kept private to each crate — the values are the spec).
struct Fnv(u64);

impl Fnv {
    fn new() -> Fnv {
        Fnv(FNV_OFFSET)
    }

    fn bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }

    fn word(&mut self, w: u64) {
        self.bytes(&w.to_le_bytes());
    }

    fn finish(self) -> u64 {
        self.0
    }
}

/// One register's fan-in cone.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cone {
    /// The register whose next-state expression roots the cone.
    pub root: SignalId,
    /// Every signal the root reads transitively through combinational
    /// logic, sorted by signal id. Wires are expanded through; registers
    /// and inputs appear as leaves. A register whose next-state expression
    /// reads the register itself contains its own root here (self-loop).
    pub support: Vec<SignalId>,
}

impl Cone {
    /// Whether the cone's fan-in contains `sig` (the root itself counts
    /// only if it appears in its own support, i.e. a self-loop).
    pub fn reads(&self, sig: SignalId) -> bool {
        self.support.binary_search(&sig).is_ok()
    }
}

/// The cone partition of a design: one cone per register, in dense
/// register-index order (a stable topological order — registers are
/// declared bottom-up and all sampled simultaneously, so declaration
/// order is the canonical stable order).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConeAnalysis {
    cones: Vec<Cone>,
}

impl ConeAnalysis {
    /// The cones, one per register in dense-index order.
    pub fn cones(&self) -> &[Cone] {
        &self.cones
    }

    /// Number of cones (== number of registers).
    pub fn len(&self) -> usize {
        self.cones.len()
    }

    /// Whether the design has no registers.
    pub fn is_empty(&self) -> bool {
        self.cones.is_empty()
    }

    /// Indices of the cones a dirty set invalidates: a cone is dirty when
    /// its root register's next function or reset value changed, or when
    /// its fan-in reads a dirty wire.
    pub fn invalidated(&self, dirty: &ConeSet) -> Vec<usize> {
        self.cones
            .iter()
            .enumerate()
            .filter(|(_, c)| {
                dirty.regs.binary_search(&c.root).is_ok()
                    || dirty.init_regs.binary_search(&c.root).is_ok()
                    || dirty.wires.iter().any(|&w| c.reads(w))
            })
            .map(|(i, _)| i)
            .collect()
    }
}

/// A classified set of dirty signals — the difference between a baseline
/// design and a structurally compatible mutant.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ConeSet {
    /// Wires whose combinational value function changed (sorted).
    pub wires: Vec<SignalId>,
    /// Registers whose next-state function changed (sorted).
    pub regs: Vec<SignalId>,
    /// Registers whose reset value changed (sorted; independent of
    /// `regs` — a register may appear in both).
    pub init_regs: Vec<SignalId>,
}

impl ConeSet {
    /// The empty (nothing dirty) set.
    pub fn empty() -> ConeSet {
        ConeSet::default()
    }

    /// Whether nothing is dirty.
    pub fn is_empty(&self) -> bool {
        self.wires.is_empty() && self.regs.is_empty() && self.init_regs.is_empty()
    }

    /// The maximally conservative set: every wire and register dirty.
    pub fn all(design: &Design) -> ConeSet {
        let mut set = ConeSet::empty();
        for (id, s) in design.signals() {
            match s.kind {
                SignalKind::Wire { .. } => set.wires.push(id),
                SignalKind::Reg { .. } => {
                    set.regs.push(id);
                    set.init_regs.push(id);
                }
                SignalKind::Input { .. } => {}
            }
        }
        set
    }

    /// Whether `sig` is a dirty wire.
    pub fn wire_dirty(&self, sig: SignalId) -> bool {
        self.wires.binary_search(&sig).is_ok()
    }

    /// Whether `sig` is a register with a dirty next-state function.
    pub fn reg_dirty(&self, sig: SignalId) -> bool {
        self.regs.binary_search(&sig).is_ok()
    }

    /// Diffs two designs signal-by-signal. Returns `None` when the designs
    /// are not structurally compatible (different signal tables), in which
    /// case no incremental reuse is possible. Compatibility requires the
    /// same signals at the same ordinals: equal names, widths, and kinds
    /// (register/input dense indices included) — exactly what catalog
    /// mutations preserve, since they rewrite expressions and reset values
    /// but never add, remove, or re-type signals.
    pub fn diff(base: &Design, mutant: &Design) -> Option<ConeSet> {
        if base.signals.len() != mutant.signals.len()
            || base.num_inputs != mutant.num_inputs
            || base.num_regs != mutant.num_regs
        {
            return None;
        }
        for (b, m) in base.signals.iter().zip(&mutant.signals) {
            if b.name != m.name || b.width != m.width {
                return None;
            }
            let compatible = match (&b.kind, &m.kind) {
                (SignalKind::Input { index: bi }, SignalKind::Input { index: mi }) => bi == mi,
                (SignalKind::Reg { index: bi, .. }, SignalKind::Reg { index: mi, .. }) => bi == mi,
                (SignalKind::Wire { .. }, SignalKind::Wire { .. }) => true,
                _ => false,
            };
            if !compatible {
                return None;
            }
        }
        let base_fp = cone_fingerprints(base);
        let mutant_fp = cone_fingerprints(mutant);
        let mut set = ConeSet::empty();
        for (i, (bs, ms)) in base.signals.iter().zip(&mutant.signals).enumerate() {
            let id = SignalId(i);
            match (&bs.kind, &ms.kind) {
                (SignalKind::Wire { .. }, SignalKind::Wire { .. }) => {
                    if base_fp[i] != mutant_fp[i] {
                        set.wires.push(id);
                    }
                }
                (SignalKind::Reg { init: bi, .. }, SignalKind::Reg { init: mi, .. }) => {
                    if base_fp[i] != mutant_fp[i] {
                        set.regs.push(id);
                    }
                    if bi != mi {
                        set.init_regs.push(id);
                    }
                }
                _ => {
                    // Inputs digest only (name, width, index), all equal here.
                    debug_assert_eq!(base_fp[i], mutant_fp[i]);
                }
            }
        }
        Some(set)
    }
}

impl Design {
    /// Computes the fan-in cone partition: one [`Cone`] per register, in
    /// dense register-index order.
    pub fn cones(&self) -> ConeAnalysis {
        let n = self.signals.len();
        let words = n.div_ceil(64);
        // Transitive read set per wire, computed in dependency order so
        // each wire only unions already-finished sets.
        let mut wire_support: HashMap<SignalId, Vec<u64>> = HashMap::new();
        for &w in self.wire_order() {
            let SignalKind::Wire { expr } = self.signal(w).kind else {
                unreachable!("wire_order contains only wires");
            };
            let mut set = vec![0u64; words];
            let mut visited = vec![false; self.exprs.len()];
            self.collect_reads(expr, &mut set, &mut visited, &wire_support);
            wire_support.insert(w, set);
        }
        let mut roots: Vec<(usize, SignalId, ExprId)> = self
            .signals()
            .filter_map(|(id, s)| match s.kind {
                SignalKind::Reg { index, next, .. } => Some((index, id, next)),
                _ => None,
            })
            .collect();
        roots.sort_by_key(|&(index, _, _)| index);
        let cones = roots
            .into_iter()
            .map(|(_, root, next)| {
                let mut set = vec![0u64; words];
                let mut visited = vec![false; self.exprs.len()];
                self.collect_reads(next, &mut set, &mut visited, &wire_support);
                let support = (0..n)
                    .filter(|&i| set[i / 64] & (1u64 << (i % 64)) != 0)
                    .map(SignalId)
                    .collect();
                Cone { root, support }
            })
            .collect();
        ConeAnalysis { cones }
    }

    /// Adds every signal `expr` reads (wires expanded transitively) to the
    /// bitset `set`.
    fn collect_reads(
        &self,
        expr: ExprId,
        set: &mut [u64],
        visited: &mut [bool],
        wire_support: &HashMap<SignalId, Vec<u64>>,
    ) {
        if visited[expr.0] {
            return;
        }
        visited[expr.0] = true;
        match self.expr(expr) {
            Expr::Const { .. } => {}
            Expr::Sig(s) => {
                set[s.0 / 64] |= 1u64 << (s.0 % 64);
                if let Some(sub) = wire_support.get(&s) {
                    for (dst, src) in set.iter_mut().zip(sub) {
                        *dst |= src;
                    }
                }
            }
            Expr::Unary { arg, .. } => self.collect_reads(arg, set, visited, wire_support),
            Expr::Binary { lhs, rhs, .. } => {
                self.collect_reads(lhs, set, visited, wire_support);
                self.collect_reads(rhs, set, visited, wire_support);
            }
            Expr::Mux { cond, then_, else_ } => {
                self.collect_reads(cond, set, visited, wire_support);
                self.collect_reads(then_, set, visited, wire_support);
                self.collect_reads(else_, set, visited, wire_support);
            }
        }
    }
}

fn unop_tag(op: UnOp) -> u8 {
    match op {
        UnOp::Not => 0,
        UnOp::OrReduce => 1,
    }
}

fn binop_tag(op: BinOp) -> u8 {
    match op {
        BinOp::And => 0,
        BinOp::Or => 1,
        BinOp::Xor => 2,
        BinOp::Add => 3,
        BinOp::Sub => 4,
        BinOp::Eq => 5,
        BinOp::Ne => 6,
        BinOp::Lt => 7,
    }
}

struct FpCtx<'d> {
    design: &'d Design,
    expr_memo: Vec<Option<u64>>,
    sig_memo: Vec<Option<u64>>,
}

impl FpCtx<'_> {
    /// Fingerprint of an expression's value function. Wires fold their own
    /// value-function fingerprints (so edits propagate to every transitive
    /// reader); registers and inputs fold only their identity.
    fn expr_fp(&mut self, e: ExprId) -> u64 {
        if let Some(fp) = self.expr_memo[e.0] {
            return fp;
        }
        let mut h = Fnv::new();
        match self.design.expr(e) {
            Expr::Const { value, width } => {
                h.bytes(&[1, width]);
                h.word(value);
            }
            Expr::Sig(s) => {
                let sig = self.design.signal(s);
                match sig.kind {
                    SignalKind::Input { index } => {
                        h.bytes(&[2, sig.width]);
                        h.word(index as u64);
                        h.bytes(sig.name.as_bytes());
                    }
                    SignalKind::Reg { index, .. } => {
                        h.bytes(&[3, sig.width]);
                        h.word(index as u64);
                        h.bytes(sig.name.as_bytes());
                    }
                    SignalKind::Wire { .. } => {
                        h.bytes(&[4]);
                        h.word(self.sig_fp(s));
                    }
                }
            }
            Expr::Unary { op, arg } => {
                h.bytes(&[5, unop_tag(op)]);
                h.word(self.expr_fp(arg));
            }
            Expr::Binary { op, lhs, rhs } => {
                h.bytes(&[6, binop_tag(op)]);
                h.word(self.expr_fp(lhs));
                h.word(self.expr_fp(rhs));
            }
            Expr::Mux { cond, then_, else_ } => {
                h.bytes(&[7]);
                h.word(self.expr_fp(cond));
                h.word(self.expr_fp(then_));
                h.word(self.expr_fp(else_));
            }
        }
        let fp = h.finish();
        self.expr_memo[e.0] = Some(fp);
        fp
    }

    fn sig_fp(&mut self, s: SignalId) -> u64 {
        if let Some(fp) = self.sig_memo[s.0] {
            return fp;
        }
        let sig = self.design.signal(s);
        let mut h = Fnv::new();
        match sig.kind {
            SignalKind::Input { index } => {
                h.bytes(&[10, sig.width]);
                h.word(index as u64);
                h.bytes(sig.name.as_bytes());
            }
            SignalKind::Reg { index, next, .. } => {
                // Reset values are deliberately NOT folded: the vector
                // fingerprints value *functions*, and [`ConeSet::diff`]
                // classifies init changes separately.
                h.bytes(&[11, sig.width]);
                h.word(index as u64);
                h.bytes(sig.name.as_bytes());
                h.word(self.expr_fp(next));
            }
            SignalKind::Wire { expr } => {
                h.bytes(&[12, sig.width]);
                h.bytes(sig.name.as_bytes());
                h.word(self.expr_fp(expr));
            }
        }
        let fp = h.finish();
        self.sig_memo[s.0] = Some(fp);
        fp
    }
}

/// Per-signal value-function fingerprints, indexed by signal ordinal.
///
/// Entry `i` digests signal `i`'s value function: combinational structure
/// expanded through wires, registers and inputs as identity leaves.
/// Register entries digest the *next-state* function (reset values are
/// excluded — see [`ConeSet::diff`]). Equal tables plus equal entries at
/// `i` imply signal `i` evaluates identically at every (state, input)
/// point in both designs.
pub fn cone_fingerprints(design: &Design) -> Vec<u64> {
    let mut ctx = FpCtx {
        design,
        expr_memo: vec![None; design.exprs.len()],
        sig_memo: vec![None; design.signals.len()],
    };
    (0..design.signals.len())
        .map(|i| ctx.sig_fp(SignalId(i)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DesignBuilder;

    /// Two regs: `a` counts, `b` samples a wire over `a`.
    fn two_cone_design() -> Design {
        let mut b = DesignBuilder::new("d");
        let a = b.reg("a", 4, Some(0));
        let r2 = b.reg("b", 4, Some(0));
        let one = b.lit(1, 4);
        let a_e = b.sig(a);
        let next_a = b.add(a_e, one);
        b.set_next(a, next_a);
        let w = b.add(a_e, a_e);
        let w_id = b.wire("w", w);
        let w_e = b.sig(w_id);
        b.set_next(r2, w_e);
        b.build().unwrap()
    }

    #[test]
    fn cones_are_per_register_in_dense_order() {
        let d = two_cone_design();
        let cones = d.cones();
        assert_eq!(cones.len(), 2);
        let a = d.signal_by_name("a").unwrap();
        let b = d.signal_by_name("b").unwrap();
        let w = d.signal_by_name("w").unwrap();
        assert_eq!(cones.cones()[0].root, a);
        assert_eq!(cones.cones()[1].root, b);
        // a's next reads only a; b's next reads the wire, which expands to a.
        assert_eq!(cones.cones()[0].support, vec![a]);
        assert_eq!(cones.cones()[1].support, vec![a, w]);
        assert!(cones.cones()[1].reads(w));
        assert!(!cones.cones()[0].reads(b));
    }

    #[test]
    fn self_loop_register_contains_itself() {
        let mut b = DesignBuilder::new("d");
        let r = b.reg("r", 4, Some(0));
        let one = b.lit(1, 4);
        let r_e = b.sig(r);
        let next = b.add(r_e, one);
        b.set_next(r, next);
        let d = b.build().unwrap();
        let cones = d.cones();
        assert_eq!(cones.len(), 1);
        assert!(
            cones.cones()[0].reads(r),
            "self-loop register must appear in its own support"
        );
    }

    #[test]
    fn clock_like_fan_out_lands_in_every_cone() {
        // A 1-bit toggling "tick" register read by every other register's
        // next function — the shared-dependency shape.
        let mut b = DesignBuilder::new("d");
        let tick = b.reg("tick", 1, Some(0));
        let tick_e = b.sig(tick);
        let not_tick = b.not(tick);
        b.set_next(tick, not_tick);
        // A wire over tick that everyone reads.
        let gate = b.wire("gate", tick_e);
        let gate_e = b.sig(gate);
        for i in 0..3 {
            let r = b.reg(format!("r{i}"), 1, Some(0));
            let r_e = b.sig(r);
            let next = b.xor(r_e, gate_e);
            b.set_next(r, next);
        }
        let d = b.build().unwrap();
        let cones = d.cones();
        let gate_id = d.signal_by_name("gate").unwrap();
        let readers: Vec<_> = cones
            .cones()
            .iter()
            .filter(|c| c.reads(gate_id))
            .map(|c| d.signal(c.root).name.clone())
            .collect();
        assert_eq!(readers, vec!["r0", "r1", "r2"]);
        // Dirtying the shared wire invalidates exactly the reader cones.
        let dirty = ConeSet {
            wires: vec![gate_id],
            regs: vec![],
            init_regs: vec![],
        };
        let hit = cones.invalidated(&dirty);
        assert_eq!(hit.len(), 3);
        assert!(!hit.contains(&0), "tick itself does not read the gate wire");
    }

    #[test]
    fn fingerprints_are_deterministic() {
        let d1 = two_cone_design();
        let d2 = two_cone_design();
        assert_eq!(cone_fingerprints(&d1), cone_fingerprints(&d2));
    }

    #[test]
    fn diff_classifies_wire_reg_and_init_changes() {
        let base = two_cone_design();
        // Same shape, but the wire doubles differently: w = a + 1.
        let mut b = DesignBuilder::new("d");
        let a = b.reg("a", 4, Some(0));
        let r2 = b.reg("b", 4, Some(0));
        let one = b.lit(1, 4);
        let a_e = b.sig(a);
        let next_a = b.add(a_e, one);
        b.set_next(a, next_a);
        let w = b.add(a_e, one);
        let w_id = b.wire("w", w);
        let w_e = b.sig(w_id);
        b.set_next(r2, w_e);
        let mutant = b.build().unwrap();
        let dirty = ConeSet::diff(&base, &mutant).unwrap();
        let w_sig = base.signal_by_name("w").unwrap();
        let b_sig = base.signal_by_name("b").unwrap();
        // The wire changed, and the register reading it inherits the dirt.
        assert_eq!(dirty.wires, vec![w_sig]);
        assert_eq!(dirty.regs, vec![b_sig]);
        assert!(dirty.init_regs.is_empty());
        assert!(dirty.wire_dirty(w_sig));
        assert!(dirty.reg_dirty(b_sig));
        assert!(!dirty.reg_dirty(base.signal_by_name("a").unwrap()));
    }

    #[test]
    fn diff_init_only_change_is_separable() {
        let base = two_cone_design();
        let mut b = DesignBuilder::new("d");
        let a = b.reg("a", 4, Some(7));
        let r2 = b.reg("b", 4, Some(0));
        let one = b.lit(1, 4);
        let a_e = b.sig(a);
        let next_a = b.add(a_e, one);
        b.set_next(a, next_a);
        let w = b.add(a_e, a_e);
        let w_id = b.wire("w", w);
        let w_e = b.sig(w_id);
        b.set_next(r2, w_e);
        let mutant = b.build().unwrap();
        let dirty = ConeSet::diff(&base, &mutant).unwrap();
        assert!(dirty.wires.is_empty());
        assert!(dirty.regs.is_empty(), "next functions are intact");
        assert_eq!(dirty.init_regs, vec![base.signal_by_name("a").unwrap()]);
    }

    #[test]
    fn diff_rejects_incompatible_tables() {
        let base = two_cone_design();
        let mut b = DesignBuilder::new("d");
        let r = b.reg("a", 4, Some(0));
        let e = b.sig(r);
        b.set_next(r, e);
        let other = b.build().unwrap();
        assert!(ConeSet::diff(&base, &other).is_none());
    }

    #[test]
    fn identical_designs_diff_empty_and_all_is_everything() {
        let d = two_cone_design();
        let dirty = ConeSet::diff(&d, &d).unwrap();
        assert!(dirty.is_empty());
        let all = ConeSet::all(&d);
        assert_eq!(all.wires.len(), 1);
        assert_eq!(all.regs.len(), 2);
        assert_eq!(d.cones().invalidated(&all).len(), 2);
    }
}

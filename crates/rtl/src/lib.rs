//! A word-level RTL intermediate representation with a cycle-accurate
//! simulator, a Verilog emitter, and the Multi-V-scale processor design.
//!
//! The RTLCheck paper verifies SystemVerilog designs with the commercial
//! JasperGold property verifier. This crate provides the open substrate
//! that replaces the Verilog front end: a small synchronous IR
//! ([`Design`]) of registers, primary inputs, and combinational wires over
//! fixed-width words, with
//!
//! * a deterministic simulator ([`sim::Simulator`]) whose [`sim::State`] is
//!   compact and hashable — exactly what the explicit-state property
//!   verifier needs,
//! * a structural Verilog emitter ([`verilog::emit`]) so the modelled
//!   design can be inspected as the HDL a real JasperGold run would
//!   consume, and
//! * [`multi_vscale`] — the paper's evaluation platform: four three-stage
//!   in-order V-scale pipelines behind a single-ported memory arbiter, with
//!   both the **buggy** memory (the `wdata` single-entry store buffer that
//!   drops the first of two back-to-back stores, §7.1) and the **fixed**
//!   memory.
//!
//! # Example
//!
//! ```
//! use rtlcheck_rtl::{DesignBuilder, sim::Simulator};
//!
//! let mut b = DesignBuilder::new("counter");
//! let count = b.reg("count", 8, Some(0));
//! let one = b.lit(1, 8);
//! let count_e = b.sig(count);
//! let next = b.add(count_e, one);
//! b.set_next(count, next);
//! let design = b.build().unwrap();
//!
//! let sim = Simulator::new(&design);
//! let mut state = sim.initial_state().unwrap();
//! for _ in 0..5 {
//!     state = sim.step(&state, &[]);
//! }
//! assert_eq!(sim.peek(&state, &[], count), 5);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod builder;
mod design;
mod expr;

pub mod cone;
pub mod five_stage;
pub mod isa;
pub mod multi_vscale;
pub mod mutate;
pub mod region;
pub mod scaled;
pub mod sim;
pub mod tso;
pub mod vcd;
pub mod verilog;
pub mod waveform;

pub use builder::DesignBuilder;
pub use cone::{Cone, ConeAnalysis, ConeSet};
pub use design::{Design, DesignError, Signal, SignalId, SignalKind};
pub use expr::{BinOp, Expr, ExprId, UnOp};
pub use region::{ModuleRegion, RegionPartition, SupportIndex};

//! Two-phase construction of [`Design`]s.

use std::collections::HashMap;

use crate::design::{Design, DesignError, Signal, SignalId, SignalKind};
use crate::expr::{mask, BinOp, Expr, ExprId, UnOp};

/// Builds a [`Design`] incrementally.
///
/// Registers are declared first (so feedback through state is possible) and
/// given their next-state expression later with [`DesignBuilder::set_next`].
/// [`DesignBuilder::build`] validates widths, checks for combinational
/// loops, and computes the wire evaluation order.
///
/// # Example
///
/// ```
/// use rtlcheck_rtl::DesignBuilder;
///
/// let mut b = DesignBuilder::new("toggler");
/// let t = b.reg("t", 1, Some(0));
/// let not_t = b.not(t);
/// b.set_next(t, not_t);
/// let design = b.build()?;
/// assert_eq!(design.num_regs(), 1);
/// # Ok::<(), rtlcheck_rtl::DesignError>(())
/// ```
#[derive(Debug)]
pub struct DesignBuilder {
    name: String,
    signals: Vec<Signal>,
    exprs: Vec<Expr>,
    by_name: HashMap<String, SignalId>,
    num_inputs: usize,
    num_regs: usize,
    errors: Vec<DesignError>,
}

impl DesignBuilder {
    /// Starts a new design with the given module name.
    pub fn new(name: impl Into<String>) -> Self {
        DesignBuilder {
            name: name.into(),
            signals: Vec::new(),
            exprs: Vec::new(),
            by_name: HashMap::new(),
            num_inputs: 0,
            num_regs: 0,
            errors: Vec::new(),
        }
    }

    fn add_signal(&mut self, name: String, width: u8, kind: SignalKind) -> SignalId {
        if !(1..=64).contains(&width) {
            self.errors.push(DesignError::BadWidth(width));
        }
        let id = SignalId(self.signals.len());
        if self.by_name.insert(name.clone(), id).is_some() {
            self.errors.push(DesignError::DuplicateName(name.clone()));
        }
        self.signals.push(Signal { name, width, kind });
        id
    }

    /// Declares a primary input.
    pub fn input(&mut self, name: impl Into<String>, width: u8) -> SignalId {
        let index = self.num_inputs;
        self.num_inputs += 1;
        self.add_signal(name.into(), width, SignalKind::Input { index })
    }

    /// Declares a register. `init` is the reset value; `None` leaves the
    /// initial value unconstrained (to be pinned by verification
    /// assumptions). Assign its next-state expression later with
    /// [`DesignBuilder::set_next`].
    pub fn reg(&mut self, name: impl Into<String>, width: u8, init: Option<u64>) -> SignalId {
        let index = self.num_regs;
        self.num_regs += 1;
        // `next` is a placeholder until set_next; validated at build.
        self.add_signal(
            name.into(),
            width,
            SignalKind::Reg {
                index,
                init,
                next: ExprId(usize::MAX),
            },
        )
    }

    /// Sets a register's next-state expression.
    ///
    /// # Panics
    ///
    /// Panics if `reg` is not a register.
    pub fn set_next(&mut self, reg: SignalId, next: ExprId) {
        match &mut self.signals[reg.0].kind {
            SignalKind::Reg { next: slot, .. } => *slot = next,
            _ => panic!("set_next on non-register `{}`", self.signals[reg.0].name),
        }
    }

    /// Declares a named combinational wire driven by `expr`.
    pub fn wire(&mut self, name: impl Into<String>, expr: ExprId) -> SignalId {
        self.add_signal(name.into(), self.width_of(expr), SignalKind::Wire { expr })
    }

    fn push_expr(&mut self, e: Expr) -> ExprId {
        let id = ExprId(self.exprs.len());
        self.exprs.push(e);
        id
    }

    fn width_of(&self, e: ExprId) -> u8 {
        match self.exprs[e.0] {
            Expr::Const { width, .. } => width,
            Expr::Sig(s) => self.signals[s.0].width,
            Expr::Unary {
                op: UnOp::OrReduce, ..
            } => 1,
            Expr::Unary { op: UnOp::Not, arg } => self.width_of(arg),
            Expr::Binary { op, lhs, .. } => {
                if op.is_comparison() {
                    1
                } else {
                    self.width_of(lhs)
                }
            }
            Expr::Mux { then_, .. } => self.width_of(then_),
        }
    }

    /// A literal constant.
    pub fn lit(&mut self, value: u64, width: u8) -> ExprId {
        if !(1..=64).contains(&width) {
            self.errors.push(DesignError::BadWidth(width));
        } else if mask(value, width) != value {
            self.errors.push(DesignError::ConstTooWide(value, width));
        }
        self.push_expr(Expr::Const { value, width })
    }

    /// The current value of a signal.
    pub fn sig(&mut self, s: SignalId) -> ExprId {
        self.push_expr(Expr::Sig(s))
    }

    /// Bitwise complement.
    pub fn not(&mut self, s: SignalId) -> ExprId {
        let e = self.sig(s);
        self.not_e(e)
    }

    /// Bitwise complement of an expression.
    pub fn not_e(&mut self, e: ExprId) -> ExprId {
        self.push_expr(Expr::Unary {
            op: UnOp::Not,
            arg: e,
        })
    }

    /// 1-bit "is nonzero" reduction.
    pub fn or_reduce(&mut self, e: ExprId) -> ExprId {
        self.push_expr(Expr::Unary {
            op: UnOp::OrReduce,
            arg: e,
        })
    }

    fn bin(&mut self, op: BinOp, lhs: ExprId, rhs: ExprId) -> ExprId {
        self.push_expr(Expr::Binary { op, lhs, rhs })
    }

    /// `lhs & rhs`.
    pub fn and(&mut self, lhs: ExprId, rhs: ExprId) -> ExprId {
        self.bin(BinOp::And, lhs, rhs)
    }

    /// `lhs | rhs`.
    pub fn or(&mut self, lhs: ExprId, rhs: ExprId) -> ExprId {
        self.bin(BinOp::Or, lhs, rhs)
    }

    /// `lhs ^ rhs`.
    pub fn xor(&mut self, lhs: ExprId, rhs: ExprId) -> ExprId {
        self.bin(BinOp::Xor, lhs, rhs)
    }

    /// `lhs + rhs` (wrapping at the operand width).
    pub fn add(&mut self, lhs: ExprId, rhs: ExprId) -> ExprId {
        self.bin(BinOp::Add, lhs, rhs)
    }

    /// `lhs - rhs` (wrapping at the operand width).
    pub fn sub(&mut self, lhs: ExprId, rhs: ExprId) -> ExprId {
        self.bin(BinOp::Sub, lhs, rhs)
    }

    /// `lhs == rhs` (1 bit).
    pub fn eq(&mut self, lhs: ExprId, rhs: ExprId) -> ExprId {
        self.bin(BinOp::Eq, lhs, rhs)
    }

    /// `lhs != rhs` (1 bit).
    pub fn ne(&mut self, lhs: ExprId, rhs: ExprId) -> ExprId {
        self.bin(BinOp::Ne, lhs, rhs)
    }

    /// `lhs < rhs` unsigned (1 bit).
    pub fn lt(&mut self, lhs: ExprId, rhs: ExprId) -> ExprId {
        self.bin(BinOp::Lt, lhs, rhs)
    }

    /// `cond ? then_ : else_`.
    pub fn mux(&mut self, cond: ExprId, then_: ExprId, else_: ExprId) -> ExprId {
        self.push_expr(Expr::Mux { cond, then_, else_ })
    }

    /// Equality against a literal: `sig == value`.
    pub fn eq_lit(&mut self, s: SignalId, value: u64) -> ExprId {
        let width = self.signals[s.0].width;
        let se = self.sig(s);
        let ve = self.lit(value, width);
        self.eq(se, ve)
    }

    /// Finalizes the design.
    ///
    /// # Errors
    ///
    /// Returns the first [`DesignError`] found: accumulated construction
    /// errors, unassigned registers, width mismatches, or combinational
    /// loops.
    pub fn build(self) -> Result<Design, DesignError> {
        let DesignBuilder {
            name,
            signals,
            exprs,
            by_name,
            num_inputs,
            num_regs,
            errors,
        } = self;
        if let Some(e) = errors.into_iter().next() {
            return Err(e);
        }
        finalize(name, signals, exprs, by_name, num_inputs, num_regs)
    }
}

/// Validates signals + expression arena and assembles a [`Design`]: checks
/// register assignment, recomputes expression widths bottom-up, checks
/// signal/driver width agreement, and topologically orders the wires.
///
/// Shared by [`DesignBuilder::build`] and the mutation engine
/// ([`crate::mutate`]), which re-finalizes a design after editing its
/// expression arena so every mutant passes exactly the same validation as a
/// freshly built design.
pub(crate) fn finalize(
    name: String,
    signals: Vec<Signal>,
    exprs: Vec<Expr>,
    by_name: HashMap<String, SignalId>,
    num_inputs: usize,
    num_regs: usize,
) -> Result<Design, DesignError> {
    {
        for s in &signals {
            if let SignalKind::Reg { next, .. } = s.kind {
                if next.0 == usize::MAX {
                    return Err(DesignError::UnassignedReg(s.name.clone()));
                }
            }
        }

        // Compute expression widths bottom-up and check consistency.
        let mut widths = vec![0u8; exprs.len()];
        for (i, e) in exprs.iter().enumerate() {
            let w = match *e {
                Expr::Const { width, .. } => width,
                Expr::Sig(s) => signals[s.0].width,
                Expr::Unary { op, arg } => {
                    let aw = widths[arg.0];
                    match op {
                        UnOp::Not => aw,
                        UnOp::OrReduce => 1,
                    }
                }
                Expr::Binary { op, lhs, rhs } => {
                    let (lw, rw) = (widths[lhs.0], widths[rhs.0]);
                    if lw != rw {
                        return Err(DesignError::WidthMismatch {
                            expr: format!("e{i}"),
                            detail: format!("operands of {op:?} have widths {lw} and {rw}"),
                        });
                    }
                    if op.is_comparison() {
                        1
                    } else {
                        lw
                    }
                }
                Expr::Mux { cond, then_, else_ } => {
                    if widths[cond.0] != 1 {
                        return Err(DesignError::WidthMismatch {
                            expr: format!("e{i}"),
                            detail: format!("mux condition has width {}", widths[cond.0]),
                        });
                    }
                    if widths[then_.0] != widths[else_.0] {
                        return Err(DesignError::WidthMismatch {
                            expr: format!("e{i}"),
                            detail: format!(
                                "mux arms have widths {} and {}",
                                widths[then_.0], widths[else_.0]
                            ),
                        });
                    }
                    widths[then_.0]
                }
            };
            widths[i] = w;
        }

        // Check signal/driver width agreement.
        for s in &signals {
            let drive_width = match s.kind {
                SignalKind::Input { .. } => s.width,
                SignalKind::Reg { next, .. } => widths[next.0],
                SignalKind::Wire { expr } => widths[expr.0],
            };
            if drive_width != s.width {
                return Err(DesignError::WidthMismatch {
                    expr: s.name.clone(),
                    detail: format!("signal width {} but driver width {drive_width}", s.width),
                });
            }
        }

        // Topologically order the wires: DFS over wire→wire dependencies.
        let mut order: Vec<SignalId> = Vec::new();
        // 0 = unvisited, 1 = in progress, 2 = done
        let mut mark = vec![0u8; signals.len()];
        fn wire_deps(e: ExprId, exprs: &[Expr], out: &mut Vec<SignalId>) {
            match exprs[e.0] {
                Expr::Const { .. } => {}
                Expr::Sig(s) => out.push(s),
                Expr::Unary { arg, .. } => wire_deps(arg, exprs, out),
                Expr::Binary { lhs, rhs, .. } => {
                    wire_deps(lhs, exprs, out);
                    wire_deps(rhs, exprs, out);
                }
                Expr::Mux { cond, then_, else_ } => {
                    wire_deps(cond, exprs, out);
                    wire_deps(then_, exprs, out);
                    wire_deps(else_, exprs, out);
                }
            }
        }
        fn visit(
            id: SignalId,
            signals: &[Signal],
            exprs: &[Expr],
            mark: &mut [u8],
            order: &mut Vec<SignalId>,
        ) -> Result<(), DesignError> {
            match mark[id.0] {
                2 => return Ok(()),
                1 => return Err(DesignError::CombinationalLoop(signals[id.0].name.clone())),
                _ => {}
            }
            if let SignalKind::Wire { expr } = signals[id.0].kind {
                mark[id.0] = 1;
                let mut deps = Vec::new();
                wire_deps(expr, exprs, &mut deps);
                for d in deps {
                    visit(d, signals, exprs, mark, order)?;
                }
                mark[id.0] = 2;
                order.push(id);
            } else {
                mark[id.0] = 2;
            }
            Ok(())
        }
        for i in 0..signals.len() {
            visit(SignalId(i), &signals, &exprs, &mut mark, &mut order)?;
        }

        Ok(Design {
            name,
            signals,
            exprs,
            expr_widths: widths,
            wire_order: order,
            num_inputs,
            num_regs,
            by_name,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detects_duplicate_names() {
        let mut b = DesignBuilder::new("d");
        b.input("a", 1);
        b.input("a", 1);
        assert!(matches!(b.build(), Err(DesignError::DuplicateName(_))));
    }

    #[test]
    fn detects_unassigned_reg() {
        let mut b = DesignBuilder::new("d");
        b.reg("r", 1, Some(0));
        assert!(matches!(b.build(), Err(DesignError::UnassignedReg(_))));
    }

    #[test]
    fn detects_width_mismatch() {
        let mut b = DesignBuilder::new("d");
        let a = b.input("a", 2);
        let c = b.input("b", 3);
        let (ea, ec) = (b.sig(a), b.sig(c));
        let bad = b.add(ea, ec);
        b.wire("w", bad);
        assert!(matches!(b.build(), Err(DesignError::WidthMismatch { .. })));
    }

    #[test]
    fn detects_const_too_wide() {
        let mut b = DesignBuilder::new("d");
        let e = b.lit(4, 2);
        b.wire("w", e);
        assert!(matches!(b.build(), Err(DesignError::ConstTooWide(4, 2))));
    }

    #[test]
    fn detects_combinational_loop() {
        let mut b = DesignBuilder::new("d");
        // w depends on itself through a forward-declared wire: emulate by
        // building w from its own signal id.
        let placeholder = b.lit(0, 1);
        let w = b.wire("w", placeholder);
        let we = b.sig(w);
        // Overwrite the wire's expr through a second wire closing the loop.
        let x = b.wire("x", we);
        let xe = b.sig(x);
        // Rebuild w's driver to depend on x: not expressible through the
        // public API (wires are immutable once declared), so loop via regs
        // is impossible; instead check that a direct self-reference errors.
        let _ = xe;
        // Build a genuine loop: y = z, z = y.
        let mut b2 = DesignBuilder::new("d2");
        let fake = b2.lit(0, 1);
        let y = b2.wire("y", fake);
        let ye = b2.sig(y);
        let z = b2.wire("z", ye);
        let _ze = b2.sig(z);
        // y was already driven by a constant, so no loop exists here either;
        // the IR's immutability makes wire loops unconstructible through the
        // safe API, which is itself worth pinning down.
        assert!(b2.build().is_ok());
        assert!(b.build().is_ok());
    }

    #[test]
    fn mux_requires_one_bit_condition() {
        let mut b = DesignBuilder::new("d");
        let c = b.input("c", 2);
        let ce = b.sig(c);
        let t = b.lit(1, 4);
        let e = b.lit(0, 4);
        let m = b.mux(ce, t, e);
        b.wire("w", m);
        assert!(matches!(b.build(), Err(DesignError::WidthMismatch { .. })));
    }

    #[test]
    fn rejects_zero_width() {
        let mut b = DesignBuilder::new("d");
        b.input("a", 0);
        assert!(matches!(b.build(), Err(DesignError::BadWidth(0))));
    }

    #[test]
    fn set_next_panics_on_wire() {
        let mut b = DesignBuilder::new("d");
        let e = b.lit(0, 1);
        let w = b.wire("w", e);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            b.set_next(w, e);
        }));
        assert!(r.is_err());
    }
}

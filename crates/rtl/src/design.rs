//! The finalized synchronous design.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use crate::expr::{Expr, ExprId};

/// Index of a signal in a design.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SignalId(pub(crate) usize);

impl fmt::Display for SignalId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// What drives a signal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SignalKind {
    /// A primary input, set by the environment each cycle.
    Input {
        /// Dense index among the design's inputs.
        index: usize,
    },
    /// A state register, updated at each rising clock edge.
    Reg {
        /// Dense index among the design's registers.
        index: usize,
        /// Reset value; `None` means the initial value is unconstrained
        /// (free), to be pinned by verification assumptions.
        init: Option<u64>,
        /// Next-state expression.
        next: ExprId,
    },
    /// A combinational wire.
    Wire {
        /// Driving expression.
        expr: ExprId,
    },
}

/// A named signal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Signal {
    /// Hierarchical name, e.g. `core0_PC_WB`.
    pub name: String,
    /// Width in bits (1..=64).
    pub width: u8,
    /// Driver.
    pub kind: SignalKind,
}

/// An error detected while finalizing a design.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DesignError {
    /// Two signals share a name.
    DuplicateName(String),
    /// A register was declared but never given a next-state expression.
    UnassignedReg(String),
    /// An expression's operand widths are inconsistent.
    WidthMismatch {
        /// Offending expression.
        expr: String,
        /// Explanation.
        detail: String,
    },
    /// A constant does not fit its declared width.
    ConstTooWide(u64, u8),
    /// Combinational wires form a cycle.
    CombinationalLoop(String),
    /// A width outside 1..=64 was requested.
    BadWidth(u8),
}

impl fmt::Display for DesignError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DesignError::DuplicateName(n) => write!(f, "duplicate signal name `{n}`"),
            DesignError::UnassignedReg(n) => {
                write!(f, "register `{n}` has no next-state expression")
            }
            DesignError::WidthMismatch { expr, detail } => {
                write!(f, "width mismatch in {expr}: {detail}")
            }
            DesignError::ConstTooWide(v, w) => {
                write!(f, "constant {v} does not fit in {w} bits")
            }
            DesignError::CombinationalLoop(n) => {
                write!(f, "combinational loop through wire `{n}`")
            }
            DesignError::BadWidth(w) => write!(f, "width {w} outside 1..=64"),
        }
    }
}

impl Error for DesignError {}

/// A finalized synchronous design: signals, an expression arena, and a
/// topological evaluation order for the combinational wires.
///
/// Built via [`crate::DesignBuilder`]; immutable afterwards.
#[derive(Debug, Clone)]
pub struct Design {
    pub(crate) name: String,
    pub(crate) signals: Vec<Signal>,
    pub(crate) exprs: Vec<Expr>,
    pub(crate) expr_widths: Vec<u8>,
    /// Wire signals in dependency order (inputs of each wire precede it).
    pub(crate) wire_order: Vec<SignalId>,
    pub(crate) num_inputs: usize,
    pub(crate) num_regs: usize,
    pub(crate) by_name: HashMap<String, SignalId>,
}

impl Design {
    /// The design's module name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of primary inputs.
    pub fn num_inputs(&self) -> usize {
        self.num_inputs
    }

    /// Number of registers (the length of a [`crate::sim::State`]).
    pub fn num_regs(&self) -> usize {
        self.num_regs
    }

    /// All signals.
    pub fn signals(&self) -> impl Iterator<Item = (SignalId, &Signal)> {
        self.signals
            .iter()
            .enumerate()
            .map(|(i, s)| (SignalId(i), s))
    }

    /// Looks up a signal.
    pub fn signal(&self, id: SignalId) -> &Signal {
        &self.signals[id.0]
    }

    /// Looks up a signal by name.
    pub fn signal_by_name(&self, name: &str) -> Option<SignalId> {
        self.by_name.get(name).copied()
    }

    /// Looks up an expression node.
    pub fn expr(&self, id: ExprId) -> Expr {
        self.exprs[id.0]
    }

    /// The width of an expression.
    pub fn expr_width(&self, id: ExprId) -> u8 {
        self.expr_widths[id.0]
    }

    /// The combinational wires in dependency order (each wire's inputs
    /// precede it).
    pub fn wire_order(&self) -> &[SignalId] {
        &self.wire_order
    }

    /// Registers with unconstrained (free) initial values — these must be
    /// pinned by first-cycle verification assumptions.
    pub fn free_init_regs(&self) -> Vec<SignalId> {
        self.signals()
            .filter_map(|(id, s)| match s.kind {
                SignalKind::Reg { init: None, .. } => Some(id),
                _ => None,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use crate::DesignBuilder;

    #[test]
    fn lookup_by_name_and_counts() {
        let mut b = DesignBuilder::new("d");
        let i = b.input("in", 4);
        let r = b.reg("r", 4, Some(3));
        let e = b.sig(i);
        b.set_next(r, e);
        let w = b.sig(r);
        b.wire("w", w);
        let d = b.build().unwrap();
        assert_eq!(d.name(), "d");
        assert_eq!(d.num_inputs(), 1);
        assert_eq!(d.num_regs(), 1);
        assert_eq!(d.signal_by_name("w").map(|s| d.signal(s).width), Some(4));
        assert!(d.signal_by_name("nope").is_none());
        assert!(d.free_init_regs().is_empty());
    }

    #[test]
    fn free_init_regs_reported() {
        let mut b = DesignBuilder::new("d");
        let r = b.reg("mem0", 8, None);
        let e = b.sig(r);
        b.set_next(r, e);
        let d = b.build().unwrap();
        assert_eq!(d.free_init_regs().len(), 1);
    }
}

//! Module-region grouping over the fan-in cone partition.
//!
//! The composed verification backend (RealityCheck-style modular
//! decomposition) needs the design split into *module regions*: maximal
//! groups of registers whose next-state functions read only registers
//! inside the same group, plus primary inputs. Inputs never link regions —
//! they are the *cut signals* at a region's interface, the signals whose
//! value sequences the interface spec must describe.
//!
//! The grouping is a union-find over the existing [`crate::cone`]
//! partition: register `a` and register `b` land in the same region
//! whenever `a`'s fan-in cone reads `b` (cone supports already expand
//! combinational wires through to their register and input leaves, so no
//! separate expression walk is needed). The result is deterministic:
//! regions are ordered by their minimum register [`SignalId`], and the
//! registers and cuts inside each region are sorted by signal id.
//!
//! The verifier may need a *coarser* partition than the structural one —
//! e.g. when an assumption monitor or a property atom spans two regions,
//! those regions must be verified together. [`RegionPartition::merged`]
//! applies such extra links and re-derives the groups, preserving the
//! deterministic ordering.

use std::collections::BTreeSet;

use crate::design::{Design, SignalId, SignalKind};
use crate::expr::{Expr, ExprId};

/// One module region: a set of registers closed under next-state register
/// reads, plus the input cut signals at its interface.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModuleRegion {
    /// The region's registers, sorted by signal id.
    pub regs: Vec<SignalId>,
    /// Primary inputs read by the region's cones (the interface cut
    /// signals), sorted by signal id.
    pub cuts: Vec<SignalId>,
}

/// A deterministic partition of a design's registers into module regions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegionPartition {
    regions: Vec<ModuleRegion>,
    /// Region index per dense register index.
    by_reg: Vec<usize>,
    /// Register signal id per dense register index (cone roots).
    roots: Vec<SignalId>,
}

/// Plain union-find over dense indices.
struct UnionFind {
    parent: Vec<usize>,
}

impl UnionFind {
    fn new(n: usize) -> UnionFind {
        UnionFind {
            parent: (0..n).collect(),
        }
    }

    fn find(&mut self, i: usize) -> usize {
        let mut root = i;
        while self.parent[root] != root {
            root = self.parent[root];
        }
        let mut cur = i;
        while self.parent[cur] != root {
            let next = self.parent[cur];
            self.parent[cur] = root;
            cur = next;
        }
        root
    }

    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            // Deterministic: smaller dense index wins as representative.
            let (lo, hi) = if ra < rb { (ra, rb) } else { (rb, ra) };
            self.parent[hi] = lo;
        }
    }
}

impl RegionPartition {
    /// Computes the structural region partition of a design.
    ///
    /// Designs with no registers yield an empty partition (no regions).
    pub fn of(design: &Design) -> RegionPartition {
        let cones = design.cones();
        let roots: Vec<SignalId> = cones.cones().iter().map(|c| c.root).collect();
        // Dense register index per signal ordinal, for support lookups.
        let mut dense_of: Vec<Option<usize>> = vec![None; design.signals().count()];
        for (dense, &root) in roots.iter().enumerate() {
            dense_of[sig_ordinal(root)] = Some(dense);
        }
        let mut uf = UnionFind::new(roots.len());
        let mut region_inputs: Vec<Vec<SignalId>> = vec![Vec::new(); roots.len()];
        for (dense, cone) in cones.cones().iter().enumerate() {
            for &sig in &cone.support {
                match design.signal(sig).kind {
                    SignalKind::Reg { .. } => {
                        let other = dense_of[sig_ordinal(sig)]
                            .expect("cone support register has a dense index");
                        uf.union(dense, other);
                    }
                    SignalKind::Input { .. } => region_inputs[dense].push(sig),
                    SignalKind::Wire { .. } => {}
                }
            }
        }
        Self::from_union(&roots, &mut uf, &region_inputs)
    }

    /// Re-derives the partition after applying extra links between region
    /// indices (e.g. "regions 0 and 2 must be verified together because an
    /// assumption monitor spans them"). Indices out of range are ignored.
    pub fn merged(&self, links: &[(usize, usize)]) -> RegionPartition {
        let mut uf = UnionFind::new(self.regions.len());
        for &(a, b) in links {
            if a < self.regions.len() && b < self.regions.len() {
                uf.union(a, b);
            }
        }
        // Group old regions by their merged root, keyed (for determinism)
        // by the minimum register id across the merged group.
        let mut groups: Vec<(SignalId, Vec<usize>)> = Vec::new();
        let mut root_slot: Vec<Option<usize>> = vec![None; self.regions.len()];
        for i in 0..self.regions.len() {
            let root = uf.find(i);
            let min_reg = self.regions[i].regs[0];
            match root_slot[root] {
                Some(slot) => {
                    let g = &mut groups[slot];
                    if min_reg < g.0 {
                        g.0 = min_reg;
                    }
                    g.1.push(i);
                }
                None => {
                    root_slot[root] = Some(groups.len());
                    groups.push((min_reg, vec![i]));
                }
            }
        }
        groups.sort_by_key(|&(min_reg, _)| min_reg);
        let mut regions = Vec::with_capacity(groups.len());
        let mut by_reg = vec![0usize; self.by_reg.len()];
        for (new_idx, (_, members)) in groups.iter().enumerate() {
            let mut regs = Vec::new();
            let mut cuts = BTreeSet::new();
            for &m in members {
                regs.extend_from_slice(&self.regions[m].regs);
                cuts.extend(self.regions[m].cuts.iter().copied());
            }
            regs.sort();
            for (dense, slot) in self.by_reg.iter().zip(by_reg.iter_mut()) {
                if members.contains(dense) {
                    *slot = new_idx;
                }
            }
            regions.push(ModuleRegion {
                regs,
                cuts: cuts.into_iter().collect(),
            });
        }
        RegionPartition {
            regions,
            by_reg,
            roots: self.roots.clone(),
        }
    }

    /// The regions, ordered by minimum register signal id.
    pub fn regions(&self) -> &[ModuleRegion] {
        &self.regions
    }

    /// Number of regions.
    pub fn len(&self) -> usize {
        self.regions.len()
    }

    /// Whether the design had no registers.
    pub fn is_empty(&self) -> bool {
        self.regions.is_empty()
    }

    /// The region containing a register, or `None` for non-register
    /// signals.
    pub fn region_of(&self, sig: SignalId) -> Option<usize> {
        self.roots
            .iter()
            .position(|&r| r == sig)
            .map(|dense| self.by_reg[dense])
    }

    fn from_union(
        roots: &[SignalId],
        uf: &mut UnionFind,
        region_inputs: &[Vec<SignalId>],
    ) -> RegionPartition {
        let mut groups: Vec<(SignalId, Vec<usize>)> = Vec::new();
        let mut root_slot: Vec<Option<usize>> = vec![None; roots.len()];
        for (dense, &reg) in roots.iter().enumerate() {
            let root = uf.find(dense);
            match root_slot[root] {
                Some(slot) => {
                    let g = &mut groups[slot];
                    if reg < g.0 {
                        g.0 = reg;
                    }
                    g.1.push(dense);
                }
                None => {
                    root_slot[root] = Some(groups.len());
                    groups.push((reg, vec![dense]));
                }
            }
        }
        groups.sort_by_key(|&(min_reg, _)| min_reg);
        let mut regions = Vec::with_capacity(groups.len());
        let mut by_reg = vec![0usize; roots.len()];
        for (new_idx, (_, members)) in groups.iter().enumerate() {
            let mut regs: Vec<SignalId> = members.iter().map(|&d| roots[d]).collect();
            regs.sort();
            let mut cuts = BTreeSet::new();
            for &m in members {
                by_reg[m] = new_idx;
                cuts.extend(region_inputs[m].iter().copied());
            }
            regions.push(ModuleRegion {
                regs,
                cuts: cuts.into_iter().collect(),
            });
        }
        RegionPartition {
            regions,
            by_reg,
            roots: roots.to_vec(),
        }
    }
}

fn sig_ordinal(sig: SignalId) -> usize {
    sig.0
}

/// Register/input *leaf supports* per signal: for every signal, the set of
/// registers and primary inputs its current-cycle value reads, with
/// combinational wires expanded through. Registers and inputs support
/// themselves; a constant-driven wire has an empty support.
///
/// The composed verifier uses this to place each property atom and each
/// assumption monitor into the module region(s) its signals read — an atom
/// whose leaves sit in one region is region-local, one reading only inputs
/// is interface-global, and one spanning two regions forces those regions
/// to be merged.
#[derive(Debug, Clone)]
pub struct SupportIndex {
    leaves: Vec<Vec<SignalId>>,
}

impl SupportIndex {
    /// Computes the leaf supports of every signal in `design`.
    pub fn of(design: &Design) -> SupportIndex {
        let n = design.signals().count();
        let mut leaves: Vec<Vec<SignalId>> = vec![Vec::new(); n];
        for (id, s) in design.signals() {
            match s.kind {
                SignalKind::Input { .. } | SignalKind::Reg { .. } => leaves[id.0] = vec![id],
                SignalKind::Wire { .. } => {}
            }
        }
        // Wires in dependency order: each wire only unions finished sets.
        for &w in design.wire_order() {
            let SignalKind::Wire { expr } = design.signal(w).kind else {
                unreachable!("wire_order contains only wires");
            };
            let mut set = BTreeSet::new();
            let mut visited = vec![false; expr.0 + 1];
            collect_leaves(design, expr, &leaves, &mut set, &mut visited);
            leaves[w.0] = set.into_iter().collect();
        }
        SupportIndex { leaves }
    }

    /// The register/input leaves of a signal, sorted by signal id.
    pub fn leaves(&self, sig: SignalId) -> &[SignalId] {
        &self.leaves[sig.0]
    }
}

fn collect_leaves(
    design: &Design,
    e: ExprId,
    leaves: &[Vec<SignalId>],
    set: &mut BTreeSet<SignalId>,
    visited: &mut Vec<bool>,
) {
    if e.0 >= visited.len() {
        visited.resize(e.0 + 1, false);
    }
    if visited[e.0] {
        return;
    }
    visited[e.0] = true;
    match design.expr(e) {
        Expr::Const { .. } => {}
        Expr::Sig(s) => match design.signal(s).kind {
            SignalKind::Wire { .. } => set.extend(leaves[s.0].iter().copied()),
            _ => {
                set.insert(s);
            }
        },
        Expr::Unary { arg, .. } => collect_leaves(design, arg, leaves, set, visited),
        Expr::Binary { lhs, rhs, .. } => {
            collect_leaves(design, lhs, leaves, set, visited);
            collect_leaves(design, rhs, leaves, set, visited);
        }
        Expr::Mux { cond, then_, else_ } => {
            collect_leaves(design, cond, leaves, set, visited);
            collect_leaves(design, then_, leaves, set, visited);
            collect_leaves(design, else_, leaves, set, visited);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DesignBuilder;

    /// Two independent counter lanes plus one pair of coupled registers.
    fn lanes_design() -> Design {
        let mut b = DesignBuilder::new("lanes");
        let op = b.input("op", 2);
        let op_e = b.sig(op);
        // Lane 0: reads only itself and the input.
        let l0 = b.reg("l0", 4, Some(0));
        let l0_e = b.sig(l0);
        let one = b.lit(1, 4);
        let next0 = b.add(l0_e, one);
        b.set_next(l0, next0);
        // Lane 1: input-only next function.
        let l1 = b.reg("l1", 2, Some(0));
        b.set_next(l1, op_e);
        // Coupled pair: x reads y through a wire, y reads x.
        let x = b.reg("x", 4, Some(0));
        let y = b.reg("y", 4, Some(0));
        let y_e = b.sig(y);
        let w = b.wire("w", y_e);
        let w_e = b.sig(w);
        b.set_next(x, w_e);
        let x_e = b.sig(x);
        b.set_next(y, x_e);
        b.build().unwrap()
    }

    #[test]
    fn structural_partition_groups_coupled_regs() {
        let d = lanes_design();
        let p = RegionPartition::of(&d);
        assert_eq!(p.len(), 3, "l0 | l1 | (x, y)");
        let l0 = d.signal_by_name("l0").unwrap();
        let l1 = d.signal_by_name("l1").unwrap();
        let x = d.signal_by_name("x").unwrap();
        let y = d.signal_by_name("y").unwrap();
        let rx = p.region_of(x).unwrap();
        assert_eq!(p.region_of(y), Some(rx), "wire-coupled regs share a region");
        assert_ne!(p.region_of(l0), Some(rx));
        assert_ne!(p.region_of(l0), p.region_of(l1));
        // Regions are ordered by minimum register id, regs sorted within.
        assert_eq!(p.regions()[p.region_of(x).unwrap()].regs, vec![x, y]);
        assert_eq!(p.regions()[p.region_of(l0).unwrap()].regs, vec![l0]);
    }

    #[test]
    fn inputs_are_cuts_not_links() {
        let d = lanes_design();
        let p = RegionPartition::of(&d);
        let op = d.signal_by_name("op").unwrap();
        let l1 = d.signal_by_name("l1").unwrap();
        let r = &p.regions()[p.region_of(l1).unwrap()];
        assert_eq!(r.cuts, vec![op], "the input is the region's cut signal");
        // l0 reads no input: no cuts.
        let l0 = d.signal_by_name("l0").unwrap();
        assert!(p.regions()[p.region_of(l0).unwrap()].cuts.is_empty());
        assert_eq!(p.region_of(op), None, "inputs belong to no region");
    }

    #[test]
    fn merged_coalesces_and_keeps_ordering() {
        let d = lanes_design();
        let p = RegionPartition::of(&d);
        let l0 = d.signal_by_name("l0").unwrap();
        let l1 = d.signal_by_name("l1").unwrap();
        let a = p.region_of(l0).unwrap();
        let b = p.region_of(l1).unwrap();
        let m = p.merged(&[(a, b)]);
        assert_eq!(m.len(), 2);
        assert_eq!(m.region_of(l0), m.region_of(l1));
        let merged_region = &m.regions()[m.region_of(l0).unwrap()];
        assert_eq!(merged_region.regs, vec![l0, l1]);
        let op = d.signal_by_name("op").unwrap();
        assert_eq!(merged_region.cuts, vec![op]);
        // Out-of-range links are ignored; empty links are identity.
        assert_eq!(p.merged(&[]), p.clone());
        assert_eq!(p.merged(&[(0, 99)]).len(), p.len());
    }

    #[test]
    fn support_index_expands_wires_to_leaves() {
        let d = lanes_design();
        let idx = SupportIndex::of(&d);
        let op = d.signal_by_name("op").unwrap();
        let y = d.signal_by_name("y").unwrap();
        let w = d.signal_by_name("w").unwrap();
        assert_eq!(idx.leaves(op), &[op], "inputs support themselves");
        assert_eq!(idx.leaves(y), &[y], "registers support themselves");
        assert_eq!(idx.leaves(w), &[y], "the wire expands to its register");
    }

    #[test]
    fn registerless_design_is_empty() {
        let mut b = DesignBuilder::new("comb");
        let i = b.input("i", 1);
        let e = b.sig(i);
        b.wire("w", e);
        let d = b.build().unwrap();
        let p = RegionPartition::of(&d);
        assert!(p.is_empty());
        assert_eq!(p.len(), 0);
    }

    #[test]
    fn merged_everything_is_one_region() {
        let d = lanes_design();
        let p = RegionPartition::of(&d);
        let links: Vec<(usize, usize)> = (1..p.len()).map(|i| (0, i)).collect();
        let m = p.merged(&links);
        assert_eq!(m.len(), 1);
        assert_eq!(m.regions()[0].regs.len(), d.num_regs());
    }
}

//! Combinational expression nodes.

use std::fmt;

use crate::design::SignalId;

/// Index of an expression node in a design's expression arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ExprId(pub(crate) usize);

impl fmt::Display for ExprId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// Unary combinational operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// Bitwise complement (masked to the operand width).
    Not,
    /// Reduction: 1 iff the operand is nonzero (yields a 1-bit value).
    OrReduce,
}

/// Binary combinational operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// Bitwise and. Operand widths must match.
    And,
    /// Bitwise or. Operand widths must match.
    Or,
    /// Bitwise xor. Operand widths must match.
    Xor,
    /// Wrapping addition (masked to the operand width).
    Add,
    /// Wrapping subtraction (masked to the operand width).
    Sub,
    /// Equality; yields a 1-bit value.
    Eq,
    /// Inequality; yields a 1-bit value.
    Ne,
    /// Unsigned less-than; yields a 1-bit value.
    Lt,
}

impl BinOp {
    /// Whether the operator yields a 1-bit (comparison) result.
    pub fn is_comparison(self) -> bool {
        matches!(self, BinOp::Eq | BinOp::Ne | BinOp::Lt)
    }

    /// The Verilog operator token.
    pub fn verilog_token(self) -> &'static str {
        match self {
            BinOp::And => "&",
            BinOp::Or => "|",
            BinOp::Xor => "^",
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Eq => "==",
            BinOp::Ne => "!=",
            BinOp::Lt => "<",
        }
    }
}

/// A combinational expression node.
///
/// Expressions form a DAG in the owning design's arena; widths are
/// validated at [`crate::DesignBuilder::build`] time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Expr {
    /// A literal constant of the given width.
    Const {
        /// The value (must fit in `width` bits).
        value: u64,
        /// Width in bits (1..=64).
        width: u8,
    },
    /// The current value of a signal (input, register, or wire).
    Sig(SignalId),
    /// A unary operation.
    Unary {
        /// Operator.
        op: UnOp,
        /// Operand.
        arg: ExprId,
    },
    /// A binary operation.
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: ExprId,
        /// Right operand.
        rhs: ExprId,
    },
    /// A 2:1 multiplexer: `cond ? then_ : else_`. `cond` must be 1 bit wide
    /// and the arms must have equal width.
    Mux {
        /// 1-bit select.
        cond: ExprId,
        /// Value when `cond` is 1.
        then_: ExprId,
        /// Value when `cond` is 0.
        else_: ExprId,
    },
}

/// Masks `value` to `width` bits.
pub(crate) fn mask(value: u64, width: u8) -> u64 {
    debug_assert!((1..=64).contains(&width));
    if width == 64 {
        value
    } else {
        value & ((1u64 << width) - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mask_truncates() {
        assert_eq!(mask(0xFF, 4), 0xF);
        assert_eq!(mask(u64::MAX, 64), u64::MAX);
        assert_eq!(mask(2, 1), 0);
    }

    #[test]
    fn comparison_classification() {
        assert!(BinOp::Eq.is_comparison());
        assert!(BinOp::Lt.is_comparison());
        assert!(!BinOp::Add.is_comparison());
    }

    #[test]
    fn verilog_tokens() {
        assert_eq!(BinOp::Eq.verilog_token(), "==");
        assert_eq!(BinOp::Xor.verilog_token(), "^");
    }
}

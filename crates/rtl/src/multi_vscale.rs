//! The Multi-V-scale processor design (paper §5).
//!
//! Four V-scale pipelines — three stages: Fetch (IF), Decode-Execute (DX),
//! Writeback (WB) — share a single-ported data memory through an arbiter
//! that grants at most one core per cycle. The grant is a top-level input,
//! so a property verifier explores *every* switching pattern (§5.2). The
//! memory is pipelined: the arbiter can accept a new DX request while the
//! previous instruction is in WB receiving or providing data (Figure 11).
//!
//! Two memory implementations are provided:
//!
//! * [`MemoryImpl::Buggy`] — faithful to the V-scale bug RTLCheck found
//!   (§7.1, Figure 12): stores clock their data into a single-entry
//!   `wdata` buffer one cycle after WB, and the buffer is pushed to the
//!   memory array only when *another* store initiates a transaction. If two
//!   stores arrive in successive cycles the push happens before `wdata` has
//!   captured the first store's data, so the first store is dropped
//!   (replaced by stale data). Loads whose address matches the pending
//!   buffer are bypassed from it.
//! * [`MemoryImpl::Fixed`] — the paper's fix: a store's data is clocked
//!   directly into the memory array one cycle after its WB stage, and loads
//!   combinationally read the array during WB.
//!
//! Data-memory words have *free* initial values, pinned by the generated
//! memory-initialisation assumptions exactly as in the paper (§4.1).

use rtlcheck_litmus::LitmusTest;

use crate::builder::DesignBuilder;
use crate::design::{Design, SignalId};
use crate::isa::{self, kind, EncInstr, BUBBLE_PC, PC_STEP};

/// Number of cores in the Multi-V-scale design.
pub const NUM_CORES: usize = 4;

/// Width of the data-memory word-address fields.
const ADDR_WIDTH: u8 = 8;
/// Width of data values.
const DATA_WIDTH: u8 = 32;
/// Width of the PC.
const PC_WIDTH: u8 = 32;
/// Width of the pipeline kind fields.
const KIND_WIDTH: u8 = 3;
/// Width of the arbiter grant input / core indices.
const GRANT_WIDTH: u8 = 2;

/// Which data-memory implementation to instantiate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemoryImpl {
    /// The original V-scale memory with the store-dropping bug (§7.1).
    Buggy,
    /// The corrected memory (§7.1's fix).
    Fixed,
    /// The Total Store Order variant: per-core single-entry store buffers
    /// between Writeback and memory (see [`crate::tso`]).
    Tso,
}

/// Signal handles for one core's pipeline.
#[derive(Debug, Clone, Copy)]
pub struct CoreSignals {
    /// Fetch-stage PC register.
    pub pc_if: SignalId,
    /// Decode-Execute-stage PC register ([`BUBBLE_PC`] for bubbles).
    pub pc_dx: SignalId,
    /// Writeback-stage PC register ([`BUBBLE_PC`] for bubbles).
    pub pc_wb: SignalId,
    /// DX-stage instruction kind.
    pub kind_dx: SignalId,
    /// WB-stage instruction kind.
    pub kind_wb: SignalId,
    /// DX-stage memory word address.
    pub addr_dx: SignalId,
    /// WB-stage memory word address.
    pub addr_wb: SignalId,
    /// WB-stage store data (drives the memory write bus).
    pub store_data_wb: SignalId,
    /// WB-stage load result (combinational).
    pub load_data_wb: SignalId,
    /// Whether the Fetch stage is stalled (holds while DX is stalled, as in
    /// the V-scale pipeline).
    pub stall_if: SignalId,
    /// Whether the DX stage is stalled waiting for the arbiter.
    pub stall_dx: SignalId,
    /// Whether the WB stage is stalled (constant 0 in V-scale: the memory's
    /// ready signal is hard-coded high — part of the §7.1 bug story).
    pub stall_wb: SignalId,
    /// Set once the core's halt instruction reaches WB.
    pub halted: SignalId,
}

/// Per-core store-buffer signals of the TSO variant (see [`crate::tso`]).
#[derive(Debug, Clone, Copy)]
pub struct TsoCoreSignals {
    /// Whether the core's single-entry store buffer holds a store.
    pub sbuf_valid: SignalId,
    /// Buffered store's word address.
    pub sbuf_addr: SignalId,
    /// Buffered store's data.
    pub sbuf_data: SignalId,
    /// Buffered store's PC (identifies which instruction drains).
    pub sbuf_pc: SignalId,
    /// High exactly in the cycle the buffer drains to memory: the store's
    /// `Memory` stage event.
    pub drain: SignalId,
}

/// The built Multi-V-scale design plus handles to its architecturally
/// meaningful signals.
#[derive(Debug, Clone)]
pub struct MultiVscale {
    /// The finalized design.
    pub design: Design,
    /// Which memory implementation was instantiated.
    pub memory_impl: MemoryImpl,
    /// Arbiter grant input (2 bits: the core granted memory this cycle).
    pub grant: SignalId,
    /// The `first` register: 1 exactly in the first post-reset cycle
    /// (used by generated assumptions/assertions, §4.1/§4.4).
    pub first: SignalId,
    /// Data-memory word registers (free initial values), indexed by litmus
    /// location.
    pub mem: Vec<SignalId>,
    /// Constant wires carrying each core's packed program, indexed
    /// `[core][slot]` (referenced by instruction-initialisation
    /// assumptions).
    pub imem: Vec<Vec<SignalId>>,
    /// Per-core pipeline signals.
    pub cores: Vec<CoreSignals>,
    /// Per-core store-buffer signals (`Some` only for [`MemoryImpl::Tso`]).
    pub tso: Option<Vec<TsoCoreSignals>>,
    /// The encoded programs, indexed `[core][slot]`.
    pub programs: Vec<Vec<EncInstr>>,
}

impl MultiVscale {
    /// Builds the Multi-V-scale design loaded with `test`'s programs.
    ///
    /// The data memory has one word per litmus location. Cores beyond the
    /// test's threads run an immediate halt.
    ///
    /// # Panics
    ///
    /// Panics if the test needs more than [`NUM_CORES`] cores or a thread
    /// exceeds the per-core PC window (see [`isa::encode_programs`]).
    pub fn build(test: &LitmusTest, memory_impl: MemoryImpl) -> MultiVscale {
        let programs = isa::encode_programs(test, NUM_CORES);
        let num_words = test.num_locations().max(1);
        Self::build_raw(programs, num_words, memory_impl)
    }

    /// Builds the design from raw encoded programs and a word count.
    pub fn build_raw(
        programs: Vec<Vec<EncInstr>>,
        num_words: usize,
        memory_impl: MemoryImpl,
    ) -> MultiVscale {
        let mut b = DesignBuilder::new(match memory_impl {
            MemoryImpl::Buggy => "multi_vscale_buggy",
            MemoryImpl::Fixed => "multi_vscale_fixed",
            MemoryImpl::Tso => return crate::tso::build_raw(programs, num_words),
        });

        let grant = b.input("arbiter_grant", GRANT_WIDTH);

        // `first`: 1 in the first post-reset cycle, 0 afterwards.
        let first = b.reg("first", 1, Some(1));
        let zero1 = b.lit(0, 1);
        b.set_next(first, zero1);

        // Data memory words, free-initialised (pinned by assumptions).
        let mem: Vec<SignalId> = (0..num_words)
            .map(|w| b.reg(format!("mem_{w}"), DATA_WIDTH, None))
            .collect();

        // ---- Per-core pipeline registers ----
        struct CoreRegs {
            pc_if: SignalId,
            pc_dx: SignalId,
            pc_wb: SignalId,
            kind_dx: SignalId,
            kind_wb: SignalId,
            addr_dx: SignalId,
            addr_wb: SignalId,
            data_dx: SignalId,
            store_data_wb: SignalId,
            halted: SignalId,
        }
        let regs: Vec<CoreRegs> = (0..NUM_CORES)
            .map(|c| CoreRegs {
                pc_if: b.reg(format!("core{c}_PC_IF"), PC_WIDTH, Some(isa::pc_base(c))),
                pc_dx: b.reg(format!("core{c}_PC_DX"), PC_WIDTH, Some(BUBBLE_PC)),
                pc_wb: b.reg(format!("core{c}_PC_WB"), PC_WIDTH, Some(BUBBLE_PC)),
                kind_dx: b.reg(format!("core{c}_kind_DX"), KIND_WIDTH, Some(kind::BUBBLE)),
                kind_wb: b.reg(format!("core{c}_kind_WB"), KIND_WIDTH, Some(kind::BUBBLE)),
                addr_dx: b.reg(format!("core{c}_addr_DX"), ADDR_WIDTH, Some(0)),
                addr_wb: b.reg(format!("core{c}_addr_WB"), ADDR_WIDTH, Some(0)),
                data_dx: b.reg(format!("core{c}_data_DX"), DATA_WIDTH, Some(0)),
                store_data_wb: b.reg(format!("core{c}_store_data_WB"), DATA_WIDTH, Some(0)),
                halted: b.reg(format!("core{c}_halted"), 1, Some(0)),
            })
            .collect();

        // Memory/arbiter bookkeeping registers.
        let prev_core = b.reg("arbiter_prev_core", GRANT_WIDTH, Some(0));
        let prev_was_store = b.reg("mem_prev_was_store", 1, Some(0));
        let prev_addr = b.reg("mem_prev_addr", ADDR_WIDTH, Some(0));
        // Buggy-memory store buffer.
        let (wdata, waddr, wpending) = match memory_impl {
            MemoryImpl::Buggy => (
                Some(b.reg("mem_wdata", DATA_WIDTH, Some(0))),
                Some(b.reg("mem_waddr", ADDR_WIDTH, Some(0))),
                Some(b.reg("mem_wpending", 1, Some(0))),
            ),
            MemoryImpl::Fixed | MemoryImpl::Tso => (None, None, None),
        };

        // ---- Instruction ROMs ----
        // Constant wires carrying the packed program, plus per-core decode
        // of the instruction at PC_IF.
        let mut imem: Vec<Vec<SignalId>> = Vec::with_capacity(NUM_CORES);
        struct Decode {
            kind_if: crate::ExprId,
            addr_if: crate::ExprId,
            data_if: crate::ExprId,
        }
        let mut decodes: Vec<Decode> = Vec::with_capacity(NUM_CORES);
        for (c, prog) in programs.iter().enumerate() {
            let mut slots = Vec::with_capacity(prog.len());
            for (s, instr) in prog.iter().enumerate() {
                let packed = b.lit(instr.packed(), 43);
                slots.push(b.wire(format!("core{c}_imem_{s}"), packed));
            }
            imem.push(slots);
            // Decode muxes: compare PC_IF against each slot PC; default to
            // halt (out-of-range PCs behave as halt, like the added halt
            // logic in the paper's Multi-V-scale).
            let mut kind_if = b.lit(kind::HALT, KIND_WIDTH);
            let mut addr_if = b.lit(0, ADDR_WIDTH);
            let mut data_if = b.lit(0, DATA_WIDTH);
            for (s, instr) in prog.iter().enumerate() {
                let here = b.eq_lit(regs[c].pc_if, isa::pc_of(c, s));
                let k = b.lit(instr.kind, KIND_WIDTH);
                let a = b.lit(instr.addr, ADDR_WIDTH);
                let d = b.lit(instr.data, DATA_WIDTH);
                kind_if = b.mux(here, k, kind_if);
                addr_if = b.mux(here, a, addr_if);
                data_if = b.mux(here, d, data_if);
            }
            decodes.push(Decode {
                kind_if,
                addr_if,
                data_if,
            });
        }

        // ---- Arbiter and memory request ----
        // The granted core's DX fields.
        let mux_by_grant = |b: &mut DesignBuilder, field: fn(&CoreRegs) -> SignalId| {
            let mut acc = b.sig(field(&regs[0]));
            for (c, r) in regs.iter().enumerate().skip(1) {
                let sel = b.eq_lit(grant, c as u64);
                let v = b.sig(field(r));
                acc = b.mux(sel, v, acc);
            }
            acc
        };
        let gkind = mux_by_grant(&mut b, |r| r.kind_dx);
        let gaddr = mux_by_grant(&mut b, |r| r.addr_dx);
        let is_store_k = {
            let k = b.lit(kind::STORE, KIND_WIDTH);
            b.eq(gkind, k)
        };
        let is_load_k = {
            let k = b.lit(kind::LOAD, KIND_WIDTH);
            b.eq(gkind, k)
        };
        let req_is_store = b.wire("mem_req_is_store", is_store_k);
        let _req_is_load = b.wire("mem_req_is_load", is_load_k);
        let req_addr = b.wire("mem_req_addr", gaddr);

        // The write-data bus: driven during WB by the core granted last
        // cycle (Figure 11's pipelining).
        let wdata_bus_e = {
            let mut acc = b.sig(regs[0].store_data_wb);
            for (c, r) in regs.iter().enumerate().skip(1) {
                let sel = b.eq_lit(prev_core, c as u64);
                let v = b.sig(r.store_data_wb);
                acc = b.mux(sel, v, acc);
            }
            acc
        };
        let wdata_bus = b.wire("mem_wdata_bus", wdata_bus_e);

        // Arbiter bookkeeping.
        let grant_e = b.sig(grant);
        b.set_next(prev_core, grant_e);
        let req_is_store_e = b.sig(req_is_store);
        b.set_next(prev_was_store, req_is_store_e);
        let req_addr_e = b.sig(req_addr);
        b.set_next(prev_addr, req_addr_e);

        // ---- Memory array update ----
        // (Tso returned early above; only Buggy/Fixed reach this point.)
        match memory_impl {
            MemoryImpl::Buggy => {
                let wdata = wdata.expect("buggy memory has a wdata buffer");
                let waddr = waddr.expect("buggy memory has a waddr register");
                let wpending = wpending.expect("buggy memory has a pending bit");
                // wdata captures the store-data bus one cycle after the
                // store's WB request was accepted.
                let bus = b.sig(wdata_bus);
                let hold_wdata = b.sig(wdata);
                let pws = b.sig(prev_was_store);
                let wdata_next = b.mux(pws, bus, hold_wdata);
                b.set_next(wdata, wdata_next);
                // A new store transaction replaces the buffered address and
                // pushes the *current* wdata to memory — the push uses the
                // value of wdata from this cycle (non-blocking semantics),
                // which for back-to-back stores has not yet captured the
                // first store's data: the V-scale bug.
                let req_st = b.sig(req_is_store);
                let hold_waddr = b.sig(waddr);
                let new_addr = b.sig(req_addr);
                let waddr_next = b.mux(req_st, new_addr, hold_waddr);
                b.set_next(waddr, waddr_next);
                let one = b.lit(1, 1);
                let hold_p = b.sig(wpending);
                let wpending_next = b.mux(req_st, one, hold_p);
                b.set_next(wpending, wpending_next);
                for (w, &mem_w) in mem.iter().enumerate() {
                    let req_st = b.sig(req_is_store);
                    let pend = b.sig(wpending);
                    let both = b.and(req_st, pend);
                    let here = b.eq_lit(waddr, w as u64);
                    let push_here = b.and(both, here);
                    let old_wdata = b.sig(wdata);
                    let hold = b.sig(mem_w);
                    let next = b.mux(push_here, old_wdata, hold);
                    b.set_next(mem_w, next);
                }
            }
            MemoryImpl::Fixed | MemoryImpl::Tso => {
                // The fix: clock the store's data straight into the array
                // one cycle after its WB stage.
                for (w, &mem_w) in mem.iter().enumerate() {
                    let pws = b.sig(prev_was_store);
                    let here = b.eq_lit(prev_addr, w as u64);
                    let write_here = b.and(pws, here);
                    let bus = b.sig(wdata_bus);
                    let hold = b.sig(mem_w);
                    let next = b.mux(write_here, bus, hold);
                    b.set_next(mem_w, next);
                }
            }
        }

        // ---- Per-core pipeline behaviour ----
        let mut cores = Vec::with_capacity(NUM_CORES);
        for (c, r) in regs.iter().enumerate() {
            // stall_DX: a memory instruction in DX waits for its grant.
            let is_ld = b.eq_lit(r.kind_dx, kind::LOAD);
            let is_st = b.eq_lit(r.kind_dx, kind::STORE);
            let is_mem = b.or(is_ld, is_st);
            let granted = b.eq_lit(grant, c as u64);
            let not_granted = b.not_e(granted);
            let stall_e = b.and(is_mem, not_granted);
            let stall_dx = b.wire(format!("core{c}_stall_DX"), stall_e);
            // Fetch holds exactly when DX holds in this three-stage
            // pipeline, so stall_IF mirrors stall_DX. The node mapping
            // (paper Figure 9) qualifies Fetch events with ~stall_IF so an
            // instruction's Fetch *event* is the single cycle in which it
            // moves on to DX.
            let stall_if_e = b.sig(stall_dx);
            let stall_if = b.wire(format!("core{c}_stall_IF"), stall_if_e);
            // stall_WB: the V-scale memory's ready output is hard-coded
            // high, so WB never stalls (part of the bug's root cause, §7.1).
            let zero = b.lit(0, 1);
            let stall_wb = b.wire(format!("core{c}_stall_WB"), zero);

            let stall = b.sig(stall_dx);
            let not_stall = b.not_e(stall);

            // Fetch: hold on stall or when sitting on the halt instruction.
            let dec = &decodes[c];
            let at_halt = {
                let k = b.lit(kind::HALT, KIND_WIDTH);
                b.eq(dec.kind_if, k)
            };
            let pc = b.sig(r.pc_if);
            let step = b.lit(PC_STEP, PC_WIDTH);
            let pc_plus = b.add(pc, step);
            let pc_hold = b.sig(r.pc_if);
            let pc_adv = b.mux(at_halt, pc_hold, pc_plus);
            let pc_same = b.sig(r.pc_if);
            let pc_next = b.mux(not_stall, pc_adv, pc_same);
            b.set_next(r.pc_if, pc_next);

            // IF -> DX (hold on stall).
            let set_dx = |b: &mut DesignBuilder, reg: SignalId, val: crate::ExprId| {
                let hold = b.sig(reg);
                let next = b.mux(not_stall, val, hold);
                b.set_next(reg, next);
            };
            let pc_if_e = b.sig(r.pc_if);
            set_dx(&mut b, r.pc_dx, pc_if_e);
            set_dx(&mut b, r.kind_dx, dec.kind_if);
            set_dx(&mut b, r.addr_dx, dec.addr_if);
            set_dx(&mut b, r.data_dx, dec.data_if);

            // DX -> WB (bubble on stall).
            let bub_pc = b.lit(BUBBLE_PC, PC_WIDTH);
            let pc_dx_e = b.sig(r.pc_dx);
            let pc_wb_next = b.mux(not_stall, pc_dx_e, bub_pc);
            b.set_next(r.pc_wb, pc_wb_next);
            let bub_k = b.lit(kind::BUBBLE, KIND_WIDTH);
            let kind_dx_e = b.sig(r.kind_dx);
            let kind_wb_next = b.mux(not_stall, kind_dx_e, bub_k);
            b.set_next(r.kind_wb, kind_wb_next);
            let zero_a = b.lit(0, ADDR_WIDTH);
            let addr_dx_e = b.sig(r.addr_dx);
            let addr_wb_next = b.mux(not_stall, addr_dx_e, zero_a);
            b.set_next(r.addr_wb, addr_wb_next);
            let zero_d = b.lit(0, DATA_WIDTH);
            let data_dx_e = b.sig(r.data_dx);
            let sdata_next = b.mux(not_stall, data_dx_e, zero_d);
            b.set_next(r.store_data_wb, sdata_next);

            // Halt: latched when the halt instruction moves into WB.
            let halt_in_dx = b.eq_lit(r.kind_dx, kind::HALT);
            let entering_wb = b.and(not_stall, halt_in_dx);
            let was = b.sig(r.halted);
            let halted_next = b.or(was, entering_wb);
            b.set_next(r.halted, halted_next);

            // Load result: combinational read during WB.
            let mut read = b.lit(0, DATA_WIDTH);
            for (w, &mem_w) in mem.iter().enumerate() {
                let here = b.eq_lit(r.addr_wb, w as u64);
                let v = b.sig(mem_w);
                read = b.mux(here, v, read);
            }
            let load_data_e = match memory_impl {
                MemoryImpl::Buggy => {
                    // Bypass from the pending store buffer when the address
                    // matches.
                    let wdata = wdata.expect("buggy memory has a wdata buffer");
                    let waddr = waddr.expect("buggy memory has a waddr register");
                    let wpending = wpending.expect("buggy memory has a pending bit");
                    let pend = b.sig(wpending);
                    let wa = b.sig(waddr);
                    let la = b.sig(r.addr_wb);
                    let match_a = b.eq(la, wa);
                    let hit = b.and(pend, match_a);
                    let wd = b.sig(wdata);
                    b.mux(hit, wd, read)
                }
                MemoryImpl::Fixed | MemoryImpl::Tso => read,
            };
            let load_data_wb = b.wire(format!("core{c}_load_data_WB"), load_data_e);

            cores.push(CoreSignals {
                stall_if,
                pc_if: r.pc_if,
                pc_dx: r.pc_dx,
                pc_wb: r.pc_wb,
                kind_dx: r.kind_dx,
                kind_wb: r.kind_wb,
                addr_dx: r.addr_dx,
                addr_wb: r.addr_wb,
                store_data_wb: r.store_data_wb,
                load_data_wb,
                stall_dx,
                stall_wb,
                halted: r.halted,
            });
        }

        let design = b.build().expect("Multi-V-scale IR is well-formed");
        MultiVscale {
            design,
            memory_impl,
            grant,
            first,
            mem,
            imem,
            cores,
            tso: None,
            programs,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::{Simulator, State};
    use rtlcheck_litmus::suite;

    /// Builds mp on the given memory and returns (design, sim helpers).
    fn build_mp(mem_impl: MemoryImpl) -> MultiVscale {
        let mp = suite::get("mp").unwrap();
        MultiVscale::build(&mp, mem_impl)
    }

    fn init_state(mv: &MultiVscale, sim: &Simulator<'_>, init: &[u64]) -> State {
        let pins: Vec<_> = mv.mem.iter().copied().zip(init.iter().copied()).collect();
        sim.initial_state_with(&pins).unwrap()
    }

    /// Runs the design with a fixed grant schedule and returns the final
    /// state after `cycles`.
    fn run(mv: &MultiVscale, sim: &Simulator<'_>, grants: &[u64], init: &[u64]) -> State {
        let mut s = init_state(mv, sim, init);
        for &g in grants {
            s = sim.step(&s, &[g]);
        }
        s
    }

    #[test]
    fn builds_for_every_suite_test() {
        for t in suite::all() {
            for m in [MemoryImpl::Buggy, MemoryImpl::Fixed] {
                let mv = MultiVscale::build(&t, m);
                assert_eq!(mv.cores.len(), NUM_CORES, "{}", t.name());
                assert!(mv.design.num_regs() > 20);
            }
        }
    }

    #[test]
    fn first_signal_is_one_then_zero() {
        let mv = build_mp(MemoryImpl::Fixed);
        let sim = Simulator::new(&mv.design);
        let mut s = init_state(&mv, &sim, &[0, 0]);
        assert_eq!(sim.peek(&s, &[0], mv.first), 1);
        s = sim.step(&s, &[0]);
        assert_eq!(sim.peek(&s, &[0], mv.first), 0);
        s = sim.step(&s, &[3]);
        assert_eq!(sim.peek(&s, &[0], mv.first), 0);
    }

    #[test]
    fn cores_halt_and_pcs_freeze() {
        let mv = build_mp(MemoryImpl::Fixed);
        let sim = Simulator::new(&mv.design);
        // Round-robin grants for plenty of cycles: everyone finishes.
        let grants: Vec<u64> = (0..40).map(|i| i % 4).collect();
        let s = run(&mv, &sim, &grants, &[0, 0]);
        for c in 0..NUM_CORES {
            assert_eq!(sim.peek(&s, &[0], mv.cores[c].halted), 1, "core {c} halted");
        }
        // The state is absorbing: stepping again with any grant changes
        // nothing.
        for g in 0..4u64 {
            let s2 = sim.step(&s, &[g]);
            assert_eq!(s2, sim.step(&s2, &[g]), "halted state is absorbing");
        }
    }

    /// Figure 11: a store on core 0 and a load on core 1 pipeline through
    /// the arbiter in back-to-back cycles.
    #[test]
    fn arbiter_pipelining_matches_figure_11() {
        let t = rtlcheck_litmus::parse(
            "test f11\n{ x = 0; }\ncore 0 { st x, 1; }\ncore 1 { r1 = ld x; }\npermit ( 1:r1 = 1 )",
        )
        .unwrap();
        let mv = MultiVscale::build(&t, MemoryImpl::Fixed);
        let sim = Simulator::new(&mv.design);
        // Cycle 0: both cores fetch. Cycle 1: both in DX; grant core 0
        // (store accesses memory). Cycle 2: store in WB providing data
        // while core 1's load is granted DX. Cycle 3: load in WB; memory
        // was updated at the start of cycle 3, so the load returns 1.
        let mut s = init_state(&mv, &sim, &[0]);
        s = sim.step(&s, &[0]); // cycle 1 begins
        assert_eq!(sim.peek(&s, &[0], mv.cores[0].kind_dx), kind::STORE);
        assert_eq!(sim.peek(&s, &[1], mv.cores[1].kind_dx), kind::LOAD);
        // Core 1 is stalled in DX while core 0 owns the memory.
        assert_eq!(sim.peek(&s, &[0], mv.cores[1].stall_dx), 1);
        assert_eq!(sim.peek(&s, &[0], mv.cores[0].stall_dx), 0);
        s = sim.step(&s, &[0]); // cycle 2: store to WB, load granted
        assert_eq!(sim.peek(&s, &[1], mv.cores[0].kind_wb), kind::STORE);
        assert_eq!(sim.peek(&s, &[1], mv.cores[0].store_data_wb), 1);
        assert_eq!(sim.peek(&s, &[1], mv.cores[1].stall_dx), 0);
        s = sim.step(&s, &[1]); // cycle 3: load in WB
        assert_eq!(sim.peek(&s, &[0], mv.cores[1].kind_wb), kind::LOAD);
        assert_eq!(
            sim.peek(&s, &[0], mv.cores[1].load_data_wb),
            1,
            "load one cycle after the store's WB sees its data"
        );
    }

    /// §7.1 / Figure 12: on the buggy memory, two back-to-back stores drop
    /// the first store's data; the fixed memory keeps it.
    #[test]
    fn back_to_back_stores_drop_on_buggy_memory_only() {
        for (mem_impl, expect_x) in [(MemoryImpl::Buggy, 0u64), (MemoryImpl::Fixed, 1u64)] {
            let mv = build_mp(mem_impl);
            let sim = Simulator::new(&mv.design);
            // Grant core 0 twice back-to-back (the two stores), then drain.
            let grants = [0, 0, 0, 2, 2, 2, 2, 2];
            let s = run(&mv, &sim, &grants, &[0, 0]);
            let x = sim.peek(&s, &[2], mv.mem[0]);
            assert_eq!(
                x, expect_x,
                "{mem_impl:?}: mem[x] after back-to-back stores"
            );
        }
    }

    /// The full Figure 12 counterexample: on the buggy memory the mp
    /// forbidden outcome (r1 = 1, r2 = 0) is architecturally visible.
    #[test]
    fn mp_forbidden_outcome_reproduces_on_buggy_memory() {
        let mv = build_mp(MemoryImpl::Buggy);
        let sim = Simulator::new(&mv.design);
        let mut s = init_state(&mv, &sim, &[0, 0]);
        // Schedule: St x @DX cycle 1, St y @DX cycle 2 (back-to-back), then
        // core 1's loads.
        let mut r1 = None;
        let mut r2 = None;
        for (cycle, g) in [0u64, 0, 0, 1, 1, 1, 1, 1, 1].iter().enumerate() {
            // Record load results as they reach WB.
            let pc_wb = sim.peek(&s, &[*g], mv.cores[1].pc_wb);
            if pc_wb == isa::pc_of(1, 0) {
                r1 = Some(sim.peek(&s, &[*g], mv.cores[1].load_data_wb));
            }
            if pc_wb == isa::pc_of(1, 1) {
                r2 = Some(sim.peek(&s, &[*g], mv.cores[1].load_data_wb));
            }
            s = sim.step(&s, &[*g]);
            let _ = cycle;
        }
        // Drain.
        for _ in 0..6 {
            let pc_wb = sim.peek(&s, &[1], mv.cores[1].pc_wb);
            if pc_wb == isa::pc_of(1, 0) {
                r1 = Some(sim.peek(&s, &[1], mv.cores[1].load_data_wb));
            }
            if pc_wb == isa::pc_of(1, 1) {
                r2 = Some(sim.peek(&s, &[1], mv.cores[1].load_data_wb));
            }
            s = sim.step(&s, &[1]);
        }
        assert_eq!(r1, Some(1), "load of y bypasses from the store buffer");
        assert_eq!(
            r2,
            Some(0),
            "load of x sees the dropped store: the V-scale bug"
        );
    }

    /// On the fixed memory, the same schedule produces an SC-consistent
    /// result.
    #[test]
    fn mp_same_schedule_is_correct_on_fixed_memory() {
        let mv = build_mp(MemoryImpl::Fixed);
        let sim = Simulator::new(&mv.design);
        let mut s = init_state(&mv, &sim, &[0, 0]);
        let mut r1 = None;
        let mut r2 = None;
        for g in [0u64, 0, 0, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1] {
            let pc_wb = sim.peek(&s, &[g], mv.cores[1].pc_wb);
            if pc_wb == isa::pc_of(1, 0) {
                r1 = Some(sim.peek(&s, &[g], mv.cores[1].load_data_wb));
            }
            if pc_wb == isa::pc_of(1, 1) {
                r2 = Some(sim.peek(&s, &[g], mv.cores[1].load_data_wb));
            }
            s = sim.step(&s, &[g]);
        }
        assert_eq!(r1, Some(1));
        assert_eq!(r2, Some(1), "fixed memory: no store is dropped");
    }

    #[test]
    fn stall_wb_is_always_zero() {
        let mv = build_mp(MemoryImpl::Buggy);
        let sim = Simulator::new(&mv.design);
        let mut s = init_state(&mv, &sim, &[0, 0]);
        for g in [0u64, 1, 2, 3, 0, 1] {
            for c in 0..NUM_CORES {
                assert_eq!(sim.peek(&s, &[g], mv.cores[c].stall_wb), 0);
            }
            s = sim.step(&s, &[g]);
        }
    }

    #[test]
    fn emits_verilog_for_both_variants() {
        for m in [MemoryImpl::Buggy, MemoryImpl::Fixed] {
            let mv = build_mp(m);
            let v = crate::verilog::emit(&mv.design);
            assert!(v.contains("core0_PC_WB"));
            assert!(v.contains("arbiter_grant"));
            if m == MemoryImpl::Buggy {
                assert!(
                    v.contains("mem_wdata"),
                    "buggy memory exposes the store buffer"
                );
            }
        }
    }
}

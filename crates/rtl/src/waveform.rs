//! Text waveform rendering for execution traces.
//!
//! Counterexamples from the property verifier are sequences of design
//! states; this module renders selected signals over time as an ASCII
//! table, in the spirit of the paper's Figure 6 and Figure 12 timing
//! diagrams.

use std::fmt::Write as _;

use crate::design::{Design, SignalId};
use crate::sim::{Simulator, State};

/// A recorded execution: one state per cycle plus the inputs applied in
/// that cycle.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Trace {
    /// Design states, one per cycle, starting at the initial state.
    pub states: Vec<State>,
    /// Primary-input vectors; `inputs[i]` was applied during cycle `i`.
    /// Must be the same length as `states`.
    pub inputs: Vec<Vec<u64>>,
}

impl Trace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Trace::default()
    }

    /// Number of cycles recorded.
    pub fn len(&self) -> usize {
        self.states.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.states.is_empty()
    }

    /// Appends one cycle.
    pub fn push(&mut self, state: State, inputs: Vec<u64>) {
        self.states.push(state);
        self.inputs.push(inputs);
    }

    /// The value of `sig` at `cycle`.
    pub fn value_at(&self, design: &Design, sig: SignalId, cycle: usize) -> u64 {
        let sim = Simulator::new(design);
        sim.peek(&self.states[cycle], &self.inputs[cycle], sig)
    }

    /// Renders the named signals as an ASCII waveform table, one row per
    /// signal and one column per cycle.
    ///
    /// Signals unknown to the design are skipped.
    pub fn render(&self, design: &Design, signals: &[&str]) -> String {
        let sim = Simulator::new(design);
        let name_w = signals.iter().map(|s| s.len()).max().unwrap_or(0).max(5);
        let mut out = String::new();
        let _ = write!(out, "{:name_w$} |", "cycle");
        for c in 0..self.len() {
            let _ = write!(out, " {c:>4}");
        }
        out.push('\n');
        let _ = writeln!(
            out,
            "{}-+{}",
            "-".repeat(name_w),
            "-".repeat(5 * self.len())
        );
        for &name in signals {
            let Some(sig) = design.signal_by_name(name) else {
                continue;
            };
            let _ = write!(out, "{name:name_w$} |");
            for c in 0..self.len() {
                let v = sim.peek(&self.states[c], &self.inputs[c], sig);
                let _ = write!(out, " {v:>4}");
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DesignBuilder;

    fn record_counter(cycles: usize) -> (crate::Design, Trace) {
        let mut b = DesignBuilder::new("c");
        let r = b.reg("count", 8, Some(0));
        let one = b.lit(1, 8);
        let re = b.sig(r);
        let sum = b.add(re, one);
        b.set_next(r, sum);
        let d = b.build().unwrap();
        let sim = Simulator::new(&d);
        let mut t = Trace::new();
        let mut s = sim.initial_state().unwrap();
        for _ in 0..cycles {
            t.push(s.clone(), vec![]);
            s = sim.step(&s, &[]);
        }
        (d, t)
    }

    #[test]
    fn records_and_reads_values() {
        let (d, t) = record_counter(4);
        let count = d.signal_by_name("count").unwrap();
        assert_eq!(t.len(), 4);
        assert_eq!(t.value_at(&d, count, 0), 0);
        assert_eq!(t.value_at(&d, count, 3), 3);
    }

    #[test]
    fn renders_table_with_headers() {
        let (d, t) = record_counter(3);
        let table = t.render(&d, &["count", "missing_signal"]);
        assert!(table.contains("cycle"));
        assert!(table.contains("count"));
        assert!(
            !table.contains("missing_signal"),
            "unknown signals are skipped"
        );
        assert!(table.contains("   2"));
    }
}

//! Multi-V-scale-TSO: the Total Store Order variant of the Multi-V-scale
//! processor.
//!
//! The RTLCheck methodology is MCM-agnostic (paper §1: it "supports
//! arbitrary ISA-level MCMs, including ones as sophisticated as x86-TSO").
//! This design exercises that claim: each core gains a single-entry FIFO
//! store buffer between Writeback and the shared memory —
//!
//! * a store retires from WB into its core's **private buffer** without
//!   consulting the arbiter (stores never stall on grants);
//! * a buffered store **drains** to the memory array when its core holds
//!   the grant and no load is using the read port that cycle; the drain is
//!   a distinct microarchitectural event, modelled as the `Memory` stage of
//!   the TSO µspec model;
//! * loads read memory combinationally during WB, **forwarding** from their
//!   own core's buffered store on an address match;
//! * a store (or the halt) stalls in DX while the buffer is full, keeping
//!   the buffer FIFO and flushing it before the core halts.
//!
//! Store→load reordering (and hence the `sb` outcome) is observable;
//! coherence, store→store, and load→load order are preserved — exactly
//! x86-TSO's envelope for this instruction set.

use rtlcheck_litmus::LitmusTest;

use crate::builder::DesignBuilder;
use crate::design::SignalId;
use crate::isa::{self, kind, EncInstr, BUBBLE_PC, PC_STEP};
use crate::multi_vscale::{CoreSignals, MemoryImpl, MultiVscale, TsoCoreSignals, NUM_CORES};

const ADDR_WIDTH: u8 = 8;
const DATA_WIDTH: u8 = 32;
const PC_WIDTH: u8 = 32;
const KIND_WIDTH: u8 = 3;
const GRANT_WIDTH: u8 = 2;

/// Builds the TSO design loaded with `test`'s programs.
///
/// # Panics
///
/// Panics if the test needs more than [`NUM_CORES`] cores or a thread
/// exceeds the per-core PC window.
pub fn build(test: &LitmusTest) -> MultiVscale {
    let programs = isa::encode_programs(test, NUM_CORES);
    let num_words = test.num_locations().max(1);
    build_raw(programs, num_words)
}

/// Builds the TSO design from raw encoded programs and a word count.
pub fn build_raw(programs: Vec<Vec<EncInstr>>, num_words: usize) -> MultiVscale {
    let mut b = DesignBuilder::new("multi_vscale_tso");

    let grant = b.input("arbiter_grant", GRANT_WIDTH);
    let first = b.reg("first", 1, Some(1));
    let zero1 = b.lit(0, 1);
    b.set_next(first, zero1);

    let mem: Vec<SignalId> = (0..num_words)
        .map(|w| b.reg(format!("mem_{w}"), DATA_WIDTH, None))
        .collect();

    struct CoreRegs {
        pc_if: SignalId,
        pc_dx: SignalId,
        pc_wb: SignalId,
        kind_dx: SignalId,
        kind_wb: SignalId,
        addr_dx: SignalId,
        addr_wb: SignalId,
        data_dx: SignalId,
        store_data_wb: SignalId,
        halted: SignalId,
        sbuf_valid: SignalId,
        sbuf_addr: SignalId,
        sbuf_data: SignalId,
        sbuf_pc: SignalId,
    }
    let regs: Vec<CoreRegs> = (0..NUM_CORES)
        .map(|c| CoreRegs {
            pc_if: b.reg(format!("core{c}_PC_IF"), PC_WIDTH, Some(isa::pc_base(c))),
            pc_dx: b.reg(format!("core{c}_PC_DX"), PC_WIDTH, Some(BUBBLE_PC)),
            pc_wb: b.reg(format!("core{c}_PC_WB"), PC_WIDTH, Some(BUBBLE_PC)),
            kind_dx: b.reg(format!("core{c}_kind_DX"), KIND_WIDTH, Some(kind::BUBBLE)),
            kind_wb: b.reg(format!("core{c}_kind_WB"), KIND_WIDTH, Some(kind::BUBBLE)),
            addr_dx: b.reg(format!("core{c}_addr_DX"), ADDR_WIDTH, Some(0)),
            addr_wb: b.reg(format!("core{c}_addr_WB"), ADDR_WIDTH, Some(0)),
            data_dx: b.reg(format!("core{c}_data_DX"), DATA_WIDTH, Some(0)),
            store_data_wb: b.reg(format!("core{c}_store_data_WB"), DATA_WIDTH, Some(0)),
            halted: b.reg(format!("core{c}_halted"), 1, Some(0)),
            sbuf_valid: b.reg(format!("core{c}_sbuf_valid"), 1, Some(0)),
            sbuf_addr: b.reg(format!("core{c}_sbuf_addr"), ADDR_WIDTH, Some(0)),
            sbuf_data: b.reg(format!("core{c}_sbuf_data"), DATA_WIDTH, Some(0)),
            sbuf_pc: b.reg(format!("core{c}_sbuf_pc"), PC_WIDTH, Some(BUBBLE_PC)),
        })
        .collect();

    // A load granted in DX at cycle t occupies the memory read port at
    // t + 1 (its WB); drains are blocked that cycle.
    let load_in_wb = b.reg("mem_load_in_wb", 1, Some(0));
    let gkind = {
        let mut acc = b.sig(regs[0].kind_dx);
        for (c, r) in regs.iter().enumerate().skip(1) {
            let sel = b.eq_lit(grant, c as u64);
            let v = b.sig(r.kind_dx);
            acc = b.mux(sel, v, acc);
        }
        acc
    };
    let gkind_is_load = {
        let k = b.lit(kind::LOAD, KIND_WIDTH);
        b.eq(gkind, k)
    };
    b.set_next(load_in_wb, gkind_is_load);

    // Instruction ROMs + IF decode (identical scheme to the SC designs).
    let mut imem: Vec<Vec<SignalId>> = Vec::with_capacity(NUM_CORES);
    struct Decode {
        kind_if: crate::ExprId,
        addr_if: crate::ExprId,
        data_if: crate::ExprId,
    }
    let mut decodes: Vec<Decode> = Vec::with_capacity(NUM_CORES);
    for (c, prog) in programs.iter().enumerate() {
        let mut slots = Vec::with_capacity(prog.len());
        for (s, instr) in prog.iter().enumerate() {
            let packed = b.lit(instr.packed(), 43);
            slots.push(b.wire(format!("core{c}_imem_{s}"), packed));
        }
        imem.push(slots);
        let mut kind_if = b.lit(kind::HALT, KIND_WIDTH);
        let mut addr_if = b.lit(0, ADDR_WIDTH);
        let mut data_if = b.lit(0, DATA_WIDTH);
        for (s, instr) in prog.iter().enumerate() {
            let here = b.eq_lit(regs[c].pc_if, isa::pc_of(c, s));
            let k = b.lit(instr.kind, KIND_WIDTH);
            let a = b.lit(instr.addr, ADDR_WIDTH);
            let d = b.lit(instr.data, DATA_WIDTH);
            kind_if = b.mux(here, k, kind_if);
            addr_if = b.mux(here, a, addr_if);
            data_if = b.mux(here, d, data_if);
        }
        decodes.push(Decode {
            kind_if,
            addr_if,
            data_if,
        });
    }

    // Per-core drain wires (needed for the memory update mux below).
    let drains: Vec<SignalId> = regs
        .iter()
        .enumerate()
        .map(|(c, r)| {
            let granted = b.eq_lit(grant, c as u64);
            let pend = b.sig(r.sbuf_valid);
            let lw = b.sig(load_in_wb);
            let no_load = b.not_e(lw);
            let gp = b.and(granted, pend);
            let e = b.and(gp, no_load);
            b.wire(format!("core{c}_drain"), e)
        })
        .collect();

    // Memory array update: the granted (draining) core writes its buffered
    // word.
    for (w, &mem_w) in mem.iter().enumerate() {
        let mut write_here = b.lit(0, 1);
        let mut write_data = b.lit(0, DATA_WIDTH);
        for (c, r) in regs.iter().enumerate() {
            let d = b.sig(drains[c]);
            let here = b.eq_lit(r.sbuf_addr, w as u64);
            let dh = b.and(d, here);
            write_here = b.or(write_here, dh);
            let data = b.sig(r.sbuf_data);
            write_data = b.mux(dh, data, write_data);
        }
        let hold = b.sig(mem_w);
        let next = b.mux(write_here, write_data, hold);
        b.set_next(mem_w, next);
    }

    let mut cores = Vec::with_capacity(NUM_CORES);
    let mut tso_cores = Vec::with_capacity(NUM_CORES);
    for (c, r) in regs.iter().enumerate() {
        // Stalls: loads wait for the grant; stores and the halt wait for
        // the store buffer to be free (and for a store in WB to clear,
        // which will occupy the buffer next cycle).
        let is_ld = b.eq_lit(r.kind_dx, kind::LOAD);
        let is_st = b.eq_lit(r.kind_dx, kind::STORE);
        let is_halt = b.eq_lit(r.kind_dx, kind::HALT);
        let is_fence = b.eq_lit(r.kind_dx, kind::FENCE);
        let granted = b.eq_lit(grant, c as u64);
        let not_granted = b.not_e(granted);
        let load_stall = b.and(is_ld, not_granted);
        let pend = b.sig(r.sbuf_valid);
        let wb_is_store = b.eq_lit(r.kind_wb, kind::STORE);
        let buffer_busy = b.or(pend, wb_is_store);
        // Stores wait for a free buffer slot; the halt AND the fence wait
        // for the buffer to flush entirely (the fence's whole purpose).
        let st_or_halt = b.or(is_st, is_halt);
        let flushers = b.or(st_or_halt, is_fence);
        let flush_stall = b.and(flushers, buffer_busy);
        let stall_e = b.or(load_stall, flush_stall);
        let stall_dx = b.wire(format!("core{c}_stall_DX"), stall_e);
        let stall_if_e = b.sig(stall_dx);
        let stall_if = b.wire(format!("core{c}_stall_IF"), stall_if_e);
        let zero = b.lit(0, 1);
        let stall_wb = b.wire(format!("core{c}_stall_WB"), zero);

        let stall = b.sig(stall_dx);
        let not_stall = b.not_e(stall);

        // Fetch (identical to the SC designs).
        let dec = &decodes[c];
        let at_halt = {
            let k = b.lit(kind::HALT, KIND_WIDTH);
            b.eq(dec.kind_if, k)
        };
        let pc = b.sig(r.pc_if);
        let step = b.lit(PC_STEP, PC_WIDTH);
        let pc_plus = b.add(pc, step);
        let pc_hold = b.sig(r.pc_if);
        let pc_adv = b.mux(at_halt, pc_hold, pc_plus);
        let pc_same = b.sig(r.pc_if);
        let pc_next = b.mux(not_stall, pc_adv, pc_same);
        b.set_next(r.pc_if, pc_next);

        let set_dx = |b: &mut DesignBuilder, reg: SignalId, val: crate::ExprId| {
            let hold = b.sig(reg);
            let next = b.mux(not_stall, val, hold);
            b.set_next(reg, next);
        };
        let pc_if_e = b.sig(r.pc_if);
        set_dx(&mut b, r.pc_dx, pc_if_e);
        set_dx(&mut b, r.kind_dx, dec.kind_if);
        set_dx(&mut b, r.addr_dx, dec.addr_if);
        set_dx(&mut b, r.data_dx, dec.data_if);

        let bub_pc = b.lit(BUBBLE_PC, PC_WIDTH);
        let pc_dx_e = b.sig(r.pc_dx);
        let pc_wb_next = b.mux(not_stall, pc_dx_e, bub_pc);
        b.set_next(r.pc_wb, pc_wb_next);
        let bub_k = b.lit(kind::BUBBLE, KIND_WIDTH);
        let kind_dx_e = b.sig(r.kind_dx);
        let kind_wb_next = b.mux(not_stall, kind_dx_e, bub_k);
        b.set_next(r.kind_wb, kind_wb_next);
        let zero_a = b.lit(0, ADDR_WIDTH);
        let addr_dx_e = b.sig(r.addr_dx);
        let addr_wb_next = b.mux(not_stall, addr_dx_e, zero_a);
        b.set_next(r.addr_wb, addr_wb_next);
        let zero_d = b.lit(0, DATA_WIDTH);
        let data_dx_e = b.sig(r.data_dx);
        let sdata_next = b.mux(not_stall, data_dx_e, zero_d);
        b.set_next(r.store_data_wb, sdata_next);

        // Halt: because the halt stalls in DX while the buffer is busy, a
        // halted core has flushed all of its stores.
        let halt_in_dx = b.eq_lit(r.kind_dx, kind::HALT);
        let entering_wb = b.and(not_stall, halt_in_dx);
        let was = b.sig(r.halted);
        let halted_next = b.or(was, entering_wb);
        b.set_next(r.halted, halted_next);

        // Store buffer: a store in WB enters the buffer at the next edge;
        // a drain empties it. The stall logic makes enter and drain
        // mutually exclusive.
        let enter = b.eq_lit(r.kind_wb, kind::STORE);
        let d = b.sig(drains[c]);
        let one = b.lit(1, 1);
        let hold_v = b.sig(r.sbuf_valid);
        let after_enter = b.mux(enter, one, hold_v);
        let zero_v = b.lit(0, 1);
        let v_next = b.mux(d, zero_v, after_enter);
        b.set_next(r.sbuf_valid, v_next);
        let set_on_enter = |b: &mut DesignBuilder, reg: SignalId, val: SignalId| {
            let v = b.sig(val);
            let hold = b.sig(reg);
            let next = b.mux(enter, v, hold);
            b.set_next(reg, next);
        };
        set_on_enter(&mut b, r.sbuf_addr, r.addr_wb);
        set_on_enter(&mut b, r.sbuf_data, r.store_data_wb);
        set_on_enter(&mut b, r.sbuf_pc, r.pc_wb);

        // Load result: forward from the own buffer on an address match,
        // else read the memory array.
        let mut read = b.lit(0, DATA_WIDTH);
        for (w, &mem_w) in mem.iter().enumerate() {
            let here = b.eq_lit(r.addr_wb, w as u64);
            let v = b.sig(mem_w);
            read = b.mux(here, v, read);
        }
        let pend2 = b.sig(r.sbuf_valid);
        let sa = b.sig(r.sbuf_addr);
        let la = b.sig(r.addr_wb);
        let addr_match = b.eq(la, sa);
        let fwd = b.and(pend2, addr_match);
        let sd = b.sig(r.sbuf_data);
        let load_data_e = b.mux(fwd, sd, read);
        let load_data_wb = b.wire(format!("core{c}_load_data_WB"), load_data_e);

        cores.push(CoreSignals {
            pc_if: r.pc_if,
            pc_dx: r.pc_dx,
            pc_wb: r.pc_wb,
            kind_dx: r.kind_dx,
            kind_wb: r.kind_wb,
            addr_dx: r.addr_dx,
            addr_wb: r.addr_wb,
            store_data_wb: r.store_data_wb,
            load_data_wb,
            stall_if,
            stall_dx,
            stall_wb,
            halted: r.halted,
        });
        tso_cores.push(TsoCoreSignals {
            sbuf_valid: r.sbuf_valid,
            sbuf_addr: r.sbuf_addr,
            sbuf_data: r.sbuf_data,
            sbuf_pc: r.sbuf_pc,
            drain: drains[c],
        });
    }

    let design = b.build().expect("Multi-V-scale-TSO IR is well-formed");
    MultiVscale {
        design,
        memory_impl: MemoryImpl::Tso,
        grant,
        first,
        mem,
        imem,
        cores,
        tso: Some(tso_cores),
        programs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::{Simulator, State};
    use rtlcheck_litmus::suite;

    fn init_state(mv: &MultiVscale, sim: &Simulator<'_>) -> State {
        let pins: Vec<_> = mv.mem.iter().map(|&m| (m, 0)).collect();
        sim.initial_state_with(&pins).unwrap()
    }

    #[test]
    fn builds_for_every_suite_test() {
        for t in suite::all() {
            let mv = build(&t);
            assert_eq!(mv.cores.len(), NUM_CORES, "{}", t.name());
            assert!(mv.tso.is_some());
        }
    }

    /// The sb outcome (r1 = r2 = 0) — SC-forbidden — is reachable on the
    /// TSO design: both stores sit in their buffers while both loads read
    /// memory.
    #[test]
    fn sb_forbidden_outcome_reachable_by_simulation() {
        let sb = suite::get("sb").unwrap();
        let mv = build(&sb);
        let sim = Simulator::new(&mv.design);
        let mut s = init_state(&mv, &sim);
        // Stores never need the grant; alternate load grants so both loads
        // read memory before any drain (drains need grants too, but a
        // granted core with a load in DX and a pending store prefers... the
        // drain is blocked only by load_in_wb; so grant each core exactly
        // when its load is in DX and its own drain is blocked by the other
        // load's WB — simpler: drive grants to core 2 (idle) first so
        // nothing drains, wait for loads to stall, then grant each loader.
        let mut r = [None, None];
        for g in [2u64, 2, 0, 1, 2, 2, 2, 0, 1, 0, 1, 0, 1] {
            for c in [0usize, 1] {
                let pc_wb = sim.peek(&s, &[g], mv.cores[c].pc_wb);
                if pc_wb == isa::pc_of(c, 1) {
                    r[c] = Some(sim.peek(&s, &[g], mv.cores[c].load_data_wb));
                }
            }
            s = sim.step(&s, &[g]);
        }
        assert_eq!(
            r,
            [Some(0), Some(0)],
            "the TSO design exhibits store buffering"
        );
    }

    /// Same-core forwarding: a load after a buffered same-address store
    /// returns the buffered data.
    #[test]
    fn store_forwarding_from_the_buffer() {
        let t = rtlcheck_litmus::parse(
            "test f\n{ x = 0; }\ncore 0 { st x, 1; r1 = ld x; }\npermit ( 0:r1 = 1 )",
        )
        .unwrap();
        let mv = build(&t);
        let sim = Simulator::new(&mv.design);
        let mut s = init_state(&mv, &sim);
        let mut r1 = None;
        // Never grant core 0 the drain slot before the load needs it; the
        // load still must be granted.
        for g in [2u64, 2, 0, 0, 0, 0, 0] {
            let pc_wb = sim.peek(&s, &[g], mv.cores[0].pc_wb);
            if pc_wb == isa::pc_of(0, 1) {
                r1 = Some(sim.peek(&s, &[g], mv.cores[0].load_data_wb));
            }
            s = sim.step(&s, &[g]);
        }
        assert_eq!(r1, Some(1), "load forwards from the store buffer");
    }

    /// Halt flushes the buffer: once all cores report halted, memory holds
    /// every store's value.
    #[test]
    fn halt_waits_for_the_buffer_to_drain() {
        let mp = suite::get("mp").unwrap();
        let mv = build(&mp);
        let sim = Simulator::new(&mv.design);
        let mut s = init_state(&mv, &sim);
        for i in 0..60u64 {
            s = sim.step(&s, &[i % 4]);
        }
        for c in 0..NUM_CORES {
            assert_eq!(sim.peek(&s, &[0], mv.cores[c].halted), 1, "core {c} halted");
        }
        assert_eq!(sim.peek(&s, &[0], mv.mem[0]), 1, "x drained");
        assert_eq!(sim.peek(&s, &[0], mv.mem[1]), 1, "y drained");
        let tso = mv.tso.as_ref().unwrap();
        for (c, t) in tso.iter().enumerate() {
            assert_eq!(sim.peek(&s, &[0], t.sbuf_valid), 0, "buffer {c} empty");
        }
    }

    /// Drains never coincide with a load's WB (the read port is busy).
    #[test]
    fn drain_blocked_while_load_in_wb() {
        let t = rtlcheck_litmus::parse(
            "test b\n{ x = 0; y = 0; }\ncore 0 { st x, 1; }\ncore 1 { r1 = ld y; }\npermit ( 1:r1 = 0 )",
        )
        .unwrap();
        let mv = build(&t);
        let sim = Simulator::new(&mv.design);
        let tso = mv.tso.as_ref().unwrap();
        let mut s = init_state(&mv, &sim);
        // Cycle 1: grant core 1 (load to WB at cycle 2). Cycle 2: grant
        // core 0, whose store is buffered by then — drain must be blocked.
        s = sim.step(&s, &[1]); // cycle 1: load granted in DX
        s = sim.step(&s, &[1]); // cycle 2 begins: load in WB
                                // The store needs a couple more cycles to reach the buffer; run a
                                // schedule where a load WB and a drain would collide and check the
                                // drain wire stays low in that cycle.
        let mut saw_block = false;
        for _ in 0..12 {
            let load_in_wb =
                (0..NUM_CORES).any(|c| sim.peek(&s, &[0], mv.cores[c].kind_wb) == kind::LOAD);
            if load_in_wb {
                for (c, t) in tso.iter().enumerate() {
                    assert_eq!(
                        sim.peek(&s, &[c as u64], t.drain),
                        0,
                        "drain while a load holds the read port"
                    );
                }
                saw_block = true;
            }
            s = sim.step(&s, &[0]);
        }
        assert!(saw_block, "the schedule should exercise the blocking case");
    }
}

//! Multi-Five-Stage: a second, structurally different SC multicore.
//!
//! RTLCheck's method "applies generally to an arbitrary Verilog design"
//! (paper §1) — nothing in the generators is specific to the three-stage
//! V-scale pipeline. This design substantiates that claim: four classic
//! five-stage in-order pipelines (Fetch, Decode, Execute, Memory,
//! Writeback) share a single-ported memory through the same style of
//! arbiter, but
//!
//! * memory is accessed in the **Memory** stage (not Decode-Execute): both
//!   loads and stores wait there for their grant;
//! * a granted load reads the array combinationally during its Memory
//!   cycle (`load_data_MEM`) and latches the result into Writeback;
//! * a granted store's data is clocked into the array at the end of its
//!   Memory cycle (visible to the next cycle's loads);
//! * a stall in Memory holds the entire upstream pipeline and injects a
//!   bubble into Writeback.
//!
//! The memory order is the grant order of Memory-stage accesses, so the
//! machine is sequentially consistent — verified against the same SC
//! oracle and its own five-stage µspec model.

use rtlcheck_litmus::LitmusTest;

use crate::builder::DesignBuilder;
use crate::design::{Design, SignalId};
use crate::isa::{self, kind, EncInstr, BUBBLE_PC, PC_STEP};

/// Number of cores.
pub const NUM_CORES: usize = 4;

const ADDR_WIDTH: u8 = 8;
const DATA_WIDTH: u8 = 32;
const PC_WIDTH: u8 = 32;
const KIND_WIDTH: u8 = 3;
const GRANT_WIDTH: u8 = 2;

/// Signal handles for one five-stage core.
#[derive(Debug, Clone, Copy)]
pub struct FiveStageCore {
    /// Per-stage PCs ([`BUBBLE_PC`] marks bubbles downstream of Fetch).
    pub pc_if: SignalId,
    /// Decode-stage PC.
    pub pc_id: SignalId,
    /// Execute-stage PC.
    pub pc_ex: SignalId,
    /// Memory-stage PC.
    pub pc_mem: SignalId,
    /// Writeback-stage PC.
    pub pc_wb: SignalId,
    /// Memory-stage instruction kind.
    pub kind_mem: SignalId,
    /// Memory-stage word address.
    pub addr_mem: SignalId,
    /// Memory-stage store data.
    pub store_data_mem: SignalId,
    /// Memory-stage load result (combinational, valid in the granted
    /// cycle).
    pub load_data_mem: SignalId,
    /// Writeback-stage latched load result.
    pub load_data_wb: SignalId,
    /// Whole-pipeline stall (a memory op in MEM without the grant).
    pub stall: SignalId,
    /// Set once the halt reaches Writeback.
    pub halted: SignalId,
}

/// The built design plus its architecturally meaningful signals.
#[derive(Debug, Clone)]
pub struct FiveStage {
    /// The finalized design.
    pub design: Design,
    /// Arbiter grant input.
    pub grant: SignalId,
    /// First-post-reset-cycle marker.
    pub first: SignalId,
    /// Data-memory words (free initial values).
    pub mem: Vec<SignalId>,
    /// Packed-program constant wires, `[core][slot]`.
    pub imem: Vec<Vec<SignalId>>,
    /// Per-core signals.
    pub cores: Vec<FiveStageCore>,
    /// Encoded programs.
    pub programs: Vec<Vec<EncInstr>>,
}

impl FiveStage {
    /// Builds the design loaded with `test`'s programs.
    ///
    /// # Panics
    ///
    /// Panics if the test needs more than [`NUM_CORES`] cores or a thread
    /// exceeds the per-core PC window.
    pub fn build(test: &LitmusTest) -> FiveStage {
        let programs = isa::encode_programs(test, NUM_CORES);
        let num_words = test.num_locations().max(1);
        Self::build_raw(programs, num_words)
    }

    /// Builds the design from raw encoded programs and a word count.
    pub fn build_raw(programs: Vec<Vec<EncInstr>>, num_words: usize) -> FiveStage {
        let mut b = DesignBuilder::new("multi_five_stage");
        let grant = b.input("arbiter_grant", GRANT_WIDTH);
        let first = b.reg("first", 1, Some(1));
        let z1 = b.lit(0, 1);
        b.set_next(first, z1);
        let mem: Vec<SignalId> = (0..num_words)
            .map(|w| b.reg(format!("mem_{w}"), DATA_WIDTH, None))
            .collect();

        struct Regs {
            pc_if: SignalId,
            pc_id: SignalId,
            pc_ex: SignalId,
            pc_mem: SignalId,
            pc_wb: SignalId,
            kind_id: SignalId,
            kind_ex: SignalId,
            kind_mem: SignalId,
            kind_wb: SignalId,
            addr_id: SignalId,
            addr_ex: SignalId,
            addr_mem: SignalId,
            data_id: SignalId,
            data_ex: SignalId,
            data_mem: SignalId,
            load_data_wb: SignalId,
            halted: SignalId,
        }
        let regs: Vec<Regs> = (0..NUM_CORES)
            .map(|c| Regs {
                pc_if: b.reg(format!("core{c}_PC_IF"), PC_WIDTH, Some(isa::pc_base(c))),
                pc_id: b.reg(format!("core{c}_PC_ID"), PC_WIDTH, Some(BUBBLE_PC)),
                pc_ex: b.reg(format!("core{c}_PC_EX"), PC_WIDTH, Some(BUBBLE_PC)),
                pc_mem: b.reg(format!("core{c}_PC_MEM"), PC_WIDTH, Some(BUBBLE_PC)),
                pc_wb: b.reg(format!("core{c}_PC_WB"), PC_WIDTH, Some(BUBBLE_PC)),
                kind_id: b.reg(format!("core{c}_kind_ID"), KIND_WIDTH, Some(kind::BUBBLE)),
                kind_ex: b.reg(format!("core{c}_kind_EX"), KIND_WIDTH, Some(kind::BUBBLE)),
                kind_mem: b.reg(format!("core{c}_kind_MEM"), KIND_WIDTH, Some(kind::BUBBLE)),
                kind_wb: b.reg(format!("core{c}_kind_WB"), KIND_WIDTH, Some(kind::BUBBLE)),
                addr_id: b.reg(format!("core{c}_addr_ID"), ADDR_WIDTH, Some(0)),
                addr_ex: b.reg(format!("core{c}_addr_EX"), ADDR_WIDTH, Some(0)),
                addr_mem: b.reg(format!("core{c}_addr_MEM"), ADDR_WIDTH, Some(0)),
                data_id: b.reg(format!("core{c}_data_ID"), DATA_WIDTH, Some(0)),
                data_ex: b.reg(format!("core{c}_data_EX"), DATA_WIDTH, Some(0)),
                data_mem: b.reg(format!("core{c}_data_MEM"), DATA_WIDTH, Some(0)),
                load_data_wb: b.reg(format!("core{c}_load_data_WB"), DATA_WIDTH, Some(0)),
                halted: b.reg(format!("core{c}_halted"), 1, Some(0)),
            })
            .collect();

        // Instruction ROMs.
        let mut imem: Vec<Vec<SignalId>> = Vec::with_capacity(NUM_CORES);
        struct Decode {
            kind_if: crate::ExprId,
            addr_if: crate::ExprId,
            data_if: crate::ExprId,
        }
        let mut decodes = Vec::with_capacity(NUM_CORES);
        for (c, prog) in programs.iter().enumerate() {
            let mut slots = Vec::with_capacity(prog.len());
            for (s, instr) in prog.iter().enumerate() {
                let packed = b.lit(instr.packed(), 43);
                slots.push(b.wire(format!("core{c}_imem_{s}"), packed));
            }
            imem.push(slots);
            let mut kind_if = b.lit(kind::HALT, KIND_WIDTH);
            let mut addr_if = b.lit(0, ADDR_WIDTH);
            let mut data_if = b.lit(0, DATA_WIDTH);
            for (s, instr) in prog.iter().enumerate() {
                let here = b.eq_lit(regs[c].pc_if, isa::pc_of(c, s));
                let k = b.lit(instr.kind, KIND_WIDTH);
                let a = b.lit(instr.addr, ADDR_WIDTH);
                let d = b.lit(instr.data, DATA_WIDTH);
                kind_if = b.mux(here, k, kind_if);
                addr_if = b.mux(here, a, addr_if);
                data_if = b.mux(here, d, data_if);
            }
            decodes.push(Decode {
                kind_if,
                addr_if,
                data_if,
            });
        }

        // Per-core stall wires (needed before the memory update).
        let stalls: Vec<SignalId> = regs
            .iter()
            .enumerate()
            .map(|(c, r)| {
                let is_ld = b.eq_lit(r.kind_mem, kind::LOAD);
                let is_st = b.eq_lit(r.kind_mem, kind::STORE);
                let is_memop = b.or(is_ld, is_st);
                let granted = b.eq_lit(grant, c as u64);
                let ng = b.not_e(granted);
                let e = b.and(is_memop, ng);
                b.wire(format!("core{c}_stall_MEM"), e)
            })
            .collect();

        // Memory update: the granted core's store (unstalled, i.e. granted)
        // writes at the end of its Memory cycle.
        for (w, &mem_w) in mem.iter().enumerate() {
            let mut write_here = b.lit(0, 1);
            let mut write_data = b.lit(0, DATA_WIDTH);
            for (c, r) in regs.iter().enumerate() {
                let granted = b.eq_lit(grant, c as u64);
                let is_st = b.eq_lit(r.kind_mem, kind::STORE);
                let gs = b.and(granted, is_st);
                let here = b.eq_lit(r.addr_mem, w as u64);
                let wh = b.and(gs, here);
                write_here = b.or(write_here, wh);
                let d = b.sig(r.data_mem);
                write_data = b.mux(wh, d, write_data);
            }
            let hold = b.sig(mem_w);
            let next = b.mux(write_here, write_data, hold);
            b.set_next(mem_w, next);
        }

        let mut cores = Vec::with_capacity(NUM_CORES);
        for (c, r) in regs.iter().enumerate() {
            let stall = stalls[c];
            let st = b.sig(stall);
            let not_stall = b.not_e(st);

            // Fetch.
            let dec = &decodes[c];
            let at_halt = {
                let k = b.lit(kind::HALT, KIND_WIDTH);
                b.eq(dec.kind_if, k)
            };
            let pc = b.sig(r.pc_if);
            let step = b.lit(PC_STEP, PC_WIDTH);
            let pc_plus = b.add(pc, step);
            let pc_hold = b.sig(r.pc_if);
            let pc_adv = b.mux(at_halt, pc_hold, pc_plus);
            let pc_same = b.sig(r.pc_if);
            let pc_next = b.mux(not_stall, pc_adv, pc_same);
            b.set_next(r.pc_if, pc_next);

            // Stage advance helper: on stall every upstream register holds.
            let hold_or = |b: &mut DesignBuilder, reg: SignalId, val: crate::ExprId| {
                let hold = b.sig(reg);
                let next = b.mux(not_stall, val, hold);
                b.set_next(reg, next);
            };
            // IF -> ID.
            let pc_if_e = b.sig(r.pc_if);
            hold_or(&mut b, r.pc_id, pc_if_e);
            hold_or(&mut b, r.kind_id, dec.kind_if);
            hold_or(&mut b, r.addr_id, dec.addr_if);
            hold_or(&mut b, r.data_id, dec.data_if);
            // ID -> EX.
            let pcv = b.sig(r.pc_id);
            hold_or(&mut b, r.pc_ex, pcv);
            let kv = b.sig(r.kind_id);
            hold_or(&mut b, r.kind_ex, kv);
            let av = b.sig(r.addr_id);
            hold_or(&mut b, r.addr_ex, av);
            let dv = b.sig(r.data_id);
            hold_or(&mut b, r.data_ex, dv);
            // EX -> MEM.
            let pcv = b.sig(r.pc_ex);
            hold_or(&mut b, r.pc_mem, pcv);
            let kv = b.sig(r.kind_ex);
            hold_or(&mut b, r.kind_mem, kv);
            let av = b.sig(r.addr_ex);
            hold_or(&mut b, r.addr_mem, av);
            let dv = b.sig(r.data_ex);
            hold_or(&mut b, r.data_mem, dv);
            // MEM -> WB (bubble on stall).
            let bub_pc = b.lit(BUBBLE_PC, PC_WIDTH);
            let pcv = b.sig(r.pc_mem);
            let pc_wb_next = b.mux(not_stall, pcv, bub_pc);
            b.set_next(r.pc_wb, pc_wb_next);
            let bub_k = b.lit(kind::BUBBLE, KIND_WIDTH);
            let kv = b.sig(r.kind_mem);
            let kind_wb_next = b.mux(not_stall, kv, bub_k);
            b.set_next(r.kind_wb, kind_wb_next);

            // Memory-stage load result (combinational; meaningful in the
            // granted cycle).
            let mut read = b.lit(0, DATA_WIDTH);
            for (w, &mem_w) in mem.iter().enumerate() {
                let here = b.eq_lit(r.addr_mem, w as u64);
                let v = b.sig(mem_w);
                read = b.mux(here, v, read);
            }
            let load_data_mem = b.wire(format!("core{c}_load_data_MEM"), read);
            // Latch into WB.
            let is_ld = b.eq_lit(r.kind_mem, kind::LOAD);
            let take = b.and(not_stall, is_ld);
            let ldm = b.sig(load_data_mem);
            let hold = b.sig(r.load_data_wb);
            let ld_wb_next = b.mux(take, ldm, hold);
            b.set_next(r.load_data_wb, ld_wb_next);

            // Halt.
            let halt_in_mem = b.eq_lit(r.kind_mem, kind::HALT);
            let entering = b.and(not_stall, halt_in_mem);
            let was = b.sig(r.halted);
            let halted_next = b.or(was, entering);
            b.set_next(r.halted, halted_next);

            cores.push(FiveStageCore {
                pc_if: r.pc_if,
                pc_id: r.pc_id,
                pc_ex: r.pc_ex,
                pc_mem: r.pc_mem,
                pc_wb: r.pc_wb,
                kind_mem: r.kind_mem,
                addr_mem: r.addr_mem,
                store_data_mem: r.data_mem,
                load_data_mem,
                load_data_wb: r.load_data_wb,
                stall,
                halted: r.halted,
            });
        }

        let design = b.build().expect("Multi-Five-Stage IR is well-formed");
        FiveStage {
            design,
            grant,
            first,
            mem,
            imem,
            cores,
            programs,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::Simulator;
    use rtlcheck_litmus::suite;

    #[test]
    fn builds_for_every_suite_test() {
        for t in suite::all() {
            let fs = FiveStage::build(&t);
            assert!(fs.design.num_regs() > 40, "{}", t.name());
        }
    }

    #[test]
    fn pipeline_takes_five_stages_and_memory_works() {
        let t = rtlcheck_litmus::parse(
            "test p\n{ x = 0; }\ncore 0 { st x, 1; r1 = ld x; }\npermit ( 0:r1 = 1 )",
        )
        .unwrap();
        let fs = FiveStage::build(&t);
        let sim = Simulator::new(&fs.design);
        let pins: Vec<_> = fs.mem.iter().map(|&m| (m, 0)).collect();
        let mut s = sim.initial_state_with(&pins).unwrap();
        let mut store_mem_cycle = None;
        let mut load_value = None;
        for cycle in 0..16u64 {
            let g = 0u64;
            if sim.peek(&s, &[g], fs.cores[0].pc_mem) == isa::pc_of(0, 0) {
                store_mem_cycle = Some(cycle);
            }
            if sim.peek(&s, &[g], fs.cores[0].pc_mem) == isa::pc_of(0, 1)
                && sim.peek(&s, &[g], fs.cores[0].stall) == 0
            {
                load_value = Some(sim.peek(&s, &[g], fs.cores[0].load_data_mem));
            }
            s = sim.step(&s, &[g]);
        }
        // The first instruction reaches MEM at cycle 3 (IF=0, ID=1, EX=2,
        // MEM=3).
        assert_eq!(store_mem_cycle, Some(3));
        assert_eq!(
            load_value,
            Some(1),
            "the load sees the just-committed store"
        );
        assert_eq!(sim.peek(&s, &[0], fs.cores[0].halted), 1);
        assert_eq!(sim.peek(&s, &[0], fs.mem[0]), 1);
    }

    #[test]
    fn ungrantecd_memory_ops_stall_the_whole_pipeline() {
        let mp = suite::get("mp").unwrap();
        let fs = FiveStage::build(&mp);
        let sim = Simulator::new(&fs.design);
        let pins: Vec<_> = fs.mem.iter().map(|&m| (m, 0)).collect();
        let mut s = sim.initial_state_with(&pins).unwrap();
        // Never grant core 0: its store reaches MEM at cycle 3 and the
        // whole pipeline freezes there.
        for _ in 0..8 {
            s = sim.step(&s, &[3]);
        }
        assert_eq!(
            sim.peek(&s, &[3], fs.cores[0].pc_mem),
            0,
            "store stuck in MEM"
        );
        assert_eq!(sim.peek(&s, &[3], fs.cores[0].stall), 1);
        let pc_if = sim.peek(&s, &[3], fs.cores[0].pc_if);
        s = sim.step(&s, &[3]);
        assert_eq!(
            sim.peek(&s, &[3], fs.cores[0].pc_if),
            pc_if,
            "fetch holds too"
        );
        // Granting releases it.
        s = sim.step(&s, &[0]);
        assert_ne!(sim.peek(&s, &[0], fs.cores[0].pc_mem), 0);
    }

    #[test]
    fn fair_schedule_completes_mp_correctly() {
        let mp = suite::get("mp").unwrap();
        let fs = FiveStage::build(&mp);
        let sim = Simulator::new(&fs.design);
        let pins: Vec<_> = fs.mem.iter().map(|&m| (m, 0)).collect();
        let mut s = sim.initial_state_with(&pins).unwrap();
        for i in 0..64u64 {
            s = sim.step(&s, &[i % 4]);
        }
        for c in 0..NUM_CORES {
            assert_eq!(sim.peek(&s, &[0], fs.cores[c].halted), 1, "core {c}");
        }
        assert_eq!(sim.peek(&s, &[0], fs.mem[0]), 1);
        assert_eq!(sim.peek(&s, &[0], fs.mem[1]), 1);
    }
}

//! Cycle-accurate simulation of a [`Design`].

use std::error::Error;
use std::fmt;
use std::sync::Arc;

use crate::design::{Design, SignalId, SignalKind};
use crate::expr::{mask, BinOp, Expr, ExprId, UnOp};

/// The register contents of a design at one clock cycle.
///
/// States are compact (`Arc<[u64]>`, one word per register), cheap to clone,
/// and hashable — the explicit-state property verifier uses them directly as
/// graph keys.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct State(Arc<[u64]>);

impl State {
    /// Creates a state from raw register values (one per register, in
    /// declaration order).
    pub fn from_regs(regs: Vec<u64>) -> Self {
        State(regs.into())
    }

    /// Raw register values.
    pub fn regs(&self) -> &[u64] {
        &self.0
    }
}

/// An error raised when constructing an initial state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FreeInitError {
    /// Names of registers with unconstrained initial values.
    pub unpinned: Vec<String>,
}

impl fmt::Display for FreeInitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "registers with free initial values must be pinned: {}",
            self.unpinned.join(", ")
        )
    }
}

impl Error for FreeInitError {}

/// Evaluates a design cycle-by-cycle.
///
/// The simulator itself is stateless: callers hold [`State`]s and thread
/// them through [`Simulator::step`], which makes it trivially shareable
/// between the interactive simulator and the model checker.
#[derive(Debug, Clone)]
pub struct Simulator<'d> {
    design: &'d Design,
}

impl<'d> Simulator<'d> {
    /// Creates a simulator for `design`.
    pub fn new(design: &'d Design) -> Self {
        Simulator { design }
    }

    /// The design being simulated.
    pub fn design(&self) -> &'d Design {
        self.design
    }

    /// The reset state.
    ///
    /// # Errors
    ///
    /// Returns [`FreeInitError`] if any register has a free (unconstrained)
    /// initial value; use [`Simulator::initial_state_with`] to pin those.
    pub fn initial_state(&self) -> Result<State, FreeInitError> {
        self.initial_state_with(&[])
    }

    /// The reset state, with free-init registers pinned by `(signal, value)`
    /// pairs (typically derived from first-cycle verification assumptions).
    ///
    /// Pins for registers that also have a reset value override the reset
    /// value; this mirrors an RTL verifier letting initial-value assumptions
    /// constrain the reset state.
    ///
    /// # Errors
    ///
    /// Returns [`FreeInitError`] listing any free-init register that no pin
    /// covers.
    pub fn initial_state_with(&self, pins: &[(SignalId, u64)]) -> Result<State, FreeInitError> {
        let mut regs = vec![0u64; self.design.num_regs()];
        let mut unpinned = Vec::new();
        for (id, s) in self.design.signals() {
            if let SignalKind::Reg { index, init, .. } = s.kind {
                let pinned = pins.iter().find(|(p, _)| *p == id).map(|&(_, v)| v);
                match pinned.or(init) {
                    Some(v) => regs[index] = mask(v, s.width),
                    None => unpinned.push(s.name.clone()),
                }
            }
        }
        if unpinned.is_empty() {
            Ok(State::from_regs(regs))
        } else {
            Err(FreeInitError { unpinned })
        }
    }

    /// Evaluates an expression in the given state with the given inputs.
    pub fn eval(&self, state: &State, inputs: &[u64], expr: ExprId) -> u64 {
        debug_assert_eq!(inputs.len(), self.design.num_inputs());
        self.eval_inner(state, inputs, expr)
    }

    fn eval_inner(&self, state: &State, inputs: &[u64], expr: ExprId) -> u64 {
        match self.design.expr(expr) {
            Expr::Const { value, .. } => value,
            Expr::Sig(s) => self.peek(state, inputs, s),
            Expr::Unary { op, arg } => {
                let a = self.eval_inner(state, inputs, arg);
                match op {
                    UnOp::Not => mask(!a, self.design.expr_width(expr)),
                    UnOp::OrReduce => u64::from(a != 0),
                }
            }
            Expr::Binary { op, lhs, rhs } => {
                let (a, b) = (
                    self.eval_inner(state, inputs, lhs),
                    self.eval_inner(state, inputs, rhs),
                );
                let w = self.design.expr_width(expr);
                match op {
                    BinOp::And => a & b,
                    BinOp::Or => a | b,
                    BinOp::Xor => a ^ b,
                    BinOp::Add => mask(a.wrapping_add(b), w),
                    BinOp::Sub => mask(a.wrapping_sub(b), w),
                    BinOp::Eq => u64::from(a == b),
                    BinOp::Ne => u64::from(a != b),
                    BinOp::Lt => u64::from(a < b),
                }
            }
            Expr::Mux { cond, then_, else_ } => {
                if self.eval_inner(state, inputs, cond) != 0 {
                    self.eval_inner(state, inputs, then_)
                } else {
                    self.eval_inner(state, inputs, else_)
                }
            }
        }
    }

    /// The current value of any signal (input, register, or wire).
    pub fn peek(&self, state: &State, inputs: &[u64], sig: SignalId) -> u64 {
        match self.design.signal(sig).kind {
            SignalKind::Input { index } => inputs[index],
            SignalKind::Reg { index, .. } => state.regs()[index],
            SignalKind::Wire { expr } => self.eval_inner(state, inputs, expr),
        }
    }

    /// Advances one clock cycle: computes every register's next value from
    /// the current state and inputs, then commits them simultaneously
    /// (non-blocking assignment semantics).
    pub fn step(&self, state: &State, inputs: &[u64]) -> State {
        let mut next = vec![0u64; self.design.num_regs()];
        for (_, s) in self.design.signals() {
            if let SignalKind::Reg {
                index, next: expr, ..
            } = s.kind
            {
                next[index] = mask(self.eval_inner(state, inputs, expr), s.width);
            }
        }
        State::from_regs(next)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DesignBuilder;

    /// A 2-bit counter with an enable input.
    fn counter() -> Design {
        let mut b = DesignBuilder::new("c");
        let en = b.input("en", 1);
        let count = b.reg("count", 2, Some(0));
        let one = b.lit(1, 2);
        let inc = b.sig(count);
        let sum = b.add(inc, one);
        let ene = b.sig(en);
        let cur = b.sig(count);
        let nxt = b.mux(ene, sum, cur);
        b.set_next(count, nxt);
        let c2 = b.sig(count);
        let two = b.lit(2, 2);
        let at2 = b.eq(c2, two);
        b.wire("at_two", at2);
        b.build().unwrap()
    }

    #[test]
    fn counter_counts_and_wraps() {
        let d = counter();
        let sim = Simulator::new(&d);
        let count = d.signal_by_name("count").unwrap();
        let at_two = d.signal_by_name("at_two").unwrap();
        let mut s = sim.initial_state().unwrap();
        let mut seen = Vec::new();
        for cycle in 0..6 {
            seen.push(sim.peek(&s, &[1], count));
            if cycle == 2 {
                assert_eq!(sim.peek(&s, &[1], at_two), 1);
            }
            s = sim.step(&s, &[1]);
        }
        assert_eq!(seen, vec![0, 1, 2, 3, 0, 1], "2-bit counter wraps");
    }

    #[test]
    fn enable_gates_the_counter() {
        let d = counter();
        let sim = Simulator::new(&d);
        let count = d.signal_by_name("count").unwrap();
        let mut s = sim.initial_state().unwrap();
        s = sim.step(&s, &[0]);
        assert_eq!(sim.peek(&s, &[0], count), 0);
        s = sim.step(&s, &[1]);
        assert_eq!(sim.peek(&s, &[1], count), 1);
    }

    #[test]
    fn nonblocking_commit_semantics() {
        // Two registers swapping values each cycle — the classic test that
        // next-state evaluation reads pre-edge values.
        let mut b = DesignBuilder::new("swap");
        let a = b.reg("a", 4, Some(3));
        let c = b.reg("c", 4, Some(9));
        let ae = b.sig(a);
        let ce = b.sig(c);
        b.set_next(a, ce);
        b.set_next(c, ae);
        let d = b.build().unwrap();
        let sim = Simulator::new(&d);
        let s0 = sim.initial_state().unwrap();
        let s1 = sim.step(&s0, &[]);
        assert_eq!(s1.regs(), &[9, 3]);
        let s2 = sim.step(&s1, &[]);
        assert_eq!(s2.regs(), &[3, 9]);
    }

    #[test]
    fn free_init_requires_pinning() {
        let mut b = DesignBuilder::new("m");
        let m = b.reg("mem0", 8, None);
        let me = b.sig(m);
        b.set_next(m, me);
        let d = b.build().unwrap();
        let sim = Simulator::new(&d);
        let err = sim.initial_state().unwrap_err();
        assert_eq!(err.unpinned, vec!["mem0".to_string()]);
        let s = sim.initial_state_with(&[(m, 42)]).unwrap();
        assert_eq!(s.regs(), &[42]);
    }

    #[test]
    fn pins_are_masked_to_width() {
        let mut b = DesignBuilder::new("m");
        let m = b.reg("r", 4, None);
        let me = b.sig(m);
        b.set_next(m, me);
        let d = b.build().unwrap();
        let sim = Simulator::new(&d);
        let s = sim.initial_state_with(&[(m, 0xFF)]).unwrap();
        assert_eq!(s.regs(), &[0xF]);
    }

    #[test]
    fn states_hash_and_compare() {
        let s1 = State::from_regs(vec![1, 2, 3]);
        let s2 = State::from_regs(vec![1, 2, 3]);
        let s3 = State::from_regs(vec![1, 2, 4]);
        assert_eq!(s1, s2);
        assert_ne!(s1, s3);
        let set: std::collections::HashSet<State> = [s1, s2, s3].into_iter().collect();
        assert_eq!(set.len(), 2);
    }
}

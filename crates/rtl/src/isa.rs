//! The litmus-subset ISA executed by Multi-V-scale.
//!
//! The RTLCheck evaluation only exercises loads, stores, and the halt
//! instruction the authors added to V-scale. This module fixes the encoding
//! of those instructions in the modelled design: a packed word of
//! `(kind, address, data)` fields rather than RISC-V bit patterns — the
//! consistency-relevant content of an instruction is exactly those fields.

use rtlcheck_litmus::{LitmusTest, Op};

/// Instruction/pipeline-slot kind encodings (3 bits).
pub mod kind {
    /// Halt: stops the core once it reaches Writeback.
    pub const HALT: u64 = 0;
    /// Load from a data-memory word.
    pub const LOAD: u64 = 1;
    /// Store an immediate to a data-memory word.
    pub const STORE: u64 = 2;
    /// Pipeline bubble (never appears in instruction memory).
    pub const BUBBLE: u64 = 3;
    /// Full memory fence (mfence-style; drains the TSO store buffer).
    pub const FENCE: u64 = 4;
}

/// Program-counter value of a pipeline bubble: no real instruction ever has
/// this PC, so node-mapping equality checks cannot match bubbles.
pub const BUBBLE_PC: u64 = 0xFFFF_FFFF;

/// Byte distance between consecutive instructions.
pub const PC_STEP: u64 = 4;

/// Byte distance between the PC bases of consecutive cores. Programs are
/// limited to 15 instructions plus the final halt.
pub const CORE_PC_STRIDE: u64 = 64;

/// A decoded instruction as stored in instruction memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EncInstr {
    /// One of the [`kind`] encodings.
    pub kind: u64,
    /// Word address in data memory (the litmus location index).
    pub addr: u64,
    /// Store immediate (0 for loads and halts).
    pub data: u64,
}

impl EncInstr {
    /// The halt instruction.
    pub const HALT: EncInstr = EncInstr {
        kind: kind::HALT,
        addr: 0,
        data: 0,
    };

    /// Packs the instruction into a single word:
    /// `kind[42:40] | addr[39:32] | data[31:0]`.
    pub fn packed(self) -> u64 {
        (self.kind << 40) | (self.addr << 32) | self.data
    }
}

/// The starting PC of a core's program.
pub fn pc_base(core: usize) -> u64 {
    core as u64 * CORE_PC_STRIDE
}

/// The PC of instruction `index` (0-based, program order) on `core`.
pub fn pc_of(core: usize, index: usize) -> u64 {
    pc_base(core) + index as u64 * PC_STEP
}

/// Encodes one thread of a litmus test, terminated by [`EncInstr::HALT`].
pub fn encode_thread(ops: &[Op]) -> Vec<EncInstr> {
    let mut out: Vec<EncInstr> = ops
        .iter()
        .map(|op| match *op {
            Op::Load { loc, .. } => EncInstr {
                kind: kind::LOAD,
                addr: loc.0 as u64,
                data: 0,
            },
            Op::Store { loc, val } => EncInstr {
                kind: kind::STORE,
                addr: loc.0 as u64,
                data: u64::from(val.0),
            },
            Op::Fence => EncInstr {
                kind: kind::FENCE,
                addr: 0,
                data: 0,
            },
        })
        .collect();
    out.push(EncInstr::HALT);
    out
}

/// Encodes all programs of a litmus test for a machine with `num_cores`
/// cores. Cores beyond the test's threads run an immediate halt.
///
/// # Panics
///
/// Panics if the test has more threads than `num_cores`, or a thread longer
/// than 15 instructions (the per-core PC window).
pub fn encode_programs(test: &LitmusTest, num_cores: usize) -> Vec<Vec<EncInstr>> {
    assert!(
        test.num_cores() <= num_cores,
        "test `{}` needs {} cores but the design has {num_cores}",
        test.name(),
        test.num_cores()
    );
    let mut programs = Vec::with_capacity(num_cores);
    for c in 0..num_cores {
        let prog = match test.threads().get(c) {
            Some(ops) => encode_thread(ops),
            None => vec![EncInstr::HALT],
        };
        assert!(
            prog.len() as u64 * PC_STEP <= CORE_PC_STRIDE,
            "thread {c} of `{}` exceeds the per-core PC window",
            test.name()
        );
        programs.push(prog);
    }
    programs
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtlcheck_litmus::suite;

    #[test]
    fn pc_layout() {
        assert_eq!(pc_base(0), 0);
        assert_eq!(pc_base(1), 64);
        assert_eq!(pc_of(1, 2), 72);
    }

    #[test]
    fn encodes_mp_with_halts() {
        let mp = suite::get("mp").unwrap();
        let progs = encode_programs(&mp, 4);
        assert_eq!(progs.len(), 4);
        assert_eq!(progs[0].len(), 3, "two stores + halt");
        assert_eq!(progs[0][0].kind, kind::STORE);
        assert_eq!(progs[0][0].data, 1);
        assert_eq!(progs[1][0].kind, kind::LOAD);
        assert_eq!(progs[1][2], EncInstr::HALT);
        assert_eq!(
            progs[2],
            vec![EncInstr::HALT],
            "unused core halts immediately"
        );
    }

    #[test]
    fn packed_fields_are_disjoint() {
        let i = EncInstr {
            kind: kind::STORE,
            addr: 0x7,
            data: 0xDEAD_BEEF,
        };
        let p = i.packed();
        assert_eq!(p >> 40, kind::STORE);
        assert_eq!((p >> 32) & 0xFF, 0x7);
        assert_eq!(p & 0xFFFF_FFFF, 0xDEAD_BEEF);
    }

    #[test]
    #[should_panic(expected = "needs")]
    fn too_many_threads_panics() {
        let iriw = suite::get("iriw").unwrap();
        encode_programs(&iriw, 2);
    }

    #[test]
    fn whole_suite_encodes_for_four_cores() {
        for t in suite::all() {
            let progs = encode_programs(&t, 4);
            assert_eq!(progs.len(), 4, "{}", t.name());
        }
    }
}

//! Property-based invariants of the Multi-V-scale design under random
//! programs and arbiter schedules.

use proptest::prelude::*;
use rtlcheck_rtl::isa::{self, kind, EncInstr};
use rtlcheck_rtl::multi_vscale::{MemoryImpl, MultiVscale, NUM_CORES};
use rtlcheck_rtl::sim::Simulator;
use rtlcheck_rtl::SignalKind;

fn arb_instr() -> impl Strategy<Value = EncInstr> {
    prop_oneof![
        (0u64..3, 1u64..4).prop_map(|(addr, data)| EncInstr {
            kind: kind::STORE,
            addr,
            data
        }),
        (0u64..3).prop_map(|addr| EncInstr {
            kind: kind::LOAD,
            addr,
            data: 0
        }),
    ]
}

fn arb_programs() -> impl Strategy<Value = Vec<Vec<EncInstr>>> {
    proptest::collection::vec(
        proptest::collection::vec(arb_instr(), 0..4),
        NUM_CORES..=NUM_CORES,
    )
    .prop_map(|progs| {
        progs
            .into_iter()
            .map(|mut p| {
                p.push(EncInstr::HALT);
                p
            })
            .collect()
    })
}

fn arb_schedule() -> impl Strategy<Value = Vec<u64>> {
    proptest::collection::vec(0u64..4, 30..60)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Register values always fit their declared widths, on both memory
    /// implementations, under any schedule.
    #[test]
    fn values_respect_widths(programs in arb_programs(), schedule in arb_schedule()) {
        for memory in [MemoryImpl::Buggy, MemoryImpl::Fixed] {
            let mv = MultiVscale::build_raw(programs.clone(), 3, memory);
            let sim = Simulator::new(&mv.design);
            let pins: Vec<_> = mv.mem.iter().map(|&m| (m, 0)).collect();
            let mut state = sim.initial_state_with(&pins).unwrap();
            for &g in &schedule {
                for (_, s) in mv.design.signals() {
                    if let SignalKind::Reg { index, .. } = s.kind {
                        let v = state.regs()[index];
                        let max = if s.width == 64 { u64::MAX } else { (1 << s.width) - 1 };
                        prop_assert!(v <= max, "{} = {v} exceeds {} bits", s.name, s.width);
                    }
                }
                state = sim.step(&state, &[g]);
            }
        }
    }

    /// `halted` is monotone and all cores eventually halt under a fair
    /// round-robin schedule; the final state is absorbing.
    #[test]
    fn fair_schedules_reach_an_absorbing_halt(programs in arb_programs()) {
        for memory in [MemoryImpl::Buggy, MemoryImpl::Fixed] {
            let mv = MultiVscale::build_raw(programs.clone(), 3, memory);
            let sim = Simulator::new(&mv.design);
            let pins: Vec<_> = mv.mem.iter().map(|&m| (m, 0)).collect();
            let mut state = sim.initial_state_with(&pins).unwrap();
            let mut halted_before = [false; NUM_CORES];
            for cycle in 0..64u64 {
                let g = cycle % 4;
                for (c, core) in mv.cores.iter().enumerate() {
                    let h = sim.peek(&state, &[g], core.halted) == 1;
                    prop_assert!(h || !halted_before[c], "core {c} un-halted");
                    halted_before[c] = h;
                }
                state = sim.step(&state, &[g]);
            }
            for (c, core) in mv.cores.iter().enumerate() {
                prop_assert_eq!(sim.peek(&state, &[0], core.halted), 1, "core {} never halted", c);
            }
            for g in 0..4u64 {
                let next = sim.step(&state, &[g]);
                prop_assert_eq!(&next, &sim.step(&next, &[g]), "state not absorbing");
            }
        }
    }

    /// The *fixed* memory is sequentially consistent: replaying the
    /// schedule and tracking the memory order (stores apply one cycle after
    /// their WB) must show every load returning the latest committed store
    /// value, which the simulator's `load_data_WB` must match.
    #[test]
    fn fixed_memory_loads_return_latest_committed_store(
        programs in arb_programs(),
        schedule in arb_schedule(),
    ) {
        let mv = MultiVscale::build_raw(programs.clone(), 3, MemoryImpl::Fixed);
        let sim = Simulator::new(&mv.design);
        let pins: Vec<_> = mv.mem.iter().map(|&m| (m, 0)).collect();
        let mut state = sim.initial_state_with(&pins).unwrap();
        // Reference memory: applied when a store's WB completes (visible to
        // loads one cycle later, like the RTL).
        let mut ref_mem = [0u64; 3];
        for &g in &schedule {
            // Check loads currently in WB against the reference memory.
            for (c, core) in mv.cores.iter().enumerate() {
                if sim.peek(&state, &[g], core.kind_wb) == kind::LOAD {
                    let addr = sim.peek(&state, &[g], core.addr_wb) as usize;
                    let got = sim.peek(&state, &[g], core.load_data_wb);
                    prop_assert_eq!(
                        got, ref_mem[addr],
                        "core {} load of word {} diverged from the reference", c, addr
                    );
                }
            }
            // Commit stores in WB to the reference (visible next cycle).
            for core in &mv.cores {
                if sim.peek(&state, &[g], core.kind_wb) == kind::STORE {
                    let addr = sim.peek(&state, &[g], core.addr_wb) as usize;
                    ref_mem[addr] = sim.peek(&state, &[g], core.store_data_wb);
                }
            }
            state = sim.step(&state, &[g]);
        }
    }

    /// Instruction encoding round-trips through packing.
    #[test]
    fn packed_encoding_roundtrips(i in arb_instr()) {
        let p = i.packed();
        prop_assert_eq!(p >> 40, i.kind);
        prop_assert_eq!((p >> 32) & 0xFF, i.addr);
        prop_assert_eq!(p & 0xFFFF_FFFF, i.data);
    }

    /// PC layout never collides across cores.
    #[test]
    fn pc_layout_is_disjoint(c1 in 0usize..4, i1 in 0usize..16, c2 in 0usize..4, i2 in 0usize..16) {
        prop_assume!((c1, i1) != (c2, i2));
        prop_assert_ne!(isa::pc_of(c1, i1), isa::pc_of(c2, i2));
    }
}

//! Property-based robustness of the mutation engine: any sequence of
//! catalog mutations either applies cleanly (yielding a well-formed
//! [`Design`] whose bounded simulation never panics and whose register
//! values respect their declared widths) or fails with a structured
//! [`MutateError`] — never a panic, never a malformed design.

use proptest::prelude::*;
use rtlcheck_litmus::suite;
use rtlcheck_rtl::five_stage::FiveStage;
use rtlcheck_rtl::multi_vscale::{MemoryImpl, MultiVscale};
use rtlcheck_rtl::mutate::{catalog, CatalogTarget};
use rtlcheck_rtl::sim::Simulator;
use rtlcheck_rtl::{Design, SignalKind};

fn base(target: CatalogTarget, test: &rtlcheck_litmus::LitmusTest) -> Design {
    match target {
        CatalogTarget::MultiVscale => MultiVscale::build(test, MemoryImpl::Fixed).design,
        CatalogTarget::Tso => MultiVscale::build(test, MemoryImpl::Tso).design,
        CatalogTarget::FiveStage => FiveStage::build(test).design,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Random subsequences of the catalog — including repeats, where a
    /// second application may target an already-rewritten cone — either
    /// chain into a well-formed design or error cleanly; the surviving
    /// design simulates for a bounded run without panicking and with every
    /// register inside its declared width.
    #[test]
    fn random_mutation_sequences_stay_well_formed(
        target_idx in 0usize..3,
        picks in proptest::collection::vec(0usize..16, 0..4),
        schedule in proptest::collection::vec(0u64..4, 20..40),
    ) {
        let target = CatalogTarget::all()[target_idx];
        let cat = catalog(target);
        let mp = suite::get("mp").unwrap();
        let mut design = base(target, &mp);
        for &p in &picks {
            let m = &cat[p % cat.len()];
            // A repeated or conflicting mutation may no longer find its
            // cone — that must be a structured error, never a panic; the
            // previous (well-formed) design stays current.
            if let Ok(d) = m.apply(&design) {
                prop_assert!(
                    d.name().ends_with(&format!("__{}", m.name)),
                    "mutant rename missing: {}",
                    d.name()
                );
                design = d;
            }
        }

        let sim = Simulator::new(&design);
        let pins: Vec<_> = design
            .signals()
            .filter_map(|(id, s)| match s.kind {
                SignalKind::Reg { init: None, .. } => Some((id, 0u64)),
                _ => None,
            })
            .collect();
        let mut state = sim.initial_state_with(&pins).unwrap();
        let inputs: Vec<(usize, u8)> = design
            .signals()
            .filter_map(|(_, s)| match s.kind {
                SignalKind::Input { index } => Some((index, s.width)),
                _ => None,
            })
            .collect();
        for &g in &schedule {
            let mut ins = vec![0u64; inputs.len()];
            for &(index, width) in &inputs {
                let mask = if width >= 64 { u64::MAX } else { (1u64 << width) - 1 };
                ins[index] = g & mask;
            }
            for (_, s) in design.signals() {
                if let SignalKind::Reg { index, .. } = s.kind {
                    let v = state.regs()[index];
                    let max = if s.width == 64 { u64::MAX } else { (1 << s.width) - 1 };
                    prop_assert!(v <= max, "{} = {v} exceeds {} bits", s.name, s.width);
                }
            }
            state = sim.step(&state, &ins);
        }
    }
}

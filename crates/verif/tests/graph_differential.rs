//! Differential testing of the graph-walk engine against the monolithic
//! reference exploration, over random small designs, assumptions, and
//! properties.
//!
//! The refactor's contract is that [`rtlcheck_verif::verify_property`] and
//! [`rtlcheck_verif::check_cover`] — now NFA walks over a shared
//! [`rtlcheck_verif::StateGraph`] — are observationally identical to the
//! pre-split engine: same verdicts, same [`rtlcheck_verif::ExploreStats`]
//! (states, transitions, assumption pruning, completed depth), same
//! counterexample traces, under every budget. The suite-level differential
//! lives in `tests/differential.rs` at the workspace root; this file covers
//! the space the suite does not: random designs and budgets chosen to land
//! on every verdict variant.

use proptest::prelude::*;
use rtlcheck_rtl::{Design, DesignBuilder, SignalId};
use rtlcheck_sva::{Prop, Seq, SvaBool};
use rtlcheck_verif::explore::{check_cover_reference, verify_property_reference};
use rtlcheck_verif::{
    check_cover, verify_property, Directive, Engine, EngineKind, Problem, RtlAtom, VerifyConfig,
};

/// Recipe for one random design: register widths/inits and per-register
/// update behaviour, all driven by proptest-chosen small integers.
#[derive(Debug, Clone)]
struct DesignRecipe {
    input_width: u8,
    regs: Vec<RegRecipe>,
}

#[derive(Debug, Clone)]
struct RegRecipe {
    width: u8,
    init: u64,
    /// Input value that enables this register's update.
    enable_on: u64,
    /// 0 = increment, 1 = xor with literal, 2 = decrement when another
    /// register holds a chosen value.
    op: u8,
    operand: u64,
}

fn arb_recipe() -> impl Strategy<Value = DesignRecipe> {
    let reg = (1u8..=3, 0u64..8, 0u64..4, 0u8..3, 0u64..8).prop_map(
        |(width, init, enable_on, op, operand)| RegRecipe {
            width,
            init: init & ((1 << width) - 1),
            enable_on,
            op,
            operand: operand & ((1 << width) - 1),
        },
    );
    (1u8..=2, proptest::collection::vec(reg, 1..=3))
        .prop_map(|(input_width, regs)| DesignRecipe { input_width, regs })
}

fn build(recipe: &DesignRecipe) -> (Design, Vec<SignalId>, SignalId) {
    let mut b = DesignBuilder::new("rand");
    let en = b.input("en", recipe.input_width);
    let reg_ids: Vec<SignalId> = recipe
        .regs
        .iter()
        .enumerate()
        .map(|(i, r)| b.reg(format!("r{i}"), r.width, Some(r.init)))
        .collect();
    for (i, r) in recipe.regs.iter().enumerate() {
        let id = reg_ids[i];
        let cur = b.sig(id);
        let max_in = (1u64 << recipe.input_width) - 1;
        let cond = b.eq_lit(en, r.enable_on & max_in);
        let updated = match r.op {
            0 => {
                let one = b.lit(1, r.width);
                b.add(cur, one)
            }
            1 => {
                let k = b.lit(r.operand, r.width);
                b.xor(cur, k)
            }
            _ => {
                // Decrement gated on a sibling register's value: couples the
                // registers so the product space is not a plain cross
                // product.
                let other = reg_ids[(i + 1) % reg_ids.len()];
                let trigger = b.eq_lit(
                    other,
                    r.operand & ((1 << recipe.regs[(i + 1) % recipe.regs.len()].width) - 1),
                );
                let one = b.lit(1, r.width);
                let dec = b.sub(cur, one);
                b.mux(trigger, dec, cur)
            }
        };
        let next = b.mux(cond, updated, cur);
        b.set_next(id, next);
    }
    let d = b.build().expect("recipe designs are well-formed");
    (d, reg_ids, en)
}

/// The property shapes the generators emit (§4.2–4.4 reduce to these).
fn props_for(regs: &[SignalId], recipe: &DesignRecipe) -> Vec<Prop<RtlAtom>> {
    let r0 = regs[0];
    let v0 = recipe.regs[0].operand;
    let rl = *regs.last().unwrap();
    let vl = recipe.regs.last().unwrap().init;
    vec![
        Prop::Never(SvaBool::atom(RtlAtom::eq(r0, v0))),
        Prop::implies(
            SvaBool::atom(RtlAtom::eq(rl, vl)),
            Prop::Never(SvaBool::atom(RtlAtom::eq(r0, v0))),
        ),
        Prop::seq(Seq::then(
            Seq::boolean(SvaBool::atom(RtlAtom::eq(rl, vl))),
            Seq::delay(
                1,
                Some(3),
                Seq::boolean(SvaBool::not(SvaBool::atom(RtlAtom::eq(r0, v0)))),
            ),
        )),
    ]
}

fn configs() -> Vec<VerifyConfig> {
    vec![
        VerifyConfig::quick(),
        VerifyConfig::hybrid(),
        // A starved configuration that forces BudgetHit on both the state
        // and the depth axis.
        VerifyConfig {
            name: "tiny".into(),
            engines: vec![
                Engine {
                    kind: EngineKind::Bounded,
                    max_states: 100_000,
                    max_depth: Some(2),
                },
                Engine {
                    kind: EngineKind::Full,
                    max_states: 5,
                    max_depth: None,
                },
            ],
            cover_max_states: 5,
        },
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Property verdicts, statistics, and counterexample traces are
    /// identical between the graph walk and the reference exploration, for
    /// every property shape, configuration, and assumption set.
    #[test]
    fn property_verdicts_match_the_reference(
        recipe in arb_recipe(),
        assume_en in prop_oneof![Just(None), (0u64..4).prop_map(Some)],
    ) {
        let (design, regs, en) = build(&recipe);
        let mut problem = Problem::new(&design);
        if let Some(v) = assume_en {
            let max_in = (1u64 << recipe.input_width) - 1;
            problem.assumptions.push(Directive::assume(
                "en_pin",
                Prop::Never(SvaBool::atom(RtlAtom::eq(en, v & max_in))),
            ));
        }
        for prop in props_for(&regs, &recipe) {
            for config in configs() {
                let walk = verify_property(&problem, &prop, &config);
                let reference = verify_property_reference(&problem, &prop, &config);
                prop_assert_eq!(
                    format!("{walk:?}"),
                    format!("{reference:?}"),
                    "config {} prop {:?}",
                    config.name,
                    prop
                );
            }
        }
    }

    /// Cover-search verdicts (trace, unreachable, unknown) and statistics
    /// are identical between the two engines.
    #[test]
    fn cover_verdicts_match_the_reference(
        recipe in arb_recipe(),
        cover_value in 0u64..8,
        budget in prop_oneof![Just(5usize), Just(100_000usize)],
    ) {
        let (design, regs, _) = build(&recipe);
        let mut problem = Problem::new(&design);
        let r0 = regs[0];
        let w = recipe.regs[0].width;
        problem.cover = Some(SvaBool::atom(RtlAtom::eq(r0, cover_value & ((1 << w) - 1))));
        let engine = Engine::full(budget);
        let walk = check_cover(&problem, engine);
        let reference = check_cover_reference(&problem, engine);
        prop_assert_eq!(format!("{walk:?}"), format!("{reference:?}"));
    }
}

//! Cut-soundness proptest for the composed (modular) backend.
//!
//! The composed backend's contract is "never wrong, only sometimes no
//! faster": for *any* design, assumption set, and property set, either
//!
//! * [`rtlcheck_verif::ComposedGraph::build`] succeeds and the resulting
//!   graph is **byte-identical** to the flat explicit build — same nodes
//!   in the same discovery order, same edges, prunes, atom bitsets, and
//!   statistics, hence identical walk verdicts; or
//! * it returns a structured [`rtlcheck_verif::ComposedFallback`] and the
//!   caller runs the flat engine.
//!
//! There is no third outcome: a non-conservative cut must be *detected*
//! (region merging at analysis time), never silently walked. This file
//! drives that contract over 1,000 random designs built from independent
//! register groups — sometimes coupled by cross-group next-state reads or
//! spanning assumptions, so both the compose and the fallback arm are
//! exercised — with random assumptions, properties, and pruning.
//!
//! The suite-level differential (all 56 litmus tests, fixed and buggy
//! memory, jobs 1 vs 8) lives in `tests/composed_differential.rs` at the
//! workspace root.

use proptest::prelude::*;
use rtlcheck_rtl::{Design, DesignBuilder, SignalId};
use rtlcheck_sva::{Prop, SvaBool};
use rtlcheck_verif::{
    verify_property_on_graph, ComposedFallback, ComposedGraph, Directive, Engine, Problem, RtlAtom,
    StateGraph, VerifyConfig,
};

/// One register of a group: a small counter/xor cell over the shared
/// input, optionally reading its group sibling (`coupled`).
#[derive(Debug, Clone)]
struct RegRecipe {
    width: u8,
    init: u64,
    enable_on: u64,
    /// 0 = increment, 1 = xor with `operand`, 2 = decrement when the
    /// group sibling holds `operand` (intra-group coupling).
    op: u8,
    operand: u64,
}

/// A candidate module region: registers that read only each other and the
/// shared input.
#[derive(Debug, Clone)]
struct GroupRecipe {
    regs: Vec<RegRecipe>,
}

#[derive(Debug, Clone)]
struct DesignRecipe {
    input_width: u8,
    groups: Vec<GroupRecipe>,
    /// Couple the first registers of groups 0 and 1 through a next-state
    /// read, collapsing them into one region at partition time.
    cross_wire: bool,
}

fn arb_recipe() -> impl Strategy<Value = DesignRecipe> {
    let reg = (1u8..=2, 0u64..4, 0u64..4, 0u8..3, 0u64..4).prop_map(
        |(width, init, enable_on, op, operand)| RegRecipe {
            width,
            init: init & ((1 << width) - 1),
            enable_on,
            op,
            operand: operand & ((1 << width) - 1),
        },
    );
    let group = proptest::collection::vec(reg, 1..=2).prop_map(|regs| GroupRecipe { regs });
    (
        1u8..=2,
        proptest::collection::vec(group, 2..=3),
        prop_oneof![1 => Just(true), 4 => Just(false)],
    )
        .prop_map(|(input_width, groups, cross_wire)| DesignRecipe {
            input_width,
            groups,
            cross_wire,
        })
}

/// Builds the recipe's design; returns the first register of each group.
fn build(recipe: &DesignRecipe) -> (Design, Vec<SignalId>, SignalId) {
    let mut b = DesignBuilder::new("grouped");
    let en = b.input("en", recipe.input_width);
    let max_in = (1u64 << recipe.input_width) - 1;
    let mut group_heads = Vec::new();
    let mut all_ids: Vec<Vec<SignalId>> = Vec::new();
    for (gi, g) in recipe.groups.iter().enumerate() {
        let ids: Vec<SignalId> = g
            .regs
            .iter()
            .enumerate()
            .map(|(ri, r)| b.reg(format!("g{gi}r{ri}"), r.width, Some(r.init)))
            .collect();
        group_heads.push(ids[0]);
        all_ids.push(ids);
    }
    for (gi, g) in recipe.groups.iter().enumerate() {
        for (ri, r) in g.regs.iter().enumerate() {
            let id = all_ids[gi][ri];
            let cur = b.sig(id);
            let cond = b.eq_lit(en, r.enable_on & max_in);
            let updated = match r.op {
                0 => {
                    let one = b.lit(1, r.width);
                    b.add(cur, one)
                }
                1 => {
                    let k = b.lit(r.operand, r.width);
                    b.xor(cur, k)
                }
                _ => {
                    // Read the group sibling (or self in a 1-reg group):
                    // intra-group coupling that must stay inside the region.
                    let sibling = all_ids[gi][(ri + 1) % g.regs.len()];
                    let sw = recipe.groups[gi].regs[(ri + 1) % g.regs.len()].width;
                    let trigger = b.eq_lit(sibling, r.operand & ((1 << sw) - 1));
                    let one = b.lit(1, r.width);
                    let dec = b.sub(cur, one);
                    b.mux(trigger, dec, cur)
                }
            };
            let next = if recipe.cross_wire && gi == 0 && ri == 0 {
                // Cross-group read: group 1's head gates group 0's head,
                // merging the two candidate regions at partition time.
                let other = all_ids[1][0];
                let ow = recipe.groups[1].regs[0].width;
                let gate = b.eq_lit(other, recipe.groups[1].regs[0].init & ((1 << ow) - 1));
                let held = b.mux(cond, updated, cur);
                b.mux(gate, held, cur)
            } else {
                b.mux(cond, updated, cur)
            };
            b.set_next(id, next);
        }
    }
    let d = b.build().expect("recipe designs are well-formed");
    (d, group_heads, en)
}

/// One `Never` property per group head, so the atom table has a
/// region-local atom for every candidate region.
fn props_for(heads: &[SignalId], recipe: &DesignRecipe) -> Vec<Prop<RtlAtom>> {
    heads
        .iter()
        .zip(&recipe.groups)
        .map(|(&head, g)| {
            let target = g.regs[0].operand & ((1 << g.regs[0].width) - 1);
            Prop::Never(SvaBool::atom(RtlAtom::eq(head, target)))
        })
        .collect()
}

/// Both arms of the contract are reachable from the recipe space: the
/// uncoupled recipe composes (one region per group) and the cross-wired
/// variant of the *same* recipe merges into the structured fallback — so
/// the proptest below exercises compose and fallback, not just one.
#[test]
fn recipe_space_covers_both_arms() {
    let reg = RegRecipe {
        width: 2,
        init: 0,
        enable_on: 0,
        op: 0,
        operand: 1,
    };
    let mut recipe = DesignRecipe {
        input_width: 1,
        groups: vec![
            GroupRecipe {
                regs: vec![reg.clone()],
            },
            GroupRecipe { regs: vec![reg] },
        ],
        cross_wire: false,
    };
    let engine = Engine::full(100_000);

    let (design, heads, _) = build(&recipe);
    let problem = Problem::new(&design);
    let props = props_for(&heads, &recipe);
    let composed =
        ComposedGraph::build(&problem, props.iter(), engine).expect("uncoupled groups compose");
    assert_eq!(composed.regions(), 2);

    recipe.cross_wire = true;
    let (design, heads, _) = build(&recipe);
    let problem = Problem::new(&design);
    let props = props_for(&heads, &recipe);
    let err = ComposedGraph::build(&problem, props.iter(), engine).unwrap_err();
    assert_eq!(err, ComposedFallback::SingleRegion);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(1000))]

    /// Over 1,000 random designs: composing either reproduces the flat
    /// explicit graph byte-for-byte (snapshot, statistics, and every walk
    /// verdict) or takes the structured fallback. Silent divergence — a
    /// composed build that succeeds but differs from flat — fails the
    /// test; an *unstructured* escape (panic) would too.
    #[test]
    fn composition_is_byte_identical_or_structured_fallback(
        recipe in arb_recipe(),
        assume_en in prop_oneof![Just(None), (0u64..4).prop_map(Some)],
        span_groups in prop_oneof![1 => Just(true), 3 => Just(false)],
    ) {
        let (design, heads, en) = build(&recipe);
        let mut problem = Problem::new(&design);
        if let Some(v) = assume_en {
            let max_in = (1u64 << recipe.input_width) - 1;
            problem.assumptions.push(Directive::assume(
                "en_pin",
                Prop::Never(SvaBool::atom(RtlAtom::eq(en, v & max_in))),
            ));
        }
        if span_groups {
            // An assumption reading two groups couples them; analysis must
            // merge the regions (or fall back), never split the monitor.
            let w0 = recipe.groups[0].regs[0].width;
            let w1 = recipe.groups[1].regs[0].width;
            problem.assumptions.push(Directive::assume(
                "span",
                Prop::Never(SvaBool::and(
                    SvaBool::atom(RtlAtom::eq(heads[0], (1 << w0) - 1)),
                    SvaBool::atom(RtlAtom::eq(heads[1], (1 << w1) - 1)),
                )),
            ));
        }
        let props = props_for(&heads, &recipe);
        let engine = Engine::full(100_000);
        match ComposedGraph::build(&problem, props.iter(), engine) {
            Ok(composed) => {
                let flat = StateGraph::build(&problem, props.iter(), engine);
                prop_assert_eq!(composed.stats(), flat.stats(), "statistics diverged");
                prop_assert_eq!(
                    composed.snapshot(),
                    flat.snapshot(),
                    "graph cores diverged"
                );
                let config = VerifyConfig::hybrid();
                for prop in &props {
                    let c = verify_property_on_graph(&composed, prop, &config);
                    let e = verify_property_on_graph(&flat, prop, &config);
                    prop_assert_eq!(
                        format!("{c:?}"),
                        format!("{e:?}"),
                        "verdict diverged for {:?}",
                        prop
                    );
                }
            }
            Err(fb) => {
                // The structured escape: only the two declared reasons.
                prop_assert!(matches!(
                    fb,
                    ComposedFallback::SingleRegion | ComposedFallback::NoRegisters
                ));
            }
        }
    }

    /// The analysis decision is *stable*: re-analyzing the same problem
    /// reaches the same compose-or-fallback outcome with the same region
    /// count — the property the serve coalescer's module fingerprint
    /// depends on.
    #[test]
    fn analysis_is_deterministic(recipe in arb_recipe()) {
        let (design, heads, _) = build(&recipe);
        let problem = Problem::new(&design);
        let props = props_for(&heads, &recipe);
        let engine = Engine::full(100_000);
        let a = ComposedGraph::build(&problem, props.iter(), engine);
        let b = ComposedGraph::build(&problem, props.iter(), engine);
        match (a, b) {
            (Ok(ga), Ok(gb)) => {
                prop_assert_eq!(ga.regions(), gb.regions());
                prop_assert_eq!(ga.snapshot(), gb.snapshot());
            }
            (Err(ea), Err(eb)) => prop_assert_eq!(ea, eb),
            (a, b) => {
                return Err(TestCaseError::Fail(format!(
                    "outcome flip-flopped: {:?} vs {:?}",
                    a.map(|g| g.regions()),
                    b.map(|g| g.regions()),
                )));
            }
        }
    }
}

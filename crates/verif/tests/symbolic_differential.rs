//! Differential testing of the symbolic (BDD) backend against the explicit
//! [`rtlcheck_verif::StateGraph`], over random small designs, assumptions,
//! properties, and budgets.
//!
//! The backend contract is that a walk over a
//! [`rtlcheck_verif::SymbolicGraph`] is observationally identical to the
//! same walk over the explicit graph: same verdicts, same counterexample
//! traces (the symbolic backend's class representatives are exactly the
//! explicit engine's first-occurrence inputs), and same
//! [`rtlcheck_verif::ExploreStats`] down to per-valuation transition and
//! pruning counts — even when a budget stops a walk mid-row. The suite- and
//! campaign-level differential lives in `tests/backend_differential.rs` at
//! the workspace root and in the CI `backend-differential` job; this file
//! covers random designs and budgets chosen to land on every verdict
//! variant.

use proptest::prelude::*;
use rtlcheck_rtl::{Design, DesignBuilder, SignalId};
use rtlcheck_sva::{Prop, Seq, SvaBool};
use rtlcheck_verif::{
    check_cover_on_graph, verify_property_on_graph, Backend, Directive, Engine, EngineKind,
    Problem, RtlAtom, StateGraph, SymbolicGraph, VerifyConfig,
};

/// Recipe for one random design, mirroring `graph_differential.rs`.
#[derive(Debug, Clone)]
struct DesignRecipe {
    input_width: u8,
    regs: Vec<RegRecipe>,
}

#[derive(Debug, Clone)]
struct RegRecipe {
    width: u8,
    init: u64,
    enable_on: u64,
    /// 0 = increment, 1 = xor with literal, 2 = decrement when another
    /// register holds a chosen value.
    op: u8,
    operand: u64,
}

fn arb_recipe() -> impl Strategy<Value = DesignRecipe> {
    let reg = (1u8..=3, 0u64..8, 0u64..4, 0u8..3, 0u64..8).prop_map(
        |(width, init, enable_on, op, operand)| RegRecipe {
            width,
            init: init & ((1 << width) - 1),
            enable_on,
            op,
            operand: operand & ((1 << width) - 1),
        },
    );
    (1u8..=2, proptest::collection::vec(reg, 1..=3))
        .prop_map(|(input_width, regs)| DesignRecipe { input_width, regs })
}

fn build(recipe: &DesignRecipe) -> (Design, Vec<SignalId>, SignalId) {
    let mut b = DesignBuilder::new("rand");
    let en = b.input("en", recipe.input_width);
    let reg_ids: Vec<SignalId> = recipe
        .regs
        .iter()
        .enumerate()
        .map(|(i, r)| b.reg(format!("r{i}"), r.width, Some(r.init)))
        .collect();
    for (i, r) in recipe.regs.iter().enumerate() {
        let id = reg_ids[i];
        let cur = b.sig(id);
        let max_in = (1u64 << recipe.input_width) - 1;
        let cond = b.eq_lit(en, r.enable_on & max_in);
        let updated = match r.op {
            0 => {
                let one = b.lit(1, r.width);
                b.add(cur, one)
            }
            1 => {
                let k = b.lit(r.operand, r.width);
                b.xor(cur, k)
            }
            _ => {
                let other = reg_ids[(i + 1) % reg_ids.len()];
                let trigger = b.eq_lit(
                    other,
                    r.operand & ((1 << recipe.regs[(i + 1) % recipe.regs.len()].width) - 1),
                );
                let one = b.lit(1, r.width);
                let dec = b.sub(cur, one);
                b.mux(trigger, dec, cur)
            }
        };
        let next = b.mux(cond, updated, cur);
        b.set_next(id, next);
    }
    let d = b.build().expect("recipe designs are well-formed");
    (d, reg_ids, en)
}

fn props_for(regs: &[SignalId], recipe: &DesignRecipe) -> Vec<Prop<RtlAtom>> {
    let r0 = regs[0];
    let v0 = recipe.regs[0].operand;
    let rl = *regs.last().unwrap();
    let vl = recipe.regs.last().unwrap().init;
    vec![
        Prop::Never(SvaBool::atom(RtlAtom::eq(r0, v0))),
        Prop::implies(
            SvaBool::atom(RtlAtom::eq(rl, vl)),
            Prop::Never(SvaBool::atom(RtlAtom::eq(r0, v0))),
        ),
        Prop::seq(Seq::then(
            Seq::boolean(SvaBool::atom(RtlAtom::eq(rl, vl))),
            Seq::delay(
                1,
                Some(3),
                Seq::boolean(SvaBool::not(SvaBool::atom(RtlAtom::eq(r0, v0)))),
            ),
        )),
    ]
}

fn configs() -> Vec<VerifyConfig> {
    vec![
        VerifyConfig::quick(),
        VerifyConfig::hybrid(),
        // Starved: forces BudgetHit on both the state and the depth axis,
        // so mid-row settlement gets exercised.
        VerifyConfig {
            name: "tiny".into(),
            engines: vec![
                Engine {
                    kind: EngineKind::Bounded,
                    max_states: 100_000,
                    max_depth: Some(2),
                },
                Engine {
                    kind: EngineKind::Full,
                    max_states: 5,
                    max_depth: None,
                },
            ],
            cover_max_states: 5,
        },
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Property verdicts, statistics, and counterexample traces are
    /// identical across the two backends, for every property shape,
    /// configuration, and assumption set.
    #[test]
    fn property_verdicts_match_across_backends(
        recipe in arb_recipe(),
        assume_en in prop_oneof![Just(None), (0u64..4).prop_map(Some)],
    ) {
        let (design, regs, en) = build(&recipe);
        let mut problem = Problem::new(&design);
        if let Some(v) = assume_en {
            let max_in = (1u64 << recipe.input_width) - 1;
            problem.assumptions.push(Directive::assume(
                "en_pin",
                Prop::Never(SvaBool::atom(RtlAtom::eq(en, v & max_in))),
            ));
        }
        let props = props_for(&regs, &recipe);
        let explicit = StateGraph::new(&problem, props.iter());
        let symbolic = SymbolicGraph::new(&problem, props.iter());
        for prop in &props {
            for config in configs() {
                let e = verify_property_on_graph(&explicit, prop, &config);
                let s = verify_property_on_graph(&symbolic, prop, &config);
                prop_assert_eq!(
                    format!("{e:?}"),
                    format!("{s:?}"),
                    "config {} prop {:?}",
                    config.name,
                    prop
                );
            }
        }
    }

    /// Cover-search verdicts (trace, unreachable, unknown) and statistics
    /// are identical across the two backends.
    #[test]
    fn cover_verdicts_match_across_backends(
        recipe in arb_recipe(),
        cover_value in 0u64..8,
        budget in prop_oneof![Just(5usize), Just(100_000usize)],
    ) {
        let (design, regs, _) = build(&recipe);
        let mut problem = Problem::new(&design);
        let r0 = regs[0];
        let w = recipe.regs[0].width;
        problem.cover = Some(SvaBool::atom(RtlAtom::eq(r0, cover_value & ((1 << w) - 1))));
        let engine = Engine::full(budget);
        let explicit = StateGraph::new(&problem, []);
        let symbolic = SymbolicGraph::new(&problem, []);
        let e = check_cover_on_graph(&explicit, engine);
        let s = check_cover_on_graph(&symbolic, engine);
        prop_assert_eq!(format!("{e:?}"), format!("{s:?}"));
    }

    /// Eagerly warmed graphs report the same structural statistics, and
    /// warming never changes a walk's outcome on either backend (the
    /// laziness invariant carries over to the symbolic rows).
    #[test]
    fn warmed_graphs_agree_structurally(
        recipe in arb_recipe(),
    ) {
        let (design, regs, _) = build(&recipe);
        let problem = Problem::new(&design);
        let props = props_for(&regs, &recipe);
        let engine = Engine::full(100_000);
        let explicit = StateGraph::build(&problem, props.iter(), engine);
        let symbolic = SymbolicGraph::build(&problem, props.iter(), engine);
        let (e, s) = (explicit.stats(), symbolic.stats());
        prop_assert_eq!(e.nodes, s.nodes);
        prop_assert_eq!(e.edges, s.edges);
        prop_assert_eq!(e.pruned_edges, s.pruned_edges);
        prop_assert_eq!(e.complete, s.complete);
        let config = VerifyConfig::hybrid();
        for prop in &props {
            let ev = verify_property_on_graph(&explicit, prop, &config);
            let sv = verify_property_on_graph(&symbolic, prop, &config);
            prop_assert_eq!(format!("{ev:?}"), format!("{sv:?}"));
        }
    }
}

/// Inputs too wide for the explicit backend still verify symbolically, and
/// class compression keeps the graph small: a 24-bit comparator has 16.7M
/// valuations per row but only a handful of classes.
#[test]
fn wide_inputs_are_symbolic_only_territory() {
    let mut b = DesignBuilder::new("wide");
    let data = b.input("data", 24);
    let seen = b.reg("seen", 1, Some(0));
    let de = b.sig(data);
    let t = b.lit(10_000_000, 24);
    let hit = b.lt(t, de);
    let se = b.sig(seen);
    let nxt = b.or(se, hit);
    b.set_next(seen, nxt);
    let d = b.build().unwrap();
    let seen = d.signal_by_name("seen").unwrap();
    let problem = Problem::new(&d);
    let prop = Prop::Never(SvaBool::atom(RtlAtom::is_true(seen)));
    let graph = SymbolicGraph::new(&problem, [&prop]);
    let verdict = verify_property_on_graph(&graph, &prop, &VerifyConfig::quick());
    let rtlcheck_verif::PropertyVerdict::Falsified { trace, .. } = verdict else {
        panic!("seen is reachable past the threshold");
    };
    // The counterexample drives the lowest violating input.
    assert_eq!(
        trace.value_at(&d, d.signal_by_name("data").unwrap(), 0),
        10_000_001
    );
    let stats = Backend::stats(&graph);
    assert!(
        stats.edges >= 1 << 24,
        "edge counts are valuation-weighted: {stats:?}"
    );
}

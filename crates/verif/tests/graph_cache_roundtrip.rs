//! Property tests for the graph cache's serialization layer.
//!
//! Over random small designs, assumption sets, and warm-up budgets:
//!
//! * **Round-trip**: a warm [`StateGraph`]'s core survives
//!   `snapshot → snapshot_to_bytes → snapshot_from_bytes → from_snapshot`
//!   exactly — every property walk and the cover search on the resumed
//!   graph produce results identical to the never-serialized graph.
//! * **Mutation**: flipping any single byte of a serialized graph is
//!   either *detected* (deserialization fails — the FNV-1a trailer makes
//!   every one-byte flip change the checksum) or still yields identical
//!   verdicts. A silently different verdict is never possible.
//!
//! The suite-level counterpart (cold vs memory-hit vs disk-hit on real
//! litmus tests) lives in `tests/graph_cache_differential.rs` at the
//! workspace root.

use proptest::prelude::*;
use rtlcheck_rtl::{Design, DesignBuilder, SignalId};
use rtlcheck_sva::{Prop, Seq, SvaBool};
use rtlcheck_verif::{
    check_cover_on_graph, fingerprint, snapshot_from_bytes, snapshot_to_bytes,
    verify_property_on_graph, Directive, Engine, Problem, RtlAtom, StateGraph, VerifyConfig,
};

/// Recipe for one random design (same shape as
/// `graph_differential.rs`): register widths/inits and per-register update
/// behaviour, all driven by proptest-chosen small integers.
#[derive(Debug, Clone)]
struct DesignRecipe {
    input_width: u8,
    regs: Vec<RegRecipe>,
}

#[derive(Debug, Clone)]
struct RegRecipe {
    width: u8,
    init: u64,
    enable_on: u64,
    /// 0 = increment, 1 = xor with literal, 2 = decrement when another
    /// register holds a chosen value.
    op: u8,
    operand: u64,
}

fn arb_recipe() -> impl Strategy<Value = DesignRecipe> {
    let reg = (1u8..=3, 0u64..8, 0u64..4, 0u8..3, 0u64..8).prop_map(
        |(width, init, enable_on, op, operand)| RegRecipe {
            width,
            init: init & ((1 << width) - 1),
            enable_on,
            op,
            operand: operand & ((1 << width) - 1),
        },
    );
    (1u8..=2, proptest::collection::vec(reg, 1..=3))
        .prop_map(|(input_width, regs)| DesignRecipe { input_width, regs })
}

fn build(recipe: &DesignRecipe) -> (Design, Vec<SignalId>, SignalId) {
    let mut b = DesignBuilder::new("rand");
    let en = b.input("en", recipe.input_width);
    let reg_ids: Vec<SignalId> = recipe
        .regs
        .iter()
        .enumerate()
        .map(|(i, r)| b.reg(format!("r{i}"), r.width, Some(r.init)))
        .collect();
    for (i, r) in recipe.regs.iter().enumerate() {
        let id = reg_ids[i];
        let cur = b.sig(id);
        let max_in = (1u64 << recipe.input_width) - 1;
        let cond = b.eq_lit(en, r.enable_on & max_in);
        let updated = match r.op {
            0 => {
                let one = b.lit(1, r.width);
                b.add(cur, one)
            }
            1 => {
                let k = b.lit(r.operand, r.width);
                b.xor(cur, k)
            }
            _ => {
                let other = reg_ids[(i + 1) % reg_ids.len()];
                let trigger = b.eq_lit(
                    other,
                    r.operand & ((1 << recipe.regs[(i + 1) % recipe.regs.len()].width) - 1),
                );
                let one = b.lit(1, r.width);
                let dec = b.sub(cur, one);
                b.mux(trigger, dec, cur)
            }
        };
        let next = b.mux(cond, updated, cur);
        b.set_next(id, next);
    }
    let d = b.build().expect("recipe designs are well-formed");
    (d, reg_ids, en)
}

/// The property shapes the generators emit (§4.2–4.4 reduce to these).
fn props_for(regs: &[SignalId], recipe: &DesignRecipe) -> Vec<Prop<RtlAtom>> {
    let r0 = regs[0];
    let v0 = recipe.regs[0].operand;
    let rl = *regs.last().unwrap();
    let vl = recipe.regs.last().unwrap().init;
    vec![
        Prop::Never(SvaBool::atom(RtlAtom::eq(r0, v0))),
        Prop::implies(
            SvaBool::atom(RtlAtom::eq(rl, vl)),
            Prop::Never(SvaBool::atom(RtlAtom::eq(r0, v0))),
        ),
        Prop::seq(Seq::then(
            Seq::boolean(SvaBool::atom(RtlAtom::eq(rl, vl))),
            Seq::delay(
                1,
                Some(3),
                Seq::boolean(SvaBool::not(SvaBool::atom(RtlAtom::eq(r0, v0)))),
            ),
        )),
    ]
}

/// Runs every property and the cover search on a graph, returning the
/// verdicts' Debug rendering (which includes stats, bounds, and full
/// counterexample traces).
fn walk_all(
    graph: &StateGraph<'_, '_>,
    props: &[Prop<RtlAtom>],
    config: &VerifyConfig,
    has_cover: bool,
) -> Vec<String> {
    let mut out: Vec<String> = props
        .iter()
        .map(|p| format!("{:?}", verify_property_on_graph(graph, p, config)))
        .collect();
    if has_cover {
        out.push(format!(
            "{:?}",
            check_cover_on_graph(graph, config.cover_engine())
        ));
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Serialize → deserialize → walk equals never-serialized → walk, for
    /// every property shape, with and without assumptions and cover, under
    /// both a generous and a starved warm-up budget.
    #[test]
    fn serialized_graphs_walk_identically(
        recipe in arb_recipe(),
        assume_en in prop_oneof![Just(None), (0u64..4).prop_map(Some)],
        cover_value in prop_oneof![Just(None), (0u64..8).prop_map(Some)],
        warm_budget in prop_oneof![Just(3usize), Just(100_000usize)],
    ) {
        let (design, regs, en) = build(&recipe);
        let mut problem = Problem::new(&design);
        if let Some(v) = assume_en {
            let max_in = (1u64 << recipe.input_width) - 1;
            problem.assumptions.push(Directive::assume(
                "en_pin",
                Prop::Never(SvaBool::atom(RtlAtom::eq(en, v & max_in))),
            ));
        }
        if let Some(v) = cover_value {
            let w = recipe.regs[0].width;
            problem.cover = Some(SvaBool::atom(RtlAtom::eq(regs[0], v & ((1 << w) - 1))));
        }
        let props = props_for(&regs, &recipe);
        let prop_refs: Vec<&Prop<RtlAtom>> = props.iter().collect();
        let config = VerifyConfig::hybrid();

        let cold = StateGraph::build(&problem, prop_refs.iter().copied(), Engine::full(warm_budget));
        let key = fingerprint(&problem, cold.atoms());
        let bytes = snapshot_to_bytes(&cold.snapshot(), &design, key);
        let snap = snapshot_from_bytes(&bytes, &design, key)
            .expect("serializing a graph we just built must round-trip");
        let resumed = StateGraph::from_snapshot(&problem, prop_refs.iter().copied(), &snap)
            .expect("a round-tripped snapshot must validate against its own problem");
        prop_assert_eq!(resumed.stats(), cold.stats(), "resumed core differs structurally");

        let cold_results = walk_all(&cold, &props, &config, cover_value.is_some());
        let resumed_results = walk_all(&resumed, &props, &config, cover_value.is_some());
        prop_assert_eq!(cold_results, resumed_results);
    }

    /// Any single-byte flip of a serialized graph is either rejected at
    /// deserialization/validation or produces identical verdicts — never a
    /// silently different answer.
    #[test]
    fn single_byte_flips_never_change_verdicts_silently(
        recipe in arb_recipe(),
        flip_pos_seed in any::<u64>(),
        flip_bit in 0u8..8,
    ) {
        let (design, regs, _) = build(&recipe);
        let problem = Problem::new(&design);
        let props = props_for(&regs, &recipe);
        let prop_refs: Vec<&Prop<RtlAtom>> = props.iter().collect();
        let config = VerifyConfig::hybrid();

        let cold = StateGraph::build(&problem, prop_refs.iter().copied(), Engine::full(100_000));
        let key = fingerprint(&problem, cold.atoms());
        let mut bytes = snapshot_to_bytes(&cold.snapshot(), &design, key);
        let pos = (flip_pos_seed % bytes.len() as u64) as usize;
        bytes[pos] ^= 1 << flip_bit;

        match snapshot_from_bytes(&bytes, &design, key) {
            Err(_) => {} // detected — corrupt, version-mismatch, or key-mismatch
            Ok(snap) => {
                // The checksum makes this unreachable for a genuine flip,
                // but the contract only requires: if it decodes AND
                // validates, the walks must be identical.
                let Some(resumed) =
                    StateGraph::from_snapshot(&problem, prop_refs.iter().copied(), &snap)
                else {
                    return Ok(()); // rejected by semantic validation
                };
                let cold_results = walk_all(&cold, &props, &config, false);
                let resumed_results = walk_all(&resumed, &props, &config, false);
                prop_assert_eq!(cold_results, resumed_results, "flip at byte {} bit {}", pos, flip_bit);
            }
        }
    }
}

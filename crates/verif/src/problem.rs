//! Verification problem descriptions.

use rtlcheck_rtl::{Design, SignalId};
use rtlcheck_sva::Prop;

use crate::atom::{RtlAtom, RtlBool};

/// Whether a directive constrains the environment or checks the design.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DirectiveKind {
    /// `assume property (…)` — traces violating it are discarded.
    Assume,
    /// `assert property (…)` — violations are counterexamples.
    Assert,
}

/// One named `assert`/`assume` directive.
#[derive(Debug, Clone)]
pub struct Directive {
    /// Human-readable name (e.g. `"Read_Values[i = i4]"`).
    pub name: String,
    /// Assume or assert.
    pub kind: DirectiveKind,
    /// The property.
    pub prop: Prop<RtlAtom>,
}

impl Directive {
    /// Creates an assumption.
    pub fn assume(name: impl Into<String>, prop: Prop<RtlAtom>) -> Self {
        Directive {
            name: name.into(),
            kind: DirectiveKind::Assume,
            prop,
        }
    }

    /// Creates an assertion.
    pub fn assert(name: impl Into<String>, prop: Prop<RtlAtom>) -> Self {
        Directive {
            name: name.into(),
            kind: DirectiveKind::Assert,
            prop,
        }
    }
}

/// A complete verification problem: the design, the initial-value pins
/// extracted from first-cycle assumptions, the assumption set, and a cover
/// condition.
#[derive(Debug, Clone)]
pub struct Problem<'d> {
    /// The design under verification.
    pub design: &'d Design,
    /// `(register, value)` pins for registers with free initial values
    /// (recognised first-cycle equality assumptions, §4.1).
    pub init_pins: Vec<(SignalId, u64)>,
    /// The assumptions constraining admissible traces.
    pub assumptions: Vec<Directive>,
    /// Cover condition (e.g. the final-value assumption's antecedent):
    /// the verifier searches for an admissible trace on which it holds.
    pub cover: Option<RtlBool>,
}

impl<'d> Problem<'d> {
    /// Creates a problem with no assumptions or cover.
    pub fn new(design: &'d Design) -> Self {
        Problem {
            design,
            init_pins: Vec::new(),
            assumptions: Vec::new(),
            cover: None,
        }
    }
}

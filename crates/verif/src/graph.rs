//! The shared per-problem state graph.
//!
//! Every assertion of a litmus test is checked against the *same* design ×
//! assumption-monitor product: the design's reachable states joined with
//! the deterministic states of the assumption monitors. Re-simulating that
//! product per property (as the pre-refactor verifier did) repeats the
//! expensive work — stepping the RTL simulator and every assumption
//! monitor — once per assertion.
//!
//! [`StateGraph`] materialises the shared product once per [`Problem`]:
//!
//! * **Nodes** are `(design state, assumption-monitor states)` pairs —
//!   exactly the product the legacy exploration deduplicated on, minus the
//!   assertion monitor.
//! * **Edges** are labelled by primary-input valuation. A pruned edge (an
//!   assumption monitor failed on that cycle) is recorded as such; an
//!   admissible edge carries its destination node and the valuation of
//!   every *atom* any property cares about, as a bitset.
//! * Property checking then reduces to an NFA walk: step the assertion
//!   monitor over the cached atom bitsets, never touching the simulator.
//!
//! Construction is *lazy with an eager warm-up*: [`StateGraph::build`]
//! pre-expands the graph breadth-first under an engine budget, and any walk
//! that needs an edge beyond the warmed frontier triggers on-demand row
//! construction. Laziness is what makes walk budgets exact — a walk with a
//! tiny state budget observes the same statistics it would have produced
//! driving the simulator directly, regardless of how much of the graph
//! already exists.

use std::cell::{Cell, RefCell};
use std::collections::{BTreeSet, HashMap};
use std::rc::Rc;
use std::sync::Arc;

use rtlcheck_obs::{attrs, Collector};
use rtlcheck_rtl::sim::{Simulator, State};
use rtlcheck_rtl::{ConeSet, Design, ExprId, SignalId, SignalKind};
use rtlcheck_sva::{Monitor, MonitorState, Prop, SvaBool};

use crate::atom::{RtlAtom, RtlBool};
use crate::cache::{CoreSnapshot, NodeSnapshot};
use crate::composed::{Composition, RegionCtx, RegionEntry, RegionRow};
use crate::engine::Engine;
use crate::problem::Problem;

/// Maximum number of primary-input valuations enumerated per cycle.
pub(crate) const MAX_INPUT_VALUATIONS: usize = 256;

/// Edge destination marking a cycle discarded by the assumptions.
///
/// Both backends report pruned edge classes with this sentinel in
/// [`crate::backend::EdgeClass::dest`].
pub const PRUNED: u32 = u32::MAX;

/// The size of a design's primary-input space (the cartesian product of
/// every input's value range), or `None` when it overflows `u128` — the
/// sizing input of the `--backend auto` heuristics.
pub(crate) fn input_space(design: &Design) -> Option<u128> {
    let mut space: u128 = 1;
    for (_, s) in design.signals() {
        let SignalKind::Input { .. } = s.kind else {
            continue;
        };
        space = space.checked_mul(1u128 << s.width)?;
    }
    Some(space)
}

/// Enumerates all primary-input valuations of a design: the cartesian
/// product of every input signal's value range, in signal declaration
/// order, counting each input from 0.
///
/// # Panics
///
/// Panics — naming the offending signal — as soon as an input pushes the
/// cumulative valuation count past [`MAX_INPUT_VALUATIONS`]. Explicit-state
/// search needs a small free-input space (Multi-V-scale has one 2-bit
/// arbiter input); a wide input is a usage error that must never silently
/// degrade into enumerating a subset of the space.
pub(crate) fn input_valuations(design: &Design) -> Vec<Vec<u64>> {
    let mut vals: Vec<Vec<u64>> = vec![Vec::new()];
    for (_, s) in design.signals() {
        let SignalKind::Input { .. } = s.kind else {
            continue;
        };
        let card = 1u128 << s.width;
        assert!(
            vals.len() as u128 * card <= MAX_INPUT_VALUATIONS as u128,
            "primary input `{}` ({} bits) pushes the input space past {} \
             valuations per cycle — too wide for explicit-state search",
            s.name,
            s.width,
            MAX_INPUT_VALUATIONS,
        );
        let mut next = Vec::with_capacity(vals.len() * card as usize);
        for v in &vals {
            for x in 0..card as u64 {
                let mut v2 = v.clone();
                v2.push(x);
                next.push(v2);
            }
        }
        vals = next;
    }
    vals
}

/// Construction and reuse statistics of a [`StateGraph`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GraphStats {
    /// Product nodes materialised (design state × assumption states).
    pub nodes: usize,
    /// Admissible edges materialised.
    pub edges: u64,
    /// Edges discarded because an assumption monitor failed.
    pub pruned_edges: u64,
    /// Edge fetches served to walks.
    pub lookups: u64,
    /// Edge fetches answered from an already-built row (no simulation).
    pub reuse_hits: u64,
    /// Whether the eager warm-up exhausted the reachable product space —
    /// every subsequent walk is pure cache reuse.
    pub complete: bool,
}

/// One materialised node: the product state plus its (lazily built) edges.
struct GraphNode {
    state: State,
    assumptions: Vec<MonitorState>,
    row: Option<EdgeRow>,
}

/// The out-edges of one node, one entry per input valuation.
struct EdgeRow {
    /// Destination node per input ([`PRUNED`] for inadmissible cycles).
    dests: Box<[u32]>,
    /// Atom-valuation bitsets, `words` u64s per input: bit `i` is the truth
    /// of the graph's `i`-th atom at (this node's state, that input).
    bits: Box<[u64]>,
}

/// The interior-mutable part: nodes, the dedup index, and the reusable
/// assumption monitors used to step edge rows.
struct GraphCore {
    nodes: Vec<GraphNode>,
    index: HashMap<(State, Vec<MonitorState>), u32>,
    monitors: Vec<Monitor<RtlAtom>>,
    stats: GraphStats,
}

/// Masks `value` to `width` bits — the register-commit masking
/// [`Simulator::step`] applies, replicated so spliced dirty-register
/// values are bit-identical to simulated ones.
fn mask64(value: u64, width: u8) -> u64 {
    debug_assert!((1..=64).contains(&width));
    if width == 64 {
        value
    } else {
        value & ((1u64 << width) - 1)
    }
}

/// Baseline-reuse context of an incrementally assembled graph
/// ([`StateGraph::splice`]). Row construction consults it first: rows of
/// product nodes present in the baseline are copied, with only the dirty
/// cones' contributions (dirty registers' next values, dirty wires' atom
/// bits) re-simulated; nodes the baseline never reached fall back to full
/// simulation. Counters live here — *not* in [`GraphStats`], which is
/// serialized in snapshots and must stay byte-identical to cold builds.
struct SpliceState {
    baseline: Arc<CoreSnapshot>,
    /// `(register values, monitor states)` → baseline node id.
    index: HashMap<(Vec<u64>, Vec<MonitorState>), u32>,
    /// `(dense register index, next-state expr, width)` per dirty register.
    dirty_regs: Vec<(usize, ExprId, u8)>,
    /// The subset of `sig_atoms` whose signal is a dirty wire.
    dirty_sig_atoms: Vec<(SignalId, Vec<(usize, u64)>)>,
    /// Bitmask over atom words selecting the dirty atoms (cleared from
    /// copied rows before re-peeking).
    dirty_atom_mask: Vec<u64>,
    /// Re-simulate every spliced row and assert equality.
    validate: bool,
    /// Cones in the design (== registers).
    cones_total: u64,
    /// Cones the dirty set invalidates.
    cones_dirty: u64,
    /// Per-cone row segments copied verbatim from the baseline.
    rows_copied: Cell<u64>,
    /// Edge rows assembled by mixing copied and re-simulated cones.
    rows_spliced: Cell<u64>,
    /// Per-cone row segments re-simulated (dirty cones of spliced rows,
    /// every cone of rows rebuilt cold).
    rows_recomputed: Cell<u64>,
}

/// The reachable product of a design and its assumption monitors, with
/// per-edge atom valuations — built once per [`Problem`] and shared by
/// every property walk and the cover search. See the module docs.
pub struct StateGraph<'p, 'd> {
    problem: &'p Problem<'d>,
    sim: Simulator<'d>,
    /// All enumerated primary-input valuations (edge labels).
    inputs: Vec<Vec<u64>>,
    /// Sorted, deduplicated table of every atom any walk will evaluate.
    atoms: Vec<RtlAtom>,
    /// Atoms grouped by signal so each signal is peeked once per edge.
    sig_atoms: Vec<(SignalId, Vec<(usize, u64)>)>,
    /// u64 words per edge bitset.
    words: usize,
    core: RefCell<GraphCore>,
    /// Baseline-reuse context when this graph was assembled incrementally.
    splice: Option<SpliceState>,
    /// Modular-composition context when this graph assembles its rows from
    /// per-region interface specs (see [`crate::composed`]).
    composition: Option<Composition>,
}

impl std::fmt::Debug for StateGraph<'_, '_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let stats = self.stats();
        f.debug_struct("StateGraph")
            .field("design", &self.problem.design.name())
            .field("atoms", &self.atoms.len())
            .field("inputs", &self.inputs.len())
            .field("stats", &stats)
            .finish()
    }
}

impl<'p, 'd> StateGraph<'p, 'd> {
    /// Creates a lazy graph (root node only) whose atom table covers the
    /// problem's cover condition plus every property in `props`.
    ///
    /// # Panics
    ///
    /// Panics if a free-init register is not pinned by `problem.init_pins`
    /// or the design's primary-input space is too large to enumerate.
    pub fn new<'a, I>(problem: &'p Problem<'d>, props: I) -> Self
    where
        I: IntoIterator<Item = &'a Prop<RtlAtom>>,
    {
        let atoms = StateGraph::atom_table(problem, props);
        StateGraph::with_atoms(problem, atoms)
    }

    /// The sorted, deduplicated atom table a graph for `problem`/`props`
    /// will index into: every atom of the cover condition plus every atom
    /// of every property. This (together with the design and assumptions)
    /// fully determines the graph's content, which is why the cache keys
    /// on it.
    pub(crate) fn atom_table<'a, I>(problem: &Problem<'_>, props: I) -> Vec<RtlAtom>
    where
        I: IntoIterator<Item = &'a Prop<RtlAtom>>,
    {
        let mut set: BTreeSet<RtlAtom> = BTreeSet::new();
        if let Some(cover) = &problem.cover {
            cover.for_each_atom(&mut |a| {
                set.insert(*a);
            });
        }
        for p in props {
            p.for_each_atom(&mut |a| {
                set.insert(*a);
            });
        }
        set.into_iter().collect()
    }

    /// [`StateGraph::new`] with a precomputed atom table.
    fn with_atoms(problem: &'p Problem<'d>, atoms: Vec<RtlAtom>) -> Self {
        let sim = Simulator::new(problem.design);
        let inputs = input_valuations(problem.design);

        let mut sig_atoms: Vec<(SignalId, Vec<(usize, u64)>)> = Vec::new();
        for (i, a) in atoms.iter().enumerate() {
            match sig_atoms.last_mut() {
                Some((sig, list)) if *sig == a.sig => list.push((i, a.value)),
                _ => sig_atoms.push((a.sig, vec![(i, a.value)])),
            }
        }
        let words = atoms.len().div_ceil(64);

        let initial = sim
            .initial_state_with(&problem.init_pins)
            .expect("all free-init registers must be pinned by init assumptions");
        let monitors: Vec<Monitor<RtlAtom>> = problem
            .assumptions
            .iter()
            .map(|d| Monitor::new(&d.prop))
            .collect();
        let init_states: Vec<MonitorState> = monitors.iter().map(|m| m.state().clone()).collect();
        let mut core = GraphCore {
            nodes: vec![GraphNode {
                state: initial.clone(),
                assumptions: init_states.clone(),
                row: None,
            }],
            index: HashMap::new(),
            monitors,
            stats: GraphStats {
                nodes: 1,
                ..GraphStats::default()
            },
        };
        core.index.insert((initial, init_states), 0);

        StateGraph {
            problem,
            sim,
            inputs,
            atoms,
            sig_atoms,
            words,
            core: RefCell::new(core),
            splice: None,
            composition: None,
        }
    }

    /// [`StateGraph::build`] with a pre-analyzed [`Composition`] attached:
    /// the same eager breadth-first warm-up, with every row assembled from
    /// per-region interface specs. Only called by
    /// [`crate::composed::ComposedGraph`].
    pub(crate) fn build_composed(
        problem: &'p Problem<'d>,
        atoms: Vec<RtlAtom>,
        comp: Composition,
        engine: Engine,
    ) -> Self {
        let mut graph = StateGraph::with_atoms(problem, atoms);
        graph.attach_composition(comp);
        graph.warm(engine);
        graph
    }

    /// Finalizes and installs a composition: precomputes the global
    /// (input-only) atom bits per input valuation and initialises the
    /// per-region memo tables. Requires a freshly analyzed composition for
    /// this exact problem/atom table.
    pub(crate) fn attach_composition(&mut self, mut comp: Composition) {
        // Global atoms read only inputs and constants, so their valuation
        // is independent of the node state — any state works for the peek;
        // the initial one is always available.
        let state = self.core.borrow().nodes[0].state.clone();
        comp.global_bits = self
            .inputs
            .iter()
            .map(|input| {
                let mut words = vec![0u64; self.words];
                for (sig, sig_atoms) in &comp.global_sig_atoms {
                    let v = self.sim.peek(&state, input, *sig);
                    for &(ai, value) in sig_atoms {
                        if v == value {
                            words[ai / 64] |= 1 << (ai % 64);
                        }
                    }
                }
                words
            })
            .collect();
        *comp.memo.borrow_mut() = vec![HashMap::new(); comp.regions.len()];
        self.composition = Some(comp);
    }

    /// [`StateGraph::new`] followed by an eager breadth-first warm-up: node
    /// rows are pre-built layer by layer until the reachable product space
    /// is exhausted or `engine`'s budget is hit. Walks extend the graph
    /// on demand past the warmed frontier, so the warm-up budget never
    /// changes a walk's verdict or statistics — only how much of the work
    /// is shared up front.
    pub fn build<'a, I>(problem: &'p Problem<'d>, props: I, engine: Engine) -> Self
    where
        I: IntoIterator<Item = &'a Prop<RtlAtom>>,
    {
        let graph = StateGraph::new(problem, props);
        graph.warm(engine);
        graph
    }

    /// [`StateGraph::build`], assembled incrementally from a *baseline*
    /// core: the same breadth-first warm-up runs from the problem's own
    /// initial node, but each row is copied from the baseline whenever its
    /// product node exists there, with only the dirty cones' contributions
    /// — dirty registers' next-state values and dirty wires' atom bits —
    /// re-simulated. Nodes the baseline never reached (or whose rows were
    /// never built) are simulated in full.
    ///
    /// The result is **bit-identical to a cold build** of the same
    /// problem: clean signals evaluate identically in both designs (equal
    /// per-cone fingerprints, see [`rtlcheck_rtl::cone`]), the assumption
    /// monitors see only clean atoms (enforced below), and discovery
    /// order is preserved because rows are emitted in input order either
    /// way. Node ids, statistics, snapshots, and every walk over the
    /// graph are therefore indistinguishable from the cold path.
    ///
    /// Returns `None` — caller falls back to a cold build — when reuse
    /// would be unsound or is impossible: the atom tables or dimensions
    /// differ, the baseline core is malformed (e.g. a fingerprint
    /// collision slipped through), a dirty signal is not actually a
    /// wire/register of this design, or an *assumption* directive reads a
    /// dirty wire (monitor stepping could then diverge, poisoning
    /// admissibility and pruning).
    ///
    /// With `validate` set, every copied or patched row is additionally
    /// re-derived by full simulation and asserted equal — the mode the
    /// differential CI runs to police the splice soundness argument.
    ///
    /// # Panics
    ///
    /// Panics in `validate` mode if a spliced row diverges from its
    /// re-simulation (a soundness bug, never an input error).
    pub fn splice<'a, I>(
        problem: &'p Problem<'d>,
        props: I,
        baseline: Arc<CoreSnapshot>,
        dirty: &ConeSet,
        engine: Engine,
        validate: bool,
    ) -> Option<Self>
    where
        I: IntoIterator<Item = &'a Prop<RtlAtom>>,
    {
        let atoms = StateGraph::atom_table(problem, props);
        if atoms != baseline.atoms {
            return None;
        }
        let mut graph = StateGraph::with_atoms(problem, atoms);
        if graph.inputs.len() != baseline.num_inputs
            || graph.words != baseline.words
            || problem.design.num_regs() != baseline.num_regs
            || baseline.nodes.is_empty()
            || graph.core.borrow().monitors.len() != baseline.num_monitors
        {
            return None;
        }
        // Monitors must be clean: if any assumption atom reads a dirty
        // wire, monitor stepping — and with it admissibility and pruning
        // — could diverge from the baseline, and no row is copyable.
        for d in &problem.assumptions {
            let mut dirty_atom = false;
            d.prop.for_each_atom(&mut |a| {
                if dirty.wire_dirty(a.sig) {
                    dirty_atom = true;
                }
            });
            if dirty_atom {
                return None;
            }
        }
        let mut dirty_regs = Vec::with_capacity(dirty.regs.len());
        for &r in &dirty.regs {
            let s = problem.design.signal(r);
            let SignalKind::Reg { index, next, .. } = s.kind else {
                return None;
            };
            dirty_regs.push((index, next, s.width));
        }
        let mut dirty_sig_atoms = Vec::new();
        let mut dirty_atom_mask = vec![0u64; graph.words];
        for (sig, list) in &graph.sig_atoms {
            if dirty.wire_dirty(*sig) {
                for &(ai, _) in list {
                    dirty_atom_mask[ai / 64] |= 1 << (ai % 64);
                }
                dirty_sig_atoms.push((*sig, list.clone()));
            }
        }
        // Well-formedness scan of the baseline core (the checks
        // `from_snapshot` performs, minus initial-node equality — the
        // mutant's initial node may legitimately differ), building the
        // product-state index as it goes.
        let num_nodes = baseline.nodes.len();
        if u32::try_from(num_nodes).is_err() || baseline.stats.nodes != num_nodes {
            return None;
        }
        let row_words = baseline.num_inputs.checked_mul(baseline.words)?;
        let mut index = HashMap::with_capacity(num_nodes);
        let mut edges = 0u64;
        let mut pruned = 0u64;
        for (i, n) in baseline.nodes.iter().enumerate() {
            if n.regs.len() != baseline.num_regs || n.assumptions.len() != baseline.num_monitors {
                return None;
            }
            if let Some((dests, bits)) = &n.row {
                if dests.len() != baseline.num_inputs || bits.len() != row_words {
                    return None;
                }
                for &d in dests {
                    if d == PRUNED {
                        pruned += 1;
                    } else if (d as usize) < num_nodes {
                        edges += 1;
                    } else {
                        return None;
                    }
                }
            }
            if index
                .insert((n.regs.clone(), n.assumptions.clone()), i as u32)
                .is_some()
            {
                return None;
            }
        }
        if edges != baseline.stats.edges || pruned != baseline.stats.pruned_edges {
            return None;
        }
        let analysis = problem.design.cones();
        let cones_total = analysis.len() as u64;
        let cones_dirty = analysis.invalidated(dirty).len() as u64;
        graph.splice = Some(SpliceState {
            baseline,
            index,
            dirty_regs,
            dirty_sig_atoms,
            dirty_atom_mask,
            validate,
            cones_total,
            cones_dirty,
            rows_copied: Cell::new(0),
            rows_spliced: Cell::new(0),
            rows_recomputed: Cell::new(0),
        });
        graph.warm(engine);
        Some(graph)
    }

    fn warm(&self, engine: Engine) {
        let mut core = self.core.borrow_mut();
        let mut frontier: Vec<u32> = vec![0];
        let mut depth: u32 = 0;
        loop {
            if frontier.is_empty() {
                core.stats.complete = true;
                return;
            }
            if engine.max_depth.is_some_and(|d| depth >= d) {
                return;
            }
            let mut next = Vec::new();
            for &n in &frontier {
                let known = core.nodes.len();
                if core.nodes[n as usize].row.is_none() {
                    self.build_row(&mut core, n);
                }
                next.extend((known..core.nodes.len()).map(|i| i as u32));
                if core.nodes.len() > engine.max_states {
                    return;
                }
            }
            depth += 1;
            frontier = next;
        }
    }

    /// Builds the edge row of one node: from the baseline when this graph
    /// is spliced and the node is copyable, by simulation otherwise.
    fn build_row(&self, core: &mut GraphCore, node: u32) {
        if let Some(comp) = &self.composition {
            self.build_row_composed(core, node, comp);
            return;
        }
        if let Some(sp) = &self.splice {
            if self.build_row_spliced(core, node, sp) {
                return;
            }
            // Node (or its row) absent from the baseline: every cone of
            // this row is re-simulated.
            sp.rows_recomputed
                .set(sp.rows_recomputed.get() + self.problem.design.num_regs() as u64);
        }
        self.build_row_cold(core, node);
    }

    /// Copies one node's row from the spliced baseline, re-simulating only
    /// the dirty cones' contributions. Returns `false` — caller re-builds
    /// cold — when the node's product state is not in the baseline or its
    /// row was never materialised there.
    fn build_row_spliced(&self, core: &mut GraphCore, node: u32, sp: &SpliceState) -> bool {
        let (state, assumptions) = {
            let n = &core.nodes[node as usize];
            (n.state.clone(), n.assumptions.clone())
        };
        let Some(&b) = sp.index.get(&(state.regs().to_vec(), assumptions.clone())) else {
            return false;
        };
        let Some((bdests, bbits)) = &sp.baseline.nodes[b as usize].row else {
            return false;
        };
        let num_inputs = self.inputs.len();
        let mut dests = Vec::with_capacity(num_inputs);
        let mut bits = vec![0u64; num_inputs * self.words];
        for (i, input) in self.inputs.iter().enumerate() {
            let bd = bdests[i];
            if bd == PRUNED {
                // Admissibility depends only on the monitors, whose atoms
                // are clean (checked at splice time): the baseline's
                // pruning verdict transfers.
                if sp.validate {
                    self.validate_entry(&mut core.monitors, &state, &assumptions, input, None, &[]);
                }
                core.stats.pruned_edges += 1;
                dests.push(PRUNED);
                continue;
            }
            let bdest = &sp.baseline.nodes[bd as usize];
            // Atom bits: copy the row, clear the dirty atoms, re-peek them.
            let words = &mut bits[i * self.words..(i + 1) * self.words];
            words.copy_from_slice(&bbits[i * self.words..(i + 1) * self.words]);
            for (w, m) in words.iter_mut().zip(&sp.dirty_atom_mask) {
                *w &= !m;
            }
            for (sig, sig_atoms) in &sp.dirty_sig_atoms {
                let v = self.sim.peek(&state, input, *sig);
                for &(ai, value) in sig_atoms {
                    if v == value {
                        words[ai / 64] |= 1 << (ai % 64);
                    }
                }
            }
            // Destination state: clean registers' next values are equal in
            // both designs (equal value-function fingerprints), so copy
            // them; re-evaluate only the dirty registers.
            let mut regs = bdest.regs.clone();
            for &(ri, next, width) in &sp.dirty_regs {
                regs[ri] = mask64(self.sim.eval(&state, input, next), width);
            }
            let dest_state = State::from_regs(regs);
            let next_states = bdest.assumptions.clone();
            if sp.validate {
                self.validate_entry(
                    &mut core.monitors,
                    &state,
                    &assumptions,
                    input,
                    Some((&dest_state, &next_states)),
                    words,
                );
            }
            let key = (dest_state, next_states);
            let dest = match core.index.get(&key) {
                Some(&d) => d,
                None => {
                    let d = u32::try_from(core.nodes.len()).expect("graph fits in u32 node ids");
                    core.nodes.push(GraphNode {
                        state: key.0.clone(),
                        assumptions: key.1.clone(),
                        row: None,
                    });
                    core.index.insert(key, d);
                    d
                }
            };
            core.stats.edges += 1;
            dests.push(dest);
        }
        core.stats.nodes = core.nodes.len();
        core.nodes[node as usize].row = Some(EdgeRow {
            dests: dests.into_boxed_slice(),
            bits: bits.into_boxed_slice(),
        });
        let total = self.problem.design.num_regs() as u64;
        let dirty = sp.dirty_regs.len() as u64;
        if dirty == 0 && sp.dirty_sig_atoms.is_empty() {
            sp.rows_copied.set(sp.rows_copied.get() + total);
        } else {
            sp.rows_copied.set(sp.rows_copied.get() + (total - dirty));
            sp.rows_recomputed.set(sp.rows_recomputed.get() + dirty);
            sp.rows_spliced.set(sp.rows_spliced.get() + 1);
        }
        true
    }

    /// Re-derives one spliced `(node, input)` entry by full simulation and
    /// asserts it matches the copied/patched data. `expected` is `None`
    /// for a pruned entry.
    fn validate_entry(
        &self,
        monitors: &mut [Monitor<RtlAtom>],
        state: &State,
        assumptions: &[MonitorState],
        input: &[u64],
        expected: Option<(&State, &[MonitorState])>,
        expected_bits: &[u64],
    ) {
        let mut admissible = true;
        let mut next_states = Vec::with_capacity(monitors.len());
        for (m_i, m) in monitors.iter_mut().enumerate() {
            m.set_state(assumptions[m_i].clone());
            m.step(&|a: &RtlAtom| self.sim.peek(state, input, a.sig) == a.value);
            if m.failed() {
                admissible = false;
            }
            next_states.push(m.state().clone());
        }
        match expected {
            None => assert!(
                !admissible,
                "splice validation: baseline prunes an edge the re-simulation admits"
            ),
            Some((dest, states)) => {
                assert!(
                    admissible,
                    "splice validation: baseline admits an edge the re-simulation prunes"
                );
                assert_eq!(
                    states,
                    &next_states[..],
                    "splice validation: monitor states diverge"
                );
                let mut bits = vec![0u64; self.words];
                for (sig, sig_atoms) in &self.sig_atoms {
                    let v = self.sim.peek(state, input, *sig);
                    for &(ai, value) in sig_atoms {
                        if v == value {
                            bits[ai / 64] |= 1 << (ai % 64);
                        }
                    }
                }
                assert_eq!(
                    expected_bits,
                    &bits[..],
                    "splice validation: atom bits diverge"
                );
                let sim_dest = self.sim.step(state, input);
                assert_eq!(
                    dest, &sim_dest,
                    "splice validation: destination state diverges"
                );
            }
        }
    }

    /// Builds the edge row of one node from per-region interface specs:
    /// each region's row is fetched from (or computed into) the memo keyed
    /// by the node's projection onto that region's interface-visible state,
    /// and the full row is their join — admissibility is the conjunction of
    /// region verdicts, destinations the register scatter, atom bitsets the
    /// union. Region closure (see [`Composition::analyze`]) makes every
    /// memoized quantity exact at any node with the same projection, so
    /// the assembled row is identical to [`StateGraph::build_row_cold`]'s.
    fn build_row_composed(&self, core: &mut GraphCore, node: u32, comp: &Composition) {
        let (state, assumptions) = {
            let n = &core.nodes[node as usize];
            (n.state.clone(), n.assumptions.clone())
        };
        let regs = state.regs();
        let mut region_rows: Vec<Rc<RegionRow>> = Vec::with_capacity(comp.regions.len());
        for (ri, rc) in comp.regions.iter().enumerate() {
            let key_regs: Vec<u64> = rc.regs.iter().map(|&(idx, _, _)| regs[idx]).collect();
            let key_states: Vec<MonitorState> = rc
                .monitors
                .iter()
                .map(|&di| assumptions[di].clone())
                .collect();
            let key = (key_regs, key_states);
            let cached = comp.memo.borrow()[ri].get(&key).cloned();
            let row = match cached {
                Some(row) => {
                    comp.memo_hits.set(comp.memo_hits.get() + 1);
                    row
                }
                None => {
                    comp.memo_misses.set(comp.memo_misses.get() + 1);
                    let row = Rc::new(self.compute_region_row(core, &state, &key.1, rc));
                    comp.memo.borrow_mut()[ri].insert(key, row.clone());
                    row
                }
            };
            region_rows.push(row);
        }
        let num_inputs = self.inputs.len();
        let num_regs = self.problem.design.num_regs();
        let mut dests = Vec::with_capacity(num_inputs);
        let mut bits = vec![0u64; num_inputs * self.words];
        for i in 0..num_inputs {
            let admissible = region_rows.iter().all(|r| !r.entries[i].failed);
            if !admissible {
                core.stats.pruned_edges += 1;
                dests.push(PRUNED);
                continue;
            }
            let words = &mut bits[i * self.words..(i + 1) * self.words];
            for (w, g) in words.iter_mut().zip(&comp.global_bits[i]) {
                *w |= g;
            }
            let mut next_regs = vec![0u64; num_regs];
            for (rc, row) in comp.regions.iter().zip(&region_rows) {
                let entry = &row.entries[i];
                for (w, b) in words.iter_mut().zip(&entry.bits) {
                    *w |= b;
                }
                for (&(idx, _, _), &v) in rc.regs.iter().zip(&entry.next_regs) {
                    next_regs[idx] = v;
                }
            }
            let dest_state = State::from_regs(next_regs);
            let next_states: Vec<MonitorState> = (0..assumptions.len())
                .map(|di| {
                    let (ri, pos) = comp.monitor_slot[di];
                    region_rows[ri].entries[i].next_states[pos].clone()
                })
                .collect();
            let key = (dest_state, next_states);
            let dest = match core.index.get(&key) {
                Some(&d) => d,
                None => {
                    let d = u32::try_from(core.nodes.len()).expect("graph fits in u32 node ids");
                    core.nodes.push(GraphNode {
                        state: key.0.clone(),
                        assumptions: key.1.clone(),
                        row: None,
                    });
                    core.index.insert(key, d);
                    d
                }
            };
            core.stats.edges += 1;
            dests.push(dest);
        }
        core.stats.nodes = core.nodes.len();
        core.nodes[node as usize].row = Some(EdgeRow {
            dests: dests.into_boxed_slice(),
            bits: bits.into_boxed_slice(),
        });
    }

    /// Materialises one region's interface-spec row: for every input
    /// valuation, step the region's assumption monitors, evaluate the
    /// region's registers' next values, and peek the region's atoms.
    /// `state` is the full product state of the node that missed the memo;
    /// every quantity computed here depends only on its projection onto
    /// this region (the memo key), so the row is exact wherever it is
    /// reused.
    fn compute_region_row(
        &self,
        core: &mut GraphCore,
        state: &State,
        key_states: &[MonitorState],
        rc: &RegionCtx,
    ) -> RegionRow {
        let entries = self
            .inputs
            .iter()
            .map(|input| {
                let mut failed = false;
                let mut next_states = Vec::with_capacity(rc.monitors.len());
                for (pos, &di) in rc.monitors.iter().enumerate() {
                    let m = &mut core.monitors[di];
                    m.set_state(key_states[pos].clone());
                    m.step(&|a: &RtlAtom| self.sim.peek(state, input, a.sig) == a.value);
                    if m.failed() {
                        failed = true;
                    }
                    next_states.push(m.state().clone());
                }
                let next_regs = rc
                    .regs
                    .iter()
                    .map(|&(_, next, width)| mask64(self.sim.eval(state, input, next), width))
                    .collect();
                let mut bits = vec![0u64; self.words];
                for (sig, sig_atoms) in &rc.sig_atoms {
                    let v = self.sim.peek(state, input, *sig);
                    for &(ai, value) in sig_atoms {
                        if v == value {
                            bits[ai / 64] |= 1 << (ai % 64);
                        }
                    }
                }
                RegionEntry {
                    failed,
                    next_states,
                    next_regs,
                    bits,
                }
            })
            .collect();
        RegionRow { entries }
    }

    /// Builds the edge row of one node by simulation: steps the assumption
    /// monitors and the simulator once per input valuation, records
    /// prunes, atom bitsets, and (deduplicated) destinations.
    fn build_row_cold(&self, core: &mut GraphCore, node: u32) {
        let (state, assumptions) = {
            let n = &core.nodes[node as usize];
            (n.state.clone(), n.assumptions.clone())
        };
        let num_inputs = self.inputs.len();
        let mut dests = Vec::with_capacity(num_inputs);
        let mut bits = vec![0u64; num_inputs * self.words];
        for (i, input) in self.inputs.iter().enumerate() {
            let mut admissible = true;
            let mut next_states = Vec::with_capacity(core.monitors.len());
            for (m_i, m) in core.monitors.iter_mut().enumerate() {
                m.set_state(assumptions[m_i].clone());
                m.step(&|a: &RtlAtom| self.sim.peek(&state, input, a.sig) == a.value);
                if m.failed() {
                    admissible = false;
                }
                next_states.push(m.state().clone());
            }
            if !admissible {
                core.stats.pruned_edges += 1;
                dests.push(PRUNED);
                continue;
            }
            let words = &mut bits[i * self.words..(i + 1) * self.words];
            for (sig, sig_atoms) in &self.sig_atoms {
                let v = self.sim.peek(&state, input, *sig);
                for &(ai, value) in sig_atoms {
                    if v == value {
                        words[ai / 64] |= 1 << (ai % 64);
                    }
                }
            }
            let dest_state = self.sim.step(&state, input);
            let key = (dest_state, next_states);
            let dest = match core.index.get(&key) {
                Some(&d) => d,
                None => {
                    let d = u32::try_from(core.nodes.len()).expect("graph fits in u32 node ids");
                    core.nodes.push(GraphNode {
                        state: key.0.clone(),
                        assumptions: key.1.clone(),
                        row: None,
                    });
                    core.index.insert(key, d);
                    d
                }
            };
            core.stats.edges += 1;
            dests.push(dest);
        }
        core.stats.nodes = core.nodes.len();
        core.nodes[node as usize].row = Some(EdgeRow {
            dests: dests.into_boxed_slice(),
            bits: bits.into_boxed_slice(),
        });
    }

    /// Fetches the edge `(node, input)`: returns the destination node (or
    /// [`PRUNED`]) and copies the edge's atom bitset into `bits_out`. Builds
    /// the node's row on first touch.
    pub(crate) fn edge(&self, node: u32, input: usize, bits_out: &mut Vec<u64>) -> u32 {
        let mut core = self.core.borrow_mut();
        core.stats.lookups += 1;
        if core.nodes[node as usize].row.is_none() {
            self.build_row(&mut core, node);
        } else {
            core.stats.reuse_hits += 1;
        }
        let row = core.nodes[node as usize].row.as_ref().expect("row built");
        bits_out.clear();
        bits_out.extend_from_slice(&row.bits[input * self.words..(input + 1) * self.words]);
        row.dests[input]
    }

    /// `(admissible, pruned)` edge counts among the inputs strictly before
    /// `upto` in this node's row. Only called by walks that stop mid-row
    /// (verdict or budget), after [`StateGraph::edge`] has built the row.
    pub(crate) fn row_prefix(&self, node: u32, upto: usize) -> (u64, u64) {
        let core = self.core.borrow();
        let row = core.nodes[node as usize]
            .row
            .as_ref()
            .expect("prefix queries follow an edge fetch, which builds the row");
        let pruned = row.dests[..upto].iter().filter(|&&d| d == PRUNED).count() as u64;
        (upto as u64 - pruned, pruned)
    }

    /// The problem this graph was built from.
    pub fn problem(&self) -> &'p Problem<'d> {
        self.problem
    }

    /// Number of primary-input valuations (edge labels per node).
    pub fn num_inputs(&self) -> usize {
        self.inputs.len()
    }

    /// The `idx`-th input valuation.
    pub(crate) fn input(&self, idx: usize) -> &[u64] {
        &self.inputs[idx]
    }

    /// The design state of a node (cheap: states are refcounted).
    pub(crate) fn node_state(&self, node: u32) -> State {
        self.core.borrow().nodes[node as usize].state.clone()
    }

    /// The atom table walks index into.
    pub fn atoms(&self) -> &[RtlAtom] {
        &self.atoms
    }

    /// Current construction/reuse statistics.
    pub fn stats(&self) -> GraphStats {
        self.core.borrow().stats
    }

    /// Maps a property's atoms onto this graph's atom-table indices.
    ///
    /// # Panics
    ///
    /// Panics if the property mentions an atom absent from the table — the
    /// graph must be (re)built with every property it will serve.
    pub fn map_prop(&self, prop: &Prop<RtlAtom>) -> Prop<usize> {
        prop.map_atoms(&mut |a| self.atom_index(a))
    }

    /// Maps a boolean's atoms onto this graph's atom-table indices; same
    /// contract as [`StateGraph::map_prop`].
    pub fn map_bool(&self, b: &RtlBool) -> SvaBool<usize> {
        b.map_atoms(&mut |a| self.atom_index(a))
    }

    fn atom_index(&self, a: &RtlAtom) -> usize {
        match self.atoms.binary_search(a) {
            Ok(i) => i,
            Err(_) => panic!(
                "atom `{}` is not in the state graph's atom table — the graph \
                 must be built with every property it serves",
                a.render(self.problem.design),
            ),
        }
    }

    /// Captures the materialised core — nodes, monitor states, edge rows,
    /// structural statistics — as an immutable [`CoreSnapshot`]. Activity
    /// counters (`lookups`, `reuse_hits`) are zeroed: they describe walks,
    /// not the graph, and a graph resumed from the snapshot starts fresh.
    pub fn snapshot(&self) -> CoreSnapshot {
        let core = self.core.borrow();
        let nodes = core
            .nodes
            .iter()
            .map(|n| NodeSnapshot {
                regs: n.state.regs().to_vec(),
                assumptions: n.assumptions.clone(),
                row: n.row.as_ref().map(|r| (r.dests.to_vec(), r.bits.to_vec())),
            })
            .collect();
        let stats = GraphStats {
            lookups: 0,
            reuse_hits: 0,
            ..core.stats
        };
        CoreSnapshot {
            atoms: self.atoms.clone(),
            num_inputs: self.inputs.len(),
            words: self.words,
            num_regs: self.problem.design.num_regs(),
            num_monitors: core.monitors.len(),
            nodes,
            stats,
        }
    }

    /// Reconstructs a graph for `problem`/`props` from a snapshot, as if
    /// the original graph had been built in place — walks behave
    /// identically by the laziness invariant (see the module docs).
    ///
    /// Returns `None` unless the snapshot *provably* describes this exact
    /// problem: the atom table, dimensions, monitor arity, and initial
    /// product state must match, every edge row must be well-formed
    /// (destinations in range or [`PRUNED`]), the product states must be
    /// distinct, and the structural statistics must equal what the nodes
    /// actually contain. A snapshot from a different problem that slipped
    /// past the fingerprint (a hash collision) is therefore rejected here
    /// rather than producing a wrong verdict.
    pub fn from_snapshot<'a, I>(
        problem: &'p Problem<'d>,
        props: I,
        snap: &CoreSnapshot,
    ) -> Option<Self>
    where
        I: IntoIterator<Item = &'a Prop<RtlAtom>>,
    {
        let atoms = StateGraph::atom_table(problem, props);
        if atoms != snap.atoms {
            return None;
        }
        let graph = StateGraph::with_atoms(problem, atoms);
        if graph.inputs.len() != snap.num_inputs
            || graph.words != snap.words
            || problem.design.num_regs() != snap.num_regs
        {
            return None;
        }
        {
            let mut core = graph.core.borrow_mut();
            if core.monitors.len() != snap.num_monitors || snap.nodes.is_empty() {
                return None;
            }
            let init = &core.nodes[0];
            if snap.nodes[0].regs != init.state.regs()
                || snap.nodes[0].assumptions != init.assumptions
            {
                return None;
            }
            let num_nodes = snap.nodes.len();
            if u32::try_from(num_nodes).is_err() || snap.stats.nodes != num_nodes {
                return None;
            }
            let row_words = snap.num_inputs.checked_mul(snap.words)?;
            let mut nodes = Vec::with_capacity(num_nodes);
            let mut index = HashMap::with_capacity(num_nodes);
            let mut edges = 0u64;
            let mut pruned = 0u64;
            for (i, n) in snap.nodes.iter().enumerate() {
                if n.regs.len() != snap.num_regs || n.assumptions.len() != snap.num_monitors {
                    return None;
                }
                let state = State::from_regs(n.regs.clone());
                let row = match &n.row {
                    None => None,
                    Some((dests, bits)) => {
                        if dests.len() != snap.num_inputs || bits.len() != row_words {
                            return None;
                        }
                        for &d in dests {
                            if d == PRUNED {
                                pruned += 1;
                            } else if (d as usize) < num_nodes {
                                edges += 1;
                            } else {
                                return None;
                            }
                        }
                        Some(EdgeRow {
                            dests: dests.clone().into_boxed_slice(),
                            bits: bits.clone().into_boxed_slice(),
                        })
                    }
                };
                let duplicate = index
                    .insert((state.clone(), n.assumptions.clone()), i as u32)
                    .is_some();
                if duplicate {
                    return None;
                }
                nodes.push(GraphNode {
                    state,
                    assumptions: n.assumptions.clone(),
                    row,
                });
            }
            if edges != snap.stats.edges || pruned != snap.stats.pruned_edges {
                return None;
            }
            core.nodes = nodes;
            core.index = index;
            core.stats = GraphStats {
                lookups: 0,
                reuse_hits: 0,
                ..snap.stats
            };
        }
        Some(graph)
    }

    /// Reports the graph's construction/reuse counters (`graph.*`) and the
    /// shared assumption monitors' NFA metrics to a collector. Call once
    /// per graph, after the walks that use it.
    pub fn report_to(&self, collector: &dyn Collector) {
        let core = self.core.borrow();
        let s = core.stats;
        collector.counter("graph.nodes", s.nodes as u64, attrs![]);
        collector.counter("graph.edges", s.edges, attrs![]);
        collector.counter("graph.pruned_edges", s.pruned_edges, attrs![]);
        collector.counter("graph.lookups", s.lookups, attrs![]);
        collector.counter("graph.reuse_hits", s.reuse_hits, attrs![]);
        collector.counter("graph.atoms", self.atoms.len() as u64, attrs![]);
        if let Some(comp) = &self.composition {
            collector.counter("composed.graphs", 1, attrs![]);
            collector.counter("composed.regions", comp.regions.len() as u64, attrs![]);
            let cut_signals: usize = comp.regions.iter().map(|r| r.cuts.len()).sum();
            collector.counter("composed.cut_signals", cut_signals as u64, attrs![]);
            let interface_entries: usize = comp.memo.borrow().iter().map(|m| m.len()).sum();
            collector.counter(
                "composed.interface_entries",
                interface_entries as u64,
                attrs![],
            );
            collector.counter("composed.region_rows", comp.memo_misses.get(), attrs![]);
            collector.counter("composed.region_row_hits", comp.memo_hits.get(), attrs![]);
        }
        if let Some(sp) = &self.splice {
            collector.counter("cone.graphs", 1, attrs![]);
            collector.counter("cone.total", sp.cones_total, attrs![]);
            collector.counter("cone.dirty", sp.cones_dirty, attrs![]);
            collector.counter("cone.spliced", sp.cones_total - sp.cones_dirty, attrs![]);
            collector.counter("cone.rows_copied", sp.rows_copied.get(), attrs![]);
            collector.counter("cone.rows_spliced", sp.rows_spliced.get(), attrs![]);
            collector.counter("cone.rows_recomputed", sp.rows_recomputed.get(), attrs![]);
        }
        for (i, m) in core.monitors.iter().enumerate() {
            m.report_to(collector, &self.problem.assumptions[i].name);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::Directive;
    use rtlcheck_rtl::DesignBuilder;
    use rtlcheck_sva::SvaBool;

    fn counter() -> rtlcheck_rtl::Design {
        let mut b = DesignBuilder::new("c");
        let en = b.input("en", 1);
        let count = b.reg("count", 3, Some(0));
        let one = b.lit(1, 3);
        let ce = b.sig(count);
        let sum = b.add(ce, one);
        let ene = b.sig(en);
        let hold = b.sig(count);
        let nxt = b.mux(ene, sum, hold);
        b.set_next(count, nxt);
        b.build().unwrap()
    }

    #[test]
    fn input_valuations_enumerate_the_product_in_order() {
        let mut b = DesignBuilder::new("d");
        let a = b.input("a", 2);
        let c = b.input("b", 1);
        let _ = a;
        let r = b.reg("r", 1, Some(0));
        let ce = b.sig(c);
        b.set_next(r, ce);
        let d = b.build().unwrap();
        let vals = input_valuations(&d);
        assert_eq!(vals.len(), 8);
        assert_eq!(vals[0], vec![0, 0]);
        assert_eq!(vals[1], vec![0, 1]);
        assert_eq!(vals[7], vec![3, 1]);
    }

    #[test]
    fn wide_inputs_panic_with_the_signal_name() {
        let mut b = DesignBuilder::new("d");
        let w = b.input("wide_bus", 20);
        let r = b.reg("r", 20, Some(0));
        let we = b.sig(w);
        b.set_next(r, we);
        let d = b.build().unwrap();
        let err = std::panic::catch_unwind(|| input_valuations(&d)).unwrap_err();
        let msg = err
            .downcast_ref::<String>()
            .cloned()
            .expect("panic carries a message");
        assert!(msg.contains("wide_bus"), "{msg}");
        assert!(msg.contains("20 bits"), "{msg}");
    }

    /// A design whose inputs multiply out to exactly
    /// [`MAX_INPUT_VALUATIONS`] is accepted; one more bit anywhere is
    /// rejected. The boundary must not drift — the mutation campaign's
    /// designs sit near it.
    #[test]
    fn input_valuations_accept_exactly_the_limit() {
        let mut b = DesignBuilder::new("d");
        let a = b.input("a", 8); // 2^8 == MAX_INPUT_VALUATIONS
        let r = b.reg("r", 8, Some(0));
        let ae = b.sig(a);
        b.set_next(r, ae);
        let d = b.build().unwrap();
        assert_eq!(input_valuations(&d).len(), MAX_INPUT_VALUATIONS);
    }

    /// The panic names the input that crosses the limit *cumulatively* —
    /// a narrow input is still the offender when earlier inputs already
    /// used up the budget.
    #[test]
    fn cumulative_overflow_names_the_crossing_input() {
        let mut b = DesignBuilder::new("d");
        let a = b.input("grant_a", 8);
        let c = b.input("last_straw", 1); // 2^8 * 2 > MAX_INPUT_VALUATIONS
        let _ = a;
        let r = b.reg("r", 1, Some(0));
        let ce = b.sig(c);
        b.set_next(r, ce);
        let d = b.build().unwrap();
        let err = std::panic::catch_unwind(|| input_valuations(&d)).unwrap_err();
        let msg = err
            .downcast_ref::<String>()
            .cloned()
            .expect("panic carries a message");
        assert!(msg.contains("last_straw"), "{msg}");
        assert!(msg.contains("1 bits"), "{msg}");
        assert!(!msg.contains("grant_a"), "{msg}");
    }

    #[test]
    fn warm_build_completes_small_designs_and_walks_reuse() {
        let d = counter();
        let count = d.signal_by_name("count").unwrap();
        let problem = Problem::new(&d);
        let prop = Prop::Never(SvaBool::atom(RtlAtom::eq(count, 8)));
        let graph = StateGraph::build(&problem, [&prop], Engine::full(100_000));
        let s = graph.stats();
        assert!(s.complete, "{s:?}");
        assert_eq!(s.nodes, 8, "8 counter values");
        assert_eq!(s.reuse_hits, 0, "no walks yet");
        // An edge fetch after the warm-up is pure reuse.
        let mut bits = Vec::new();
        let dest = graph.edge(0, 1, &mut bits);
        assert_ne!(dest, PRUNED);
        assert_eq!(graph.stats().reuse_hits, 1);
    }

    #[test]
    fn pruned_edges_are_marked() {
        let d = counter();
        let en = d.signal_by_name("en").unwrap();
        let mut problem = Problem::new(&d);
        problem.assumptions.push(Directive::assume(
            "en_low",
            Prop::Never(SvaBool::atom(RtlAtom::is_true(en))),
        ));
        let graph = StateGraph::build(&problem, [], Engine::full(100_000));
        let s = graph.stats();
        assert!(s.complete);
        // Enable pinned low: the counter never leaves 0. Two product nodes
        // remain (the monitor's state changes once on its first step).
        assert_eq!(s.nodes, 2, "{s:?}");
        assert_eq!(s.pruned_edges, 2, "the en=1 edge is pruned at each node");
        assert_eq!(s.edges, 2, "only the en=0 edges remain");
    }

    #[test]
    fn edge_bits_carry_atom_valuations() {
        let d = counter();
        let count = d.signal_by_name("count").unwrap();
        let en = d.signal_by_name("en").unwrap();
        let problem = Problem::new(&d);
        let p0 = Prop::Never(SvaBool::atom(RtlAtom::eq(count, 0)));
        let p1 = Prop::Never(SvaBool::atom(RtlAtom::is_true(en)));
        let graph = StateGraph::new(&problem, [&p0, &p1]);
        assert_eq!(graph.atoms().len(), 2);
        let mut bits = Vec::new();
        // At the reset state (count == 0) with en = 1: both atoms true.
        graph.edge(0, 1, &mut bits);
        let idx_count = graph.map_bool(&SvaBool::atom(RtlAtom::eq(count, 0)));
        let idx_en = graph.map_bool(&SvaBool::atom(RtlAtom::is_true(en)));
        for b in [idx_count, idx_en] {
            assert!(b.eval(&|i: &usize| bits[i / 64] & (1 << (i % 64)) != 0));
        }
        // With en = 0 the en atom is false.
        graph.edge(0, 0, &mut bits);
        let b = graph.map_bool(&SvaBool::atom(RtlAtom::is_true(en)));
        assert!(!b.eval(&|i: &usize| bits[i / 64] & (1 << (i % 64)) != 0));
    }

    #[test]
    #[should_panic(expected = "not in the state graph's atom table")]
    fn mapping_a_foreign_atom_panics() {
        let d = counter();
        let count = d.signal_by_name("count").unwrap();
        let problem = Problem::new(&d);
        let graph = StateGraph::new(&problem, []);
        let _ = graph.map_prop(&Prop::Never(SvaBool::atom(RtlAtom::eq(count, 3))));
    }

    /// The counter with a mutated increment (`count + 2`): same signal
    /// table as [`counter`], one dirty register cone.
    fn counter_by_two() -> rtlcheck_rtl::Design {
        let mut b = DesignBuilder::new("c");
        let en = b.input("en", 1);
        let count = b.reg("count", 3, Some(0));
        let two = b.lit(2, 3);
        let ce = b.sig(count);
        let sum = b.add(ce, two);
        let ene = b.sig(en);
        let hold = b.sig(count);
        let nxt = b.mux(ene, sum, hold);
        b.set_next(count, nxt);
        b.build().unwrap()
    }

    #[test]
    fn splice_is_bit_identical_to_cold_and_validates() {
        let base = counter();
        let mutant = counter_by_two();
        let count = base.signal_by_name("count").unwrap();
        let prop = Prop::Never(SvaBool::atom(RtlAtom::eq(count, 7)));
        let bproblem = Problem::new(&base);
        let bgraph = StateGraph::build(&bproblem, [&prop], Engine::full(100_000));
        let bsnap = Arc::new(bgraph.snapshot());
        let dirty = ConeSet::diff(&base, &mutant).unwrap();
        assert!(!dirty.regs.is_empty());

        let mproblem = Problem::new(&mutant);
        let cold = StateGraph::build(&mproblem, [&prop], Engine::full(100_000));
        let spliced = StateGraph::splice(
            &mproblem,
            [&prop],
            bsnap.clone(),
            &dirty,
            Engine::full(100_000),
            true,
        )
        .expect("compatible tables and clean monitors must splice");
        assert_eq!(spliced.stats(), cold.stats());
        assert_eq!(spliced.snapshot(), cold.snapshot(), "bit-identical core");
        let sp = spliced.splice.as_ref().unwrap();
        assert_eq!(sp.cones_total, 1);
        assert_eq!(sp.cones_dirty, 1);
        assert!(
            sp.rows_spliced.get() > 0,
            "shared product states splice their rows"
        );
    }

    #[test]
    fn splice_with_nothing_dirty_is_pure_copy() {
        let d = counter();
        let count = d.signal_by_name("count").unwrap();
        let prop = Prop::Never(SvaBool::atom(RtlAtom::eq(count, 7)));
        let problem = Problem::new(&d);
        let bgraph = StateGraph::build(&problem, [&prop], Engine::full(100_000));
        let bsnap = Arc::new(bgraph.snapshot());
        let spliced = StateGraph::splice(
            &problem,
            [&prop],
            bsnap,
            &ConeSet::empty(),
            Engine::full(100_000),
            true,
        )
        .unwrap();
        assert_eq!(spliced.snapshot(), bgraph.snapshot());
        let sp = spliced.splice.as_ref().unwrap();
        assert!(sp.rows_copied.get() > 0);
        assert_eq!(sp.rows_spliced.get(), 0);
        assert_eq!(sp.rows_recomputed.get(), 0);
    }

    /// Satellite edge case: every cone dirty — the splice degenerates to
    /// re-simulating every register of every row, byte-identically to a
    /// cold build.
    #[test]
    fn splice_with_every_cone_dirty_degenerates_to_cold() {
        let base = counter();
        let mutant = counter_by_two();
        let count = base.signal_by_name("count").unwrap();
        let prop = Prop::Never(SvaBool::atom(RtlAtom::eq(count, 7)));
        let bproblem = Problem::new(&base);
        let bsnap =
            Arc::new(StateGraph::build(&bproblem, [&prop], Engine::full(100_000)).snapshot());

        let mproblem = Problem::new(&mutant);
        let cold = StateGraph::build(&mproblem, [&prop], Engine::full(100_000));
        let all = ConeSet::all(&mutant);
        let spliced =
            StateGraph::splice(&mproblem, [&prop], bsnap, &all, Engine::full(100_000), true)
                .unwrap();
        let cold_bytes = crate::cache::snapshot_to_bytes(
            &cold.snapshot(),
            &mutant,
            crate::cache::GraphKey { key: 0, check: 0 },
        );
        let spliced_bytes = crate::cache::snapshot_to_bytes(
            &spliced.snapshot(),
            &mutant,
            crate::cache::GraphKey { key: 0, check: 0 },
        );
        assert_eq!(cold_bytes, spliced_bytes, "byte-identical serialized core");
        let sp = spliced.splice.as_ref().unwrap();
        assert_eq!(sp.cones_dirty, sp.cones_total, "every cone invalidated");
        assert_eq!(sp.rows_copied.get(), 0, "nothing left to copy");
    }

    /// A mutation that dirties a wire an assumption directive reads must
    /// refuse to splice: monitor stepping could diverge.
    #[test]
    fn splice_refuses_dirty_assumption_atoms() {
        // Baseline: a wire `gate` over en; assumption `Never gate`.
        let build = |invert: bool| {
            let mut b = DesignBuilder::new("d");
            let en = b.input("en", 1);
            let count = b.reg("count", 3, Some(0));
            let one = b.lit(1, 3);
            let ce = b.sig(count);
            let sum = b.add(ce, one);
            let ene = b.sig(en);
            let hold = b.sig(count);
            let nxt = b.mux(ene, sum, hold);
            b.set_next(count, nxt);
            let g = if invert { b.not(en) } else { b.sig(en) };
            b.wire("gate", g);
            b.build().unwrap()
        };
        let base = build(false);
        let mutant = build(true);
        let gate = base.signal_by_name("gate").unwrap();
        let count = base.signal_by_name("count").unwrap();
        let prop = Prop::Never(SvaBool::atom(RtlAtom::eq(count, 7)));
        let mut bproblem = Problem::new(&base);
        bproblem.assumptions.push(Directive::assume(
            "gate_low",
            Prop::Never(SvaBool::atom(RtlAtom::is_true(gate))),
        ));
        let bsnap =
            Arc::new(StateGraph::build(&bproblem, [&prop], Engine::full(100_000)).snapshot());
        let dirty = ConeSet::diff(&base, &mutant).unwrap();
        assert!(dirty.wire_dirty(gate));
        let mut mproblem = Problem::new(&mutant);
        mproblem.assumptions.push(Directive::assume(
            "gate_low",
            Prop::Never(SvaBool::atom(RtlAtom::is_true(gate))),
        ));
        assert!(
            StateGraph::splice(
                &mproblem,
                [&prop],
                bsnap,
                &dirty,
                Engine::full(100_000),
                false
            )
            .is_none(),
            "an assumption over a dirty wire must force the cold path"
        );
    }

    /// An init-only mutation shifts the BFS root: the new initial node is
    /// absent from the baseline and re-simulates cold, but every state the
    /// baseline did reach still copies.
    #[test]
    fn splice_handles_a_shifted_initial_state() {
        let base = counter();
        let mut b = DesignBuilder::new("c");
        let en = b.input("en", 1);
        let count = b.reg("count", 3, Some(5));
        let one = b.lit(1, 3);
        let ce = b.sig(count);
        let sum = b.add(ce, one);
        let ene = b.sig(en);
        let hold = b.sig(count);
        let nxt = b.mux(ene, sum, hold);
        b.set_next(count, nxt);
        let mutant = b.build().unwrap();

        let count_id = base.signal_by_name("count").unwrap();
        let prop = Prop::Never(SvaBool::atom(RtlAtom::eq(count_id, 7)));
        let bproblem = Problem::new(&base);
        // A shallow baseline: only part of the space is materialised, so
        // the splice exercises both copy and cold-fallback rows.
        let bgraph = StateGraph::build(&bproblem, [&prop], Engine::bounded(2, 100_000));
        let bsnap = Arc::new(bgraph.snapshot());
        let dirty = ConeSet::diff(&base, &mutant).unwrap();
        assert!(dirty.regs.is_empty() && dirty.wires.is_empty());
        assert!(!dirty.init_regs.is_empty());

        let mproblem = Problem::new(&mutant);
        let cold = StateGraph::build(&mproblem, [&prop], Engine::full(100_000));
        let spliced = StateGraph::splice(
            &mproblem,
            [&prop],
            bsnap,
            &dirty,
            Engine::full(100_000),
            true,
        )
        .unwrap();
        assert_eq!(spliced.snapshot(), cold.snapshot());
        let sp = spliced.splice.as_ref().unwrap();
        assert!(sp.rows_copied.get() > 0, "baseline-reached states copy");
        assert!(sp.rows_recomputed.get() > 0, "unreached states rebuild");
    }
}

//! Engine configurations and property verdicts.
//!
//! The paper's Table 1 compares two JasperGold configurations: *Hybrid*
//! (bounded engines plus full-proof engines) and *Full_Proof* (full-proof
//! engines only, with a larger share of the time budget). This module
//! models engines as exploration budgets: a bounded engine limits search
//! depth (like a BMC engine's cycle bound), a full-proof engine limits only
//! the number of product states it may visit (its "time" budget).

use rtlcheck_rtl::waveform::Trace;

use crate::explore::ExploreStats;

/// What kind of proof an engine attempts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EngineKind {
    /// Bounded model checking: explores up to a cycle depth.
    Bounded,
    /// Full proof: explores until the reachable product space is exhausted
    /// or the state budget runs out.
    Full,
}

/// One proof engine: a kind plus its budgets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Engine {
    /// Bounded or full-proof.
    pub kind: EngineKind,
    /// Maximum product states to visit ("time" budget).
    pub max_states: usize,
    /// Maximum BFS depth in cycles (`None` for full-proof engines).
    pub max_depth: Option<u32>,
}

impl Engine {
    /// A bounded engine with the given cycle bound and state budget.
    pub fn bounded(depth: u32, max_states: usize) -> Engine {
        Engine {
            kind: EngineKind::Bounded,
            max_states,
            max_depth: Some(depth),
        }
    }

    /// A full-proof engine with the given state budget.
    pub fn full(max_states: usize) -> Engine {
        Engine {
            kind: EngineKind::Full,
            max_states,
            max_depth: None,
        }
    }
}

/// An engine configuration, run in order until one is conclusive
/// (Table 1's rows).
///
/// The budgets are calibrated for the Multi-V-scale reproduction: the
/// paper's engines ran out of *time* on its industrial-scale properties
/// (proving 81% of properties under Hybrid and 89% under Full_Proof within
/// 11 hours per test); our engines run out of *product states* at
/// analogous points of the per-property difficulty distribution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyConfig {
    /// Configuration name (reported in results, e.g. `"Hybrid"`).
    pub name: String,
    /// Engines in execution order.
    pub engines: Vec<Engine>,
    /// State budget of the covering-trace phase (the paper's one-hour
    /// covering run before the proof engines).
    pub cover_max_states: usize,
}

impl VerifyConfig {
    /// The paper's *Hybrid* configuration: a bounded engine first (deep
    /// cycle bound, cheap), then a full-proof engine with a modest budget.
    pub fn hybrid() -> VerifyConfig {
        VerifyConfig {
            name: "Hybrid".into(),
            engines: vec![Engine::bounded(40, 100_000), Engine::full(210)],
            cover_max_states: 33,
        }
    }

    /// The paper's *Full_Proof* configuration: full-proof engines only,
    /// with a larger state budget.
    pub fn full_proof() -> VerifyConfig {
        VerifyConfig {
            name: "Full_Proof".into(),
            engines: vec![Engine::full(430)],
            cover_max_states: 33,
        }
    }

    /// A generous configuration for tests and examples: full proof with a
    /// large budget and an unhindered cover phase.
    pub fn quick() -> VerifyConfig {
        VerifyConfig {
            name: "Quick".into(),
            engines: vec![Engine::full(2_000_000)],
            cover_max_states: 2_000_000,
        }
    }

    /// The cover-phase engine.
    pub fn cover_engine(&self) -> Engine {
        Engine::full(self.cover_max_states)
    }
}

/// The verifier's verdict for one property (§6.1: prove, bound, or refute).
#[derive(Debug, Clone)]
pub enum PropertyVerdict {
    /// Complete proof: the property holds on every trace of the design
    /// admitted by the assumptions.
    Proven {
        /// Exploration statistics.
        stats: ExploreStats,
    },
    /// Bounded proof: the property holds on all admissible traces of up to
    /// `depth` cycles.
    Bounded {
        /// Number of cycles fully verified.
        depth: u32,
        /// Exploration statistics.
        stats: ExploreStats,
    },
    /// A counterexample trace violating the property.
    Falsified {
        /// The violating execution (final cycle is the violation).
        trace: Box<Trace>,
        /// Exploration statistics.
        stats: ExploreStats,
    },
}

impl PropertyVerdict {
    /// Whether this is a complete proof.
    pub fn is_proven(&self) -> bool {
        matches!(self, PropertyVerdict::Proven { .. })
    }

    /// Whether a counterexample was found.
    pub fn is_falsified(&self) -> bool {
        matches!(self, PropertyVerdict::Falsified { .. })
    }

    /// The exploration statistics.
    pub fn stats(&self) -> ExploreStats {
        match self {
            PropertyVerdict::Proven { stats }
            | PropertyVerdict::Bounded { stats, .. }
            | PropertyVerdict::Falsified { stats, .. } => *stats,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_constructors() {
        let h = VerifyConfig::hybrid();
        assert_eq!(h.name, "Hybrid");
        assert_eq!(h.engines.len(), 2);
        assert_eq!(h.engines[0].kind, EngineKind::Bounded);
        let f = VerifyConfig::full_proof();
        assert_eq!(f.engines.len(), 1);
        assert_eq!(f.engines[0].kind, EngineKind::Full);
        assert!(f.engines[0].max_states > h.engines[1].max_states);
        assert_eq!(
            h.cover_max_states, f.cover_max_states,
            "same cover phase in both rows"
        );
    }

    #[test]
    fn cover_engine_has_no_depth_bound() {
        let h = VerifyConfig::hybrid();
        assert_eq!(h.cover_engine().max_depth, None);
        assert_eq!(h.cover_engine().max_states, h.cover_max_states);
    }

    #[test]
    fn verdict_predicates() {
        let p = PropertyVerdict::Proven {
            stats: ExploreStats::default(),
        };
        assert!(p.is_proven());
        assert!(!p.is_falsified());
        let b = PropertyVerdict::Bounded {
            depth: 7,
            stats: ExploreStats::default(),
        };
        assert!(!b.is_proven());
    }
}

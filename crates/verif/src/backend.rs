//! The verifier backend abstraction.
//!
//! PR 2 split exploration into a shared per-problem graph plus per-property
//! NFA walks; this module turns the graph side of that split into a trait
//! so the walk code is backend-agnostic. Two implementations exist:
//!
//! * [`StateGraph`] — the explicit-state reference: one edge per
//!   primary-input valuation, built by per-valuation simulation.
//! * [`crate::symbolic::SymbolicGraph`] — the BDD-backed reachable-set
//!   backend: edges are *classes* of input valuations with identical
//!   observable behaviour, built by image computation over characteristic
//!   functions of the design's input bits.
//!
//! The contract is expressed in terms of edge classes so both fit one
//! shape: an explicit edge is simply a class of multiplicity 1. A walk
//! iterates a node's classes in order of each class's *lowest-index*
//! member; because a new product state is always first discovered at the
//! lowest input index that reaches it, walks over either backend discover
//! states in the same order and produce identical verdicts, traces, and
//! [`crate::ExploreStats`] — the differential tests and the CI
//! `backend-differential` job hold them to byte equality.

use rtlcheck_obs::Collector;
use rtlcheck_rtl::sim::State;
use rtlcheck_rtl::{Design, SignalKind};
use rtlcheck_sva::{Prop, SvaBool};

use crate::atom::{RtlAtom, RtlBool};
use crate::graph::{input_space, GraphStats, StateGraph, MAX_INPUT_VALUATIONS};
use crate::problem::Problem;

/// One out-edge class of a backend node: a maximal set of same-cycle input
/// valuations with identical observable behaviour (admissibility, atom
/// valuations, destination).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EdgeClass {
    /// Destination node, or [`crate::graph::PRUNED`] when the class is
    /// discarded by the assumptions.
    pub dest: u32,
    /// Number of input valuations in the class (always 1 for the explicit
    /// backend). Walks weight transition statistics by this.
    pub multiplicity: u128,
}

/// The graph contract property walks and cover searches run against; see
/// the module docs for the equivalence argument between implementations.
pub trait Backend {
    /// The problem the graph was built from.
    fn problem(&self) -> &Problem<'_>;

    /// The sorted atom table edge bitsets index into.
    fn atoms(&self) -> &[RtlAtom];

    /// Maps a property's atoms onto atom-table indices.
    ///
    /// # Panics
    ///
    /// Panics if the property mentions an atom absent from the table.
    fn map_prop(&self, prop: &Prop<RtlAtom>) -> Prop<usize>;

    /// Maps a boolean's atoms onto atom-table indices; same contract as
    /// [`Backend::map_prop`].
    fn map_bool(&self, b: &RtlBool) -> SvaBool<usize>;

    /// Number of edge classes leaving `node`, in lowest-member order.
    fn num_edge_classes(&self, node: u32) -> usize;

    /// Fetches edge class `class` of `node` and copies its atom-valuation
    /// bitset into `bits_out` (zeroed for pruned classes). Builds the
    /// node's row on first touch.
    fn edge_class(&self, node: u32, class: usize, bits_out: &mut Vec<u64>) -> EdgeClass;

    /// The lowest-index input valuation of edge class `class` — the edge
    /// label used when rebuilding counterexample/cover traces.
    fn class_input(&self, node: u32, class: usize) -> Vec<u64>;

    /// `(admissible, pruned)` input-valuation counts strictly before the
    /// lowest member of class `class` in `node`'s row. Walks that stop
    /// mid-row use this to report the exact per-valuation statistics the
    /// explicit engine would have counted.
    fn class_prefix(&self, node: u32, class: usize) -> (u128, u128);

    /// The design state of a node (cheap: states are refcounted).
    fn node_state(&self, node: u32) -> State;

    /// Current construction/reuse statistics.
    fn stats(&self) -> GraphStats;

    /// Reports the graph's construction counters and shared assumption
    /// monitors to a collector. Call once per graph, after its walks.
    fn report_to(&self, collector: &dyn Collector);
}

impl Backend for StateGraph<'_, '_> {
    fn problem(&self) -> &Problem<'_> {
        StateGraph::problem(self)
    }

    fn atoms(&self) -> &[RtlAtom] {
        StateGraph::atoms(self)
    }

    fn map_prop(&self, prop: &Prop<RtlAtom>) -> Prop<usize> {
        StateGraph::map_prop(self, prop)
    }

    fn map_bool(&self, b: &RtlBool) -> SvaBool<usize> {
        StateGraph::map_bool(self, b)
    }

    fn num_edge_classes(&self, _node: u32) -> usize {
        self.num_inputs()
    }

    fn edge_class(&self, node: u32, class: usize, bits_out: &mut Vec<u64>) -> EdgeClass {
        EdgeClass {
            dest: self.edge(node, class, bits_out),
            multiplicity: 1,
        }
    }

    fn class_input(&self, _node: u32, class: usize) -> Vec<u64> {
        self.input(class).to_vec()
    }

    fn class_prefix(&self, node: u32, class: usize) -> (u128, u128) {
        let (admissible, pruned) = self.row_prefix(node, class);
        (u128::from(admissible), u128::from(pruned))
    }

    fn node_state(&self, node: u32) -> State {
        StateGraph::node_state(self, node)
    }

    fn stats(&self) -> GraphStats {
        StateGraph::stats(self)
    }

    fn report_to(&self, collector: &dyn Collector) {
        StateGraph::report_to(self, collector)
    }
}

/// Input-space size (valuations per cycle) past which `auto` prefers the
/// symbolic backend when the state space is small enough: beyond this,
/// per-valuation simulation dominates row construction and class
/// compression pays for the BDD overhead.
const AUTO_INPUT_VALUATIONS: u128 = 64;

/// Total register bits past which `auto` stays explicit in the heuristic
/// band: the symbolic row compile walks every next-state expression per
/// node, which grows with state width while explicit simulation amortises
/// it over few valuations.
const AUTO_REG_BITS: u32 = 128;

/// Register (== cone) count at or past which `auto` prefers the composed
/// backend on explicit-eligible designs: flat row construction is linear
/// in the register count per (node, input), which is exactly the work
/// per-region memoization amortises; below this the decomposition
/// bookkeeping is not worth it. Sized above the litmus platforms
/// (Multi-V-scale ≈ 46, TSO ≈ 60, five-stage ≈ 71 registers), which the
/// differential suites pin to the explicit reference.
const AUTO_COMPOSED_CONES: usize = 96;

/// The `--backend` selection: which graph implementation serves a test's
/// property walks.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum BackendChoice {
    /// Always the explicit [`StateGraph`] (panics on too-wide inputs).
    #[default]
    Explicit,
    /// Always the symbolic [`crate::symbolic::SymbolicGraph`].
    Symbolic,
    /// The modular [`crate::composed::ComposedGraph`] wherever the design
    /// is explicit-eligible (symbolic on too-wide inputs); falls back to
    /// flat explicit per problem when decomposition cannot help.
    Composed,
    /// Per-design heuristic; see [`BackendChoice::resolve`].
    Auto,
}

/// The backend actually used for one design after resolving
/// [`BackendChoice`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackendKind {
    /// The explicit-state [`StateGraph`].
    Explicit,
    /// The BDD-backed [`crate::symbolic::SymbolicGraph`].
    Symbolic,
    /// The modular [`crate::composed::ComposedGraph`] (per-problem
    /// fallback to flat explicit when decomposition cannot help).
    Composed,
}

impl BackendKind {
    /// Stable lower-case label (CLI values, counters, span attributes).
    pub fn label(self) -> &'static str {
        match self {
            BackendKind::Explicit => "explicit",
            BackendKind::Symbolic => "symbolic",
            BackendKind::Composed => "composed",
        }
    }
}

impl BackendChoice {
    /// Parses a `--backend` CLI value.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "explicit" => Some(BackendChoice::Explicit),
            "symbolic" => Some(BackendChoice::Symbolic),
            "composed" => Some(BackendChoice::Composed),
            "auto" => Some(BackendChoice::Auto),
            _ => None,
        }
    }

    /// Stable lower-case label (the CLI value that selects this choice).
    pub fn label(self) -> &'static str {
        match self {
            BackendChoice::Explicit => "explicit",
            BackendChoice::Symbolic => "symbolic",
            BackendChoice::Composed => "composed",
            BackendChoice::Auto => "auto",
        }
    }

    /// Resolves the choice for one design. `Auto` routes to the symbolic
    /// backend when the explicit backend *cannot* run (the input space
    /// exceeds its enumeration limit — or overflows `u128` entirely, where
    /// explicit enumeration would panic mid-run), and when the input-width
    /// / register-count heuristic says class compression will win: a wide
    /// input space (> `AUTO_INPUT_VALUATIONS` valuations per cycle) over
    /// a small state space (≤ `AUTO_REG_BITS` register bits). Among
    /// explicit-eligible designs, `Auto` prefers the composed backend at
    /// or past `AUTO_COMPOSED_CONES` registers — where flat per-row work
    /// is dominated by register-count-linear evaluation that per-region
    /// memoization amortises. `Composed` applies the same
    /// cannot-run-explicit escape (composed rows enumerate input
    /// valuations exactly like explicit ones).
    pub fn resolve(self, design: &Design) -> BackendKind {
        match self {
            BackendChoice::Explicit => BackendKind::Explicit,
            BackendChoice::Symbolic => BackendKind::Symbolic,
            BackendChoice::Composed => match input_space(design) {
                None => BackendKind::Symbolic,
                Some(space) if space > MAX_INPUT_VALUATIONS as u128 => BackendKind::Symbolic,
                Some(_) => BackendKind::Composed,
            },
            BackendChoice::Auto => match input_space(design) {
                None => BackendKind::Symbolic,
                Some(space) if space > MAX_INPUT_VALUATIONS as u128 => BackendKind::Symbolic,
                Some(space)
                    if space > AUTO_INPUT_VALUATIONS && reg_bits(design) <= AUTO_REG_BITS =>
                {
                    BackendKind::Symbolic
                }
                Some(_) if design.num_regs() >= AUTO_COMPOSED_CONES => BackendKind::Composed,
                Some(_) => BackendKind::Explicit,
            },
        }
    }
}

/// Total register bits of a design — the `auto` state-space measure.
fn reg_bits(design: &Design) -> u32 {
    design
        .signals()
        .filter(|(_, s)| matches!(s.kind, SignalKind::Reg { .. }))
        .map(|(_, s)| u32::from(s.width))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::PRUNED;
    use crate::problem::Directive;
    use rtlcheck_rtl::DesignBuilder;

    fn design_with_input(width: u8) -> Design {
        let mut b = DesignBuilder::new("d");
        let i = b.input("in", width);
        let r = b.reg("r", width, Some(0));
        let ie = b.sig(i);
        b.set_next(r, ie);
        b.build().unwrap()
    }

    #[test]
    fn explicit_and_symbolic_choices_are_unconditional() {
        let narrow = design_with_input(2);
        let wide = design_with_input(20);
        for d in [&narrow, &wide] {
            assert_eq!(BackendChoice::Explicit.resolve(d), BackendKind::Explicit);
            assert_eq!(BackendChoice::Symbolic.resolve(d), BackendKind::Symbolic);
        }
    }

    #[test]
    fn auto_stays_explicit_on_narrow_inputs() {
        // The litmus designs have a 2-bit arbiter input (4 valuations):
        // auto must keep them on the explicit reference backend.
        let d = design_with_input(2);
        assert_eq!(BackendChoice::Auto.resolve(&d), BackendKind::Explicit);
    }

    #[test]
    fn auto_routes_wide_inputs_to_symbolic() {
        // 20 input bits overflow the explicit enumeration limit: explicit
        // would panic, auto must route to symbolic.
        let d = design_with_input(20);
        assert_eq!(BackendChoice::Auto.resolve(&d), BackendKind::Symbolic);
    }

    #[test]
    fn auto_heuristic_band_weighs_input_width_against_state_bits() {
        // 8 input bits = 256 valuations: within the explicit limit but past
        // the heuristic threshold — symbolic wins while state is small.
        let small_state = design_with_input(8);
        assert_eq!(
            BackendChoice::Auto.resolve(&small_state),
            BackendKind::Symbolic
        );
        // Same input width over a wide state space: stay explicit.
        let mut b = DesignBuilder::new("d");
        b.input("in", 8);
        for k in 0..3 {
            let r = b.reg(format!("r{k}"), 64, Some(0));
            let hold = b.sig(r);
            b.set_next(r, hold);
        }
        let wide_state = b.build().unwrap();
        assert_eq!(
            BackendChoice::Auto.resolve(&wide_state),
            BackendKind::Explicit
        );
    }

    #[test]
    fn parse_round_trips_labels() {
        for c in [
            BackendChoice::Explicit,
            BackendChoice::Symbolic,
            BackendChoice::Composed,
            BackendChoice::Auto,
        ] {
            assert_eq!(BackendChoice::parse(c.label()), Some(c));
        }
        assert_eq!(BackendChoice::parse("bdd"), None);
        assert_eq!(BackendChoice::default(), BackendChoice::Explicit);
    }

    #[test]
    fn composed_choice_escapes_to_symbolic_on_wide_inputs() {
        // Composed rows enumerate inputs like explicit ones; a too-wide
        // input space must take the same symbolic escape, never panic.
        let narrow = design_with_input(2);
        assert_eq!(
            BackendChoice::Composed.resolve(&narrow),
            BackendKind::Composed
        );
        let wide = design_with_input(20);
        assert_eq!(
            BackendChoice::Composed.resolve(&wide),
            BackendKind::Symbolic
        );
        assert_eq!(BackendKind::Composed.label(), "composed");
    }

    #[test]
    fn auto_prefers_composed_past_the_cone_threshold() {
        // Many narrow registers over a narrow input: explicit-eligible,
        // and past AUTO_COMPOSED_CONES the composed backend wins.
        let build = |regs: usize| {
            let mut b = DesignBuilder::new("d");
            let i = b.input("in", 2);
            let ie = b.sig(i);
            let one = b.lit(1, 2);
            let v = b.add(ie, one);
            for k in 0..regs {
                let r = b.reg(format!("r{k}"), 2, Some(0));
                let _ = r;
                b.set_next(r, v);
            }
            b.build().unwrap()
        };
        let small = build(AUTO_COMPOSED_CONES - 1);
        assert_eq!(BackendChoice::Auto.resolve(&small), BackendKind::Explicit);
        let big = build(AUTO_COMPOSED_CONES);
        assert_eq!(BackendChoice::Auto.resolve(&big), BackendKind::Composed);
    }

    /// The litmus platforms must stay pinned to the explicit reference
    /// under `auto`: the full-suite differential compares auto to explicit
    /// byte-for-byte.
    #[test]
    fn auto_stays_explicit_on_suite_designs() {
        use rtlcheck_rtl::multi_vscale::{MemoryImpl, MultiVscale};
        let mp = rtlcheck_litmus::suite::get("mp").unwrap();
        let mv = MultiVscale::build(&mp, MemoryImpl::Fixed);
        assert!(mv.design.num_regs() < AUTO_COMPOSED_CONES);
        assert_eq!(
            BackendChoice::Auto.resolve(&mv.design),
            BackendKind::Explicit
        );
    }

    #[test]
    fn explicit_graph_implements_the_class_contract() {
        let d = design_with_input(2);
        let mut problem = Problem::new(&d);
        let input = d.signal_by_name("in").unwrap();
        // Prune the in == 3 valuation so the prefix counts are mixed.
        problem.assumptions.push(Directive::assume(
            "no_three",
            Prop::Never(SvaBool::atom(RtlAtom::eq(input, 3))),
        ));
        let graph = StateGraph::new(&problem, []);
        let backend: &dyn Backend = &graph;
        assert_eq!(backend.num_edge_classes(0), 4);
        let mut bits = Vec::new();
        for class in 0..4 {
            let e = backend.edge_class(0, class, &mut bits);
            assert_eq!(e.multiplicity, 1);
            assert_eq!(e.dest == PRUNED, class == 3, "only in==3 is pruned");
            assert_eq!(backend.class_input(0, class), vec![class as u64]);
        }
        assert_eq!(backend.class_prefix(0, 4), (3, 1));
        assert_eq!(backend.class_prefix(0, 1), (1, 0));
    }

    #[test]
    fn reg_bits_sums_register_widths() {
        let d = design_with_input(8);
        assert_eq!(reg_bits(&d), 8);
    }
}

//! The composed (modular) verification backend.
//!
//! RealityCheck (see PAPERS.md) verifies large designs by splitting them
//! into modules, verifying each module against an *interface
//! specification*, and composing the per-module results at the interfaces.
//! [`ComposedGraph`] is that architecture behind the existing
//! [`Backend`] trait:
//!
//! * The design is partitioned into **module regions** with
//!   [`rtlcheck_rtl::region::RegionPartition`]: maximal register groups
//!   closed under next-state reads, with the primary inputs as the *cut
//!   signals* at each region's interface.
//! * `Composition::analyze` assigns every property atom and every
//!   assumption monitor to the region its signals read, merging regions a
//!   monitor or atom spans — after which each region's behaviour (next
//!   register values, monitor verdicts, atom valuations) is a function of
//!   only its own registers, its monitors' states, and the cut-signal
//!   valuation. That function *is* the region's interface spec, and it is
//!   materialised as a memoised table of **region rows**: for each
//!   `(region registers, region monitor states)` point, the per-input
//!   verdict/next-state/atom-bits vector, bounded exactly like the flat
//!   graph by the assumption monitors (a failing monitor marks the entry
//!   inadmissible).
//! * The full product graph is then assembled by **product-walking only
//!   the interface-visible state**: each node's edge row is the join of
//!   its regions' rows — admissibility is the conjunction, destinations
//!   and atom bitsets the scatter/union — so a region row computed once
//!   serves every product node that projects onto it.
//!
//! The composition is **never wrong, only sometimes no faster**: when the
//! cut is non-conservative — the design has no registers, or everything
//! collapses into a single region (as Multi-V-scale's arbiter coupling
//! does) — [`ComposedGraph::build`] returns a structured
//! [`ComposedFallback`] and the caller runs the flat engine, emitting a
//! `composed.fallback` event. When it does compose, the resulting graph is
//! **byte-identical** to the flat explicit one: same nodes in the same
//! discovery order, same edges, prunes, atom bitsets, statistics, and
//! snapshots — only the construction cost differs. The full-suite
//! differential test and the cut-soundness proptest hold it to exactly
//! that.

use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::fmt;
use std::rc::Rc;

use rtlcheck_obs::Collector;
use rtlcheck_rtl::region::{RegionPartition, SupportIndex};
use rtlcheck_rtl::sim::State;
use rtlcheck_rtl::{ExprId, SignalId, SignalKind};
use rtlcheck_sva::{MonitorState, Prop, SvaBool};

use crate::atom::{RtlAtom, RtlBool};
use crate::backend::{Backend, EdgeClass};
use crate::cache::CoreSnapshot;
use crate::engine::Engine;
use crate::graph::{GraphStats, StateGraph};
use crate::problem::Problem;

/// Why a problem could not be decomposed — the structured reason carried
/// by the `composed.fallback` event when the caller reverts to the flat
/// engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ComposedFallback {
    /// Atom/monitor coupling (or the design's own register reads) merged
    /// everything into one region: composing would just be the flat build
    /// with extra bookkeeping.
    SingleRegion,
    /// The design has no registers — there is nothing to partition.
    NoRegisters,
}

impl ComposedFallback {
    /// Stable lower-snake-case label (event/counter attribute value).
    pub fn reason(self) -> &'static str {
        match self {
            ComposedFallback::SingleRegion => "single_region",
            ComposedFallback::NoRegisters => "no_registers",
        }
    }
}

impl fmt::Display for ComposedFallback {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ComposedFallback::SingleRegion => {
                write!(f, "design collapses into a single module region")
            }
            ComposedFallback::NoRegisters => write!(f, "design has no registers"),
        }
    }
}

/// One region's verification context: the registers it owns, the
/// assumption monitors bounded to it, and the atoms it evaluates.
#[derive(Debug)]
pub(crate) struct RegionCtx {
    /// `(dense register index, next-state expr, width)` per region
    /// register, in region order (sorted by signal id).
    pub(crate) regs: Vec<(usize, ExprId, u8)>,
    /// Indices into `problem.assumptions` of the monitors whose atoms this
    /// region owns, ascending.
    pub(crate) monitors: Vec<usize>,
    /// The region's atoms, grouped by signal exactly like the flat graph's
    /// `sig_atoms` (atom-table index, expected value).
    pub(crate) sig_atoms: Vec<(SignalId, Vec<(usize, u64)>)>,
    /// The region's interface cut signals (primary inputs it reads).
    pub(crate) cuts: Vec<SignalId>,
}

/// One `(region state, input valuation)` interface-spec entry.
#[derive(Debug)]
pub(crate) struct RegionEntry {
    /// Whether one of the region's assumption monitors failed.
    pub(crate) failed: bool,
    /// The region's monitors' next states (region-local order).
    pub(crate) next_states: Vec<MonitorState>,
    /// The region's registers' next values (region-local order, masked).
    pub(crate) next_regs: Vec<u64>,
    /// The region's atom valuations, positioned in the *global* bitset
    /// layout (atom-table indices are global).
    pub(crate) bits: Vec<u64>,
}

/// One region row: the region's interface spec at one
/// `(region registers, region monitor states)` point — an entry per input
/// valuation.
#[derive(Debug)]
pub(crate) struct RegionRow {
    pub(crate) entries: Vec<RegionEntry>,
}

/// Memo key of a region row: the projection of a product node onto one
/// region's interface-visible state.
pub(crate) type RegionKey = (Vec<u64>, Vec<MonitorState>);

/// The analyzed decomposition of a problem, installed into a
/// [`StateGraph`] to drive composed row construction.
#[derive(Debug)]
pub(crate) struct Composition {
    pub(crate) regions: Vec<RegionCtx>,
    /// Per assumption-directive index: `(region, position within that
    /// region's monitor list)` — used to reassemble monitor-state vectors
    /// in directive order.
    pub(crate) monitor_slot: Vec<(usize, usize)>,
    /// Atoms reading only inputs/constants: state-independent, evaluated
    /// once per input valuation at attach time.
    pub(crate) global_sig_atoms: Vec<(SignalId, Vec<(usize, u64)>)>,
    /// Precomputed global atom bits, one bitset per input valuation
    /// (filled by [`StateGraph::attach_composition`]).
    pub(crate) global_bits: Vec<Vec<u64>>,
    /// Per-region interface-spec tables.
    pub(crate) memo: RefCell<Vec<HashMap<RegionKey, Rc<RegionRow>>>>,
    /// Region rows served from the memo.
    pub(crate) memo_hits: Cell<u64>,
    /// Region rows computed (interface-spec entries materialised).
    pub(crate) memo_misses: Cell<u64>,
}

fn push_sig_atom(
    list: &mut Vec<(SignalId, Vec<(usize, u64)>)>,
    sig: SignalId,
    index: usize,
    value: u64,
) {
    match list.last_mut() {
        Some((s, l)) if *s == sig => l.push((index, value)),
        _ => list.push((sig, vec![(index, value)])),
    }
}

impl Composition {
    /// Analyzes a problem against its atom table: partitions the design
    /// into module regions, merges regions coupled by a spanning atom or
    /// assumption monitor, and assigns every atom and monitor to its
    /// region (or to the input-only global set).
    ///
    /// Returns a [`ComposedFallback`] when decomposition cannot help:
    /// no registers, or everything merged into one region.
    pub(crate) fn analyze(
        problem: &Problem<'_>,
        atoms: &[RtlAtom],
    ) -> Result<Composition, ComposedFallback> {
        let design = problem.design;
        if design.num_regs() == 0 {
            return Err(ComposedFallback::NoRegisters);
        }
        let base = RegionPartition::of(design);
        let support = SupportIndex::of(design);
        let regions_of = |sig: SignalId| -> Vec<usize> {
            let mut rs: Vec<usize> = support
                .leaves(sig)
                .iter()
                .filter_map(|&l| base.region_of(l))
                .collect();
            rs.sort_unstable();
            rs.dedup();
            rs
        };
        // An atom or monitor whose signals read several regions couples
        // them: the regions must be verified together for its valuation /
        // verdict to be a function of one region's interface state.
        let mut links: Vec<(usize, usize)> = Vec::new();
        for a in atoms {
            let rs = regions_of(a.sig);
            links.extend(rs.windows(2).map(|w| (w[0], w[1])));
        }
        for d in &problem.assumptions {
            let mut rs = Vec::new();
            d.prop.for_each_atom(&mut |a| rs.extend(regions_of(a.sig)));
            rs.sort_unstable();
            rs.dedup();
            links.extend(rs.windows(2).map(|w| (w[0], w[1])));
        }
        let part = base.merged(&links);
        if part.len() < 2 {
            return Err(ComposedFallback::SingleRegion);
        }
        let mut regions: Vec<RegionCtx> = part
            .regions()
            .iter()
            .map(|r| {
                let regs = r
                    .regs
                    .iter()
                    .map(|&id| {
                        let s = design.signal(id);
                        let SignalKind::Reg { index, next, .. } = s.kind else {
                            unreachable!("region members are registers");
                        };
                        (index, next, s.width)
                    })
                    .collect();
                RegionCtx {
                    regs,
                    monitors: Vec::new(),
                    sig_atoms: Vec::new(),
                    cuts: r.cuts.clone(),
                }
            })
            .collect();
        debug_assert_eq!(
            regions.iter().map(|r| r.regs.len()).sum::<usize>(),
            design.num_regs(),
            "regions partition the registers"
        );
        // After merging, every signal's register leaves sit in at most one
        // region; `None` means input/constant-only (state-independent).
        let region_for = |sig: SignalId| -> Option<usize> {
            let mut out = None;
            for &l in support.leaves(sig) {
                if let Some(r) = part.region_of(l) {
                    debug_assert!(
                        out.is_none() || out == Some(r),
                        "spanning signals were merged into one region"
                    );
                    out = Some(r);
                }
            }
            out
        };
        let mut global_sig_atoms = Vec::new();
        for (i, a) in atoms.iter().enumerate() {
            match region_for(a.sig) {
                Some(r) => push_sig_atom(&mut regions[r].sig_atoms, a.sig, i, a.value),
                None => push_sig_atom(&mut global_sig_atoms, a.sig, i, a.value),
            }
        }
        let mut monitor_slot = Vec::with_capacity(problem.assumptions.len());
        for (di, d) in problem.assumptions.iter().enumerate() {
            let mut target = None;
            d.prop.for_each_atom(&mut |a| {
                if let Some(r) = region_for(a.sig) {
                    target = Some(r);
                }
            });
            // Input-only monitors are state-independent; park them in
            // region 0 (any region steps them identically).
            let r = target.unwrap_or(0);
            monitor_slot.push((r, regions[r].monitors.len()));
            regions[r].monitors.push(di);
        }
        Ok(Composition {
            regions,
            monitor_slot,
            global_sig_atoms,
            global_bits: Vec::new(),
            memo: RefCell::new(Vec::new()),
            memo_hits: Cell::new(0),
            memo_misses: Cell::new(0),
        })
    }

    /// Number of module regions.
    pub(crate) fn num_regions(&self) -> usize {
        self.regions.len()
    }
}

/// The modular backend: a [`StateGraph`] whose rows are assembled from
/// per-region interface specs instead of whole-product simulation. See the
/// module docs for the construction and the byte-parity argument.
#[derive(Debug)]
pub struct ComposedGraph<'p, 'd> {
    inner: StateGraph<'p, 'd>,
    regions: usize,
}

impl<'p, 'd> ComposedGraph<'p, 'd> {
    /// Analyzes and builds the composed graph with the same eager
    /// breadth-first warm-up as [`StateGraph::build`].
    ///
    /// # Errors
    ///
    /// Returns a [`ComposedFallback`] when the problem does not decompose
    /// (run the flat engine instead — same verdicts, no speedup).
    ///
    /// # Panics
    ///
    /// Panics like [`StateGraph::new`] on unpinned free-init registers or
    /// a too-wide input space.
    pub fn build<'a, I>(
        problem: &'p Problem<'d>,
        props: I,
        engine: Engine,
    ) -> Result<Self, ComposedFallback>
    where
        I: IntoIterator<Item = &'a Prop<RtlAtom>>,
    {
        let atoms = StateGraph::atom_table(problem, props);
        let comp = Composition::analyze(problem, &atoms)?;
        let regions = comp.num_regions();
        Ok(ComposedGraph {
            inner: StateGraph::build_composed(problem, atoms, comp, engine),
            regions,
        })
    }

    /// Reconstructs a composed graph from a cached [`CoreSnapshot`]
    /// (composed and flat cores are byte-identical, so the snapshot format
    /// is shared). `Ok(None)` mirrors [`StateGraph::from_snapshot`]: the
    /// snapshot does not provably describe this problem.
    ///
    /// # Errors
    ///
    /// Returns a [`ComposedFallback`] when the problem does not decompose.
    pub fn from_snapshot<'a, I>(
        problem: &'p Problem<'d>,
        props: I,
        snap: &CoreSnapshot,
    ) -> Result<Option<Self>, ComposedFallback>
    where
        I: IntoIterator<Item = &'a Prop<RtlAtom>>,
    {
        let props: Vec<&'a Prop<RtlAtom>> = props.into_iter().collect();
        let atoms = StateGraph::atom_table(problem, props.iter().copied());
        let comp = Composition::analyze(problem, &atoms)?;
        let regions = comp.num_regions();
        match StateGraph::from_snapshot(problem, props, snap) {
            Some(mut inner) => {
                inner.attach_composition(comp);
                Ok(Some(ComposedGraph { inner, regions }))
            }
            None => Ok(None),
        }
    }

    /// The underlying flat-compatible graph (for snapshotting/caching —
    /// the core is byte-identical to a flat explicit build).
    pub fn as_flat(&self) -> &StateGraph<'p, 'd> {
        &self.inner
    }

    /// Number of module regions the problem decomposed into.
    pub fn regions(&self) -> usize {
        self.regions
    }

    /// Captures the materialised core; identical to the flat graph's
    /// snapshot of the same problem.
    pub fn snapshot(&self) -> CoreSnapshot {
        self.inner.snapshot()
    }

    /// Current construction/reuse statistics.
    pub fn stats(&self) -> GraphStats {
        self.inner.stats()
    }

    /// The problem this graph was built from.
    pub fn problem(&self) -> &'p Problem<'d> {
        self.inner.problem()
    }
}

impl Backend for ComposedGraph<'_, '_> {
    fn problem(&self) -> &Problem<'_> {
        self.inner.problem()
    }

    fn atoms(&self) -> &[RtlAtom] {
        self.inner.atoms()
    }

    fn map_prop(&self, prop: &Prop<RtlAtom>) -> Prop<usize> {
        self.inner.map_prop(prop)
    }

    fn map_bool(&self, b: &RtlBool) -> SvaBool<usize> {
        self.inner.map_bool(b)
    }

    fn num_edge_classes(&self, node: u32) -> usize {
        Backend::num_edge_classes(&self.inner, node)
    }

    fn edge_class(&self, node: u32, class: usize, bits_out: &mut Vec<u64>) -> EdgeClass {
        Backend::edge_class(&self.inner, node, class, bits_out)
    }

    fn class_input(&self, node: u32, class: usize) -> Vec<u64> {
        Backend::class_input(&self.inner, node, class)
    }

    fn class_prefix(&self, node: u32, class: usize) -> (u128, u128) {
        Backend::class_prefix(&self.inner, node, class)
    }

    fn node_state(&self, node: u32) -> State {
        Backend::node_state(&self.inner, node)
    }

    fn stats(&self) -> GraphStats {
        self.inner.stats()
    }

    fn report_to(&self, collector: &dyn Collector) {
        self.inner.report_to(collector)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::Directive;
    use rtlcheck_rtl::scaled;
    use rtlcheck_rtl::DesignBuilder;

    /// Two independent 2-bit counters over a shared 1-bit enable.
    fn two_counters() -> rtlcheck_rtl::Design {
        let mut b = DesignBuilder::new("d");
        let en = b.input("en", 1);
        let ene = b.sig(en);
        for name in ["a", "b"] {
            let r = b.reg(name, 2, Some(0));
            let one = b.lit(1, 2);
            let re = b.sig(r);
            let sum = b.add(re, one);
            let hold = b.sig(r);
            let nxt = b.mux(ene, sum, hold);
            b.set_next(r, nxt);
        }
        b.build().unwrap()
    }

    #[test]
    fn independent_counters_decompose_into_two_regions() {
        let d = two_counters();
        let a = d.signal_by_name("a").unwrap();
        let problem = Problem::new(&d);
        let prop = Prop::Never(SvaBool::atom(RtlAtom::eq(a, 3)));
        let graph =
            ComposedGraph::build(&problem, [&prop], Engine::full(100_000)).expect("decomposes");
        assert_eq!(graph.regions(), 2);
        let flat = StateGraph::build(&problem, [&prop], Engine::full(100_000));
        assert_eq!(graph.stats(), flat.stats());
        assert_eq!(graph.snapshot(), flat.snapshot(), "byte-identical core");
    }

    #[test]
    fn composed_parity_holds_with_assumptions_and_pruning() {
        let d = two_counters();
        let a = d.signal_by_name("a").unwrap();
        let b_sig = d.signal_by_name("b").unwrap();
        let en = d.signal_by_name("en").unwrap();
        let mut problem = Problem::new(&d);
        // One monitor per region plus an input-only monitor that prunes.
        problem.assumptions.push(Directive::assume(
            "a_low",
            Prop::Never(SvaBool::atom(RtlAtom::eq(a, 3))),
        ));
        problem.assumptions.push(Directive::assume(
            "b_any",
            Prop::Never(SvaBool::atom(RtlAtom::eq(b_sig, 3))),
        ));
        problem.assumptions.push(Directive::assume(
            "en_high",
            Prop::Never(SvaBool::not(SvaBool::atom(RtlAtom::is_true(en)))),
        ));
        let prop = Prop::Never(SvaBool::atom(RtlAtom::eq(a, 2)));
        let composed =
            ComposedGraph::build(&problem, [&prop], Engine::full(100_000)).expect("decomposes");
        let flat = StateGraph::build(&problem, [&prop], Engine::full(100_000));
        assert_eq!(composed.stats(), flat.stats());
        assert_eq!(composed.snapshot(), flat.snapshot());
        assert!(composed.stats().pruned_edges > 0, "en=0 edges prune");
    }

    #[test]
    fn spanning_assumption_merges_regions_into_fallback() {
        let d = two_counters();
        let a = d.signal_by_name("a").unwrap();
        let b_sig = d.signal_by_name("b").unwrap();
        let mut problem = Problem::new(&d);
        // A monitor reading both counters couples the two regions.
        problem.assumptions.push(Directive::assume(
            "coupled",
            Prop::Never(SvaBool::and(
                SvaBool::atom(RtlAtom::eq(a, 3)),
                SvaBool::atom(RtlAtom::eq(b_sig, 3)),
            )),
        ));
        let err = ComposedGraph::build(&problem, [], Engine::full(100_000)).unwrap_err();
        assert_eq!(err, ComposedFallback::SingleRegion);
        assert_eq!(err.reason(), "single_region");
    }

    #[test]
    fn registerless_design_falls_back() {
        let mut b = DesignBuilder::new("comb");
        let i = b.input("i", 1);
        let e = b.sig(i);
        b.wire("w", e);
        let d = b.build().unwrap();
        let problem = Problem::new(&d);
        let err = ComposedGraph::build(&problem, [], Engine::full(100_000)).unwrap_err();
        assert_eq!(err, ComposedFallback::NoRegisters);
        assert_eq!(err.reason(), "no_registers");
    }

    #[test]
    fn snapshot_round_trips_through_from_snapshot() {
        let d = two_counters();
        let a = d.signal_by_name("a").unwrap();
        let problem = Problem::new(&d);
        let prop = Prop::Never(SvaBool::atom(RtlAtom::eq(a, 3)));
        let built =
            ComposedGraph::build(&problem, [&prop], Engine::full(100_000)).expect("decomposes");
        let snap = built.snapshot();
        let resumed = ComposedGraph::from_snapshot(&problem, [&prop], &snap)
            .expect("decomposes")
            .expect("snapshot describes the problem");
        assert_eq!(resumed.snapshot(), snap);
        assert_eq!(resumed.regions(), built.regions());
    }

    #[test]
    fn scaled_design_composes_and_matches_flat() {
        let d = scaled::build(8);
        let hub = d.signal_by_name("hub").unwrap();
        let lane = d.signal_by_name("lane003").unwrap();
        let problem = Problem::new(&d);
        let p0 = Prop::Never(SvaBool::atom(RtlAtom::eq(hub, 255)));
        let p1 = Prop::Never(SvaBool::atom(RtlAtom::eq(lane, 15)));
        let composed = ComposedGraph::build(&problem, [&p0, &p1], Engine::full(100_000))
            .expect("hub + lanes decomposes");
        assert_eq!(composed.regions(), 9);
        let flat = StateGraph::build(&problem, [&p0, &p1], Engine::full(100_000));
        assert_eq!(composed.stats(), flat.stats());
        assert_eq!(composed.snapshot(), flat.snapshot());
    }
}

//! Two-level cache of warm [`StateGraph`] cores.
//!
//! The materialised part of a state graph — nodes, edge rows, atom
//! bitsets, [`PRUNED`](crate::graph) sentinels — is a pure function of
//! (design structure, assumption set, atom table): the warm-up budget and
//! the walks only decide *how much* of the reachable product is
//! materialised, never what any materialised row contains. That makes any
//! snapshot of a graph's core a sound starting point for any other graph
//! with the same fingerprint, because construction is lazy: a walk that
//! needs an edge beyond the snapshot simply builds it on demand, and the
//! lazy-build invariant (see `graph.rs`) guarantees identical verdicts,
//! statistics, and counterexample traces regardless of how much of the
//! graph pre-exists.
//!
//! [`GraphCache`] exploits this at two levels:
//!
//! * **Level 1 (in-memory, cross-test).** A map from the 64-bit
//!   fingerprint to an `Arc<OnceLock<Arc<CoreSnapshot>>>`. Lookups are
//!   *build-once, read-many*: the first requester of a key builds the
//!   graph (blocking concurrent requesters of the same key), publishes the
//!   warm core, and every later requester reconstructs its own graph from
//!   the shared snapshot. Build-once (rather than racing builders and
//!   discarding losers) is what keeps the hit/miss counters — and
//!   therefore the whole metrics stream — byte-identical across
//!   `--jobs N`: misses always equal the number of distinct fingerprints.
//! * **Level 2 (on-disk, cross-run).** With a cache directory configured,
//!   a fingerprint's *final* core (post-walk, so a repeat run replays the
//!   previous run's entire exploration from disk) is serialized to
//!   `<dir>/<key>.rtlgc` in the versioned binary format below. A later run
//!   that misses in memory loads the file instead of cold-building —
//!   skipping the `graph_build` warm-up entirely and turning walks into
//!   pure cache reads. Corrupt, truncated, version-mismatched, or
//!   key-mismatched files are detected (magic + version + engine-revision
//!   tag + length/checksum trailer + semantic validation in
//!   [`StateGraph::from_snapshot`]) and fall back to a cold build with a
//!   warning event — never a wrong answer.
//!
//! # Fingerprint
//!
//! The key is two-tier. Tier 1 is the design's per-cone FNV-1a
//! fingerprint vector ([`rtlcheck_rtl::cone::cone_fingerprints`]): one
//! word per signal digesting exactly that signal's value function, plus
//! the parts the vector deliberately excludes (module name, register
//! reset values — litmus programs are baked into register inits, so
//! different tests hash differently). Tier 2 derives the whole-design key
//! by folding the vector with the problem context: the init pins, every
//! assumption directive (kind, name, rendered property), the cover
//! condition, and the rendered atom table. The per-cone tier is what the
//! incremental path diffs ([`rtlcheck_rtl::ConeSet::diff`]); the derived
//! key is what the map and the on-disk `.rtlgc` format continue to use.
//! A second, independently-seeded FNV-1a over the same description is
//! stored alongside the key; a stored artifact is used only if *both*
//! hashes match and the snapshot passes semantic validation against the
//! requesting problem (atom table, monitor arity, register count, initial
//! product state), so a key collision degrades to a counted cold build,
//! not a wrong graph.
//!
//! # File format (version 1)
//!
//! ```text
//! magic "RTLGRPH\0"                      8 bytes
//! format version                         u64 LE
//! engine revision tag                    u64 length + UTF-8 bytes
//! key, check                             2 × u64 LE
//! payload                                u64 LE stream:
//!   atom count; per atom: signal ordinal, value
//!   num_inputs, words, num_regs, num_monitors
//!   stats: nodes, edges, pruned_edges, complete
//!   node count; per node:
//!     register values                    num_regs × u64
//!     per monitor: MonitorState::encode  (self-delimiting)
//!     row flag; if 1: dests (num_inputs × u64, u32::MAX = pruned)
//!                    bits  (num_inputs × words × u64)
//! trailer: byte length of everything above, FNV-1a checksum of it
//! ```
//!
//! The trailer makes every single-byte corruption detectable: each FNV-1a
//! step `h' = (h ^ b) * prime` is a bijection in `h` for fixed `b` (the
//! prime is odd), so two streams differing in exactly one byte can never
//! share a checksum.

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use rtlcheck_obs::{attrs, Collector};
use rtlcheck_rtl::cone::cone_fingerprints;
use rtlcheck_rtl::sim::Simulator;
use rtlcheck_rtl::{ConeSet, Design, SignalKind};
use rtlcheck_sva::{emit, Monitor, MonitorState, Prop};

use crate::atom::RtlAtom;
use crate::composed::{ComposedFallback, ComposedGraph, Composition};
use crate::engine::Engine;
use crate::graph::{GraphStats, StateGraph};
use crate::problem::Problem;

/// Bump when the serialized layout changes incompatibly.
pub const FORMAT_VERSION: u64 = 1;

/// Identifies the graph-construction semantics baked into this build; a
/// stored graph from a different engine revision is never reused.
/// `v2`: the fingerprint became the two-tier (per-cone vector + derived
/// key) scheme, so `v1` artifacts sit at stale paths.
pub const ENGINE_REVISION: &str = "explicit-product-v2";

const MAGIC: &[u8; 8] = b"RTLGRPH\0";

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
/// Seed of the independent check hash (offset basis xor a splitmix64
/// constant — any value distinct from the standard basis works).
const FNV_CHECK_OFFSET: u64 = FNV_OFFSET ^ 0x9e37_79b9_7f4a_7c15;

/// Hand-rolled FNV-1a (no external hashing deps, stable across platforms
/// and releases — `DefaultHasher` guarantees neither).
#[derive(Debug, Clone, Copy)]
struct Fnv64(u64);

impl Fnv64 {
    fn new(basis: u64) -> Self {
        Fnv64(basis)
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(FNV_PRIME);
        }
    }

    fn finish(self) -> u64 {
        self.0
    }
}

/// The two-hash fingerprint of a (design, assumptions, atom table) triple.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GraphKey {
    /// Primary cache key (file name, in-memory map key).
    pub key: u64,
    /// Independently-seeded hash of the same description, stored in the
    /// artifact to demote key collisions to detectable mismatches.
    pub check: u64,
}

/// Computes the cache fingerprint of a problem and its atom table.
///
/// Two-tier: the design contributes its per-cone fingerprint vector
/// ([`cone_fingerprints`] — one word per signal, digesting exactly that
/// signal's value function) plus the register reset values and module
/// name the vector deliberately excludes; the derived whole-design key
/// then folds in the problem context (init pins, assumptions, cover,
/// atom table). Structuring the design tier as the per-cone vector is
/// what lets [`GraphCache::build_graph_incremental`] relate a mutant's
/// key to its baseline's via [`ConeSet::diff`] instead of treating every
/// design edit as a brand-new key.
///
/// The atom table (not the property list) is hashed because the graph's
/// content depends on properties only through their atoms; two property
/// sets with equal atom tables are served by identical graphs. The engine
/// budget is deliberately *not* part of the key: it only bounds how much
/// of the graph is materialised, so snapshots are shareable across
/// configurations.
pub fn fingerprint(problem: &Problem<'_>, atoms: &[RtlAtom]) -> GraphKey {
    let design = problem.design;
    let render = |a: &RtlAtom| a.render(design);
    // Tier 1: per-cone value-function fingerprints, then what they omit —
    // reset values (classified separately by `ConeSet::diff`) and the
    // module name.
    let mut words = cone_fingerprints(design);
    for (_, s) in design.signals() {
        if let SignalKind::Reg { init, .. } = s.kind {
            match init {
                Some(v) => {
                    words.push(1);
                    words.push(v);
                }
                None => words.push(0),
            }
        }
    }
    // Tier 2: the problem context, folded as text after the design words.
    let mut text = format!("--design--\n{}\n", design.name());
    text.push_str("--init-pins--\n");
    for (sig, value) in &problem.init_pins {
        text.push_str(&format!("{} = {value}\n", design.signal(*sig).name));
    }
    text.push_str("--assumptions--\n");
    for d in &problem.assumptions {
        text.push_str(&format!(
            "{:?} {}: {}\n",
            d.kind,
            d.name,
            emit::prop_to_sva(&d.prop, &render)
        ));
    }
    text.push_str("--cover--\n");
    if let Some(cover) = &problem.cover {
        text.push_str(&emit::bool_to_sva(cover, &render));
    }
    text.push_str("\n--atoms--\n");
    for a in atoms {
        text.push_str(&render(a));
        text.push('\n');
    }
    let mut key = Fnv64::new(FNV_OFFSET);
    let mut check = Fnv64::new(FNV_CHECK_OFFSET);
    for w in &words {
        key.write(&w.to_le_bytes());
        check.write(&w.to_le_bytes());
    }
    key.write(text.as_bytes());
    check.write(text.as_bytes());
    GraphKey {
        key: key.finish(),
        check: check.finish(),
    }
}

/// Computes the fingerprint of a problem and the properties that would be
/// checked against it, deriving the atom table the same way
/// [`GraphCache::build_graph`] does. This is the key a cached run of the
/// same (problem, properties) pair would be stored under, so callers can
/// group work units that will share one graph without building anything.
pub fn fingerprint_problem(problem: &Problem<'_>, props: &[&Prop<RtlAtom>]) -> GraphKey {
    let atoms = StateGraph::atom_table(problem, props.iter().copied());
    fingerprint(problem, &atoms)
}

/// The module-structured fingerprint of a problem under the composed
/// backend: [`fingerprint_problem`]'s whole-graph key refined with the
/// module-region decomposition — per region, the member registers and the
/// interface cut signals. `None` when the problem does not decompose
/// (the composed backend would take its flat fallback), so callers revert
/// to [`fingerprint_problem`].
///
/// `rtlcheck serve` coalesces admission by this key when the composed
/// backend is active: two jobs bucket together only if they would share
/// both the whole graph *and* its module decomposition — i.e. every
/// per-region interface-spec table is reusable between them, not just the
/// final core.
pub fn fingerprint_modules(problem: &Problem<'_>, props: &[&Prop<RtlAtom>]) -> Option<GraphKey> {
    let atoms = StateGraph::atom_table(problem, props.iter().copied());
    let comp = Composition::analyze(problem, &atoms).ok()?;
    let base = fingerprint(problem, &atoms);
    let design = problem.design;
    let ordinal_of: HashMap<_, _> = design
        .signals()
        .enumerate()
        .map(|(i, (id, _))| (id, i as u64))
        .collect();
    let mut key = Fnv64::new(FNV_OFFSET);
    let mut check = Fnv64::new(FNV_CHECK_OFFSET);
    let mut fold = |w: u64| {
        key.write(&w.to_le_bytes());
        check.write(&w.to_le_bytes());
    };
    fold(base.key);
    fold(base.check);
    fold(comp.regions.len() as u64);
    for rc in &comp.regions {
        // A sentinel no ordinal can collide with separates the regions, so
        // region boundaries are part of the digest, not just the members.
        fold(u64::MAX);
        fold(rc.regs.len() as u64);
        for &(idx, _, _) in &rc.regs {
            fold(idx as u64);
        }
        for cut in &rc.cuts {
            fold(ordinal_of[cut]);
        }
    }
    Some(GraphKey {
        key: key.finish(),
        check: check.finish(),
    })
}

/// One node of a [`CoreSnapshot`]: the product state plus its (optional)
/// materialised edge row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct NodeSnapshot {
    /// Register values of the design state.
    pub(crate) regs: Vec<u64>,
    /// Assumption-monitor states, in directive order.
    pub(crate) assumptions: Vec<MonitorState>,
    /// `(dests, atom bitsets)` if the row was built.
    pub(crate) row: Option<(Vec<u32>, Vec<u64>)>,
}

/// An immutable, thread-shareable snapshot of a graph's materialised core:
/// everything [`StateGraph::from_snapshot`] needs to resume as if the
/// original graph had been built in place. Activity counters (`lookups`,
/// `reuse_hits`) are zeroed; structural statistics describe exactly the
/// captured nodes and rows.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoreSnapshot {
    pub(crate) atoms: Vec<RtlAtom>,
    pub(crate) num_inputs: usize,
    pub(crate) words: usize,
    pub(crate) num_regs: usize,
    pub(crate) num_monitors: usize,
    pub(crate) nodes: Vec<NodeSnapshot>,
    pub(crate) stats: GraphStats,
}

impl CoreSnapshot {
    /// Number of captured product nodes.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Structural statistics of the captured core.
    pub fn stats(&self) -> GraphStats {
        self.stats
    }
}

/// Why a stored artifact was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SnapshotError {
    /// Bad magic, failed checksum, truncation, or malformed payload.
    Corrupt,
    /// Format version or engine-revision tag differs from this build.
    VersionMismatch,
    /// Well-formed artifact whose key/check pair is not the expected one
    /// (a hash collision or a misplaced file).
    KeyMismatch,
}

/// Serializes a snapshot to the versioned on-disk byte format.
pub fn snapshot_to_bytes(snap: &CoreSnapshot, design: &Design, key: GraphKey) -> Vec<u8> {
    let ordinal_of = |sig| {
        design
            .signals()
            .position(|(id, _)| id == sig)
            .expect("snapshot atoms refer to signals of the snapshot's design") as u64
    };
    let mut words: Vec<u64> = Vec::new();
    words.push(snap.atoms.len() as u64);
    for a in &snap.atoms {
        words.push(ordinal_of(a.sig));
        words.push(a.value);
    }
    words.push(snap.num_inputs as u64);
    words.push(snap.words as u64);
    words.push(snap.num_regs as u64);
    words.push(snap.num_monitors as u64);
    words.push(snap.stats.nodes as u64);
    words.push(snap.stats.edges);
    words.push(snap.stats.pruned_edges);
    words.push(u64::from(snap.stats.complete));
    words.push(snap.nodes.len() as u64);
    for node in &snap.nodes {
        words.extend_from_slice(&node.regs);
        for m in &node.assumptions {
            m.encode(&mut words);
        }
        match &node.row {
            None => words.push(0),
            Some((dests, bits)) => {
                words.push(1);
                words.extend(dests.iter().map(|&d| u64::from(d)));
                words.extend_from_slice(bits);
            }
        }
    }

    let mut out = Vec::with_capacity(64 + words.len() * 8);
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    out.extend_from_slice(&(ENGINE_REVISION.len() as u64).to_le_bytes());
    out.extend_from_slice(ENGINE_REVISION.as_bytes());
    out.extend_from_slice(&key.key.to_le_bytes());
    out.extend_from_slice(&key.check.to_le_bytes());
    for w in &words {
        out.extend_from_slice(&w.to_le_bytes());
    }
    let mut sum = Fnv64::new(FNV_OFFSET);
    sum.write(&out);
    out.extend_from_slice(&(out.len() as u64).to_le_bytes());
    out.extend_from_slice(&sum.finish().to_le_bytes());
    out
}

/// Byte-stream reader for the on-disk format.
struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        let end = self.pos.checked_add(n).ok_or(SnapshotError::Corrupt)?;
        let s = self
            .bytes
            .get(self.pos..end)
            .ok_or(SnapshotError::Corrupt)?;
        self.pos = end;
        Ok(s)
    }

    fn u64(&mut self) -> Result<u64, SnapshotError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes(b.try_into().expect("8 bytes")))
    }

    fn len(&mut self) -> Result<usize, SnapshotError> {
        let v = self.u64()?;
        // Any plausible count is bounded by the artifact size itself; this
        // keeps a corrupt length from driving a huge allocation.
        usize::try_from(v)
            .ok()
            .filter(|&n| n <= self.bytes.len())
            .ok_or(SnapshotError::Corrupt)
    }
}

/// Word-stream reader over the decoded payload. The payload past the key
/// pair is a pure `u64` stream, so it is converted to words exactly once
/// and consumed by index — [`MonitorState::decode`] reads straight from
/// the remaining slice with no per-node re-conversion.
struct WordReader<'a> {
    words: &'a [u64],
    pos: usize,
}

impl WordReader<'_> {
    fn u64(&mut self) -> Result<u64, SnapshotError> {
        let w = *self.words.get(self.pos).ok_or(SnapshotError::Corrupt)?;
        self.pos += 1;
        Ok(w)
    }

    fn len(&mut self) -> Result<usize, SnapshotError> {
        let v = self.u64()?;
        // Any plausible count is bounded by the payload size itself.
        usize::try_from(v)
            .ok()
            .filter(|&n| n <= self.words.len())
            .ok_or(SnapshotError::Corrupt)
    }

    fn monitor(&mut self) -> Result<MonitorState, SnapshotError> {
        let (state, used) =
            MonitorState::decode(&self.words[self.pos..]).ok_or(SnapshotError::Corrupt)?;
        self.pos += used;
        Ok(state)
    }
}

/// Deserializes and validates an artifact produced by
/// [`snapshot_to_bytes`]. `expected` is the fingerprint the *caller*
/// computed for its own problem; an artifact carrying any other pair is
/// rejected as [`SnapshotError::KeyMismatch`].
pub fn snapshot_from_bytes(
    bytes: &[u8],
    design: &Design,
    expected: GraphKey,
) -> Result<CoreSnapshot, SnapshotError> {
    let mut r = Reader { bytes, pos: 0 };
    if r.take(8)? != MAGIC {
        return Err(SnapshotError::Corrupt);
    }
    if r.u64()? != FORMAT_VERSION {
        return Err(SnapshotError::VersionMismatch);
    }
    let tag_len = r.len()?;
    if r.take(tag_len)? != ENGINE_REVISION.as_bytes() {
        return Err(SnapshotError::VersionMismatch);
    }
    // Trailer first: everything after this point is checksum-protected.
    if bytes.len() < r.pos + 16 {
        return Err(SnapshotError::Corrupt);
    }
    let body_len = bytes.len() - 16;
    let stored_len = u64::from_le_bytes(bytes[body_len..body_len + 8].try_into().expect("8"));
    let stored_sum = u64::from_le_bytes(bytes[body_len + 8..].try_into().expect("8"));
    let mut sum = Fnv64::new(FNV_OFFSET);
    sum.write(&bytes[..body_len]);
    if stored_len != body_len as u64 || stored_sum != sum.finish() {
        return Err(SnapshotError::Corrupt);
    }
    let key = GraphKey {
        key: r.u64()?,
        check: r.u64()?,
    };
    if key != expected {
        return Err(SnapshotError::KeyMismatch);
    }

    // Payload (checksum-validated, so failures past here indicate a
    // writer bug rather than bit rot — still reported as Corrupt). From
    // here on the stream is whole little-endian u64s; decode them once.
    let tail = &bytes[r.pos..body_len];
    if !tail.len().is_multiple_of(8) {
        return Err(SnapshotError::Corrupt);
    }
    let word_buf: Vec<u64> = tail
        .chunks_exact(8)
        .map(|c| u64::from_le_bytes(c.try_into().expect("8 bytes")))
        .collect();
    let mut r = WordReader {
        words: &word_buf,
        pos: 0,
    };
    let signals: Vec<_> = design.signals().map(|(id, _)| id).collect();
    let num_atoms = r.len()?;
    let mut atoms = Vec::with_capacity(num_atoms);
    for _ in 0..num_atoms {
        let ordinal = r.len()?;
        let value = r.u64()?;
        let sig = *signals.get(ordinal).ok_or(SnapshotError::Corrupt)?;
        atoms.push(RtlAtom::eq(sig, value));
    }
    let num_inputs = r.len()?;
    let words = r.len()?;
    let num_regs = r.len()?;
    let num_monitors = r.len()?;
    let stats = GraphStats {
        nodes: r.len()?,
        edges: r.u64()?,
        pruned_edges: r.u64()?,
        lookups: 0,
        reuse_hits: 0,
        complete: match r.u64()? {
            0 => false,
            1 => true,
            _ => return Err(SnapshotError::Corrupt),
        },
    };
    let num_nodes = r.len()?;
    let row_words = num_inputs
        .checked_mul(words)
        .ok_or(SnapshotError::Corrupt)?;
    let mut nodes = Vec::with_capacity(num_nodes);
    for _ in 0..num_nodes {
        let mut regs = Vec::with_capacity(num_regs);
        for _ in 0..num_regs {
            regs.push(r.u64()?);
        }
        let mut assumptions = Vec::with_capacity(num_monitors);
        for _ in 0..num_monitors {
            assumptions.push(r.monitor()?);
        }
        let row = match r.u64()? {
            0 => None,
            1 => {
                let mut dests = Vec::with_capacity(num_inputs);
                for _ in 0..num_inputs {
                    let d = u32::try_from(r.u64()?).map_err(|_| SnapshotError::Corrupt)?;
                    dests.push(d);
                }
                let mut bits = Vec::with_capacity(row_words);
                for _ in 0..row_words {
                    bits.push(r.u64()?);
                }
                Some((dests, bits))
            }
            _ => return Err(SnapshotError::Corrupt),
        };
        nodes.push(NodeSnapshot {
            regs,
            assumptions,
            row,
        });
    }
    if r.pos != r.words.len() {
        return Err(SnapshotError::Corrupt); // trailing garbage
    }
    Ok(CoreSnapshot {
        atoms,
        num_inputs,
        words,
        num_regs,
        num_monitors,
        nodes,
        stats,
    })
}

/// Where a cached graph came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheSource {
    /// Built from scratch (in-memory miss, no usable disk artifact).
    Cold,
    /// Reconstructed from a snapshot another request published in memory.
    Memory,
    /// Loaded from a validated on-disk artifact.
    Disk,
    /// Spliced from a published baseline core: rows of unchanged cones
    /// copied, dirty cones re-simulated (bit-identical to a cold build).
    Spliced,
}

impl CacheSource {
    /// Short label for span attributes and logs.
    pub fn label(self) -> &'static str {
        match self {
            CacheSource::Cold => "cold",
            CacheSource::Memory => "memory",
            CacheSource::Disk => "disk",
            CacheSource::Spliced => "spliced",
        }
    }
}

/// Whether (and how) mutant checks reuse their baseline's state graph —
/// the switch behind `rtlcheck mutate --incremental`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Incremental {
    /// Every graph comes from the ordinary cache levels or a cold build;
    /// no splicing.
    Off,
    /// Mutant graphs splice from the published baseline core whenever the
    /// dirty-cone analysis allows it (the default).
    #[default]
    On,
    /// As [`Incremental::On`], but every spliced row is additionally
    /// re-simulated and asserted equal to the copied data — the
    /// belt-and-braces mode the differential CI exercises.
    Validate,
}

impl Incremental {
    /// True unless splicing is switched off.
    pub fn enabled(self) -> bool {
        !matches!(self, Incremental::Off)
    }

    /// True when spliced rows must be re-simulated and checked.
    pub fn validate(self) -> bool {
        matches!(self, Incremental::Validate)
    }

    /// Stable lower-snake label (CLI and logs).
    pub fn label(self) -> &'static str {
        match self {
            Incremental::Off => "off",
            Incremental::On => "on",
            Incremental::Validate => "validate",
        }
    }
}

/// Outcome of one [`GraphCache::build_graph`] request, returned alongside
/// the graph; hand it back to [`GraphCache::store_final`] after the walks
/// so the post-walk core can be persisted.
#[derive(Debug, Clone, Copy)]
pub struct CacheTicket {
    key: GraphKey,
    source: CacheSource,
    /// This request is the key's designated writer (it cold-built the
    /// graph and no valid disk artifact exists).
    store: bool,
}

impl CacheTicket {
    /// Where the returned graph came from.
    pub fn source(&self) -> CacheSource {
        self.source
    }

    /// The fingerprint of the request.
    pub fn key(&self) -> GraphKey {
        self.key
    }
}

/// Monotonic counters of one cache's activity. `hits + misses ==
/// requests` always; `disk_hits + disk_misses + corrupt +
/// version_mismatch + key_mismatches` accounts for every disk probe
/// (at most one per distinct fingerprint per run).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Graph requests served.
    pub requests: u64,
    /// Served from the in-memory level (no simulation, no disk).
    pub hits: u64,
    /// First request of each distinct fingerprint.
    pub misses: u64,
    /// Misses served by a validated on-disk artifact.
    pub disk_hits: u64,
    /// Misses that probed the directory and found no artifact.
    pub disk_misses: u64,
    /// Artifacts rejected by magic/checksum/payload validation.
    pub corrupt: u64,
    /// Artifacts from another format version or engine revision.
    pub version_mismatch: u64,
    /// Well-formed artifacts whose key/check pair did not match.
    pub key_mismatches: u64,
    /// Published snapshots rejected by semantic validation against the
    /// requesting problem (a genuine fingerprint collision).
    pub collisions: u64,
    /// Artifacts written to the cache directory.
    pub stores: u64,
    /// In-memory entries dropped to respect the capacity bound.
    pub evictions: u64,
    /// Incremental probes that found a published baseline core.
    pub incremental_hits: u64,
    /// Incremental probes that found no published baseline core.
    pub incremental_misses: u64,
    /// Graphs assembled by splicing a baseline core (a subset of
    /// `incremental_hits`: a found baseline can still be unspliceable,
    /// e.g. when the mutation dirties an assumption's atoms).
    pub spliced: u64,
}

impl CacheStats {
    /// Renders the snapshot as a JSON object, one field per counter —
    /// what the verification server's `stats` response embeds.
    pub fn to_json(&self) -> rtlcheck_obs::json::Json {
        use rtlcheck_obs::json::Json;
        Json::obj(vec![
            ("requests", Json::Uint(self.requests)),
            ("hits", Json::Uint(self.hits)),
            ("misses", Json::Uint(self.misses)),
            ("disk_hits", Json::Uint(self.disk_hits)),
            ("disk_misses", Json::Uint(self.disk_misses)),
            ("corrupt", Json::Uint(self.corrupt)),
            ("version_mismatch", Json::Uint(self.version_mismatch)),
            ("key_mismatches", Json::Uint(self.key_mismatches)),
            ("collisions", Json::Uint(self.collisions)),
            ("stores", Json::Uint(self.stores)),
            ("evictions", Json::Uint(self.evictions)),
            ("incremental_hits", Json::Uint(self.incremental_hits)),
            ("incremental_misses", Json::Uint(self.incremental_misses)),
            ("spliced", Json::Uint(self.spliced)),
        ])
    }
}

#[derive(Debug, Default)]
struct Counters {
    requests: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    disk_hits: AtomicU64,
    disk_misses: AtomicU64,
    corrupt: AtomicU64,
    version_mismatch: AtomicU64,
    key_mismatches: AtomicU64,
    collisions: AtomicU64,
    stores: AtomicU64,
    evictions: AtomicU64,
    incremental_hits: AtomicU64,
    incremental_misses: AtomicU64,
    spliced: AtomicU64,
}

type Cell = Arc<OnceLock<Arc<CoreSnapshot>>>;

#[derive(Debug, Default)]
struct CacheMap {
    entries: HashMap<u64, Cell>,
    /// Insertion order, for deterministic capacity eviction.
    order: Vec<u64>,
}

/// The two-level graph cache. Cheap to share by reference across the
/// suite's worker threads (`Sync`); all observable counters are
/// schedule-invariant as long as the capacity bound is not hit (the
/// default is unbounded).
#[derive(Debug)]
pub struct GraphCache {
    dir: Option<PathBuf>,
    capacity: Option<usize>,
    map: Mutex<CacheMap>,
    counters: Counters,
    /// Deferred `(event name, file)` warnings, reported (sorted, so the
    /// stream is deterministic) by [`GraphCache::report_to`].
    warnings: Mutex<Vec<(&'static str, String)>>,
}

impl GraphCache {
    /// A purely in-memory cache (level 1 only).
    pub fn in_memory() -> Self {
        GraphCache {
            dir: None,
            capacity: None,
            map: Mutex::new(CacheMap::default()),
            counters: Counters::default(),
            warnings: Mutex::new(Vec::new()),
        }
    }

    /// A cache persisting to `dir` (created if absent).
    pub fn with_dir(dir: impl Into<PathBuf>) -> std::io::Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        let mut cache = GraphCache::in_memory();
        cache.dir = Some(dir);
        Ok(cache)
    }

    /// Bounds the number of in-memory entries. Exceeding the bound evicts
    /// the oldest-inserted entry (deterministic only for sequential use;
    /// leave unbounded when metrics must be identical across `--jobs N`).
    pub fn with_capacity(mut self, capacity: usize) -> Self {
        self.capacity = Some(capacity.max(1));
        self
    }

    /// The configured on-disk directory, if any.
    pub fn dir(&self) -> Option<&Path> {
        self.dir.as_deref()
    }

    /// A snapshot of the activity counters.
    pub fn stats(&self) -> CacheStats {
        let c = &self.counters;
        let get = |a: &AtomicU64| a.load(Ordering::Relaxed);
        CacheStats {
            requests: get(&c.requests),
            hits: get(&c.hits),
            misses: get(&c.misses),
            disk_hits: get(&c.disk_hits),
            disk_misses: get(&c.disk_misses),
            corrupt: get(&c.corrupt),
            version_mismatch: get(&c.version_mismatch),
            key_mismatches: get(&c.key_mismatches),
            collisions: get(&c.collisions),
            stores: get(&c.stores),
            evictions: get(&c.evictions),
            incremental_hits: get(&c.incremental_hits),
            incremental_misses: get(&c.incremental_misses),
            spliced: get(&c.spliced),
        }
    }

    fn artifact_path(&self, key: GraphKey) -> Option<PathBuf> {
        self.dir
            .as_ref()
            .map(|d| d.join(format!("{:016x}.rtlgc", key.key)))
    }

    fn warn(&self, event: &'static str, file: String) {
        self.warnings
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push((event, file));
    }

    fn cell_for(&self, key: u64) -> Cell {
        let mut map = self.map.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(cell) = map.entries.get(&key) {
            return cell.clone();
        }
        if let Some(cap) = self.capacity {
            while map.entries.len() >= cap && !map.order.is_empty() {
                let oldest = map.order.remove(0);
                if map.entries.remove(&oldest).is_some() {
                    self.counters.evictions.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        let cell: Cell = Arc::default();
        map.entries.insert(key, cell.clone());
        map.order.push(key);
        cell
    }

    /// Probes the disk level for `key`; counts and classifies failures.
    fn load_from_disk(&self, key: GraphKey, design: &Design) -> Option<CoreSnapshot> {
        let path = self.artifact_path(key)?;
        let bytes = match std::fs::read(&path) {
            Ok(b) => b,
            Err(_) => {
                self.counters.disk_misses.fetch_add(1, Ordering::Relaxed);
                return None;
            }
        };
        match snapshot_from_bytes(&bytes, design, key) {
            Ok(snap) => Some(snap),
            Err(SnapshotError::Corrupt) => {
                self.counters.corrupt.fetch_add(1, Ordering::Relaxed);
                self.warn("graph_cache.corrupt", path.display().to_string());
                None
            }
            Err(SnapshotError::VersionMismatch) => {
                self.counters
                    .version_mismatch
                    .fetch_add(1, Ordering::Relaxed);
                self.warn("graph_cache.version_mismatch", path.display().to_string());
                None
            }
            Err(SnapshotError::KeyMismatch) => {
                self.counters.key_mismatches.fetch_add(1, Ordering::Relaxed);
                self.warn("graph_cache.corrupt", path.display().to_string());
                None
            }
        }
    }

    /// The cached counterpart of [`crate::build_graph`]: returns a warm
    /// graph for `problem`/`props` plus the ticket describing where it
    /// came from.
    ///
    /// The first request of a fingerprint builds (from disk if a valid
    /// artifact exists, else a cold warm-up under `engine`'s budget) and
    /// publishes the core; concurrent requests of the same fingerprint
    /// block until it is published, then reconstruct from it. Every
    /// returned graph owns private interior state — sharing is of the
    /// immutable snapshot only — so walks behave exactly as on an
    /// uncached graph.
    pub fn build_graph<'p, 'd>(
        &self,
        problem: &'p Problem<'d>,
        props: &[&Prop<RtlAtom>],
        engine: Engine,
    ) -> (StateGraph<'p, 'd>, CacheTicket) {
        self.build_graph_inner(problem, props, engine, None)
    }

    /// [`GraphCache::build_graph`] with an incremental fast path: on an
    /// in-memory miss, first try to splice the requested graph from the
    /// published core of `baseline` (the un-mutated design this problem's
    /// design was derived from), re-simulating only the dirty cones'
    /// contributions; the disk level and the cold build remain as
    /// fallbacks. The spliced graph is bit-identical to what a cold build
    /// would have produced (see [`StateGraph::splice`]), so the published
    /// snapshot, the walks, and any stored artifact are indistinguishable
    /// from the non-incremental path — only the construction cost and the
    /// `cone.*` counters differ.
    ///
    /// `validate` additionally re-simulates every spliced row and asserts
    /// equality with the copied data (the belt-and-braces mode the
    /// differential CI exercises).
    pub fn build_graph_incremental<'p, 'd>(
        &self,
        problem: &'p Problem<'d>,
        props: &[&Prop<RtlAtom>],
        engine: Engine,
        baseline: &Design,
        validate: bool,
    ) -> (StateGraph<'p, 'd>, CacheTicket) {
        self.build_graph_inner(problem, props, engine, Some((baseline, validate)))
    }

    /// The composed counterpart of [`GraphCache::build_graph`]: the
    /// returned [`ComposedGraph`] assembles its rows from per-region
    /// interface specs, but its core is **byte-identical** to a flat
    /// explicit build, so it shares the same fingerprint, the same cache
    /// levels, and the same on-disk artifacts — a composed run can hit a
    /// flat run's cache entries and vice versa.
    ///
    /// # Errors
    ///
    /// Returns the [`ComposedFallback`] when the problem does not
    /// decompose, *before* any cache counter moves: the caller reverts to
    /// [`GraphCache::build_graph`] as if this method was never called.
    pub fn build_graph_composed<'p, 'd>(
        &self,
        problem: &'p Problem<'d>,
        props: &[&Prop<RtlAtom>],
        engine: Engine,
    ) -> Result<(ComposedGraph<'p, 'd>, CacheTicket), ComposedFallback> {
        let atoms = StateGraph::atom_table(problem, props.iter().copied());
        Composition::analyze(problem, &atoms)?;
        let key = fingerprint(problem, &atoms);
        self.counters.requests.fetch_add(1, Ordering::Relaxed);
        let cell = self.cell_for(key.key);

        // Decomposition is deterministic on a fixed problem, so the
        // re-analyses below cannot fail after the check above.
        let analyzes = "the same problem analyzes identically";
        let mut local: Option<(ComposedGraph<'p, 'd>, CacheSource)> = None;
        let snap = cell
            .get_or_init(|| {
                self.counters.misses.fetch_add(1, Ordering::Relaxed);
                if self.dir.is_some() {
                    if let Some(snap) = self.load_from_disk(key, problem.design) {
                        let resumed =
                            ComposedGraph::from_snapshot(problem, props.iter().copied(), &snap)
                                .expect(analyzes);
                        match resumed {
                            Some(graph) => {
                                self.counters.disk_hits.fetch_add(1, Ordering::Relaxed);
                                local = Some((graph, CacheSource::Disk));
                                return Arc::new(snap);
                            }
                            None => {
                                self.counters.collisions.fetch_add(1, Ordering::Relaxed);
                                self.warn(
                                    "graph_cache.key_collision",
                                    self.artifact_path(key)
                                        .map(|p| p.display().to_string())
                                        .unwrap_or_default(),
                                );
                            }
                        }
                    }
                }
                let graph =
                    ComposedGraph::build(problem, props.iter().copied(), engine).expect(analyzes);
                let snap = Arc::new(graph.snapshot());
                local = Some((graph, CacheSource::Cold));
                snap
            })
            .clone();

        let (graph, source) = match local {
            Some(built) => built,
            None => {
                self.counters.hits.fetch_add(1, Ordering::Relaxed);
                let resumed = ComposedGraph::from_snapshot(problem, props.iter().copied(), &snap)
                    .expect(analyzes);
                match resumed {
                    Some(graph) => (graph, CacheSource::Memory),
                    None => {
                        self.counters.collisions.fetch_add(1, Ordering::Relaxed);
                        self.warn("graph_cache.key_collision", format!("{:016x}", key.key));
                        (
                            ComposedGraph::build(problem, props.iter().copied(), engine)
                                .expect(analyzes),
                            CacheSource::Cold,
                        )
                    }
                }
            }
        };
        let store = self.dir.is_some()
            && matches!(source, CacheSource::Cold)
            && snap_is(&snap, graph.as_flat());
        Ok((graph, CacheTicket { key, source, store }))
    }

    /// Probes the in-memory level for a *baseline* core to splice
    /// against. Never blocks on an in-flight build and never touches the
    /// disk level: incremental probes run inside the requesting key's own
    /// build slot, where waiting on another key's `OnceLock` could
    /// deadlock. `dirty` is the classified dirty set the caller intends
    /// to splice with (from [`ConeSet::diff`]; an empty set — pure reuse
    /// — is fine).
    pub fn lookup_incremental(
        &self,
        baseline: GraphKey,
        dirty: &ConeSet,
    ) -> Option<Arc<CoreSnapshot>> {
        debug_assert!(
            dirty.wires.windows(2).all(|w| w[0] < w[1])
                && dirty.regs.windows(2).all(|w| w[0] < w[1]),
            "dirty sets come from ConeSet::diff, sorted and deduplicated"
        );
        let cell = {
            let map = self.map.lock().unwrap_or_else(|e| e.into_inner());
            map.entries.get(&baseline.key).cloned()
        };
        match cell.and_then(|c| c.get().cloned()) {
            Some(snap) => {
                self.counters
                    .incremental_hits
                    .fetch_add(1, Ordering::Relaxed);
                Some(snap)
            }
            None => {
                self.counters
                    .incremental_misses
                    .fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// The incremental attempt: diff the designs, locate the baseline's
    /// published core, check it really describes the baseline problem
    /// (collision guard), and splice.
    fn try_splice<'p, 'd>(
        &self,
        problem: &'p Problem<'d>,
        props: &[&Prop<RtlAtom>],
        engine: Engine,
        baseline: &Design,
        validate: bool,
        atoms: &[RtlAtom],
    ) -> Option<StateGraph<'p, 'd>> {
        let dirty = ConeSet::diff(baseline, problem.design)?;
        // The baseline problem: same pins/assumptions/cover over the
        // un-mutated design. Signal ordinals are shared (diff proved the
        // tables compatible), so the handles transfer directly — this is
        // exactly the problem the baseline's own requests fingerprinted.
        let bproblem = Problem {
            design: baseline,
            init_pins: problem.init_pins.clone(),
            assumptions: problem.assumptions.clone(),
            cover: problem.cover.clone(),
        };
        let bkey = fingerprint(&bproblem, atoms);
        let bsnap = self.lookup_incremental(bkey, &dirty)?;
        if !snapshot_describes(&bsnap, &bproblem) {
            return None;
        }
        StateGraph::splice(
            problem,
            props.iter().copied(),
            bsnap,
            &dirty,
            engine,
            validate,
        )
    }

    fn build_graph_inner<'p, 'd>(
        &self,
        problem: &'p Problem<'d>,
        props: &[&Prop<RtlAtom>],
        engine: Engine,
        incremental: Option<(&Design, bool)>,
    ) -> (StateGraph<'p, 'd>, CacheTicket) {
        let atoms = StateGraph::atom_table(problem, props.iter().copied());
        let key = fingerprint(problem, &atoms);
        self.counters.requests.fetch_add(1, Ordering::Relaxed);
        let cell = self.cell_for(key.key);

        let mut local: Option<(StateGraph<'p, 'd>, CacheSource)> = None;
        let snap = cell
            .get_or_init(|| {
                self.counters.misses.fetch_add(1, Ordering::Relaxed);
                if let Some((baseline, validate)) = incremental {
                    if let Some(graph) =
                        self.try_splice(problem, props, engine, baseline, validate, &atoms)
                    {
                        self.counters.spliced.fetch_add(1, Ordering::Relaxed);
                        let snap = Arc::new(graph.snapshot());
                        local = Some((graph, CacheSource::Spliced));
                        return snap;
                    }
                }
                if self.dir.is_some() {
                    if let Some(snap) = self.load_from_disk(key, problem.design) {
                        match StateGraph::from_snapshot(problem, props.iter().copied(), &snap) {
                            Some(graph) => {
                                self.counters.disk_hits.fetch_add(1, Ordering::Relaxed);
                                local = Some((graph, CacheSource::Disk));
                                return Arc::new(snap);
                            }
                            None => {
                                // Checksum-valid artifact that does not
                                // describe this problem: a fingerprint
                                // collision. Fall back to a cold build.
                                self.counters.collisions.fetch_add(1, Ordering::Relaxed);
                                self.warn(
                                    "graph_cache.key_collision",
                                    self.artifact_path(key)
                                        .map(|p| p.display().to_string())
                                        .unwrap_or_default(),
                                );
                            }
                        }
                    }
                }
                let graph = StateGraph::build(problem, props.iter().copied(), engine);
                let snap = Arc::new(graph.snapshot());
                local = Some((graph, CacheSource::Cold));
                snap
            })
            .clone();

        let (graph, source) = match local {
            Some(built) => built,
            None => {
                self.counters.hits.fetch_add(1, Ordering::Relaxed);
                match StateGraph::from_snapshot(problem, props.iter().copied(), &snap) {
                    Some(graph) => (graph, CacheSource::Memory),
                    None => {
                        // In-memory fingerprint collision between two
                        // different problems: build privately, leave the
                        // published entry alone.
                        self.counters.collisions.fetch_add(1, Ordering::Relaxed);
                        self.warn("graph_cache.key_collision", format!("{:016x}", key.key));
                        (
                            StateGraph::build(problem, props.iter().copied(), engine),
                            CacheSource::Cold,
                        )
                    }
                }
            }
        };
        // Spliced builds are bit-identical to cold builds, so they are
        // equally valid designated writers for the on-disk level.
        let store = self.dir.is_some()
            && matches!(source, CacheSource::Cold | CacheSource::Spliced)
            && snap_is(&snap, &graph);
        (graph, CacheTicket { key, source, store })
    }

    /// Persists the *final* (post-walk) core of a graph returned by
    /// [`GraphCache::build_graph`], if this request is the key's
    /// designated writer. Call after the walks; a follow-up run then
    /// replays the whole exploration from disk. Write failures degrade to
    /// a warning event.
    pub fn store_final(&self, ticket: &CacheTicket, graph: &StateGraph<'_, '_>) {
        if !ticket.store {
            return;
        }
        let Some(path) = self.artifact_path(ticket.key) else {
            return;
        };
        let bytes = snapshot_to_bytes(&graph.snapshot(), graph.problem().design, ticket.key);
        // Atomic publish: never expose a half-written artifact.
        let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
        let written = std::fs::write(&tmp, &bytes).and_then(|()| std::fs::rename(&tmp, &path));
        match written {
            Ok(()) => {
                self.counters.stores.fetch_add(1, Ordering::Relaxed);
            }
            Err(_) => {
                let _ = std::fs::remove_file(&tmp);
                self.warn("graph_cache.store_failed", path.display().to_string());
            }
        }
    }

    /// Reports the cache's counters (`graph_cache.*`) and deferred
    /// warning events to a collector. Call exactly once per run, from the
    /// coordinating thread, *after* all per-test instrumentation has been
    /// delivered — that keeps the metrics stream independent of which
    /// worker happened to build each graph.
    pub fn report_to(&self, collector: &dyn Collector) {
        let s = self.stats();
        collector.counter("graph_cache.requests", s.requests, attrs![]);
        collector.counter("graph_cache.hits", s.hits, attrs![]);
        collector.counter("graph_cache.misses", s.misses, attrs![]);
        collector.counter("graph_cache.disk_hits", s.disk_hits, attrs![]);
        collector.counter("graph_cache.disk_misses", s.disk_misses, attrs![]);
        collector.counter("graph_cache.corrupt", s.corrupt, attrs![]);
        collector.counter("graph_cache.version_mismatch", s.version_mismatch, attrs![]);
        collector.counter("graph_cache.key_mismatches", s.key_mismatches, attrs![]);
        collector.counter("graph_cache.collisions", s.collisions, attrs![]);
        collector.counter("graph_cache.stores", s.stores, attrs![]);
        collector.counter("graph_cache.evictions", s.evictions, attrs![]);
        collector.counter("graph_cache.incremental_hits", s.incremental_hits, attrs![]);
        collector.counter(
            "graph_cache.incremental_misses",
            s.incremental_misses,
            attrs![],
        );
        collector.counter("graph_cache.spliced", s.spliced, attrs![]);
        let mut warnings =
            std::mem::take(&mut *self.warnings.lock().unwrap_or_else(|e| e.into_inner()));
        warnings.sort();
        for (event, file) in &warnings {
            collector.event(event, attrs!["file" => file.as_str()]);
        }
    }
}

/// Sanity link between a ticket's graph and the published snapshot: the
/// store path must only fire for the graph whose core seeded the entry.
fn snap_is(snap: &CoreSnapshot, graph: &StateGraph<'_, '_>) -> bool {
    snap.atoms == graph.atoms()
}

/// Collision guard for the incremental path: a published snapshot is only
/// spliced from if its initial product node is the baseline problem's —
/// the same check [`StateGraph::from_snapshot`] performs, minus the parts
/// [`StateGraph::splice`] re-validates itself (atom table, dimensions,
/// row well-formedness).
fn snapshot_describes(snap: &CoreSnapshot, problem: &Problem<'_>) -> bool {
    if snap.num_monitors != problem.assumptions.len()
        || snap.num_regs != problem.design.num_regs()
        || snap.nodes.is_empty()
    {
        return false;
    }
    let sim = Simulator::new(problem.design);
    let Ok(initial) = sim.initial_state_with(&problem.init_pins) else {
        return false;
    };
    let init_states: Vec<MonitorState> = problem
        .assumptions
        .iter()
        .map(|d| Monitor::new(&d.prop).state().clone())
        .collect();
    snap.nodes[0].regs == initial.regs() && snap.nodes[0].assumptions == init_states
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::Directive;
    use rtlcheck_rtl::DesignBuilder;
    use rtlcheck_sva::SvaBool;

    fn counter() -> Design {
        let mut b = DesignBuilder::new("c");
        let en = b.input("en", 1);
        let count = b.reg("count", 3, Some(0));
        let one = b.lit(1, 3);
        let ce = b.sig(count);
        let sum = b.add(ce, one);
        let ene = b.sig(en);
        let hold = b.sig(count);
        let nxt = b.mux(ene, sum, hold);
        b.set_next(count, nxt);
        b.build().unwrap()
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("rtlgc-unit-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn fingerprints_separate_designs_and_assumptions() {
        let d = counter();
        let count = d.signal_by_name("count").unwrap();
        let en = d.signal_by_name("en").unwrap();
        let problem = Problem::new(&d);
        let atoms = vec![RtlAtom::eq(count, 3)];
        let base = fingerprint(&problem, &atoms);
        assert_eq!(base, fingerprint(&problem, &atoms), "stable");
        let mut assumed = problem.clone();
        assumed.assumptions.push(Directive::assume(
            "en_low",
            Prop::Never(SvaBool::atom(RtlAtom::is_true(en))),
        ));
        assert_ne!(base, fingerprint(&assumed, &atoms));
        assert_ne!(base, fingerprint(&problem, &[RtlAtom::eq(count, 4)]));
        assert_ne!(base.key, base.check, "the two hashes are independent");
    }

    #[test]
    fn memory_level_shares_warm_cores() {
        let d = counter();
        let count = d.signal_by_name("count").unwrap();
        let problem = Problem::new(&d);
        let prop = Prop::Never(SvaBool::atom(RtlAtom::eq(count, 8)));
        let cache = GraphCache::in_memory();
        let (g1, t1) = cache.build_graph(&problem, &[&prop], Engine::full(100_000));
        assert_eq!(t1.source(), CacheSource::Cold);
        let warm_stats = g1.stats();
        assert!(warm_stats.complete);
        let (g2, t2) = cache.build_graph(&problem, &[&prop], Engine::full(100_000));
        assert_eq!(t2.source(), CacheSource::Memory);
        assert_eq!(g2.stats(), warm_stats, "hit resumes the published core");
        let s = cache.stats();
        assert_eq!((s.requests, s.hits, s.misses), (2, 1, 1));
    }

    #[test]
    fn disk_level_round_trips_the_final_core() {
        let d = counter();
        let count = d.signal_by_name("count").unwrap();
        let problem = Problem::new(&d);
        let prop = Prop::Never(SvaBool::atom(RtlAtom::eq(count, 8)));
        let dir = tmp_dir("roundtrip");

        let cache = GraphCache::with_dir(&dir).unwrap();
        let (g, ticket) = cache.build_graph(&problem, &[&prop], Engine::full(100_000));
        assert_eq!(ticket.source(), CacheSource::Cold);
        cache.store_final(&ticket, &g);
        assert_eq!(cache.stats().stores, 1);

        let warm = GraphCache::with_dir(&dir).unwrap();
        let (g2, t2) = warm.build_graph(&problem, &[&prop], Engine::full(100_000));
        assert_eq!(t2.source(), CacheSource::Disk);
        assert_eq!(g2.stats(), g.stats());
        let s = warm.stats();
        assert_eq!((s.disk_hits, s.corrupt), (1, 0));

        // Corrupt any one byte: detected, falls back to a cold build.
        let path = std::fs::read_dir(&dir)
            .unwrap()
            .next()
            .unwrap()
            .unwrap()
            .path();
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();
        let third = GraphCache::with_dir(&dir).unwrap();
        let (g3, t3) = third.build_graph(&problem, &[&prop], Engine::full(100_000));
        assert_eq!(t3.source(), CacheSource::Cold);
        assert_eq!(g3.stats(), g.stats(), "fallback rebuilds the same graph");
        let s = third.stats();
        assert!(s.corrupt == 1 || s.key_mismatches == 1, "{s:?}");

        let _ = std::fs::remove_dir_all(&dir);
    }

    /// The counter with a mutated increment: `count <= en ? count+2 : count`.
    /// Same signal table as [`counter`], so `ConeSet::diff` is exact.
    fn counter_by_two() -> Design {
        let mut b = DesignBuilder::new("c");
        let en = b.input("en", 1);
        let count = b.reg("count", 3, Some(0));
        let two = b.lit(2, 3);
        let ce = b.sig(count);
        let sum = b.add(ce, two);
        let ene = b.sig(en);
        let hold = b.sig(count);
        let nxt = b.mux(ene, sum, hold);
        b.set_next(count, nxt);
        b.build().unwrap()
    }

    #[test]
    fn incremental_splices_from_a_published_baseline() {
        let base = counter();
        let mutant = counter_by_two();
        let count = base.signal_by_name("count").unwrap();
        let prop = Prop::Never(SvaBool::atom(RtlAtom::eq(count, 7)));
        let cache = GraphCache::in_memory();

        let bproblem = Problem::new(&base);
        let (_, bt) = cache.build_graph(&bproblem, &[&prop], Engine::full(100_000));
        assert_eq!(bt.source(), CacheSource::Cold);

        let mproblem = Problem::new(&mutant);
        let (mg, mt) =
            cache.build_graph_incremental(&mproblem, &[&prop], Engine::full(100_000), &base, true);
        assert_eq!(mt.source(), CacheSource::Spliced);
        let cold = StateGraph::build(&mproblem, [&prop], Engine::full(100_000));
        assert_eq!(mg.snapshot(), cold.snapshot(), "splice is bit-identical");
        let s = cache.stats();
        assert_eq!((s.incremental_hits, s.spliced), (1, 1));

        // A repeat of the same mutant request is a plain memory hit: the
        // spliced core was published like any other.
        let (_, t3) =
            cache.build_graph_incremental(&mproblem, &[&prop], Engine::full(100_000), &base, false);
        assert_eq!(t3.source(), CacheSource::Memory);
    }

    #[test]
    fn incremental_without_a_baseline_falls_back_cold() {
        let base = counter();
        let mutant = counter_by_two();
        let count = base.signal_by_name("count").unwrap();
        let prop = Prop::Never(SvaBool::atom(RtlAtom::eq(count, 7)));
        let cache = GraphCache::in_memory();
        let mproblem = Problem::new(&mutant);
        let (mg, mt) =
            cache.build_graph_incremental(&mproblem, &[&prop], Engine::full(100_000), &base, false);
        assert_eq!(mt.source(), CacheSource::Cold);
        let cold = StateGraph::build(&mproblem, [&prop], Engine::full(100_000));
        assert_eq!(mg.snapshot(), cold.snapshot());
        let s = cache.stats();
        assert_eq!((s.incremental_hits, s.incremental_misses), (0, 1));
        assert_eq!(s.spliced, 0);
    }

    #[test]
    fn version_mismatch_is_classified_before_checksum() {
        let d = counter();
        let count = d.signal_by_name("count").unwrap();
        let problem = Problem::new(&d);
        let prop = Prop::Never(SvaBool::atom(RtlAtom::eq(count, 8)));
        let atoms = StateGraph::atom_table(&problem, [&prop]);
        let key = fingerprint(&problem, &atoms);
        let graph = StateGraph::build(&problem, [&prop], Engine::full(100_000));
        let mut bytes = snapshot_to_bytes(&graph.snapshot(), &d, key);
        // Bump the version field without fixing the trailer: a genuinely
        // old file would have a self-consistent trailer, but either way
        // the version must be inspected first.
        bytes[8] ^= 0xff;
        assert_eq!(
            snapshot_from_bytes(&bytes, &d, key),
            Err(SnapshotError::VersionMismatch)
        );
    }

    #[test]
    fn truncation_and_zero_length_are_corrupt() {
        let d = counter();
        let count = d.signal_by_name("count").unwrap();
        let problem = Problem::new(&d);
        let prop = Prop::Never(SvaBool::atom(RtlAtom::eq(count, 8)));
        let atoms = StateGraph::atom_table(&problem, [&prop]);
        let key = fingerprint(&problem, &atoms);
        let graph = StateGraph::build(&problem, [&prop], Engine::full(100_000));
        let bytes = snapshot_to_bytes(&graph.snapshot(), &d, key);
        assert!(snapshot_from_bytes(&bytes, &d, key).is_ok());
        assert_eq!(
            snapshot_from_bytes(&[], &d, key),
            Err(SnapshotError::Corrupt)
        );
        assert_eq!(
            snapshot_from_bytes(&bytes[..bytes.len() - 1], &d, key),
            Err(SnapshotError::Corrupt)
        );
        let wrong = GraphKey {
            key: key.key ^ 1,
            check: key.check,
        };
        assert_eq!(
            snapshot_from_bytes(&bytes, &d, wrong),
            Err(SnapshotError::KeyMismatch)
        );
    }
}

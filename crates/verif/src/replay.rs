//! Counterexample replay validation.
//!
//! A counterexample from the explicit-state search can be independently
//! re-checked by replaying its trace through fresh SVA monitors — the same
//! confidence step an engineer performs by loading a JasperGold
//! counterexample into a simulator. This guards against verifier bugs: a
//! reported violation must be a real execution (admissible under every
//! assumption up to its final cycle) on which the assertion monitor fails
//! exactly at the end.

use rtlcheck_rtl::sim::Simulator;
use rtlcheck_rtl::waveform::Trace;
use rtlcheck_sva::{Monitor, Prop};

use crate::atom::RtlAtom;
use crate::problem::Problem;

/// The result of replaying a claimed counterexample.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplayVerdict {
    /// The trace is admissible and violates the assertion at its final
    /// cycle: a genuine counterexample.
    Confirmed,
    /// An assumption failed at the given cycle: the trace is not an
    /// admissible execution.
    AssumptionFailed {
        /// Cycle at which the named assumption's monitor failed.
        cycle: usize,
        /// Index into `problem.assumptions`.
        assumption: usize,
    },
    /// The assertion monitor failed before the final cycle (the trace has
    /// a redundant suffix) — still a violation, but not minimal.
    EarlyViolation {
        /// Cycle of the first violation.
        cycle: usize,
    },
    /// The assertion never failed on this trace.
    NoViolation,
}

impl ReplayVerdict {
    /// Whether the trace violates the assertion at all (confirmed or
    /// early).
    pub fn is_violation(&self) -> bool {
        matches!(
            self,
            ReplayVerdict::Confirmed | ReplayVerdict::EarlyViolation { .. }
        )
    }
}

/// Replays `trace` against the problem's assumptions and one assertion.
///
/// The trace's first state must equal the problem's initial state (pins
/// applied); this is not checked — a mismatched trace simply replays as the
/// execution it describes.
pub fn replay(problem: &Problem<'_>, assertion: &Prop<RtlAtom>, trace: &Trace) -> ReplayVerdict {
    let sim = Simulator::new(problem.design);
    let mut assumption_monitors: Vec<Monitor<RtlAtom>> = problem
        .assumptions
        .iter()
        .map(|d| Monitor::new(&d.prop))
        .collect();
    let mut assertion_monitor = Monitor::new(assertion);
    for cycle in 0..trace.len() {
        let state = &trace.states[cycle];
        let inputs = &trace.inputs[cycle];
        let env = |a: &RtlAtom| sim.peek(state, inputs, a.sig) == a.value;
        for (i, m) in assumption_monitors.iter_mut().enumerate() {
            m.step(&env);
            if m.failed() {
                return ReplayVerdict::AssumptionFailed {
                    cycle,
                    assumption: i,
                };
            }
        }
        assertion_monitor.step(&env);
        if assertion_monitor.failed() {
            return if cycle + 1 == trace.len() {
                ReplayVerdict::Confirmed
            } else {
                ReplayVerdict::EarlyViolation { cycle }
            };
        }
    }
    ReplayVerdict::NoViolation
}

/// Replays the trace while also checking that consecutive states are
/// related by the design's transition function under the recorded inputs —
/// i.e. the trace is a real execution, not just a state sequence.
///
/// Returns the first cycle whose successor state mismatches, if any.
pub fn check_transitions(problem: &Problem<'_>, trace: &Trace) -> Option<usize> {
    let sim = Simulator::new(problem.design);
    for cycle in 0..trace.len().saturating_sub(1) {
        let stepped = sim.step(&trace.states[cycle], &trace.inputs[cycle]);
        if stepped != trace.states[cycle + 1] {
            return Some(cycle);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::PropertyVerdict;
    use crate::explore::verify_property;
    use crate::problem::Directive;
    use crate::VerifyConfig;
    use rtlcheck_rtl::DesignBuilder;
    use rtlcheck_sva::SvaBool;

    fn counter() -> rtlcheck_rtl::Design {
        let mut b = DesignBuilder::new("c");
        let en = b.input("en", 1);
        let first = b.reg("first", 1, Some(1));
        let z = b.lit(0, 1);
        b.set_next(first, z);
        let count = b.reg("count", 3, Some(0));
        let one = b.lit(1, 3);
        let ce = b.sig(count);
        let sum = b.add(ce, one);
        let ene = b.sig(en);
        let hold = b.sig(count);
        let nxt = b.mux(ene, sum, hold);
        b.set_next(count, nxt);
        b.build().unwrap()
    }

    #[test]
    fn counterexamples_replay_as_confirmed() {
        let d = counter();
        let count = d.signal_by_name("count").unwrap();
        let first = d.signal_by_name("first").unwrap();
        let problem = Problem::new(&d);
        let prop = Prop::implies(
            SvaBool::atom(RtlAtom::is_true(first)),
            Prop::Never(SvaBool::atom(RtlAtom::eq(count, 3))),
        );
        let PropertyVerdict::Falsified { trace, .. } =
            verify_property(&problem, &prop, &VerifyConfig::quick())
        else {
            panic!("count reaches 3");
        };
        assert_eq!(replay(&problem, &prop, &trace), ReplayVerdict::Confirmed);
        assert_eq!(check_transitions(&problem, &trace), None);
    }

    #[test]
    fn assumption_breaking_traces_are_rejected() {
        let d = counter();
        let count = d.signal_by_name("count").unwrap();
        let first = d.signal_by_name("first").unwrap();
        let en = d.signal_by_name("en").unwrap();
        // First get a genuine counterexample without assumptions…
        let problem = Problem::new(&d);
        let prop = Prop::implies(
            SvaBool::atom(RtlAtom::is_true(first)),
            Prop::Never(SvaBool::atom(RtlAtom::eq(count, 2))),
        );
        let PropertyVerdict::Falsified { trace, .. } =
            verify_property(&problem, &prop, &VerifyConfig::quick())
        else {
            panic!("count reaches 2");
        };
        // …then replay it under an assumption the trace violates (enable
        // always low): it is not an admissible execution of that problem.
        let mut constrained = Problem::new(&d);
        constrained.assumptions.push(Directive::assume(
            "en_low",
            Prop::Never(SvaBool::atom(RtlAtom::is_true(en))),
        ));
        assert!(matches!(
            replay(&constrained, &prop, &trace),
            ReplayVerdict::AssumptionFailed { assumption: 0, .. }
        ));
    }

    #[test]
    fn satisfied_traces_report_no_violation() {
        let d = counter();
        let count = d.signal_by_name("count").unwrap();
        let first = d.signal_by_name("first").unwrap();
        let problem = Problem::new(&d);
        // A short quiet trace violates nothing.
        let sim = Simulator::new(&d);
        let mut trace = Trace::new();
        let mut s = sim.initial_state().unwrap();
        for _ in 0..4 {
            trace.push(s.clone(), vec![0]);
            s = sim.step(&s, &[0]);
        }
        let prop = Prop::implies(
            SvaBool::atom(RtlAtom::is_true(first)),
            Prop::Never(SvaBool::atom(RtlAtom::eq(count, 7))),
        );
        assert_eq!(replay(&problem, &prop, &trace), ReplayVerdict::NoViolation);
    }

    #[test]
    fn corrupted_traces_fail_transition_check() {
        let d = counter();
        let problem = Problem::new(&d);
        let sim = Simulator::new(&d);
        let mut trace = Trace::new();
        let s0 = sim.initial_state().unwrap();
        let s1 = sim.step(&s0, &[1]);
        trace.push(s0.clone(), vec![1]);
        trace.push(s1, vec![1]);
        trace.push(s0, vec![1]); // not a successor of s1 under en=1
        assert_eq!(check_transitions(&problem, &trace), Some(1));
    }

    #[test]
    fn early_violations_are_distinguished() {
        let d = counter();
        let count = d.signal_by_name("count").unwrap();
        let first = d.signal_by_name("first").unwrap();
        let problem = Problem::new(&d);
        let prop = Prop::implies(
            SvaBool::atom(RtlAtom::is_true(first)),
            Prop::Never(SvaBool::atom(RtlAtom::eq(count, 1))),
        );
        // Build a trace that keeps running after the violation at count==1.
        let sim = Simulator::new(&d);
        let mut trace = Trace::new();
        let mut s = sim.initial_state().unwrap();
        for _ in 0..5 {
            trace.push(s.clone(), vec![1]);
            s = sim.step(&s, &[1]);
        }
        assert!(matches!(
            replay(&problem, &prop, &trace),
            ReplayVerdict::EarlyViolation { cycle: 1 }
        ));
    }
}

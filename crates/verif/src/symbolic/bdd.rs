//! A minimal hash-consed ROBDD manager.
//!
//! This is the symbolic backend's only data structure: reduced ordered
//! binary decision diagrams over the design's primary-input bits, with a
//! unique table (hash-consing makes equality a pointer comparison), an
//! `ite` operation cache, and a model-count cache. It is deliberately
//! small — no complement edges, no garbage collection, no dynamic variable
//! reordering — because a [`super::SymbolicGraph`] builds one manager per
//! graph and rows only ever *add* nodes, so all three caches stay valid for
//! the graph's lifetime (zero-dep by the repo's compat policy: no `cudd`,
//! no crates.io BDD crates).
//!
//! Variable order is fixed by the caller and significant: the symbolic
//! graph assigns variables so that reading an assignment in variable order
//! yields the input valuation's *numeric index* in the explicit backend's
//! [`crate::graph::input_valuations`] enumeration. That makes
//! [`Bdd::min_sat`] return the *lowest-index* input of a set — the anchor
//! of the explicit/symbolic equivalence proof — and [`Bdd::lt_const`] the
//! characteristic function of "all inputs before index r".

use std::collections::HashMap;

/// Handle to a BDD node (or terminal) inside one [`Bdd`] manager.
///
/// Handles from different managers must not be mixed; equality of handles
/// is semantic equality of the functions they denote (hash-consing).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NodeId(u32);

/// The constant-false function.
pub const FALSE: NodeId = NodeId(0);
/// The constant-true function.
pub const TRUE: NodeId = NodeId(1);

/// One decision node: `if var then hi else lo`. Terminals use
/// `var == num_vars` so the variable order extends past the last real
/// variable, which keeps model counting branch-free.
#[derive(Debug, Clone, Copy)]
struct Node {
    var: u32,
    lo: NodeId,
    hi: NodeId,
}

/// The manager: node arena plus unique/op/count caches.
#[derive(Debug)]
pub struct Bdd {
    num_vars: u32,
    nodes: Vec<Node>,
    unique: HashMap<(u32, NodeId, NodeId), NodeId>,
    ite_cache: HashMap<(NodeId, NodeId, NodeId), NodeId>,
    count_cache: HashMap<NodeId, u128>,
}

impl Bdd {
    /// Creates a manager over `num_vars` boolean variables (levels
    /// `0..num_vars`, level 0 outermost / most significant).
    ///
    /// # Panics
    ///
    /// Panics if `num_vars > 127` — model counts are returned as `u128`
    /// and must hold up to `2^num_vars`.
    pub fn new(num_vars: usize) -> Self {
        assert!(
            num_vars <= 127,
            "BDD variable count {num_vars} exceeds the u128 model-count limit (127)"
        );
        let num_vars = num_vars as u32;
        let terminal = |_| Node {
            var: num_vars,
            lo: FALSE,
            hi: FALSE,
        };
        Bdd {
            num_vars,
            nodes: (0..2).map(terminal).collect(),
            unique: HashMap::new(),
            ite_cache: HashMap::new(),
            count_cache: HashMap::new(),
        }
    }

    /// Total nodes allocated (terminals included) — a size metric.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    fn var_of(&self, f: NodeId) -> u32 {
        self.nodes[f.0 as usize].var
    }

    /// Hash-consed constructor; applies the redundant-test reduction.
    fn mk(&mut self, var: u32, lo: NodeId, hi: NodeId) -> NodeId {
        if lo == hi {
            return lo;
        }
        debug_assert!(var < self.num_vars);
        debug_assert!(var < self.var_of(lo) && var < self.var_of(hi));
        *self.unique.entry((var, lo, hi)).or_insert_with(|| {
            let id = NodeId(u32::try_from(self.nodes.len()).expect("BDD fits in u32 node ids"));
            self.nodes.push(Node { var, lo, hi });
            id
        })
    }

    /// The single-variable function for `level`.
    pub fn var(&mut self, level: usize) -> NodeId {
        self.mk(level as u32, FALSE, TRUE)
    }

    /// The constant function for `b`.
    pub fn constant(b: bool) -> NodeId {
        if b {
            TRUE
        } else {
            FALSE
        }
    }

    /// If-then-else: `(f ∧ g) ∨ (¬f ∧ h)` — the universal connective every
    /// other operation is expressed through.
    pub fn ite(&mut self, f: NodeId, g: NodeId, h: NodeId) -> NodeId {
        if f == TRUE {
            return g;
        }
        if f == FALSE {
            return h;
        }
        if g == h {
            return g;
        }
        if g == TRUE && h == FALSE {
            return f;
        }
        if let Some(&r) = self.ite_cache.get(&(f, g, h)) {
            return r;
        }
        let var = self.var_of(f).min(self.var_of(g)).min(self.var_of(h));
        let (f0, f1) = self.cofactor(f, var);
        let (g0, g1) = self.cofactor(g, var);
        let (h0, h1) = self.cofactor(h, var);
        let lo = self.ite(f0, g0, h0);
        let hi = self.ite(f1, g1, h1);
        let r = self.mk(var, lo, hi);
        self.ite_cache.insert((f, g, h), r);
        r
    }

    fn cofactor(&self, f: NodeId, var: u32) -> (NodeId, NodeId) {
        let n = self.nodes[f.0 as usize];
        if n.var == var {
            (n.lo, n.hi)
        } else {
            (f, f)
        }
    }

    /// Negation.
    pub fn not(&mut self, f: NodeId) -> NodeId {
        self.ite(f, FALSE, TRUE)
    }

    /// Conjunction.
    pub fn and(&mut self, f: NodeId, g: NodeId) -> NodeId {
        self.ite(f, g, FALSE)
    }

    /// Disjunction.
    pub fn or(&mut self, f: NodeId, g: NodeId) -> NodeId {
        self.ite(f, TRUE, g)
    }

    /// Exclusive or.
    pub fn xor(&mut self, f: NodeId, g: NodeId) -> NodeId {
        let ng = self.not(g);
        self.ite(f, ng, g)
    }

    /// Evaluates `f` under a full assignment (`assign[level]` is the value
    /// of variable `level`).
    pub fn eval(&self, f: NodeId, assign: &[bool]) -> bool {
        debug_assert_eq!(assign.len(), self.num_vars as usize);
        let mut cur = f;
        while cur.0 > 1 {
            let n = self.nodes[cur.0 as usize];
            cur = if assign[n.var as usize] { n.hi } else { n.lo };
        }
        cur == TRUE
    }

    /// Number of satisfying assignments of `f` over all `num_vars`
    /// variables. Exact (no floating point): this is what gives symbolic
    /// edge classes their multiplicities.
    pub fn sat_count(&mut self, f: NodeId) -> u128 {
        let skipped = self.var_of(f);
        self.raw_count(f) << skipped
    }

    /// Satisfying assignments over the variables at or below `f`'s level.
    fn raw_count(&mut self, f: NodeId) -> u128 {
        if f == FALSE {
            return 0;
        }
        if f == TRUE {
            return 1;
        }
        if let Some(&c) = self.count_cache.get(&f) {
            return c;
        }
        let n = self.nodes[f.0 as usize];
        let lo = self.raw_count(n.lo) << (self.var_of(n.lo) - n.var - 1);
        let hi = self.raw_count(n.hi) << (self.var_of(n.hi) - n.var - 1);
        let c = lo + hi;
        self.count_cache.insert(f, c);
        c
    }

    /// The satisfying assignment that is *numerically smallest* when read
    /// in variable order (variable 0 most significant), or `None` for the
    /// unsatisfiable function. Skipped (don't-care) variables are 0.
    ///
    /// The greedy lo-first walk is exact because the diagram is reduced:
    /// any non-`FALSE` child denotes a satisfiable cofactor.
    pub fn min_sat(&self, f: NodeId) -> Option<Vec<bool>> {
        if f == FALSE {
            return None;
        }
        let mut assign = vec![false; self.num_vars as usize];
        let mut cur = f;
        while cur != TRUE {
            let n = self.nodes[cur.0 as usize];
            if n.lo != FALSE {
                cur = n.lo;
            } else {
                assign[n.var as usize] = true;
                cur = n.hi;
            }
        }
        Some(assign)
    }

    /// Characteristic function of assignments strictly below `bound` in the
    /// numeric order of [`Bdd::min_sat`] (`bound[level]` is variable
    /// `level`'s bit, level 0 most significant).
    pub fn lt_const(&mut self, bound: &[bool]) -> NodeId {
        debug_assert_eq!(bound.len(), self.num_vars as usize);
        let mut lt = FALSE;
        for level in (0..self.num_vars as usize).rev() {
            let v = self.var(level);
            lt = if bound[level] {
                // Bound bit 1: a 0 here wins outright, a 1 defers down.
                self.ite(v, lt, TRUE)
            } else {
                // Bound bit 0: a 1 here loses outright, a 0 defers down.
                self.ite(v, FALSE, lt)
            };
        }
        lt
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn index_of(assign: &[bool]) -> u128 {
        assign.iter().fold(0u128, |i, &b| (i << 1) | u128::from(b))
    }

    #[test]
    fn terminals_count_over_the_full_space() {
        let mut b = Bdd::new(5);
        assert_eq!(b.sat_count(TRUE), 32);
        assert_eq!(b.sat_count(FALSE), 0);
        let v2 = b.var(2);
        assert_eq!(b.sat_count(v2), 16);
    }

    #[test]
    fn hash_consing_makes_equal_functions_identical() {
        let mut b = Bdd::new(3);
        let v0 = b.var(0);
        let v1 = b.var(1);
        let a = b.and(v0, v1);
        let c = b.ite(v1, v0, FALSE);
        assert_eq!(a, c, "x0∧x1 built two ways is one node");
        let n = b.not(a);
        let nn = b.not(n);
        assert_eq!(nn, a, "double negation is the identity");
    }

    #[test]
    fn eval_and_count_agree_with_enumeration() {
        let mut b = Bdd::new(4);
        let v: Vec<NodeId> = (0..4).map(|i| b.var(i)).collect();
        // f = (x0 ∧ x2) ∨ (x1 ⊕ x3)
        let a = b.and(v[0], v[2]);
        let x = b.xor(v[1], v[3]);
        let f = b.or(a, x);
        let mut count = 0u128;
        for idx in 0..16u32 {
            let assign: Vec<bool> = (0..4).map(|l| idx >> (3 - l) & 1 == 1).collect();
            let expect = (assign[0] && assign[2]) || (assign[1] != assign[3]);
            assert_eq!(b.eval(f, &assign), expect, "index {idx}");
            count += u128::from(expect);
        }
        assert_eq!(b.sat_count(f), count);
    }

    #[test]
    fn min_sat_is_the_numerically_smallest_model() {
        let mut b = Bdd::new(3);
        let v0 = b.var(0);
        let v1 = b.var(1);
        let v2 = b.var(2);
        // f = (x0 ∧ x2) ∨ x1: models are indices 2,3,5,6,7 → min is 2.
        let a = b.and(v0, v2);
        let f = b.or(a, v1);
        assert_eq!(index_of(&b.min_sat(f).unwrap()), 2);
        assert_eq!(b.min_sat(FALSE), None);
        assert_eq!(index_of(&b.min_sat(TRUE).unwrap()), 0);
    }

    #[test]
    fn lt_const_counts_exactly_the_bound() {
        let mut b = Bdd::new(4);
        for bound in 0..16u32 {
            let bits: Vec<bool> = (0..4).map(|l| bound >> (3 - l) & 1 == 1).collect();
            let lt = b.lt_const(&bits);
            assert_eq!(b.sat_count(lt), u128::from(bound), "bound {bound}");
        }
    }

    #[test]
    fn zero_variable_manager_handles_the_unit_space() {
        let mut b = Bdd::new(0);
        assert_eq!(b.sat_count(TRUE), 1);
        assert_eq!(b.sat_count(FALSE), 0);
        assert_eq!(b.min_sat(TRUE), Some(Vec::new()));
        assert!(b.eval(TRUE, &[]));
    }
}

//! The symbolic (BDD-backed) reachable-set backend.
//!
//! The explicit [`StateGraph`] builds a node's out-edges by simulating the
//! design once per primary-input valuation — fine for the litmus designs'
//! 2-bit arbiter input, hopeless past [`crate::graph`]'s enumeration limit.
//! [`SymbolicGraph`] replaces per-valuation simulation with *image
//! computation*: every quantity an edge can observe — each assumption
//! atom, each property atom, each next-state register bit — is compiled
//! once per node into a BDD over the design's primary-input *bits*
//! (current state folded in as constants), and the row is then enumerated
//! as **edge classes**: maximal sets of valuations on which all of those
//! functions agree. A class is one [`crate::backend::EdgeClass`] with a
//! model-count multiplicity; a row with 2^20 valuations but four
//! behaviours costs four classes.
//!
//! Equivalence with the explicit backend is structural, not approximate:
//!
//! * Classes are enumerated in order of their *lowest-index* valuation
//!   (`Bdd::min_sat` under the variable order that
//!   mirrors `input_valuations`'s numeric indexing), and
//!   every valuation below a class's representative belongs to an earlier
//!   class. Walks therefore discover product states, fail assertions, and
//!   hit covers at exactly the explicit engine's inputs — same traces,
//!   same verdicts.
//! * Transition statistics are weighted by class multiplicity, and
//!   [`crate::backend::Backend::class_prefix`] (a model count of the row's
//!   pruned set below the representative) lets a walk that stops mid-row
//!   settle to exact per-valuation counts — same [`crate::ExploreStats`].
//!
//! The differential tests (`symbolic_differential.rs`, the top-level
//! backend differential, and the CI `backend-differential` job) pin all of
//! this down to byte equality over the full litmus suite.

mod bdd;

use std::cell::RefCell;
use std::collections::{BTreeSet, HashMap};

use rtlcheck_obs::{attrs, Collector};
use rtlcheck_rtl::sim::{Simulator, State};
use rtlcheck_rtl::{BinOp, Expr, ExprId, SignalId, SignalKind, UnOp};
use rtlcheck_sva::{Monitor, MonitorState, Prop, SvaBool};

use crate::atom::{RtlAtom, RtlBool};
use crate::backend::{Backend, EdgeClass};
use crate::engine::Engine;
use crate::graph::{GraphStats, StateGraph, PRUNED};
use crate::problem::Problem;

use bdd::{Bdd, NodeId, FALSE, TRUE};

/// Maximum total primary-input bits the symbolic backend accepts: indices
/// and model counts live in `u128`.
const MAX_INPUT_BITS: usize = 127;

/// One enumerated edge class of a node's row.
struct SymClass {
    /// Destination node, or [`PRUNED`].
    dest: u32,
    /// Number of input valuations in the class.
    multiplicity: u128,
    /// The class's lowest-index valuation, as per-input values.
    rep: Vec<u64>,
    /// The numeric index of `rep` in the explicit enumeration order.
    rep_index: u128,
    /// Atom-valuation bitset (zeroed for pruned classes).
    bits: Vec<u64>,
}

/// A fully enumerated row: the node's classes in ascending `rep_index`
/// order, plus the union of its pruned classes for prefix model counts.
struct SymRow {
    classes: Vec<SymClass>,
    pruned_union: NodeId,
}

/// One materialised product node.
struct SymNode {
    state: State,
    assumptions: Vec<MonitorState>,
    row: Option<SymRow>,
}

/// The interior-mutable part: the BDD manager, nodes, dedup index, and the
/// reusable assumption monitors.
struct SymCore {
    bdd: Bdd,
    nodes: Vec<SymNode>,
    index: HashMap<(State, Vec<MonitorState>), u32>,
    monitors: Vec<Monitor<RtlAtom>>,
    stats: GraphStats,
    /// Total edge classes enumerated (the `backend.classes` counter).
    classes_built: u64,
}

/// The symbolic counterpart of [`StateGraph`]: same node/edge contract
/// (via [`Backend`]), rows built by BDD image computation instead of
/// per-valuation simulation. See the module docs.
pub struct SymbolicGraph<'p, 'd> {
    problem: &'p Problem<'d>,
    /// Sorted, deduplicated table of every atom any walk will evaluate.
    atoms: Vec<RtlAtom>,
    /// Sorted, deduplicated atoms of the assumption properties — the
    /// admissibility part of each class's signature.
    assume_atoms: Vec<RtlAtom>,
    /// u64 words per edge bitset.
    words: usize,
    /// Total primary-input bits = BDD variables.
    num_vars: usize,
    /// Per input (dense index): `(variable offset, width)`. Variables are
    /// assigned in declaration order, each input MSB-first, so an
    /// assignment read in variable order is the valuation's numeric index
    /// in `input_valuations` order.
    input_vars: Vec<(usize, u8)>,
    /// Per register (dense index): `(width, next-state expression)`.
    regs: Vec<(u8, ExprId)>,
    core: RefCell<SymCore>,
}

impl std::fmt::Debug for SymbolicGraph<'_, '_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let core = self.core.borrow();
        f.debug_struct("SymbolicGraph")
            .field("design", &self.problem.design.name())
            .field("atoms", &self.atoms.len())
            .field("input_bits", &self.num_vars)
            .field("bdd_nodes", &core.bdd.num_nodes())
            .field("stats", &core.stats)
            .finish()
    }
}

impl<'p, 'd> SymbolicGraph<'p, 'd> {
    /// Creates a lazy symbolic graph (root node only) whose atom table
    /// covers the problem's cover condition plus every property in
    /// `props` — the same contract as [`StateGraph::new`], without the
    /// input-space enumeration limit.
    ///
    /// # Panics
    ///
    /// Panics if a free-init register is not pinned by `problem.init_pins`
    /// or the design's primary inputs exceed `MAX_INPUT_BITS` total bits.
    pub fn new<'a, I>(problem: &'p Problem<'d>, props: I) -> Self
    where
        I: IntoIterator<Item = &'a Prop<RtlAtom>>,
    {
        let design = problem.design;
        let atoms = StateGraph::atom_table(problem, props);
        let words = atoms.len().div_ceil(64);

        let mut assume_set: BTreeSet<RtlAtom> = BTreeSet::new();
        for d in &problem.assumptions {
            d.prop.for_each_atom(&mut |a| {
                assume_set.insert(*a);
            });
        }
        let assume_atoms: Vec<RtlAtom> = assume_set.into_iter().collect();

        let mut input_vars: Vec<(usize, u8)> = Vec::new();
        let mut offset = 0usize;
        let mut regs: Vec<Option<(u8, ExprId)>> = vec![None; design.num_regs()];
        for (_, s) in design.signals() {
            match s.kind {
                SignalKind::Input { index } => {
                    if input_vars.len() <= index {
                        input_vars.resize(index + 1, (0, 0));
                    }
                    input_vars[index] = (offset, s.width);
                    offset += s.width as usize;
                }
                SignalKind::Reg { index, next, .. } => {
                    regs[index] = Some((s.width, next));
                }
                SignalKind::Wire { .. } => {}
            }
        }
        let num_vars = offset;
        assert!(
            num_vars <= MAX_INPUT_BITS,
            "design `{}` has {} primary-input bits — past even the symbolic \
             backend's {} bit limit",
            design.name(),
            num_vars,
            MAX_INPUT_BITS,
        );
        let regs: Vec<(u8, ExprId)> = regs
            .into_iter()
            .map(|r| r.expect("every register index is declared"))
            .collect();

        let sim = Simulator::new(design);
        let initial = sim
            .initial_state_with(&problem.init_pins)
            .expect("all free-init registers must be pinned by init assumptions");
        let monitors: Vec<Monitor<RtlAtom>> = problem
            .assumptions
            .iter()
            .map(|d| Monitor::new(&d.prop))
            .collect();
        let init_states: Vec<MonitorState> = monitors.iter().map(|m| m.state().clone()).collect();
        let mut core = SymCore {
            bdd: Bdd::new(num_vars),
            nodes: vec![SymNode {
                state: initial.clone(),
                assumptions: init_states.clone(),
                row: None,
            }],
            index: HashMap::new(),
            monitors,
            stats: GraphStats {
                nodes: 1,
                ..GraphStats::default()
            },
            classes_built: 0,
        };
        core.index.insert((initial, init_states), 0);

        SymbolicGraph {
            problem,
            atoms,
            assume_atoms,
            words,
            num_vars,
            input_vars,
            regs,
            core: RefCell::new(core),
        }
    }

    /// [`SymbolicGraph::new`] followed by the same eager breadth-first
    /// warm-up as [`StateGraph::build`]: rows are pre-built layer by layer
    /// until the reachable product space is exhausted or `engine`'s budget
    /// is hit. The laziness invariant carries over — warm-up depth never
    /// changes a walk's verdict or statistics.
    pub fn build<'a, I>(problem: &'p Problem<'d>, props: I, engine: Engine) -> Self
    where
        I: IntoIterator<Item = &'a Prop<RtlAtom>>,
    {
        let graph = SymbolicGraph::new(problem, props);
        graph.warm(engine);
        graph
    }

    fn warm(&self, engine: Engine) {
        let mut core = self.core.borrow_mut();
        let mut frontier: Vec<u32> = vec![0];
        let mut depth: u32 = 0;
        loop {
            if frontier.is_empty() {
                core.stats.complete = true;
                return;
            }
            if engine.max_depth.is_some_and(|d| depth >= d) {
                return;
            }
            let mut next = Vec::new();
            for &n in &frontier {
                let known = core.nodes.len();
                if core.nodes[n as usize].row.is_none() {
                    self.build_row(&mut core, n);
                }
                next.extend((known..core.nodes.len()).map(|i| i as u32));
                if core.nodes.len() > engine.max_states {
                    return;
                }
            }
            depth += 1;
            frontier = next;
        }
    }

    /// Builds one node's row by image computation: compiles the signature
    /// functions (assumption atoms, property atoms, next-state bits) over
    /// the input variables, then peels off edge classes in ascending
    /// lowest-member order until the input space is exhausted.
    fn build_row(&self, core: &mut SymCore, node: u32) {
        let SymCore {
            bdd,
            nodes,
            index,
            monitors,
            stats,
            classes_built,
        } = core;
        let (state, assumptions) = {
            let n = &nodes[node as usize];
            (n.state.clone(), n.assumptions.clone())
        };

        // Phase 1: compile every observable of this row into a BDD over
        // the input bits, with the current state folded in as constants.
        let mut memo: HashMap<ExprId, Vec<NodeId>> = HashMap::new();
        let assume_fns: Vec<NodeId> = self
            .assume_atoms
            .iter()
            .map(|a| self.atom_fn(bdd, &mut memo, &state, a))
            .collect();
        let atom_fns: Vec<NodeId> = self
            .atoms
            .iter()
            .map(|a| self.atom_fn(bdd, &mut memo, &state, a))
            .collect();
        let next_fns: Vec<Vec<NodeId>> = self
            .regs
            .iter()
            .map(|&(width, next)| {
                let mut bits = self.expr_bits(bdd, &mut memo, &state, next);
                // The register commit masks to the register width.
                bits.resize(width as usize, FALSE);
                bits
            })
            .collect();

        // Phase 2: enumerate the classes. `ctx` is the set of valuations
        // not yet classified; its minimum model is the next class's
        // representative, and fixing every signature function to its value
        // there carves out the whole class.
        let mut classes: Vec<SymClass> = Vec::new();
        let mut pruned_union = FALSE;
        let mut ctx = TRUE;
        while let Some(assign) = bdd.min_sat(ctx) {
            let mut class_f = TRUE;
            let fix = |bdd: &mut Bdd, class_f: &mut NodeId, f: NodeId| -> bool {
                let v = bdd.eval(f, &assign);
                let lit = if v { f } else { bdd.not(f) };
                *class_f = bdd.and(*class_f, lit);
                v
            };
            let assume_vals: Vec<bool> = assume_fns
                .iter()
                .map(|&f| fix(bdd, &mut class_f, f))
                .collect();
            let mut bits = vec![0u64; self.words];
            for (ai, &f) in atom_fns.iter().enumerate() {
                if fix(bdd, &mut class_f, f) {
                    bits[ai / 64] |= 1 << (ai % 64);
                }
            }
            let mut next_regs = vec![0u64; self.regs.len()];
            for (ri, fns) in next_fns.iter().enumerate() {
                for (bit, &f) in fns.iter().enumerate() {
                    if fix(bdd, &mut class_f, f) {
                        next_regs[ri] |= 1u64 << bit;
                    }
                }
            }
            let multiplicity = bdd.sat_count(class_f);
            debug_assert!(multiplicity > 0, "a class contains its representative");
            let rep = self.assignment_to_valuation(&assign);
            let rep_index = assignment_to_index(&assign);

            // Admissibility: step the assumption monitors once at the
            // representative — every member of the class agrees on every
            // assumption atom, so the step is class-invariant.
            let mut admissible = true;
            let mut next_states = Vec::with_capacity(monitors.len());
            for (m_i, m) in monitors.iter_mut().enumerate() {
                m.set_state(assumptions[m_i].clone());
                m.step(&|a: &RtlAtom| {
                    let i = self
                        .assume_atoms
                        .binary_search(a)
                        .expect("assumption monitors only query assumption atoms");
                    assume_vals[i]
                });
                if m.failed() {
                    admissible = false;
                }
                next_states.push(m.state().clone());
            }

            if admissible {
                let dest_state = State::from_regs(next_regs);
                let key = (dest_state, next_states);
                let dest = match index.get(&key) {
                    Some(&d) => d,
                    None => {
                        let d = u32::try_from(nodes.len()).expect("graph fits in u32 node ids");
                        nodes.push(SymNode {
                            state: key.0.clone(),
                            assumptions: key.1.clone(),
                            row: None,
                        });
                        index.insert(key, d);
                        d
                    }
                };
                stats.edges = stats.edges.saturating_add(clamp_u64(multiplicity));
                classes.push(SymClass {
                    dest,
                    multiplicity,
                    rep,
                    rep_index,
                    bits,
                });
            } else {
                stats.pruned_edges = stats.pruned_edges.saturating_add(clamp_u64(multiplicity));
                pruned_union = bdd.or(pruned_union, class_f);
                classes.push(SymClass {
                    dest: PRUNED,
                    multiplicity,
                    rep,
                    rep_index,
                    // Pruned edges carry no atom valuations, as in the
                    // explicit backend.
                    bits: vec![0u64; self.words],
                });
            }
            *classes_built += 1;
            let excluded = bdd.not(class_f);
            ctx = bdd.and(ctx, excluded);
        }
        stats.nodes = nodes.len();
        nodes[node as usize].row = Some(SymRow {
            classes,
            pruned_union,
        });
    }

    /// The BDD of "signal equals value" at this row's state.
    fn atom_fn(
        &self,
        bdd: &mut Bdd,
        memo: &mut HashMap<ExprId, Vec<NodeId>>,
        state: &State,
        atom: &RtlAtom,
    ) -> NodeId {
        let width = self.problem.design.signal(atom.sig).width;
        if width < 64 && atom.value >> width != 0 {
            // The value cannot fit the signal: constant false, mirroring
            // the explicit peek-and-compare.
            return FALSE;
        }
        let bits = self.sig_bits(bdd, memo, state, atom.sig);
        let mut r = TRUE;
        for (i, &b) in bits.iter().enumerate() {
            let lit = if atom.value >> i & 1 == 1 {
                b
            } else {
                bdd.not(b)
            };
            r = bdd.and(r, lit);
        }
        r
    }

    /// The bit-vector (LSB first) of a signal's current-cycle value.
    fn sig_bits(
        &self,
        bdd: &mut Bdd,
        memo: &mut HashMap<ExprId, Vec<NodeId>>,
        state: &State,
        sig: SignalId,
    ) -> Vec<NodeId> {
        let s = self.problem.design.signal(sig);
        match s.kind {
            SignalKind::Input { index } => {
                let (offset, width) = self.input_vars[index];
                // Variable `offset` is the input's MSB: bit i (LSB-indexed)
                // lives at level `offset + width - 1 - i`.
                (0..width as usize)
                    .map(|i| bdd.var(offset + width as usize - 1 - i))
                    .collect()
            }
            SignalKind::Reg { index, .. } => const_bits(state.regs()[index], s.width as usize),
            SignalKind::Wire { expr } => self.expr_bits(bdd, memo, state, expr),
        }
    }

    /// Compiles an expression to its bit-vector (LSB first), mirroring
    /// [`Simulator::eval`]'s semantics bit-for-bit: `Not`/`Add`/`Sub` mask
    /// to the expression width, comparisons compare full values, `Mux`
    /// selects on nonzero.
    fn expr_bits(
        &self,
        bdd: &mut Bdd,
        memo: &mut HashMap<ExprId, Vec<NodeId>>,
        state: &State,
        id: ExprId,
    ) -> Vec<NodeId> {
        if let Some(bits) = memo.get(&id) {
            return bits.clone();
        }
        let width = self.problem.design.expr_width(id) as usize;
        let bits = match self.problem.design.expr(id) {
            Expr::Const { value, .. } => const_bits(value, width),
            Expr::Sig(s) => self.sig_bits(bdd, memo, state, s),
            Expr::Unary { op, arg } => {
                let a = self.expr_bits(bdd, memo, state, arg);
                match op {
                    UnOp::Not => {
                        let mut r: Vec<NodeId> = a.iter().map(|&b| bdd.not(b)).collect();
                        r.resize(width, TRUE);
                        r.truncate(width);
                        r
                    }
                    UnOp::OrReduce => vec![or_reduce(bdd, &a)],
                }
            }
            Expr::Binary { op, lhs, rhs } => {
                let a = self.expr_bits(bdd, memo, state, lhs);
                let b = self.expr_bits(bdd, memo, state, rhs);
                match op {
                    BinOp::And => bitwise(bdd, &a, &b, width, Bdd::and),
                    BinOp::Or => bitwise(bdd, &a, &b, width, Bdd::or),
                    BinOp::Xor => bitwise(bdd, &a, &b, width, Bdd::xor),
                    BinOp::Add => ripple_sum(bdd, &a, &b, width, false),
                    BinOp::Sub => ripple_sum(bdd, &a, &b, width, true),
                    BinOp::Eq => vec![equal(bdd, &a, &b)],
                    BinOp::Ne => {
                        let e = equal(bdd, &a, &b);
                        vec![bdd.not(e)]
                    }
                    BinOp::Lt => vec![less_than(bdd, &a, &b)],
                }
            }
            Expr::Mux { cond, then_, else_ } => {
                let c = self.expr_bits(bdd, memo, state, cond);
                let sel = or_reduce(bdd, &c);
                let t = self.expr_bits(bdd, memo, state, then_);
                let e = self.expr_bits(bdd, memo, state, else_);
                (0..width)
                    .map(|i| {
                        let ti = t.get(i).copied().unwrap_or(FALSE);
                        let ei = e.get(i).copied().unwrap_or(FALSE);
                        bdd.ite(sel, ti, ei)
                    })
                    .collect()
            }
        };
        memo.insert(id, bits.clone());
        bits
    }

    /// Converts a BDD assignment into a per-input valuation vector (dense
    /// input index order, matching [`Simulator::peek`]'s expectations).
    fn assignment_to_valuation(&self, assign: &[bool]) -> Vec<u64> {
        self.input_vars
            .iter()
            .map(|&(offset, width)| {
                (offset..offset + width as usize)
                    .fold(0u64, |v, level| (v << 1) | u64::from(assign[level]))
            })
            .collect()
    }

    /// The atom table walks index into.
    pub fn atoms(&self) -> &[RtlAtom] {
        &self.atoms
    }

    /// Current construction/reuse statistics. `edges`/`pruned_edges` are
    /// multiplicity-weighted (valuations, not classes), saturating at
    /// `u64::MAX` — directly comparable to the explicit backend's counts.
    pub fn stats(&self) -> GraphStats {
        self.core.borrow().stats
    }

    fn atom_index(&self, a: &RtlAtom) -> usize {
        match self.atoms.binary_search(a) {
            Ok(i) => i,
            Err(_) => panic!(
                "atom `{}` is not in the symbolic graph's atom table — the \
                 graph must be built with every property it serves",
                a.render(self.problem.design),
            ),
        }
    }
}

/// The numeric index of an assignment in explicit enumeration order
/// (variable 0 most significant).
fn assignment_to_index(assign: &[bool]) -> u128 {
    assign.iter().fold(0u128, |i, &b| (i << 1) | u128::from(b))
}

/// Clamps a model count into the `u64` statistics domain.
fn clamp_u64(v: u128) -> u64 {
    u64::try_from(v).unwrap_or(u64::MAX)
}

/// The constant bit-vector of `value` (LSB first, `width` bits).
fn const_bits(value: u64, width: usize) -> Vec<NodeId> {
    (0..width)
        .map(|i| Bdd::constant(value >> i & 1 == 1))
        .collect()
}

/// OR over all bits — the `!= 0` test.
fn or_reduce(bdd: &mut Bdd, bits: &[NodeId]) -> NodeId {
    bits.iter().fold(FALSE, |r, &b| bdd.or(r, b))
}

/// Zip two bit-vectors through a bitwise connective, padding with zeros.
fn bitwise(
    bdd: &mut Bdd,
    a: &[NodeId],
    b: &[NodeId],
    width: usize,
    op: fn(&mut Bdd, NodeId, NodeId) -> NodeId,
) -> Vec<NodeId> {
    (0..width.max(a.len()).max(b.len()))
        .map(|i| {
            let ai = a.get(i).copied().unwrap_or(FALSE);
            let bi = b.get(i).copied().unwrap_or(FALSE);
            op(bdd, ai, bi)
        })
        .collect()
}

/// Ripple-carry add (or subtract via two's complement), truncated to
/// `width` bits — the simulator's wrapping-and-mask semantics.
fn ripple_sum(
    bdd: &mut Bdd,
    a: &[NodeId],
    b: &[NodeId],
    width: usize,
    subtract: bool,
) -> Vec<NodeId> {
    let mut carry = Bdd::constant(subtract);
    let mut out = Vec::with_capacity(width);
    for i in 0..width {
        let ai = a.get(i).copied().unwrap_or(FALSE);
        let mut bi = b.get(i).copied().unwrap_or(FALSE);
        if subtract {
            bi = bdd.not(bi);
        }
        let axb = bdd.xor(ai, bi);
        let sum = bdd.xor(axb, carry);
        let ab = bdd.and(ai, bi);
        let ca = bdd.and(carry, axb);
        carry = bdd.or(ab, ca);
        out.push(sum);
    }
    out
}

/// Full-value equality over zero-padded operands.
fn equal(bdd: &mut Bdd, a: &[NodeId], b: &[NodeId]) -> NodeId {
    let mut r = TRUE;
    for i in 0..a.len().max(b.len()) {
        let ai = a.get(i).copied().unwrap_or(FALSE);
        let bi = b.get(i).copied().unwrap_or(FALSE);
        let x = bdd.xor(ai, bi);
        let same = bdd.not(x);
        r = bdd.and(r, same);
    }
    r
}

/// Unsigned full-value less-than over zero-padded operands.
fn less_than(bdd: &mut Bdd, a: &[NodeId], b: &[NodeId]) -> NodeId {
    let mut lt = FALSE;
    for i in 0..a.len().max(b.len()) {
        let ai = a.get(i).copied().unwrap_or(FALSE);
        let bi = b.get(i).copied().unwrap_or(FALSE);
        // b's bit 1: a 0 in `a` wins here, a 1 defers to the lower bits.
        let when_b1 = bdd.ite(ai, lt, TRUE);
        // b's bit 0: a 1 in `a` loses here, a 0 defers to the lower bits.
        let when_b0 = bdd.ite(ai, FALSE, lt);
        lt = bdd.ite(bi, when_b1, when_b0);
    }
    lt
}

impl Backend for SymbolicGraph<'_, '_> {
    fn problem(&self) -> &Problem<'_> {
        self.problem
    }

    fn atoms(&self) -> &[RtlAtom] {
        SymbolicGraph::atoms(self)
    }

    fn map_prop(&self, prop: &Prop<RtlAtom>) -> Prop<usize> {
        prop.map_atoms(&mut |a| self.atom_index(a))
    }

    fn map_bool(&self, b: &RtlBool) -> SvaBool<usize> {
        b.map_atoms(&mut |a| self.atom_index(a))
    }

    fn num_edge_classes(&self, node: u32) -> usize {
        let mut core = self.core.borrow_mut();
        if core.nodes[node as usize].row.is_none() {
            self.build_row(&mut core, node);
        }
        let row = core.nodes[node as usize].row.as_ref().expect("row built");
        row.classes.len()
    }

    fn edge_class(&self, node: u32, class: usize, bits_out: &mut Vec<u64>) -> EdgeClass {
        let mut core = self.core.borrow_mut();
        core.stats.lookups += 1;
        if core.nodes[node as usize].row.is_none() {
            self.build_row(&mut core, node);
        } else {
            core.stats.reuse_hits += 1;
        }
        let row = core.nodes[node as usize].row.as_ref().expect("row built");
        let c = &row.classes[class];
        bits_out.clear();
        bits_out.extend_from_slice(&c.bits);
        EdgeClass {
            dest: c.dest,
            multiplicity: c.multiplicity,
        }
    }

    fn class_input(&self, node: u32, class: usize) -> Vec<u64> {
        let core = self.core.borrow();
        let row = core.nodes[node as usize].row.as_ref().expect("row built");
        row.classes[class].rep.clone()
    }

    fn class_prefix(&self, node: u32, class: usize) -> (u128, u128) {
        let mut core = self.core.borrow_mut();
        let (pruned_union, rep_index) = {
            let row = core.nodes[node as usize].row.as_ref().expect("row built");
            (row.pruned_union, row.classes[class].rep_index)
        };
        // Every valuation below the representative belongs to an earlier
        // class (classes are peeled in ascending minimum order), so the
        // pruned count below it is a model count of the row's pruned set.
        let rep_bits: Vec<bool> = (0..self.num_vars)
            .map(|level| rep_index >> (self.num_vars - 1 - level) & 1 == 1)
            .collect();
        let below = core.bdd.lt_const(&rep_bits);
        let pruned_below = core.bdd.and(pruned_union, below);
        let pruned = core.bdd.sat_count(pruned_below);
        (rep_index - pruned, pruned)
    }

    fn node_state(&self, node: u32) -> State {
        self.core.borrow().nodes[node as usize].state.clone()
    }

    fn stats(&self) -> GraphStats {
        SymbolicGraph::stats(self)
    }

    /// Reports the shared `graph.*` counters (same names as the explicit
    /// backend), the assumption monitors, and the symbolic-only
    /// `backend.*` counters (`backend.bdd_nodes`, `backend.classes`).
    fn report_to(&self, collector: &dyn Collector) {
        let core = self.core.borrow();
        let s = core.stats;
        collector.counter("graph.nodes", s.nodes as u64, attrs![]);
        collector.counter("graph.edges", s.edges, attrs![]);
        collector.counter("graph.pruned_edges", s.pruned_edges, attrs![]);
        collector.counter("graph.lookups", s.lookups, attrs![]);
        collector.counter("graph.reuse_hits", s.reuse_hits, attrs![]);
        collector.counter("graph.atoms", self.atoms.len() as u64, attrs![]);
        collector.counter("backend.bdd_nodes", core.bdd.num_nodes() as u64, attrs![]);
        collector.counter("backend.classes", core.classes_built, attrs![]);
        for (i, m) in core.monitors.iter().enumerate() {
            m.report_to(collector, &self.problem.assumptions[i].name);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::VerifyConfig;
    use crate::explore::{check_cover_on_graph, verify_property_on_graph};
    use crate::problem::Directive;
    use rtlcheck_rtl::{Design, DesignBuilder};

    /// The graph-module test counter: 3-bit count with a 1-bit enable.
    fn counter() -> Design {
        let mut b = DesignBuilder::new("c");
        let en = b.input("en", 1);
        let count = b.reg("count", 3, Some(0));
        let one = b.lit(1, 3);
        let ce = b.sig(count);
        let sum = b.add(ce, one);
        let ene = b.sig(en);
        let hold = b.sig(count);
        let nxt = b.mux(ene, sum, hold);
        b.set_next(count, nxt);
        b.build().unwrap()
    }

    /// A register fed by a wide input through a comparison — few
    /// behaviours over many valuations, the class-compression case.
    fn wide_threshold(width: u8, threshold: u64) -> Design {
        let mut b = DesignBuilder::new("w");
        let data = b.input("data", width);
        let seen = b.reg("seen", 1, Some(0));
        let de = b.sig(data);
        let t = b.lit(threshold, width);
        let hit = b.lt(t, de);
        let se = b.sig(seen);
        let nxt = b.or(se, hit);
        b.set_next(seen, nxt);
        b.build().unwrap()
    }

    #[test]
    fn symbolic_graph_matches_explicit_on_the_counter() {
        let d = counter();
        let count = d.signal_by_name("count").unwrap();
        let en = d.signal_by_name("en").unwrap();
        let mut problem = Problem::new(&d);
        problem.assumptions.push(Directive::assume(
            "en_low",
            Prop::Never(SvaBool::atom(RtlAtom::is_true(en))),
        ));
        for target in [1u64, 8] {
            let prop = Prop::Never(SvaBool::atom(RtlAtom::eq(count, target)));
            let explicit = StateGraph::new(&problem, [&prop]);
            let symbolic = SymbolicGraph::new(&problem, [&prop]);
            for config in [VerifyConfig::quick(), VerifyConfig::hybrid()] {
                let a = verify_property_on_graph(&explicit, &prop, &config);
                let b = verify_property_on_graph(&symbolic, &prop, &config);
                assert_eq!(format!("{a:?}"), format!("{b:?}"), "target {target}");
            }
        }
    }

    #[test]
    fn warm_build_completes_and_matches_explicit_structure() {
        let d = counter();
        let count = d.signal_by_name("count").unwrap();
        let problem = Problem::new(&d);
        let prop = Prop::Never(SvaBool::atom(RtlAtom::eq(count, 8)));
        let explicit = StateGraph::build(&problem, [&prop], Engine::full(100_000));
        let symbolic = SymbolicGraph::build(&problem, [&prop], Engine::full(100_000));
        let (e, s) = (explicit.stats(), symbolic.stats());
        assert!(s.complete, "{s:?}");
        assert_eq!(s.nodes, e.nodes);
        assert_eq!(s.edges, e.edges, "multiplicities sum to valuations");
        assert_eq!(s.pruned_edges, e.pruned_edges);
    }

    #[test]
    fn classes_compress_wide_inputs() {
        // 10 input bits = 1024 valuations per row, but only two
        // behaviours (data > threshold or not): two classes.
        let d = wide_threshold(10, 700);
        let seen = d.signal_by_name("seen").unwrap();
        let problem = Problem::new(&d);
        let prop = Prop::Never(SvaBool::atom(RtlAtom::is_true(seen)));
        let graph = SymbolicGraph::new(&problem, [&prop]);
        let backend: &dyn Backend = &graph;
        assert_eq!(backend.num_edge_classes(0), 2);
        let mut bits = Vec::new();
        let low = backend.edge_class(0, 0, &mut bits);
        let high = backend.edge_class(0, 1, &mut bits);
        assert_eq!(low.multiplicity + high.multiplicity, 1024);
        assert_eq!(low.multiplicity, 701, "data in 0..=700 stays below");
        assert_eq!(backend.class_input(0, 0), vec![0]);
        assert_eq!(backend.class_input(0, 1), vec![701]);
        // The falsifying walk must find the counterexample at data=701,
        // the lowest violating valuation.
        let verdict = verify_property_on_graph(&graph, &prop, &VerifyConfig::quick());
        let crate::engine::PropertyVerdict::Falsified { trace, .. } = verdict else {
            panic!("seen is reachable");
        };
        assert_eq!(
            trace.value_at(&d, d.signal_by_name("data").unwrap(), 0),
            701
        );
    }

    #[test]
    fn cover_search_over_wide_inputs() {
        let d = wide_threshold(12, 4000);
        let seen = d.signal_by_name("seen").unwrap();
        let mut problem = Problem::new(&d);
        problem.cover = Some(SvaBool::atom(RtlAtom::is_true(seen)));
        let graph = SymbolicGraph::new(&problem, []);
        let verdict = check_cover_on_graph(&graph, Engine::full(100_000));
        assert!(
            matches!(verdict, crate::explore::CoverVerdict::Covered(..)),
            "{verdict:?}"
        );
    }

    #[test]
    fn pruned_classes_and_prefix_counts() {
        let d = counter();
        let en = d.signal_by_name("en").unwrap();
        let mut problem = Problem::new(&d);
        problem.assumptions.push(Directive::assume(
            "en_low",
            Prop::Never(SvaBool::atom(RtlAtom::is_true(en))),
        ));
        let graph = SymbolicGraph::build(&problem, [], Engine::full(100_000));
        let s = graph.stats();
        assert!(s.complete);
        assert_eq!(s.nodes, 2, "same product as the explicit graph test");
        assert_eq!(s.pruned_edges, 2);
        assert_eq!(s.edges, 2);
        let backend: &dyn Backend = &graph;
        // Row 0: class 0 is en=0 (admissible), class 1 is en=1 (pruned).
        let mut bits = Vec::new();
        assert_ne!(backend.edge_class(0, 0, &mut bits).dest, PRUNED);
        assert_eq!(backend.edge_class(0, 1, &mut bits).dest, PRUNED);
        assert_eq!(backend.class_prefix(0, 1), (1, 0));
    }

    #[test]
    #[should_panic(expected = "not in the symbolic graph's atom table")]
    fn mapping_a_foreign_atom_panics() {
        let d = counter();
        let count = d.signal_by_name("count").unwrap();
        let problem = Problem::new(&d);
        let graph = SymbolicGraph::new(&problem, []);
        let _ = graph.map_prop(&Prop::Never(SvaBool::atom(RtlAtom::eq(count, 3))));
    }
}

//! The product-state exploration core.
//!
//! Since the engine split, exploration is factored in two:
//!
//! * [`crate::graph::StateGraph`] materialises the shared part of a test's
//!   product space — design states × assumption-monitor states, with
//!   per-edge atom valuations — once per [`Problem`].
//! * `Walk` (internal) layers one assertion monitor's NFA over the cached
//!   graph. [`verify_property`] and [`check_cover`] are thin drivers around
//!   walks; their budget semantics ([`Engine`] limits, bounded-vs-complete
//!   verdicts, [`ExploreStats`]) are bit-for-bit those of the pre-split
//!   monolithic exploration.
//!
//! The monolithic exploration is retained at the bottom of this file as
//! [`verify_property_reference`]/[`check_cover_reference`] — a deliberately
//! independent implementation the differential tests compare against.

use std::collections::HashMap;

use rtlcheck_obs::{attrs, span, Collector, NullCollector};
use rtlcheck_rtl::sim::{Simulator, State};
use rtlcheck_rtl::waveform::Trace;
use rtlcheck_sva::{Monitor, MonitorState, Prop, SvaBool};

use crate::atom::{eval_bool, RtlAtom};
use crate::backend::Backend;
use crate::engine::{Engine, EngineKind, PropertyVerdict, VerifyConfig};
use crate::graph::{input_valuations, StateGraph, PRUNED};
use crate::problem::Problem;

/// Statistics from one exploration run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExploreStats {
    /// Distinct product states discovered.
    pub states: usize,
    /// Transitions taken (admissible ones).
    pub transitions: u64,
    /// Transitions discarded because an assumption failed.
    pub pruned_by_assumptions: u64,
    /// BFS layers (clock cycles) fully expanded.
    pub depth_completed: u32,
}

impl ExploreStats {
    /// Whether the assumption set admitted no execution at all — every
    /// first-cycle transition was pruned. Such a run "proves" properties
    /// only vacuously (JasperGold reports conflicting assumptions).
    pub fn vacuous(&self) -> bool {
        self.transitions == 0
    }
}

/// Verdict of a covering-trace search (§4.1).
#[derive(Debug, Clone)]
pub enum CoverVerdict {
    /// An admissible trace reaching the cover condition. For a final-value
    /// assumption's antecedent this is an execution of the complete litmus
    /// outcome — on a forbidden outcome, a bug witness.
    Covered(Trace, ExploreStats),
    /// The cover condition is unreachable under the assumptions: the
    /// litmus test is verified without checking any assertion.
    Unreachable(ExploreStats),
    /// The exploration budget ran out first.
    Unknown(ExploreStats),
}

impl CoverVerdict {
    /// The run's statistics.
    pub fn stats(&self) -> ExploreStats {
        match self {
            CoverVerdict::Covered(_, s)
            | CoverVerdict::Unreachable(s)
            | CoverVerdict::Unknown(s) => *s,
        }
    }
}

/// Internal outcome of one engine run.
enum RunOutcome {
    Exhausted,
    BudgetHit,
    AssertFailed(Trace),
    Covered(Trace),
}

#[derive(Clone, Copy)]
enum Step {
    Pruned,
    Known,
    New(usize),
    AssertFailed,
    Covered,
}

/// Clamps a symbolic edge-class multiplicity into the `u64` statistics
/// domain. Saturation is unreachable below 64 free input bits per cycle,
/// far past anything a litmus harness generates.
fn clamp_count(v: u128) -> u64 {
    u64::try_from(v).unwrap_or(u64::MAX)
}

/// Builds the shared state graph for a problem and the properties that will
/// be checked against it, eagerly warmed under `engine`'s budget. This is
/// the "build once per test" entry point; hand the result to
/// [`verify_property_on_graph`] / [`check_cover_on_graph`].
pub fn build_graph<'p, 'd, 'a, I>(
    problem: &'p Problem<'d>,
    props: I,
    engine: Engine,
) -> StateGraph<'p, 'd>
where
    I: IntoIterator<Item = &'a Prop<RtlAtom>>,
{
    StateGraph::build(problem, props, engine)
}

// ---------------------------------------------------------------------------
// The graph walk: one assertion (or cover) NFA over the shared graph.
// ---------------------------------------------------------------------------

/// One node of a walk: a graph node paired with the assertion monitor's
/// state at that node.
struct WalkNode {
    graph_node: u32,
    monitor: Option<MonitorState>,
    /// `(parent walk-node index, edge-class index of the edge into this
    /// node)`.
    parent: Option<(usize, usize)>,
}

/// A breadth-first walk of one monitor over a [`Backend`] graph. Mirrors
/// the reference exploration exactly: same frontier order, same per-input
/// budget checks, same statistics — the only difference is that design
/// stepping and assumption pruning are served by the graph. Over the
/// symbolic backend each step covers a whole edge class; statistics are
/// weighted by class multiplicity, and a walk that stops mid-row settles
/// them back to per-valuation counts via [`Backend::class_prefix`], so the
/// observable behaviour is identical per valuation (see the `backend`
/// module docs).
struct Walk<'g> {
    graph: &'g dyn Backend,
    /// The assertion monitor (compiled over atom-table indices), if any.
    monitor: Option<Monitor<usize>>,
    /// The cover condition (over atom-table indices), if searched for.
    cover: Option<SvaBool<usize>>,
    nodes: Vec<WalkNode>,
    index: HashMap<(u32, Option<MonitorState>), usize>,
    /// Scratch bitset for the edge currently being examined.
    bits: Vec<u64>,
    stats: ExploreStats,
    /// Transitions/prunes contributed by the row currently being iterated —
    /// subtracted again when the walk stops mid-row (see
    /// [`Walk::settle_partial_row`]).
    row_transitions: u64,
    row_pruned: u64,
}

impl<'g> Walk<'g> {
    fn new(graph: &'g dyn Backend, assertion: Option<&Prop<RtlAtom>>, check_cover: bool) -> Self {
        let monitor = assertion.map(|p| Monitor::new(&graph.map_prop(p)));
        let cover = if check_cover {
            graph.problem().cover.as_ref().map(|c| graph.map_bool(c))
        } else {
            None
        };
        Walk {
            graph,
            monitor,
            cover,
            nodes: Vec::new(),
            index: HashMap::new(),
            bits: Vec::new(),
            stats: ExploreStats::default(),
            row_transitions: 0,
            row_pruned: 0,
        }
    }

    /// Breadth-first walk until a verdict or the budget is hit.
    fn run(&mut self, engine: Engine) -> RunOutcome {
        let init_monitor = self.monitor.as_ref().map(|m| m.state().clone());
        self.nodes.push(WalkNode {
            graph_node: 0,
            monitor: init_monitor.clone(),
            parent: None,
        });
        self.index.insert((0, init_monitor), 0);
        self.stats.states = 1;

        let mut frontier: Vec<usize> = vec![0];
        let mut depth: u32 = 0;
        loop {
            if frontier.is_empty() {
                self.stats.depth_completed = depth;
                return RunOutcome::Exhausted;
            }
            if let Some(max_depth) = engine.max_depth {
                if depth >= max_depth {
                    self.stats.depth_completed = depth;
                    return RunOutcome::BudgetHit;
                }
            }
            let mut next_frontier = Vec::new();
            for &node_idx in &frontier {
                let graph_node = self.nodes[node_idx].graph_node;
                let num_classes = self.graph.num_edge_classes(graph_node);
                self.row_transitions = 0;
                self.row_pruned = 0;
                for class in 0..num_classes {
                    let step = self.transition(node_idx, class);
                    match step {
                        Step::Pruned => {}
                        Step::Known => {}
                        Step::New(idx) => next_frontier.push(idx),
                        Step::AssertFailed => {
                            self.settle_partial_row(graph_node, class, false);
                            let trace = self.rebuild_trace(node_idx, class);
                            return RunOutcome::AssertFailed(trace);
                        }
                        Step::Covered => {
                            self.settle_partial_row(graph_node, class, false);
                            let trace = self.rebuild_trace(node_idx, class);
                            return RunOutcome::Covered(trace);
                        }
                    }
                    if self.stats.states > engine.max_states {
                        self.settle_partial_row(graph_node, class, matches!(step, Step::Pruned));
                        self.stats.depth_completed = depth;
                        return RunOutcome::BudgetHit;
                    }
                }
            }
            depth += 1;
            frontier = next_frontier;
        }
    }

    /// Rewrites the current row's statistics contribution after stopping at
    /// `class` mid-row: class-multiplicity counts are replaced by the exact
    /// per-valuation counts up to and including the stopping class's
    /// *lowest-index* valuation — which is the valuation the explicit
    /// engine would have stopped at (a verdict or a new state always occurs
    /// first at the lowest input index exhibiting it). For the explicit
    /// backend this is the identity.
    fn settle_partial_row(&mut self, graph_node: u32, class: usize, stopped_on_pruned: bool) {
        let (admissible, pruned) = self.graph.class_prefix(graph_node, class);
        let mut transitions = clamp_count(admissible);
        let mut pruned = clamp_count(pruned);
        // The stopping class itself contributes exactly its lowest member.
        if stopped_on_pruned {
            pruned = pruned.saturating_add(1);
        } else {
            transitions = transitions.saturating_add(1);
        }
        self.stats.transitions = self
            .stats
            .transitions
            .saturating_sub(self.row_transitions)
            .saturating_add(transitions);
        self.stats.pruned_by_assumptions = self
            .stats
            .pruned_by_assumptions
            .saturating_sub(self.row_pruned)
            .saturating_add(pruned);
    }

    fn transition(&mut self, node_idx: usize, class: usize) -> Step {
        let graph_node = self.nodes[node_idx].graph_node;
        let edge = self.graph.edge_class(graph_node, class, &mut self.bits);
        let count = clamp_count(edge.multiplicity);
        if edge.dest == PRUNED {
            // The trace leaves the assumed envelope this cycle: discard it,
            // including any simultaneous assertion failure (there is no
            // admissible execution extending this prefix).
            self.stats.pruned_by_assumptions =
                self.stats.pruned_by_assumptions.saturating_add(count);
            self.row_pruned = self.row_pruned.saturating_add(count);
            return Step::Pruned;
        }
        self.stats.transitions = self.stats.transitions.saturating_add(count);
        self.row_transitions = self.row_transitions.saturating_add(count);
        let dest = edge.dest;

        let bits = &self.bits;
        let env = |i: &usize| bits[i / 64] & (1 << (i % 64)) != 0;
        let next_monitor = match &mut self.monitor {
            Some(m) => {
                m.set_state(
                    self.nodes[node_idx]
                        .monitor
                        .clone()
                        .expect("walk nodes carry a monitor state when an assertion is present"),
                );
                m.step(&env);
                if m.failed() {
                    return Step::AssertFailed;
                }
                Some(m.state().clone())
            }
            None => None,
        };
        if let Some(cover) = &self.cover {
            if cover.eval(&env) {
                return Step::Covered;
            }
        }
        let key = (dest, next_monitor);
        if self.index.contains_key(&key) {
            return Step::Known;
        }
        let idx = self.nodes.len();
        self.nodes.push(WalkNode {
            graph_node: dest,
            monitor: key.1.clone(),
            parent: Some((node_idx, class)),
        });
        self.index.insert(key, idx);
        self.stats.states += 1;
        Step::New(idx)
    }

    /// Reports one finished engine run to a collector: the exploration
    /// counters under `engine.<scope>.*` (so the profile view can relate
    /// work done to the engine's budget) and the assertion monitor's NFA
    /// metrics. (Assumption-monitor metrics live on the shared graph; see
    /// [`StateGraph::report_to`].)
    fn report(&self, collector: &dyn Collector, scope: &str, engine: Engine) {
        let s = &self.stats;
        collector.counter(&format!("engine.{scope}.states"), s.states as u64, attrs![]);
        collector.counter(
            &format!("engine.{scope}.transitions"),
            s.transitions,
            attrs![],
        );
        collector.counter(
            &format!("engine.{scope}.pruned"),
            s.pruned_by_assumptions,
            attrs![],
        );
        collector.counter(
            &format!("engine.{scope}.budget_states"),
            engine.max_states as u64,
            attrs![],
        );
        if let Some(m) = &self.monitor {
            m.report_to(collector, "assertion");
        }
    }

    /// Rebuilds the trace ending with the cycle `(node, final_class)`. Edge
    /// labels are each class's lowest-index valuation — exactly the inputs
    /// the explicit engine's trace would carry.
    fn rebuild_trace(&self, node_idx: usize, final_class: usize) -> Trace {
        let mut rev: Vec<(State, Vec<u64>)> = vec![(
            self.graph.node_state(self.nodes[node_idx].graph_node),
            self.graph
                .class_input(self.nodes[node_idx].graph_node, final_class),
        )];
        let mut cur = node_idx;
        while let Some((parent, class)) = self.nodes[cur].parent {
            let parent_graph_node = self.nodes[parent].graph_node;
            rev.push((
                self.graph.node_state(parent_graph_node),
                self.graph.class_input(parent_graph_node, class),
            ));
            cur = parent;
        }
        let mut trace = Trace::new();
        for (state, input) in rev.into_iter().rev() {
            trace.push(state, input);
        }
        trace
    }
}

// ---------------------------------------------------------------------------
// Public verification API (graph-walk engine).
// ---------------------------------------------------------------------------

/// Verifies one assertion against the problem's design and assumptions,
/// running the configuration's engines in order (§6.1, Table 1).
///
/// Builds a throwaway lazy [`StateGraph`] internally; when checking several
/// properties of one problem, build the graph once with [`build_graph`] and
/// use [`verify_property_on_graph`] instead.
///
/// # Panics
///
/// Panics if a free-init register is not pinned by `problem.init_pins`, or
/// the design's primary-input space is too large to enumerate.
pub fn verify_property(
    problem: &Problem<'_>,
    assertion: &Prop<RtlAtom>,
    config: &VerifyConfig,
) -> PropertyVerdict {
    verify_property_observed(problem, assertion, config, "", &NullCollector)
}

/// [`verify_property`] with instrumentation; see
/// [`verify_property_on_graph_observed`] for the span/counter contract.
pub fn verify_property_observed(
    problem: &Problem<'_>,
    assertion: &Prop<RtlAtom>,
    config: &VerifyConfig,
    property: &str,
    collector: &dyn Collector,
) -> PropertyVerdict {
    let graph = StateGraph::new(problem, [assertion]);
    verify_property_on_graph_observed(&graph, assertion, config, property, collector)
}

/// Verifies one assertion as an NFA walk over a prebuilt [`Backend`] graph
/// (explicit [`StateGraph`] or symbolic
/// [`crate::symbolic::SymbolicGraph`]).
///
/// # Panics
///
/// Panics if the assertion mentions an atom the graph was not built with.
pub fn verify_property_on_graph(
    graph: &dyn Backend,
    assertion: &Prop<RtlAtom>,
    config: &VerifyConfig,
) -> PropertyVerdict {
    verify_property_on_graph_observed(graph, assertion, config, "", &NullCollector)
}

/// [`verify_property_on_graph`] with instrumentation: each engine attempt is
/// wrapped in an `engine_run` span, its [`ExploreStats`] are reported as
/// `engine.<kind>.*` counters, and hitting a budget emits a
/// `budget_exhausted` event. `property` labels the stream (use the
/// assertion's directive name).
pub fn verify_property_on_graph_observed(
    graph: &dyn Backend,
    assertion: &Prop<RtlAtom>,
    config: &VerifyConfig,
    property: &str,
    collector: &dyn Collector,
) -> PropertyVerdict {
    let mut best_bound: Option<(u32, ExploreStats)> = None;
    let mut record_bound = |depth: u32, stats: ExploreStats| {
        if best_bound.is_none_or(|(d, _)| depth > d) {
            best_bound = Some((depth, stats));
        }
    };
    for engine in &config.engines {
        let scope = engine_scope(engine.kind);
        let mut g = span(
            collector,
            "engine_run",
            attrs![
                "property" => property,
                "engine" => scope,
                "max_states" => engine.max_states,
            ],
        );
        let mut walk = Walk::new(graph, Some(assertion), false);
        let outcome = walk.run(*engine);
        walk.report(collector, scope, *engine);
        g.attr("states", walk.stats.states);
        g.attr("transitions", walk.stats.transitions);
        g.attr("outcome", run_outcome_label(&outcome));
        match outcome {
            RunOutcome::Exhausted => match engine.kind {
                EngineKind::Full => return PropertyVerdict::Proven { stats: walk.stats },
                // A bounded (BMC-style) engine cannot detect exhaustion: it
                // only ever certifies its configured cycle bound (which the
                // exhausted exploration has in fact verified).
                EngineKind::Bounded => {
                    let depth = engine.max_depth.expect("bounded engines carry a depth");
                    record_bound(depth, walk.stats);
                }
            },
            RunOutcome::BudgetHit => {
                collector.event(
                    "budget_exhausted",
                    attrs![
                        "property" => property,
                        "engine" => scope,
                        "states" => walk.stats.states,
                        "depth_completed" => walk.stats.depth_completed,
                        "max_states" => engine.max_states,
                    ],
                );
                record_bound(walk.stats.depth_completed, walk.stats);
            }
            RunOutcome::AssertFailed(trace) => {
                return PropertyVerdict::Falsified {
                    trace: Box::new(trace),
                    stats: walk.stats,
                };
            }
            RunOutcome::Covered(_) => unreachable!("cover is disabled in property runs"),
        }
    }
    let (depth, stats) = best_bound.expect("configurations have at least one engine");
    PropertyVerdict::Bounded { depth, stats }
}

fn engine_scope(kind: EngineKind) -> &'static str {
    match kind {
        EngineKind::Bounded => "bounded",
        EngineKind::Full => "full",
    }
}

fn run_outcome_label(outcome: &RunOutcome) -> &'static str {
    match outcome {
        RunOutcome::Exhausted => "exhausted",
        RunOutcome::BudgetHit => "budget_hit",
        RunOutcome::AssertFailed(_) => "assert_failed",
        RunOutcome::Covered(_) => "covered",
    }
}

/// Searches for a covering trace of the problem's cover condition under its
/// assumptions (§4.1), using the given engine budget.
///
/// Builds a throwaway lazy [`StateGraph`] internally; prefer
/// [`check_cover_on_graph`] when a graph already exists for the problem.
///
/// # Panics
///
/// Panics if the problem has no cover condition, a free-init register is
/// unpinned, or the input space is too large.
pub fn check_cover(problem: &Problem<'_>, engine: Engine) -> CoverVerdict {
    check_cover_observed(problem, engine, &NullCollector)
}

/// [`check_cover`] with instrumentation; see
/// [`check_cover_on_graph_observed`] for the span/event contract.
pub fn check_cover_observed(
    problem: &Problem<'_>,
    engine: Engine,
    collector: &dyn Collector,
) -> CoverVerdict {
    let graph = StateGraph::new(problem, []);
    check_cover_on_graph_observed(&graph, engine, collector)
}

/// Searches for a covering trace as a walk over a prebuilt [`Backend`]
/// graph.
///
/// # Panics
///
/// Panics if the graph's problem has no cover condition.
pub fn check_cover_on_graph(graph: &dyn Backend, engine: Engine) -> CoverVerdict {
    check_cover_on_graph_observed(graph, engine, &NullCollector)
}

/// [`check_cover_on_graph`] with instrumentation: the search runs inside an
/// `engine_run` span (engine kind `"cover"`), reports `engine.cover.*`
/// counters, and emits one of the `cover.covered` / `cover.unreachable` /
/// `cover.unknown` events — plus `budget_exhausted` when the budget ran out
/// and `conflicting_assumptions` when no execution was admissible at all.
pub fn check_cover_on_graph_observed(
    graph: &dyn Backend,
    engine: Engine,
    collector: &dyn Collector,
) -> CoverVerdict {
    assert!(
        graph.problem().cover.is_some(),
        "check_cover requires a cover condition"
    );
    let mut g = span(
        collector,
        "engine_run",
        attrs!["engine" => "cover", "max_states" => engine.max_states],
    );
    let mut walk = Walk::new(graph, None, true);
    let outcome = walk.run(engine);
    walk.report(collector, "cover", engine);
    g.attr("states", walk.stats.states);
    g.attr("transitions", walk.stats.transitions);
    g.attr("outcome", run_outcome_label(&outcome));
    if walk.stats.vacuous() {
        collector.event("conflicting_assumptions", attrs!["engine" => "cover"]);
    }
    let verdict = match outcome {
        RunOutcome::Exhausted => {
            collector.event("cover.unreachable", attrs!["states" => walk.stats.states]);
            CoverVerdict::Unreachable(walk.stats)
        }
        RunOutcome::BudgetHit => {
            collector.event(
                "budget_exhausted",
                attrs![
                    "engine" => "cover",
                    "states" => walk.stats.states,
                    "depth_completed" => walk.stats.depth_completed,
                    "max_states" => engine.max_states,
                ],
            );
            collector.event("cover.unknown", attrs!["states" => walk.stats.states]);
            CoverVerdict::Unknown(walk.stats)
        }
        RunOutcome::Covered(trace) => {
            collector.event("cover.covered", attrs!["trace_len" => trace.len()]);
            CoverVerdict::Covered(trace, walk.stats)
        }
        RunOutcome::AssertFailed(_) => unreachable!("no assertion in cover runs"),
    };
    g.finish();
    verdict
}

/// Convenience: run a full-proof exploration of the design with no
/// assertion, returning reachable-state statistics. Useful for sizing
/// budgets and in tests.
pub fn reachable_stats(problem: &Problem<'_>, engine: Engine) -> ExploreStats {
    let graph = StateGraph::new(problem, []);
    let mut walk = Walk::new(&graph, None, false);
    let _ = walk.run(engine);
    walk.stats
}

// ---------------------------------------------------------------------------
// Reference implementation (pre-split monolithic exploration).
//
// Kept verbatim as the oracle for the differential test suite: it shares no
// exploration machinery with the graph walk above (only the input-valuation
// enumeration, whose behaviour is locked down by its own unit tests).
// ---------------------------------------------------------------------------

/// One node of the reference product-state graph.
struct RefNode {
    state: State,
    monitors: Vec<MonitorState>,
    /// `(parent index, inputs used on the edge into this node)`.
    parent: Option<(usize, Vec<u64>)>,
}

struct Exploration<'p, 'd> {
    problem: &'p Problem<'d>,
    sim: Simulator<'d>,
    /// Assumption monitors first, then (optionally) the assertion monitor.
    monitors: Vec<Monitor<RtlAtom>>,
    /// Index of the assertion monitor in `monitors`, if present.
    assertion: Option<usize>,
    check_cover: bool,
    nodes: Vec<RefNode>,
    index: HashMap<(State, Vec<MonitorState>), usize>,
    stats: ExploreStats,
}

impl<'p, 'd> Exploration<'p, 'd> {
    fn new(problem: &'p Problem<'d>, assertion: Option<&Prop<RtlAtom>>, check_cover: bool) -> Self {
        let mut monitors: Vec<Monitor<RtlAtom>> = problem
            .assumptions
            .iter()
            .map(|d| Monitor::new(&d.prop))
            .collect();
        let assertion_idx = assertion.map(|prop| {
            monitors.push(Monitor::new(prop));
            monitors.len() - 1
        });
        Exploration {
            problem,
            sim: Simulator::new(problem.design),
            monitors,
            assertion: assertion_idx,
            check_cover,
            nodes: Vec::new(),
            index: HashMap::new(),
            stats: ExploreStats::default(),
        }
    }

    /// Breadth-first exploration until a verdict or the budget is hit.
    fn run(&mut self, engine: Engine) -> RunOutcome {
        let initial = self
            .sim
            .initial_state_with(&self.problem.init_pins)
            .expect("all free-init registers must be pinned by init assumptions");
        let init_monitors: Vec<MonitorState> =
            self.monitors.iter().map(|m| m.state().clone()).collect();
        self.nodes.push(RefNode {
            state: initial.clone(),
            monitors: init_monitors.clone(),
            parent: None,
        });
        self.index.insert((initial, init_monitors), 0);
        self.stats.states = 1;

        let inputs = input_valuations(self.problem.design);
        let mut frontier: Vec<usize> = vec![0];
        let mut depth: u32 = 0;
        loop {
            if frontier.is_empty() {
                self.stats.depth_completed = depth;
                return RunOutcome::Exhausted;
            }
            if let Some(max_depth) = engine.max_depth {
                if depth >= max_depth {
                    self.stats.depth_completed = depth;
                    return RunOutcome::BudgetHit;
                }
            }
            let mut next_frontier = Vec::new();
            for &node_idx in &frontier {
                for input in &inputs {
                    match self.transition(node_idx, input) {
                        Step::Pruned => {}
                        Step::Known => {}
                        Step::New(idx) => next_frontier.push(idx),
                        Step::AssertFailed => {
                            let trace = self.rebuild_trace(node_idx, input);
                            return RunOutcome::AssertFailed(trace);
                        }
                        Step::Covered => {
                            let trace = self.rebuild_trace(node_idx, input);
                            return RunOutcome::Covered(trace);
                        }
                    }
                    if self.stats.states > engine.max_states {
                        self.stats.depth_completed = depth;
                        return RunOutcome::BudgetHit;
                    }
                }
            }
            depth += 1;
            frontier = next_frontier;
        }
    }

    fn transition(&mut self, node_idx: usize, input: &[u64]) -> Step {
        let (state, monitor_states) = {
            let n = &self.nodes[node_idx];
            (n.state.clone(), n.monitors.clone())
        };
        // Advance every monitor through this cycle's valuation.
        let sim = &self.sim;
        let env = move |a: &RtlAtom, st: &State| sim.peek(st, input, a.sig) == a.value;
        let mut next_monitors = Vec::with_capacity(self.monitors.len());
        let mut assumption_failed = false;
        let mut assertion_failed = false;
        for (i, m) in self.monitors.iter_mut().enumerate() {
            m.set_state(monitor_states[i].clone());
            m.step(&|a| env(a, &state));
            if m.failed() {
                if Some(i) == self.assertion {
                    assertion_failed = true;
                } else {
                    assumption_failed = true;
                }
            }
            next_monitors.push(m.state().clone());
        }
        if assumption_failed {
            // The trace leaves the assumed envelope this cycle: discard it,
            // including any simultaneous assertion failure (there is no
            // admissible execution extending this prefix).
            self.stats.pruned_by_assumptions += 1;
            return Step::Pruned;
        }
        self.stats.transitions += 1;
        if assertion_failed {
            return Step::AssertFailed;
        }
        if self.check_cover {
            if let Some(cover) = &self.problem.cover {
                if eval_bool(&self.sim, &state, input, cover) {
                    return Step::Covered;
                }
            }
        }
        let next_state = self.sim.step(&state, input);
        let key = (next_state.clone(), next_monitors.clone());
        if let Some(&_existing) = self.index.get(&key) {
            return Step::Known;
        }
        let idx = self.nodes.len();
        self.nodes.push(RefNode {
            state: next_state,
            monitors: next_monitors,
            parent: Some((node_idx, input.to_vec())),
        });
        self.index.insert(key, idx);
        self.stats.states += 1;
        Step::New(idx)
    }

    /// Rebuilds the trace ending with the cycle `(node, final_input)`.
    fn rebuild_trace(&self, node_idx: usize, final_input: &[u64]) -> Trace {
        let mut rev: Vec<(State, Vec<u64>)> =
            vec![(self.nodes[node_idx].state.clone(), final_input.to_vec())];
        let mut cur = node_idx;
        while let Some((parent, input)) = &self.nodes[cur].parent {
            rev.push((self.nodes[*parent].state.clone(), input.clone()));
            cur = *parent;
        }
        let mut trace = Trace::new();
        for (state, input) in rev.into_iter().rev() {
            trace.push(state, input);
        }
        trace
    }
}

/// Reference (pre-split) implementation of [`verify_property`]: re-simulates
/// the full product per engine run. Exists only as the oracle for the
/// differential tests — not part of the supported API.
#[doc(hidden)]
pub fn verify_property_reference(
    problem: &Problem<'_>,
    assertion: &Prop<RtlAtom>,
    config: &VerifyConfig,
) -> PropertyVerdict {
    let mut best_bound: Option<(u32, ExploreStats)> = None;
    let mut record_bound = |depth: u32, stats: ExploreStats| {
        if best_bound.is_none_or(|(d, _)| depth > d) {
            best_bound = Some((depth, stats));
        }
    };
    for engine in &config.engines {
        let mut exp = Exploration::new(problem, Some(assertion), false);
        match exp.run(*engine) {
            RunOutcome::Exhausted => match engine.kind {
                EngineKind::Full => return PropertyVerdict::Proven { stats: exp.stats },
                EngineKind::Bounded => {
                    let depth = engine.max_depth.expect("bounded engines carry a depth");
                    record_bound(depth, exp.stats);
                }
            },
            RunOutcome::BudgetHit => record_bound(exp.stats.depth_completed, exp.stats),
            RunOutcome::AssertFailed(trace) => {
                return PropertyVerdict::Falsified {
                    trace: Box::new(trace),
                    stats: exp.stats,
                };
            }
            RunOutcome::Covered(_) => unreachable!("cover is disabled in property runs"),
        }
    }
    let (depth, stats) = best_bound.expect("configurations have at least one engine");
    PropertyVerdict::Bounded { depth, stats }
}

/// Reference (pre-split) implementation of [`check_cover`]; see
/// [`verify_property_reference`].
#[doc(hidden)]
pub fn check_cover_reference(problem: &Problem<'_>, engine: Engine) -> CoverVerdict {
    assert!(
        problem.cover.is_some(),
        "check_cover requires a cover condition"
    );
    let mut exp = Exploration::new(problem, None, true);
    match exp.run(engine) {
        RunOutcome::Exhausted => CoverVerdict::Unreachable(exp.stats),
        RunOutcome::BudgetHit => CoverVerdict::Unknown(exp.stats),
        RunOutcome::Covered(trace) => CoverVerdict::Covered(trace, exp.stats),
        RunOutcome::AssertFailed(_) => unreachable!("no assertion in cover runs"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atom::RtlAtom;
    use crate::problem::Directive;
    use rtlcheck_rtl::DesignBuilder;
    use rtlcheck_sva::{Prop, Seq, SvaBool};

    /// A 3-bit counter with a 1-bit "enable" free input; includes a `first`
    /// register like the RTLCheck harness.
    fn counter() -> (
        rtlcheck_rtl::Design,
        rtlcheck_rtl::SignalId,
        rtlcheck_rtl::SignalId,
    ) {
        let mut b = DesignBuilder::new("c");
        let en = b.input("en", 1);
        let first = b.reg("first", 1, Some(1));
        let z = b.lit(0, 1);
        b.set_next(first, z);
        let count = b.reg("count", 3, Some(0));
        let one = b.lit(1, 3);
        let ce = b.sig(count);
        let sum = b.add(ce, one);
        let ene = b.sig(en);
        let hold = b.sig(count);
        let nxt = b.mux(ene, sum, hold);
        b.set_next(count, nxt);
        let d = b.build().unwrap();
        let count = d.signal_by_name("count").unwrap();
        let first = d.signal_by_name("first").unwrap();
        (d, count, first)
    }

    fn guarded(first: rtlcheck_rtl::SignalId, p: Prop<RtlAtom>) -> Prop<RtlAtom> {
        Prop::implies(SvaBool::atom(RtlAtom::is_true(first)), p)
    }

    #[test]
    fn proves_reachable_invariant() {
        let (d, count, first) = counter();
        let problem = Problem::new(&d);
        // first |-> never (count == 7 is fine; counters do reach 7, so
        // instead prove count != 8 which is trivially true at 3 bits —
        // expressed as Never(count == 8) it can never fire).
        let prop = guarded(first, Prop::Never(SvaBool::atom(RtlAtom::eq(count, 8))));
        let verdict = verify_property(&problem, &prop, &VerifyConfig::quick());
        assert!(
            matches!(verdict, PropertyVerdict::Proven { .. }),
            "{verdict:?}"
        );
    }

    #[test]
    fn finds_counterexample_with_shortest_trace() {
        let (d, count, first) = counter();
        let problem = Problem::new(&d);
        // count never reaches 2 — false: reachable in 3 cycles (en=1 twice;
        // the monitor sees count==2 in cycle 2).
        let prop = guarded(first, Prop::Never(SvaBool::atom(RtlAtom::eq(count, 2))));
        let verdict = verify_property(&problem, &prop, &VerifyConfig::quick());
        match verdict {
            PropertyVerdict::Falsified { trace, .. } => {
                assert_eq!(trace.len(), 3, "BFS yields a shortest counterexample");
                // Replay: the final cycle has count == 2.
                assert_eq!(trace.value_at(&d, count, 2), 2);
            }
            other => panic!("expected counterexample, got {other:?}"),
        }
    }

    #[test]
    fn assumptions_prune_executions() {
        let (d, count, first) = counter();
        let mut problem = Problem::new(&d);
        let en = d.signal_by_name("en").unwrap();
        // Assume the enable is never raised: the counter stays at 0.
        problem.assumptions.push(Directive::assume(
            "en_low",
            Prop::Never(SvaBool::atom(RtlAtom::is_true(en))),
        ));
        let prop = guarded(first, Prop::Never(SvaBool::atom(RtlAtom::eq(count, 1))));
        let verdict = verify_property(&problem, &prop, &VerifyConfig::quick());
        match verdict {
            PropertyVerdict::Proven { stats } => {
                assert!(stats.pruned_by_assumptions > 0);
                assert!(!stats.vacuous());
            }
            other => panic!("expected proof under assumption, got {other:?}"),
        }
    }

    #[test]
    fn contradictory_assumptions_are_flagged_vacuous() {
        let (d, count, first) = counter();
        let mut problem = Problem::new(&d);
        // Assume count == 5 at the first cycle — contradicts the reset
        // value 0, so no admissible execution exists.
        problem.assumptions.push(Directive::assume(
            "bogus_init",
            Prop::implies(
                SvaBool::atom(RtlAtom::is_true(first)),
                Prop::seq(Seq::boolean(SvaBool::atom(RtlAtom::eq(count, 5)))),
            ),
        ));
        let prop = guarded(first, Prop::Never(SvaBool::atom(RtlAtom::eq(count, 1))));
        let verdict = verify_property(&problem, &prop, &VerifyConfig::quick());
        match verdict {
            PropertyVerdict::Proven { stats } => assert!(stats.vacuous()),
            other => panic!("expected vacuous proof, got {other:?}"),
        }
    }

    #[test]
    fn bounded_engine_reports_depth() {
        let (d, count, first) = counter();
        let problem = Problem::new(&d);
        let prop = guarded(first, Prop::Never(SvaBool::atom(RtlAtom::eq(count, 8))));
        let config = VerifyConfig {
            name: "bounded-only".into(),
            engines: vec![Engine {
                kind: EngineKind::Bounded,
                max_states: 100_000,
                max_depth: Some(3),
            }],
            cover_max_states: 100_000,
        };
        let verdict = verify_property(&problem, &prop, &config);
        match verdict {
            PropertyVerdict::Bounded { depth, .. } => assert_eq!(depth, 3),
            other => panic!("expected bounded proof, got {other:?}"),
        }
    }

    #[test]
    fn cover_found_and_unreachable() {
        let (d, count, _) = counter();
        // Cover: count == 3 — reachable.
        let mut problem = Problem::new(&d);
        problem.cover = Some(SvaBool::atom(RtlAtom::eq(count, 3)));
        let verdict = check_cover(&problem, Engine::full(100_000));
        match verdict {
            CoverVerdict::Covered(trace, _) => {
                let last = trace.len() - 1;
                assert_eq!(trace.value_at(&d, count, last), 3);
            }
            other => panic!("expected covered, got {other:?}"),
        }
        // Under an assumption pinning enable low, count == 3 is
        // unreachable.
        let en = d.signal_by_name("en").unwrap();
        problem.assumptions.push(Directive::assume(
            "en_low",
            Prop::Never(SvaBool::atom(RtlAtom::is_true(en))),
        ));
        let verdict = check_cover(&problem, Engine::full(100_000));
        assert!(
            matches!(verdict, CoverVerdict::Unreachable(_)),
            "{verdict:?}"
        );
    }

    #[test]
    fn cover_with_tiny_budget_is_unknown() {
        let (d, count, _) = counter();
        let mut problem = Problem::new(&d);
        problem.cover = Some(SvaBool::atom(RtlAtom::eq(count, 7)));
        let verdict = check_cover(
            &problem,
            Engine {
                kind: EngineKind::Bounded,
                max_states: 100_000,
                max_depth: Some(2),
            },
        );
        assert!(matches!(verdict, CoverVerdict::Unknown(_)), "{verdict:?}");
    }

    #[test]
    fn shared_graph_serves_many_properties_with_reuse() {
        let (d, count, first) = counter();
        let problem = Problem::new(&d);
        let props: Vec<Prop<RtlAtom>> = (0..4)
            .map(|v| guarded(first, Prop::Never(SvaBool::atom(RtlAtom::eq(count, 8 + v)))))
            .collect();
        let graph = build_graph(&problem, props.iter(), Engine::full(100_000));
        assert!(graph.stats().complete);
        let warm_nodes = graph.stats().nodes;
        for p in &props {
            let verdict = verify_property_on_graph(&graph, p, &VerifyConfig::quick());
            assert!(matches!(verdict, PropertyVerdict::Proven { .. }));
        }
        let s = graph.stats();
        assert_eq!(s.nodes, warm_nodes, "walks added no graph nodes");
        assert_eq!(s.lookups, s.reuse_hits, "every walk edge came from cache");
        assert!(s.reuse_hits > 0);
    }

    #[test]
    fn graph_walk_matches_reference_on_the_counter() {
        let (d, count, first) = counter();
        let mut problem = Problem::new(&d);
        let en = d.signal_by_name("en").unwrap();
        problem.assumptions.push(Directive::assume(
            "en_low",
            Prop::Never(SvaBool::atom(RtlAtom::is_true(en))),
        ));
        for target in [1u64, 8] {
            let prop = guarded(
                first,
                Prop::Never(SvaBool::atom(RtlAtom::eq(count, target))),
            );
            for config in [VerifyConfig::quick(), VerifyConfig::hybrid()] {
                let a = verify_property(&problem, &prop, &config);
                let b = verify_property_reference(&problem, &prop, &config);
                assert_eq!(format!("{a:?}"), format!("{b:?}"), "target {target}");
            }
        }
    }

    /// A minimal recording collector for the instrumentation tests.
    #[derive(Default)]
    struct Rec {
        counters: std::cell::RefCell<Vec<(String, u64)>>,
        events: std::cell::RefCell<Vec<String>>,
        open_spans: std::cell::RefCell<i64>,
    }

    impl rtlcheck_obs::Collector for Rec {
        fn span_enter(&self, _id: rtlcheck_obs::SpanId, _name: &str, _attrs: rtlcheck_obs::Attrs) {
            *self.open_spans.borrow_mut() += 1;
        }
        fn span_exit(
            &self,
            _id: rtlcheck_obs::SpanId,
            _name: &str,
            _elapsed: std::time::Duration,
            _attrs: rtlcheck_obs::Attrs,
        ) {
            *self.open_spans.borrow_mut() -= 1;
        }
        fn counter(&self, name: &str, value: u64, _attrs: rtlcheck_obs::Attrs) {
            self.counters.borrow_mut().push((name.to_string(), value));
        }
        fn event(&self, name: &str, _attrs: rtlcheck_obs::Attrs) {
            self.events.borrow_mut().push(name.to_string());
        }
    }

    impl Rec {
        fn counter(&self, name: &str) -> Option<u64> {
            self.counters
                .borrow()
                .iter()
                .rev()
                .find(|(n, _)| n == name)
                .map(|(_, v)| *v)
        }
    }

    #[test]
    fn observed_property_run_reports_counters_matching_verdict_stats() {
        let (d, count, first) = counter();
        let problem = Problem::new(&d);
        let prop = guarded(first, Prop::Never(SvaBool::atom(RtlAtom::eq(count, 8))));
        let rec = Rec::default();
        let verdict =
            verify_property_observed(&problem, &prop, &VerifyConfig::quick(), "A[0]", &rec);
        let stats = match verdict {
            PropertyVerdict::Proven { stats } => stats,
            other => panic!("expected proof, got {other:?}"),
        };
        // The counters carry the same numbers the verdict reports, so the
        // metrics view and the CLI report can never disagree.
        assert_eq!(rec.counter("engine.full.states"), Some(stats.states as u64));
        assert_eq!(
            rec.counter("engine.full.transitions"),
            Some(stats.transitions)
        );
        assert_eq!(
            rec.counter("engine.full.pruned"),
            Some(stats.pruned_by_assumptions)
        );
        assert!(rec.counter("engine.full.budget_states").unwrap() >= stats.states as u64);
        // This property is boolean-only (no sequence NFAs), but the monitor
        // still reports its stepping activity.
        assert!(rec.counter("monitor.product_nfa_states").is_some());
        assert!(rec.counter("monitor.attempts").unwrap() > 0);
        assert_eq!(*rec.open_spans.borrow(), 0, "engine_run spans balance");
        assert!(
            rec.events.borrow().is_empty(),
            "no budget events on a full proof"
        );
    }

    #[test]
    fn observed_budget_hit_emits_budget_exhausted_event() {
        let (d, count, first) = counter();
        let problem = Problem::new(&d);
        let prop = guarded(first, Prop::Never(SvaBool::atom(RtlAtom::eq(count, 8))));
        let config = VerifyConfig {
            name: "bounded-only".into(),
            engines: vec![Engine {
                kind: EngineKind::Bounded,
                max_states: 2,
                max_depth: Some(100),
            }],
            cover_max_states: 100_000,
        };
        let rec = Rec::default();
        let verdict = verify_property_observed(&problem, &prop, &config, "A[0]", &rec);
        assert!(
            matches!(verdict, PropertyVerdict::Bounded { .. }),
            "{verdict:?}"
        );
        assert_eq!(rec.events.borrow().as_slice(), ["budget_exhausted"]);
    }

    #[test]
    fn observed_cover_search_reports_outcome_events() {
        let (d, count, _) = counter();
        let mut problem = Problem::new(&d);
        problem.cover = Some(SvaBool::atom(RtlAtom::eq(count, 3)));
        let rec = Rec::default();
        let verdict = check_cover_observed(&problem, Engine::full(100_000), &rec);
        assert!(matches!(verdict, CoverVerdict::Covered(..)), "{verdict:?}");
        assert_eq!(rec.events.borrow().as_slice(), ["cover.covered"]);
        assert_eq!(
            rec.counter("engine.cover.states"),
            Some(verdict.stats().states as u64)
        );
        assert_eq!(*rec.open_spans.borrow(), 0);
    }

    #[test]
    fn reachable_stats_counts_states() {
        let (d, _, _) = counter();
        let problem = Problem::new(&d);
        let stats = reachable_stats(&problem, Engine::full(100_000));
        // 8 counter values × 2 first values, minus unreachable combos:
        // (first=1, count≠0) are unreachable → 8 + 1 = 9 states.
        assert_eq!(stats.states, 9);
    }
}

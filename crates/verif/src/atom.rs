//! The SVA atom type used over RTL designs.

use std::fmt;

use rtlcheck_rtl::sim::{Simulator, State};
use rtlcheck_rtl::{Design, SignalId};
use rtlcheck_sva::SvaBool;

/// An atomic boolean over a design: a signal compared for equality with a
/// constant. All of RTLCheck's generated conditions reduce to conjunctions
/// and disjunctions of these (e.g. `core1_PC_WB == 28`, `first == 1`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RtlAtom {
    /// Signal compared.
    pub sig: SignalId,
    /// Value it must equal.
    pub value: u64,
}

impl RtlAtom {
    /// `sig == value`.
    pub fn eq(sig: SignalId, value: u64) -> Self {
        RtlAtom { sig, value }
    }

    /// A 1-bit signal being true (`sig == 1`).
    pub fn is_true(sig: SignalId) -> Self {
        RtlAtom { sig, value: 1 }
    }

    /// Renders the atom as Verilog against a design's signal names.
    pub fn render(&self, design: &Design) -> String {
        let s = design.signal(self.sig);
        format!("{} == {}'d{}", s.name, s.width, self.value)
    }

    /// Parses the textual form produced by [`RtlAtom::render`]
    /// (`name == <width>'d<value>`), resolving the name against `design`.
    ///
    /// Returns `None` on any mismatch: unknown signal, malformed syntax, or
    /// a width disagreeing with the design.
    pub fn parse(design: &Design, text: &str) -> Option<RtlAtom> {
        let (name, rest) = text.split_once(" == ")?;
        let sig = design.signal_by_name(name.trim())?;
        let (width, value) = rest.trim().split_once("'d")?;
        let width: u8 = width.parse().ok()?;
        if width != design.signal(sig).width {
            return None;
        }
        let value: u64 = value.parse().ok()?;
        Some(RtlAtom { sig, value })
    }
}

impl fmt::Display for RtlAtom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} == {}", self.sig, self.value)
    }
}

/// Convenience: `SvaBool` over [`RtlAtom`]s.
pub type RtlBool = SvaBool<RtlAtom>;

/// Evaluates an [`RtlBool`] in a design state under the given inputs.
pub fn eval_bool(sim: &Simulator<'_>, state: &State, inputs: &[u64], b: &RtlBool) -> bool {
    b.eval(&|a: &RtlAtom| sim.peek(state, inputs, a.sig) == a.value)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtlcheck_rtl::DesignBuilder;

    #[test]
    fn atoms_evaluate_against_signals() {
        let mut b = DesignBuilder::new("d");
        let r = b.reg("r", 4, Some(7));
        let re = b.sig(r);
        b.set_next(r, re);
        let d = b.build().unwrap();
        let sim = Simulator::new(&d);
        let s = sim.initial_state().unwrap();
        let cond = SvaBool::and(
            SvaBool::atom(RtlAtom::eq(r, 7)),
            SvaBool::not(SvaBool::atom(RtlAtom::eq(r, 3))),
        );
        assert!(eval_bool(&sim, &s, &[], &cond));
    }

    #[test]
    fn atoms_render_with_names_and_widths() {
        let mut b = DesignBuilder::new("d");
        let r = b.reg("core1_PC_WB", 32, Some(0));
        let re = b.sig(r);
        b.set_next(r, re);
        let d = b.build().unwrap();
        assert_eq!(RtlAtom::eq(r, 28).render(&d), "core1_PC_WB == 32'd28");
    }

    #[test]
    fn atoms_parse_their_own_rendering() {
        let mut b = DesignBuilder::new("d");
        let r = b.reg("core1_PC_WB", 32, Some(0));
        let re = b.sig(r);
        b.set_next(r, re);
        let d = b.build().unwrap();
        let a = RtlAtom::eq(r, 28);
        assert_eq!(RtlAtom::parse(&d, &a.render(&d)), Some(a));
        assert_eq!(RtlAtom::parse(&d, "nope == 32'd28"), None);
        assert_eq!(
            RtlAtom::parse(&d, "core1_PC_WB == 8'd28"),
            None,
            "width mismatch"
        );
        assert_eq!(RtlAtom::parse(&d, "core1_PC_WB = 28"), None);
    }
}

//! An explicit-state RTL property verifier — the open-source stand-in for
//! the commercial JasperGold verifier used in the RTLCheck paper.
//!
//! Given a design, a set of SVA assumptions, and an assertion, the verifier
//! explores the product of the design's reachable state graph (over all
//! primary-input valuations) with the assertion's monitor state:
//!
//! * a trace on which an **assumption** fails is discarded from that cycle
//!   on — assumptions are enforced only up to the present cycle, never
//!   against the future (the JasperGold behaviour that drives the paper's
//!   §3 translation challenges);
//! * an admissible trace on which the **assertion** monitor fails is a
//!   counterexample, returned as a replayable [`rtlcheck_rtl::waveform::Trace`];
//! * exhausting the reachable product space without failure is a **complete
//!   proof**; hitting an engine's state/depth budget first yields a
//!   **bounded proof** for the explored depth (§6.1's three outcomes).
//!
//! The verifier also implements JasperGold's **covering-trace** search used
//! by RTLCheck's assumption-only fast path (§4.1): find an admissible trace
//! reaching a cover condition (e.g. "all cores halted", the antecedent of
//! the final-value assumption), or prove it unreachable — which verifies the
//! litmus test without touching the assertions.
//!
//! Engine configurations ([`VerifyConfig`]) mirror the paper's Table 1:
//! `hybrid` runs a bounded engine before the full-proof engine; `full_proof`
//! runs only full-proof engines with a larger budget.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod atom;
pub mod backend;
pub mod cache;
pub mod composed;
pub mod engine;
pub mod explore;
pub mod graph;
pub mod problem;
pub mod replay;
pub mod symbolic;

pub use atom::RtlAtom;
pub use backend::{Backend, BackendChoice, BackendKind, EdgeClass};
pub use cache::{
    fingerprint, fingerprint_modules, fingerprint_problem, snapshot_from_bytes, snapshot_to_bytes,
    CacheSource, CacheStats, CacheTicket, CoreSnapshot, GraphCache, GraphKey, Incremental,
    SnapshotError,
};
pub use composed::{ComposedFallback, ComposedGraph};
pub use engine::{Engine, EngineKind, PropertyVerdict, VerifyConfig};
pub use explore::{
    build_graph, check_cover, check_cover_observed, check_cover_on_graph,
    check_cover_on_graph_observed, verify_property, verify_property_observed,
    verify_property_on_graph, verify_property_on_graph_observed, CoverVerdict, ExploreStats,
};
pub use graph::{GraphStats, StateGraph};
pub use problem::{Directive, DirectiveKind, Problem};
pub use replay::{check_transitions, replay, ReplayVerdict};
pub use symbolic::SymbolicGraph;

//! Property-based differential test: the NFA-based online matcher against a
//! brute-force reference implementation of SVA sequence matching.
//!
//! The reference decides `matches(seq, trace[i..j])` by structural
//! recursion over the sequence and explicit enumeration of split points —
//! obviously correct, exponentially slow, and completely independent of the
//! Thompson construction in `rtlcheck_sva::nfa`.

use proptest::prelude::*;
use rtlcheck_sva::ast::{Seq, SvaBool};
use rtlcheck_sva::nfa::Nfa;

/// Atoms are small integers; a trace cycle is the set of true atoms
/// (represented as a bitmask over atoms 0..4).
type Cycle = u8;

fn eval(b: &SvaBool<u8>, cycle: Cycle) -> bool {
    match b {
        SvaBool::Const(c) => *c,
        SvaBool::Atom(a) => cycle & (1 << a) != 0,
        SvaBool::Not(x) => !eval(x, cycle),
        SvaBool::And(x, y) => eval(x, cycle) && eval(y, cycle),
        SvaBool::Or(x, y) => eval(x, cycle) || eval(y, cycle),
    }
}

/// Brute-force: does `seq` exactly match `trace[lo..hi]`?
fn brute_matches(seq: &Seq<u8>, trace: &[Cycle], lo: usize, hi: usize) -> bool {
    match seq {
        Seq::Bool(b) => hi == lo + 1 && eval(b, trace[lo]),
        Seq::Then(a, b) => (lo..=hi)
            .any(|mid| brute_matches(a, trace, lo, mid) && brute_matches(b, trace, mid, hi)),
        Seq::Or(a, b) => brute_matches(a, trace, lo, hi) || brute_matches(b, trace, lo, hi),
        Seq::Repeat { body, min, max } => {
            // n repetitions; n is bounded by the slice length (each
            // repetition of our generated bodies consumes >= 1 cycle).
            let cap = max.map_or(hi - lo, |m| m as usize).min(hi - lo);
            ((*min as usize)..=cap).any(|n| brute_repeat(body, trace, lo, hi, n))
                || (*min == 0 && lo == hi)
        }
    }
}

fn brute_repeat(body: &Seq<u8>, trace: &[Cycle], lo: usize, hi: usize, n: usize) -> bool {
    if n == 0 {
        return lo == hi;
    }
    (lo..=hi)
        .any(|mid| brute_matches(body, trace, lo, mid) && brute_repeat(body, trace, mid, hi, n - 1))
}

fn arb_bool() -> impl Strategy<Value = SvaBool<u8>> {
    let leaf = prop_oneof![
        (0u8..4).prop_map(SvaBool::atom),
        Just(SvaBool::Const(true)),
        Just(SvaBool::Const(false)),
    ];
    leaf.prop_recursive(2, 6, 2, |inner| {
        prop_oneof![
            inner.clone().prop_map(SvaBool::not),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| SvaBool::and(a, b)),
            (inner.clone(), inner).prop_map(|(a, b)| SvaBool::or(a, b)),
        ]
    })
}

fn arb_seq() -> impl Strategy<Value = Seq<u8>> {
    let leaf = arb_bool().prop_map(Seq::boolean);
    leaf.prop_recursive(3, 12, 2, |inner| {
        // Repetition bodies are single-cycle booleans (as in RTLCheck's
        // generated properties); this also keeps the brute-force reference
        // simple, since every repetition then consumes exactly one cycle.
        let rep_body = || {
            arb_bool()
                .prop_map(Seq::boolean as fn(SvaBool<u8>) -> Seq<u8>)
                .boxed()
        };
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Seq::then(a, b)),
            (inner, rep_body()).prop_map(|(a, b)| Seq::Or(Box::new(a), Box::new(b))),
            (rep_body(), 0u32..3, 0u32..3)
                .prop_map(|(s, min, extra)| { Seq::repeat(s, min, Some(min + extra)) }),
            (rep_body(), 0u32..2).prop_map(|(s, min)| Seq::repeat(s, min, None)),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// The NFA accepts after consuming `trace[0..=t]` iff the brute-force
    /// reference finds an exact match of some prefix `trace[0..j]`, `j-1 <= t`.
    #[test]
    fn nfa_agrees_with_brute_force(seq in arb_seq(), trace in proptest::collection::vec(0u8..16, 1..7)) {
        let nfa = Nfa::compile(&seq);
        let mut live = nfa.initial();
        let mut nfa_matched_at: Vec<usize> = Vec::new();
        for (t, &cycle) in trace.iter().enumerate() {
            live = nfa.step(&live, &|a| cycle & (1 << a) != 0);
            if nfa.accepts(&live) {
                nfa_matched_at.push(t);
            }
        }
        for t in 0..trace.len() {
            let brute = brute_matches(&seq, &trace, 0, t + 1);
            let nfa_says = nfa_matched_at.contains(&t);
            prop_assert_eq!(
                brute, nfa_says,
                "mismatch at cycle {} for {:?} on {:?}", t, seq, trace
            );
        }
    }

    /// If the NFA's live set dies at cycle `t`, no prefix of the trace (of
    /// any length) matches — death is conservative.
    #[test]
    fn nfa_death_implies_no_match(seq in arb_seq(), trace in proptest::collection::vec(0u8..16, 1..7)) {
        let nfa = Nfa::compile(&seq);
        let mut live = nfa.initial();
        for (t, &cycle) in trace.iter().enumerate() {
            live = nfa.step(&live, &|a| cycle & (1 << a) != 0);
            if nfa.accepts(&live) {
                return Ok(()); // matched; death afterwards is fine
            }
            if live.is_empty() {
                for j in t + 1..=trace.len() {
                    prop_assert!(
                        !brute_matches(&seq, &trace, 0, j),
                        "NFA died at {} but {:?} matches [0..{})", t, seq, j
                    );
                }
                return Ok(());
            }
        }
    }
}

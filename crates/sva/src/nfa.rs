//! Thompson-style compilation of sequences to NFAs.
//!
//! A sequence's NFA has one start state and one accept state. Transitions
//! either *consume* one clock cycle (labelled with a [`SvaBool`] that must
//! hold during that cycle) or are epsilon moves. Online matching tracks the
//! epsilon-closed set of live states as a bitset: the sequence has
//! *matched* once the accept state is live, and can no longer match once
//! the live set is empty.

use crate::ast::{Seq, SvaBool};

/// A compact set of NFA states.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BitSet {
    words: Vec<u64>,
}

impl BitSet {
    /// An empty set sized for `n` states.
    pub fn empty(n: usize) -> Self {
        BitSet {
            words: vec![0; n.div_ceil(64)],
        }
    }

    /// Inserts a state. Returns `true` if it was newly inserted.
    pub fn insert(&mut self, i: usize) -> bool {
        let (w, b) = (i / 64, i % 64);
        let newly = self.words[w] & (1 << b) == 0;
        self.words[w] |= 1 << b;
        newly
    }

    /// Whether the state is present.
    pub fn contains(&self, i: usize) -> bool {
        self.words[i / 64] & (1 << (i % 64)) != 0
    }

    /// Whether no state is present.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|w| *w == 0)
    }

    /// Iterates over present states.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            (0..64).filter_map(move |b| {
                if w & (1 << b) != 0 {
                    Some(wi * 64 + b)
                } else {
                    None
                }
            })
        })
    }

    /// The raw words (for canonical encoding in monitor state hashing).
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Reconstructs a set from raw words (the inverse of [`BitSet::words`],
    /// used when decoding serialized monitor states).
    pub fn from_words(words: Vec<u64>) -> Self {
        BitSet { words }
    }
}

/// One NFA state's outgoing transitions.
#[derive(Debug, Clone)]
struct StateNode<A> {
    /// Consuming transitions: `(guard, target)`.
    consuming: Vec<(SvaBool<A>, usize)>,
    /// Epsilon transitions.
    eps: Vec<usize>,
}

/// A compiled sequence NFA.
#[derive(Debug, Clone)]
pub struct Nfa<A> {
    states: Vec<StateNode<A>>,
    start: usize,
    accept: usize,
}

impl<A: Clone> Nfa<A> {
    /// Compiles a sequence.
    pub fn compile(seq: &Seq<A>) -> Self {
        let mut states: Vec<StateNode<A>> = Vec::new();
        let fresh = |states: &mut Vec<StateNode<A>>| {
            states.push(StateNode {
                consuming: Vec::new(),
                eps: Vec::new(),
            });
            states.len() - 1
        };
        let start = fresh(&mut states);
        let accept = build(seq, start, &mut states);
        Nfa {
            states,
            start,
            accept,
        }
    }

    /// Number of states.
    pub fn num_states(&self) -> usize {
        self.states.len()
    }

    /// The initial live set: the epsilon closure of the start state.
    pub fn initial(&self) -> BitSet {
        let mut set = BitSet::empty(self.states.len());
        set.insert(self.start);
        self.close(&mut set);
        set
    }

    /// Whether a live set includes the accept state (the sequence has
    /// matched).
    pub fn accepts(&self, set: &BitSet) -> bool {
        set.contains(self.accept)
    }

    /// Advances the live set by one clock cycle under the given atom
    /// valuation.
    pub fn step(&self, set: &BitSet, env: &dyn Fn(&A) -> bool) -> BitSet {
        let mut next = BitSet::empty(self.states.len());
        for s in set.iter() {
            for (guard, target) in &self.states[s].consuming {
                if guard.eval(env) {
                    next.insert(*target);
                }
            }
        }
        self.close(&mut next);
        next
    }

    /// Epsilon-closes a state set in place.
    fn close(&self, set: &mut BitSet) {
        let mut stack: Vec<usize> = set.iter().collect();
        while let Some(s) = stack.pop() {
            for &t in &self.states[s].eps {
                if set.insert(t) {
                    stack.push(t);
                }
            }
        }
    }
}

/// Builds the fragment for `seq` starting at state `from`; returns its
/// accept state.
fn build<A: Clone>(seq: &Seq<A>, from: usize, states: &mut Vec<StateNode<A>>) -> usize {
    let fresh = |states: &mut Vec<StateNode<A>>| {
        states.push(StateNode {
            consuming: Vec::new(),
            eps: Vec::new(),
        });
        states.len() - 1
    };
    match seq {
        Seq::Bool(b) => {
            let acc = fresh(states);
            states[from].consuming.push((b.clone(), acc));
            acc
        }
        Seq::Then(a, b) => {
            let mid = build(a, from, states);
            build(b, mid, states)
        }
        Seq::Or(a, b) => {
            let sa = fresh(states);
            let sb = fresh(states);
            states[from].eps.push(sa);
            states[from].eps.push(sb);
            let aa = build(a, sa, states);
            let ab = build(b, sb, states);
            let acc = fresh(states);
            states[aa].eps.push(acc);
            states[ab].eps.push(acc);
            acc
        }
        Seq::Repeat { body, min, max } => {
            // `min` mandatory copies…
            let mut cur = from;
            for _ in 0..*min {
                cur = build(body, cur, states);
            }
            match max {
                Some(max) => {
                    // …then (max - min) optional copies, each skippable.
                    let acc = fresh(states);
                    states[cur].eps.push(acc);
                    for _ in *min..*max {
                        cur = build(body, cur, states);
                        states[cur].eps.push(acc);
                    }
                    acc
                }
                None => {
                    // …then a loop: after each extra copy, return to the
                    // loop head; the head is accepting via epsilon.
                    let head = fresh(states);
                    states[cur].eps.push(head);
                    let back = build(body, head, states);
                    states[back].eps.push(head);
                    head
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::SvaBool;

    type S = Seq<u32>;

    fn atom(v: u32) -> SvaBool<u32> {
        SvaBool::atom(v)
    }

    /// Runs the NFA over a trace of true-atom sets; returns
    /// (matched_at_cycles, died_at_cycle).
    fn run(seq: &S, trace: &[&[u32]]) -> (Vec<usize>, Option<usize>) {
        let nfa = Nfa::compile(seq);
        let mut set = nfa.initial();
        let mut matches = Vec::new();
        if nfa.accepts(&set) {
            // Empty match before consuming anything is not observable in
            // our use (sequences always consume ≥1 cycle at top level).
        }
        for (i, tru) in trace.iter().enumerate() {
            set = nfa.step(&set, &|a| tru.contains(a));
            if nfa.accepts(&set) {
                matches.push(i);
            }
            if set.is_empty() {
                return (matches, Some(i));
            }
        }
        (matches, None)
    }

    #[test]
    fn single_bool_matches_one_cycle() {
        let s = S::boolean(atom(1));
        let (m, died) = run(&s, &[&[1]]);
        assert_eq!(m, vec![0]);
        assert_eq!(
            died, None,
            "accept state has no outgoing edges but stays live"
        );
        let (m, died) = run(&s, &[&[2]]);
        assert!(m.is_empty());
        assert_eq!(died, Some(0));
    }

    #[test]
    fn then_requires_consecutive_cycles() {
        let s = S::then(S::boolean(atom(1)), S::boolean(atom(2)));
        let (m, _) = run(&s, &[&[1], &[2]]);
        assert_eq!(m, vec![1]);
        let (m, died) = run(&s, &[&[1], &[1]]);
        assert!(m.is_empty());
        assert_eq!(died, Some(1));
    }

    #[test]
    fn delay_exact() {
        // ##2 a : a at cycle 2.
        let s = S::delay_exact(2, S::boolean(atom(1)));
        let (m, _) = run(&s, &[&[], &[], &[1]]);
        assert_eq!(m, vec![2]);
        let (m, died) = run(&s, &[&[], &[], &[]]);
        assert!(m.is_empty());
        assert_eq!(died, Some(2));
    }

    #[test]
    fn unbounded_delay_never_dies() {
        // ##[0:$] a
        let s = S::delay(0, None, S::boolean(atom(1)));
        let (m, died) = run(&s, &[&[], &[], &[], &[]]);
        assert!(m.is_empty());
        assert_eq!(died, None, "unbounded delay keeps the attempt alive");
        let (m, _) = run(&s, &[&[], &[1], &[], &[1]]);
        assert_eq!(m, vec![1, 3], "every delay choice can match");
    }

    #[test]
    fn repeat_bounds() {
        // a[*2:3]
        let s = S::repeat(S::boolean(atom(1)), 2, Some(3));
        let (m, _) = run(&s, &[&[1], &[1], &[1], &[1]]);
        assert_eq!(m, vec![1, 2], "matches after 2 and 3 copies, not 4");
    }

    #[test]
    fn zero_repeat_allows_immediate_continuation() {
        // (~a)[*0:$] ##1 a — the paper's strict-delay idiom: a may occur at
        // the very first cycle.
        let not_a = SvaBool::not(atom(1));
        let s = S::then(S::repeat(S::boolean(not_a), 0, None), S::boolean(atom(1)));
        let (m, _) = run(&s, &[&[1]]);
        assert_eq!(m, vec![0]);
        let (m, _) = run(&s, &[&[], &[], &[1]]);
        assert_eq!(m, vec![2]);
    }

    #[test]
    fn strict_delay_dies_on_excluded_event() {
        // (~(a|b))[*0:$] ##1 a ##1 (~(a|b))[*0:$] ##1 b  — the §4.3 edge
        // encoding. If b occurs before a, the attempt dies.
        let a = || atom(1);
        let b = || atom(2);
        let not_ab = || SvaBool::not(SvaBool::or(a(), b()));
        let s = S::chain(vec![
            S::repeat(S::boolean(not_ab()), 0, None),
            S::boolean(a()),
            S::repeat(S::boolean(not_ab()), 0, None),
            S::boolean(b()),
        ]);
        // b before a: dies at cycle 0 (neither "quiet" nor "a").
        let (m, died) = run(&s, &[&[2], &[1]]);
        assert!(m.is_empty());
        assert_eq!(died, Some(0));
        // a then b with quiet cycles: matches.
        let (m, _) = run(&s, &[&[], &[1], &[], &[2]]);
        assert_eq!(m, vec![3]);
        // a then a again: dies (the delay excludes recurrences of a).
        let (m, died) = run(&s, &[&[1], &[1]]);
        assert!(m.is_empty());
        assert_eq!(died, Some(1));
    }

    /// §3.3 / Figure 6: the *naive* `##[0:$] a ##[1:$] b` encoding does NOT
    /// die when the events occur in the wrong order — the unbounded delays
    /// swallow everything, so the violating trace is not a counterexample.
    #[test]
    fn naive_delay_encoding_misses_reordered_events() {
        let a = || S::boolean(atom(1));
        let b = || S::boolean(atom(2));
        let naive = S::delay(0, None, S::then(a(), S::delay(0, None, b())));
        // Trace: b at cycle 0, a at cycle 1 (reversed order), then quiet.
        let (m, died) = run(&naive, &[&[2], &[1], &[], &[]]);
        assert!(m.is_empty());
        assert_eq!(
            died, None,
            "the naive encoding never fails — it misses the bug"
        );
    }

    #[test]
    fn or_takes_either_branch() {
        let s = S::Or(
            Box::new(S::boolean(atom(1))),
            Box::new(S::then(S::boolean(atom(2)), S::boolean(atom(3)))),
        );
        let (m, _) = run(&s, &[&[2], &[3]]);
        assert_eq!(m, vec![1]);
        let (m, _) = run(&s, &[&[1]]);
        assert_eq!(m, vec![0]);
    }

    #[test]
    fn bitset_operations() {
        let mut s = BitSet::empty(130);
        assert!(s.is_empty());
        assert!(s.insert(0));
        assert!(s.insert(129));
        assert!(!s.insert(129));
        assert!(s.contains(129));
        assert!(!s.contains(64));
        let items: Vec<usize> = s.iter().collect();
        assert_eq!(items, vec![0, 129]);
    }
}

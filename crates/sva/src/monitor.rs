//! Online property monitors with faithful SVA attempt semantics.
//!
//! A [`Monitor`] tracks one `assert property` / `assume property`
//! directive over a trace, implementing the semantics that drive the
//! paper's translation design:
//!
//! * **An attempt starts at every clock cycle** (§3.4). Each cycle
//!   instantiates a fresh copy of the property beginning at that cycle; the
//!   directive fails if *any* attempt fails. RTLCheck's generated
//!   properties guard with `first |->` so that only the first attempt is
//!   ever non-vacuous — un-guarded properties really do check from every
//!   cycle, which this monitor reproduces.
//! * **Weak sequence evaluation** (§3.1). An attempt is `Pending` while its
//!   sequences could still match, `Holds` once satisfied, and `Fails` only
//!   when no extension of the trace can satisfy it. Partial executions
//!   never fail a property that could still match.
//! * **No future-violation lookahead.** A monitor only reports failure
//!   at/after the cycle where failure becomes unavoidable — exactly the
//!   assumption semantics (of JasperGold and other SVA verifiers) that
//!   force outcome-aware assertion generation (§3.2).
//!
//! Monitor state is canonically encoded ([`MonitorState`]) — deduplicated,
//! ordered, and hashable — so the explicit-state verifier can use
//! `(design state, monitor states)` product states directly.

use std::collections::BTreeSet;

use rtlcheck_obs::{attrs, Collector};

use crate::ast::{Prop, SvaBool};
use crate::nfa::{BitSet, Nfa};

/// The status/state of one attempt's property evaluation.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
enum PropState {
    /// Resolved: holds (true) or fails (false), regardless of the future.
    Done(bool),
    /// A pending sequence: live NFA states, by index into the monitor's
    /// compiled sequence table.
    SeqPending {
        /// Which compiled NFA this refers to.
        nfa: usize,
        /// Live state set.
        live: BitSet,
    },
    /// Pending `Never`: fails if the boolean (by index) ever holds.
    NeverPending {
        /// Index into the monitor's boolean table.
        cond: usize,
    },
    /// All children must hold.
    And(Vec<PropState>),
    /// At least one child must hold.
    Or(Vec<PropState>),
}

impl PropState {
    fn resolved(&self) -> Option<bool> {
        match self {
            PropState::Done(b) => Some(*b),
            _ => None,
        }
    }

    /// Normalises And/Or nodes whose outcome is already determined.
    fn normalise(self) -> PropState {
        match self {
            PropState::And(children) => {
                let mut pending = Vec::new();
                for c in children {
                    match c.resolved() {
                        Some(false) => return PropState::Done(false),
                        Some(true) => {}
                        None => pending.push(c),
                    }
                }
                match pending.len() {
                    0 => PropState::Done(true),
                    1 => pending.pop().expect("len checked"),
                    _ => {
                        pending.sort();
                        PropState::And(pending)
                    }
                }
            }
            PropState::Or(children) => {
                let mut pending = Vec::new();
                for c in children {
                    match c.resolved() {
                        Some(true) => return PropState::Done(true),
                        Some(false) => {}
                        None => pending.push(c),
                    }
                }
                match pending.len() {
                    0 => PropState::Done(false),
                    1 => pending.pop().expect("len checked"),
                    _ => {
                        pending.sort();
                        PropState::Or(pending)
                    }
                }
            }
            other => other,
        }
    }
}

/// The externally visible, canonically encoded state of a [`Monitor`]:
/// whether it has failed plus the set of distinct pending attempts.
///
/// Two monitors with equal `MonitorState`s behave identically on all future
/// inputs, which is what makes product-state deduplication in the verifier
/// sound.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MonitorState {
    failed: bool,
    pending: BTreeSet<PropState>,
}

impl MonitorState {
    /// Whether some attempt has failed.
    pub fn failed(&self) -> bool {
        self.failed
    }

    /// Number of distinct pending attempts.
    pub fn num_pending(&self) -> usize {
        self.pending.len()
    }

    /// Appends a canonical, self-delimiting `u64` encoding of the state to
    /// `out`. Equal states produce equal encodings (pending attempts are
    /// emitted in their canonical `BTreeSet` order), so the encoding is fit
    /// for both hashing and serialization; [`MonitorState::decode`] inverts
    /// it.
    pub fn encode(&self, out: &mut Vec<u64>) {
        out.push(u64::from(self.failed));
        out.push(self.pending.len() as u64);
        for p in &self.pending {
            encode_prop_state(p, out);
        }
    }

    /// Decodes a state written by [`MonitorState::encode`] from the front
    /// of `words`, returning it and the number of words consumed. Returns
    /// `None` on any malformed input (unknown tag, truncation, or
    /// implausible length) — callers treat that as a corrupt artifact.
    pub fn decode(words: &[u64]) -> Option<(MonitorState, usize)> {
        let failed = match *words.first()? {
            0 => false,
            1 => true,
            _ => return None,
        };
        let n = usize::try_from(*words.get(1)?).ok()?;
        if n > words.len() {
            return None; // each attempt needs at least one word
        }
        let mut pos = 2;
        let mut pending = BTreeSet::new();
        for _ in 0..n {
            let (p, used) = decode_prop_state(words.get(pos..)?)?;
            pos += used;
            pending.insert(p);
        }
        Some((MonitorState { failed, pending }, pos))
    }
}

/// Tags of the [`PropState`] wire encoding (stable across releases; bump
/// the graph-cache format version if they ever change).
const TAG_DONE: u64 = 0;
const TAG_SEQ: u64 = 1;
const TAG_NEVER: u64 = 2;
const TAG_AND: u64 = 3;
const TAG_OR: u64 = 4;

fn encode_prop_state(p: &PropState, out: &mut Vec<u64>) {
    match p {
        PropState::Done(b) => {
            out.push(TAG_DONE);
            out.push(u64::from(*b));
        }
        PropState::SeqPending { nfa, live } => {
            out.push(TAG_SEQ);
            out.push(*nfa as u64);
            out.push(live.words().len() as u64);
            out.extend_from_slice(live.words());
        }
        PropState::NeverPending { cond } => {
            out.push(TAG_NEVER);
            out.push(*cond as u64);
        }
        PropState::And(children) | PropState::Or(children) => {
            out.push(if matches!(p, PropState::And(_)) {
                TAG_AND
            } else {
                TAG_OR
            });
            out.push(children.len() as u64);
            for c in children {
                encode_prop_state(c, out);
            }
        }
    }
}

fn decode_prop_state(words: &[u64]) -> Option<(PropState, usize)> {
    match *words.first()? {
        TAG_DONE => {
            let b = match *words.get(1)? {
                0 => false,
                1 => true,
                _ => return None,
            };
            Some((PropState::Done(b), 2))
        }
        TAG_SEQ => {
            let nfa = usize::try_from(*words.get(1)?).ok()?;
            let len = usize::try_from(*words.get(2)?).ok()?;
            let end = 3usize.checked_add(len)?;
            let live = words.get(3..end)?.to_vec();
            Some((
                PropState::SeqPending {
                    nfa,
                    live: BitSet::from_words(live),
                },
                end,
            ))
        }
        TAG_NEVER => {
            let cond = usize::try_from(*words.get(1)?).ok()?;
            Some((PropState::NeverPending { cond }, 2))
        }
        tag @ (TAG_AND | TAG_OR) => {
            let n = usize::try_from(*words.get(1)?).ok()?;
            if n > words.len() {
                return None;
            }
            let mut pos = 2;
            let mut children = Vec::with_capacity(n);
            for _ in 0..n {
                let (c, used) = decode_prop_state(words.get(pos..)?)?;
                pos += used;
                children.push(c);
            }
            let state = if tag == TAG_AND {
                PropState::And(children)
            } else {
                PropState::Or(children)
            };
            Some((state, pos))
        }
        _ => None,
    }
}

/// Compiled, immutable data shared by all attempts of one property.
#[derive(Debug, Clone)]
struct Compiled<A> {
    prop: Prop<A>,
    nfas: Vec<Nfa<A>>,
    bools: Vec<SvaBool<A>>,
}

/// Observation counters describing one monitor's structure and activity,
/// reported through the observability layer ([`Monitor::report_to`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MonitorMetrics {
    /// Total states across the property's compiled sequence NFAs — the
    /// static size of the monitor's automaton product.
    pub nfa_states: usize,
    /// Number of compiled sequence NFAs.
    pub nfas: usize,
    /// Match attempts spawned (one per [`Monitor::step`] on a live
    /// monitor — SVA starts an attempt at every clock cycle, §3.4).
    pub attempts: u64,
    /// Attempts resolved vacuously at spawn because the property's
    /// top-level implication antecedent was false that cycle — the
    /// `first |->` guard (§4.4) doing its filtering work.
    pub first_filter_hits: u64,
}

/// An online monitor for one property directive.
#[derive(Debug, Clone)]
pub struct Monitor<A> {
    compiled: Compiled<A>,
    state: MonitorState,
    metrics: MonitorMetrics,
}

impl<A: Clone + Ord> Monitor<A> {
    /// Compiles a monitor for `prop`. No attempt is active until the first
    /// [`Monitor::step`].
    pub fn new(prop: &Prop<A>) -> Self {
        let mut compiled = Compiled {
            prop: prop.clone(),
            nfas: Vec::new(),
            bools: Vec::new(),
        };
        compile(prop, &mut compiled);
        let metrics = MonitorMetrics {
            nfa_states: compiled.nfas.iter().map(Nfa::num_states).sum(),
            nfas: compiled.nfas.len(),
            ..MonitorMetrics::default()
        };
        Monitor {
            compiled,
            state: MonitorState {
                failed: false,
                pending: BTreeSet::new(),
            },
            metrics,
        }
    }

    /// This monitor's structure and activity counters.
    pub fn metrics(&self) -> MonitorMetrics {
        self.metrics
    }

    /// Reports the monitor's metrics as observability counters, labelled
    /// with the directive name.
    pub fn report_to(&self, collector: &dyn Collector, directive: &str) {
        let m = self.metrics;
        collector.counter(
            "monitor.product_nfa_states",
            m.nfa_states as u64,
            attrs!["directive" => directive, "nfas" => m.nfas],
        );
        collector.counter(
            "monitor.attempts",
            m.attempts,
            attrs!["directive" => directive],
        );
        collector.counter(
            "monitor.first_filter_hits",
            m.first_filter_hits,
            attrs!["directive" => directive],
        );
    }

    /// The canonical monitor state.
    pub fn state(&self) -> &MonitorState {
        &self.state
    }

    /// Replaces the monitor's state (used by the verifier when revisiting a
    /// product state).
    pub fn set_state(&mut self, state: MonitorState) {
        self.state = state;
    }

    /// Whether any attempt has failed so far.
    pub fn failed(&self) -> bool {
        self.state.failed
    }

    /// Processes one clock cycle: spawns this cycle's new attempt, advances
    /// every pending attempt, and records failures.
    pub fn step(&mut self, env: &dyn Fn(&A) -> bool) {
        if self.state.failed {
            return; // failure is absorbing
        }
        self.metrics.attempts += 1;
        if let Prop::Implies { antecedent, .. } = &self.compiled.prop {
            if !antecedent.eval(env) {
                self.metrics.first_filter_hits += 1;
            }
        }
        let mut next: BTreeSet<PropState> = BTreeSet::new();
        let mut failed = false;

        // New attempt starting this cycle. The antecedent of a top-level
        // implication (and the initial NFA closures) see this cycle's
        // values; `spawn` therefore also consumes this cycle.
        let fresh = spawn(&self.compiled, &self.compiled.prop, env);
        match fresh.resolved() {
            Some(false) => failed = true,
            Some(true) => {}
            None => {
                next.insert(fresh);
            }
        }

        // Advance previously pending attempts.
        for attempt in &self.state.pending {
            let advanced = advance(&self.compiled, attempt.clone(), env);
            match advanced.resolved() {
                Some(false) => failed = true,
                Some(true) => {}
                None => {
                    next.insert(advanced);
                }
            }
        }

        self.state = MonitorState {
            failed,
            pending: if failed { BTreeSet::new() } else { next },
        };
    }
}

/// Collects sequence NFAs and `Never` booleans into the compiled tables.
fn compile<A: Clone>(prop: &Prop<A>, out: &mut Compiled<A>) {
    match prop {
        Prop::Seq(s) => {
            out.nfas.push(Nfa::compile(s));
        }
        Prop::Implies { body, .. } => compile(body, out),
        Prop::And(children) | Prop::Or(children) => {
            for c in children {
                compile(c, out);
            }
        }
        Prop::Never(b) => {
            out.bools.push(b.clone());
        }
    }
}

/// Starts a new attempt of `prop` at the current cycle, consuming it.
///
/// Sequence/`Never` indices are assigned in the same traversal order as
/// [`compile`], tracked via counters threaded through the recursion.
fn spawn<A: Clone + Ord>(
    compiled: &Compiled<A>,
    prop: &Prop<A>,
    env: &dyn Fn(&A) -> bool,
) -> PropState {
    fn go<A: Clone + Ord>(
        compiled: &Compiled<A>,
        prop: &Prop<A>,
        env: &dyn Fn(&A) -> bool,
        next_nfa: &mut usize,
        next_bool: &mut usize,
    ) -> PropState {
        match prop {
            Prop::Seq(_) => {
                let idx = *next_nfa;
                *next_nfa += 1;
                let nfa = &compiled.nfas[idx];
                let live = nfa.step(&nfa.initial(), env);
                seq_status(nfa, idx, live)
            }
            Prop::Implies { antecedent, body } => {
                if antecedent.eval(env) {
                    go(compiled, body, env, next_nfa, next_bool)
                } else {
                    // Vacuously true — but the traversal must still account
                    // for the body's table indices.
                    skip(body, next_nfa, next_bool);
                    PropState::Done(true)
                }
            }
            Prop::And(children) => PropState::And(
                children
                    .iter()
                    .map(|c| go(compiled, c, env, next_nfa, next_bool))
                    .collect(),
            )
            .normalise(),
            Prop::Or(children) => PropState::Or(
                children
                    .iter()
                    .map(|c| go(compiled, c, env, next_nfa, next_bool))
                    .collect(),
            )
            .normalise(),
            Prop::Never(b) => {
                let idx = *next_bool;
                *next_bool += 1;
                if b.eval(env) {
                    PropState::Done(false)
                } else {
                    PropState::NeverPending { cond: idx }
                }
            }
        }
    }
    fn skip<A>(prop: &Prop<A>, next_nfa: &mut usize, next_bool: &mut usize) {
        match prop {
            Prop::Seq(_) => *next_nfa += 1,
            Prop::Implies { body, .. } => skip(body, next_nfa, next_bool),
            Prop::And(children) | Prop::Or(children) => {
                for c in children {
                    skip(c, next_nfa, next_bool);
                }
            }
            Prop::Never(_) => *next_bool += 1,
        }
    }
    let (mut n, mut b) = (0, 0);
    go(compiled, prop, env, &mut n, &mut b)
}

fn seq_status<A: Clone>(nfa: &Nfa<A>, idx: usize, live: BitSet) -> PropState {
    if nfa.accepts(&live) {
        PropState::Done(true)
    } else if live.is_empty() {
        PropState::Done(false)
    } else {
        PropState::SeqPending { nfa: idx, live }
    }
}

/// Advances a pending attempt by one cycle.
fn advance<A: Clone + Ord>(
    compiled: &Compiled<A>,
    state: PropState,
    env: &dyn Fn(&A) -> bool,
) -> PropState {
    match state {
        done @ PropState::Done(_) => done,
        PropState::SeqPending { nfa, live } => {
            let next = compiled.nfas[nfa].step(&live, env);
            seq_status(&compiled.nfas[nfa], nfa, next)
        }
        PropState::NeverPending { cond } => {
            if compiled.bools[cond].eval(env) {
                PropState::Done(false)
            } else {
                PropState::NeverPending { cond }
            }
        }
        PropState::And(children) => PropState::And(
            children
                .into_iter()
                .map(|c| advance(compiled, c, env))
                .collect(),
        )
        .normalise(),
        PropState::Or(children) => PropState::Or(
            children
                .into_iter()
                .map(|c| advance(compiled, c, env))
                .collect(),
        )
        .normalise(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Seq;

    type P = Prop<u32>;
    type S = Seq<u32>;

    fn atom(v: u32) -> SvaBool<u32> {
        SvaBool::atom(v)
    }

    /// Drives a monitor over a trace of true-atom sets; returns whether it
    /// failed by the end.
    fn fails(prop: &P, trace: &[&[u32]]) -> bool {
        let mut m = Monitor::new(prop);
        for t in trace {
            m.step(&|a| t.contains(a));
            if m.failed() {
                return true;
            }
        }
        m.failed()
    }

    /// §3.4's example: `assert property (##2 st_x_wb)` — WITHOUT a first
    /// guard — fails even on a trace where the store IS in WB two cycles
    /// after the start, because the attempt beginning at cycle 1 checks
    /// cycle 3.
    #[test]
    fn unguarded_assertion_fails_due_to_later_attempts() {
        let prop = P::seq(S::delay_exact(2, S::boolean(atom(1))));
        // st_x_wb at cycle 2 only.
        assert!(fails(&prop, &[&[], &[], &[1], &[], &[]]));
    }

    /// §4.4: guarding with `first |->` filters all attempts but the first.
    #[test]
    fn first_guard_filters_match_attempts() {
        let first = atom(0);
        let prop = P::implies(first, P::seq(S::delay_exact(2, S::boolean(atom(1)))));
        // first holds only at cycle 0; store in WB at cycle 2.
        assert!(!fails(&prop, &[&[0], &[], &[1], &[], &[]]));
        // Without the store at cycle 2 the first attempt fails.
        assert!(fails(&prop, &[&[0], &[], &[], &[1]]));
    }

    /// Weak semantics: a pending unbounded sequence never fails, no matter
    /// how long the quiet trace runs (§3.1: properties must match partial
    /// executions).
    #[test]
    fn pending_unbounded_sequence_never_fails() {
        let first = atom(0);
        let prop = P::implies(first, P::seq(S::delay(0, None, S::boolean(atom(1)))));
        let quiet: Vec<&[u32]> = std::iter::once(&[0u32][..])
            .chain(std::iter::repeat_n(&[][..], 50))
            .collect();
        assert!(!fails(&prop, &quiet));
    }

    #[test]
    fn and_fails_if_any_branch_fails() {
        let first = atom(0);
        let a = P::seq(S::boolean(atom(1)));
        let b = P::seq(S::boolean(atom(2)));
        let prop = P::implies(first, P::And(vec![a, b]));
        assert!(!fails(&prop, &[&[0, 1, 2]]));
        assert!(fails(&prop, &[&[0, 1]]), "branch b fails at cycle 0");
    }

    #[test]
    fn or_fails_only_when_all_branches_fail() {
        let first = atom(0);
        let a = P::seq(S::boolean(atom(1)));
        let b = P::seq(S::then(S::boolean(atom(2)), S::boolean(atom(3))));
        let prop = P::implies(first, P::Or(vec![a, b]));
        // Branch a fails at cycle 0, branch b still pending, then matches.
        assert!(!fails(&prop, &[&[0, 2], &[3]]));
        // Both fail.
        assert!(fails(&prop, &[&[0, 2], &[2]]));
    }

    #[test]
    fn or_branches_at_different_speeds() {
        let first = atom(0);
        let fast = P::seq(S::boolean(atom(1)));
        let slow = P::seq(S::delay(0, None, S::boolean(atom(2))));
        let prop = P::implies(first, P::Or(vec![fast, slow]));
        // Fast branch fails immediately; slow branch keeps the attempt
        // alive forever (weak semantics) — no failure.
        let quiet: Vec<&[u32]> = std::iter::once(&[0u32][..])
            .chain(std::iter::repeat_n(&[][..], 20))
            .collect();
        assert!(!fails(&prop, &quiet));
    }

    #[test]
    fn never_fails_exactly_when_condition_occurs() {
        let first = atom(0);
        let prop = P::implies(first, P::Never(atom(9)));
        assert!(!fails(&prop, &[&[0], &[], &[], &[]]));
        assert!(fails(&prop, &[&[0], &[], &[9]]));
        // The condition occurring when the antecedent never held is fine.
        assert!(!fails(&prop, &[&[], &[9]]));
    }

    #[test]
    fn attempts_deduplicate_for_bounded_state() {
        // An unguarded unbounded-delay property spawns an attempt per
        // cycle, but they all collapse to the same NFA live set.
        let prop = P::seq(S::delay(0, None, S::boolean(atom(1))));
        let mut m = Monitor::new(&prop);
        for _ in 0..100 {
            m.step(&|_| false);
        }
        assert!(!m.failed());
        assert_eq!(m.state().num_pending(), 1, "identical attempts deduplicate");
    }

    #[test]
    fn monitor_state_roundtrips() {
        let prop = P::seq(S::delay(0, None, S::boolean(atom(1))));
        let mut m = Monitor::new(&prop);
        m.step(&|_| false);
        let snapshot = m.state().clone();
        m.step(&|_| false);
        assert_eq!(m.state(), &snapshot, "quiet cycles reach a fixpoint");
        let mut m2 = Monitor::new(&prop);
        m2.set_state(snapshot.clone());
        assert_eq!(m2.state(), &snapshot);
    }

    /// Encode/decode must round-trip every state shape the monitor can
    /// reach, including nested And/Or attempts and live NFA bitsets.
    #[test]
    fn monitor_state_encoding_roundtrips() {
        let first = atom(0);
        let a = P::seq(S::delay(1, Some(3), S::boolean(atom(1))));
        let b = P::seq(S::then(S::boolean(atom(2)), S::boolean(atom(3))));
        let never = P::Never(atom(9));
        let props = vec![
            P::seq(S::delay(0, None, S::boolean(atom(1)))),
            P::implies(first.clone(), P::And(vec![a.clone(), never.clone()])),
            P::implies(first, P::Or(vec![a, b, never])),
        ];
        for prop in &props {
            let mut m = Monitor::new(prop);
            for cycle in 0..4 {
                m.step(&|v| *v == cycle % 2);
                let state = m.state().clone();
                let mut words = Vec::new();
                state.encode(&mut words);
                let (back, used) = MonitorState::decode(&words).expect("well-formed encoding");
                assert_eq!(back, state, "{prop:?} at cycle {cycle}");
                assert_eq!(used, words.len(), "encoding is self-delimiting");
            }
        }
    }

    /// Malformed encodings are rejected, never misinterpreted.
    #[test]
    fn monitor_state_decode_rejects_garbage() {
        assert!(MonitorState::decode(&[]).is_none());
        assert!(MonitorState::decode(&[7]).is_none(), "bad failed flag");
        assert!(MonitorState::decode(&[0, 1, 99, 0]).is_none(), "bad tag");
        assert!(
            MonitorState::decode(&[0, u64::MAX]).is_none(),
            "implausible attempt count"
        );
        // Truncated SeqPending: claims 4 live words, provides none.
        assert!(MonitorState::decode(&[0, 1, 1, 0, 4]).is_none());
    }

    #[test]
    fn metrics_count_attempts_and_first_filter_hits() {
        let first = atom(0);
        let prop = P::implies(first, P::seq(S::delay_exact(2, S::boolean(atom(1)))));
        let mut m = Monitor::new(&prop);
        assert!(m.metrics().nfa_states > 0);
        assert_eq!(m.metrics().nfas, 1);
        m.step(&|v| *v == 0); // antecedent holds: real attempt
        m.step(&|_| false); // antecedent false: filtered
        m.step(&|v| *v == 1); // antecedent false: filtered
        let metrics = m.metrics();
        assert_eq!(metrics.attempts, 3);
        assert_eq!(metrics.first_filter_hits, 2);
    }

    #[test]
    fn failure_is_absorbing() {
        let prop = P::seq(S::boolean(atom(1)));
        let mut m = Monitor::new(&prop);
        m.step(&|_| false);
        assert!(m.failed());
        m.step(&|_| true);
        assert!(m.failed());
        assert_eq!(m.state().num_pending(), 0);
    }

    /// The full §4.3 edge-encoding property with a `first` guard and two
    /// outcome branches (the shape RTLCheck generates for Read_Values on
    /// mp): branch 1 = load-of-x-returns-0 before the store, branch 2 =
    /// store before load-of-x-returns-1.
    #[test]
    fn outcome_aware_edge_property_end_to_end() {
        // Atoms: 0 = first, 1 = Ld x @WB (any data), 2 = St x @WB,
        //        3 = Ld x @WB with data 0, 4 = Ld x @WB with data 1.
        let quiet = || SvaBool::not(SvaBool::or(atom(1), atom(2)));
        let edge = |src: SvaBool<u32>, dst: SvaBool<u32>| {
            P::seq(S::chain(vec![
                S::repeat(S::boolean(quiet()), 0, None),
                S::boolean(src),
                S::repeat(S::boolean(quiet()), 0, None),
                S::boolean(dst),
            ]))
        };
        let branch1 = edge(atom(3), atom(2)); // Ld=0 then St
        let branch2 = edge(atom(2), atom(4)); // St then Ld=1
        let prop = P::implies(atom(0), P::Or(vec![branch1, branch2]));

        // Correct trace: store at 2, load returns 1 at 4.
        assert!(!fails(&prop, &[&[0], &[], &[2], &[], &[1, 4]]));
        // Correct trace: load returns 0 at 1, store at 3.
        assert!(!fails(&prop, &[&[0], &[1, 3], &[], &[2]]));
        // Buggy trace (Figure 12): store at 2, load returns 0 at 4.
        assert!(fails(&prop, &[&[0], &[], &[2], &[], &[1, 3]]));
        // Partial trace: store happened, load still outstanding — pending,
        // not failed (§3.2's requirement).
        assert!(!fails(&prop, &[&[0], &[], &[2], &[], &[]]));
    }
}

//! Rendering of properties as SystemVerilog source text.
//!
//! The generated text matches the shape of the paper's Figures 8 and 10:
//! `assert property (@(posedge clk) first |-> …);`. Atoms are rendered by a
//! caller-supplied function, since only the instantiating crate knows what
//! an atom is (e.g. `core[1].PC_WB == 32'd28`).

use crate::ast::{Prop, Seq, SvaBool};

/// Renders a boolean expression.
pub fn bool_to_sva<A>(b: &SvaBool<A>, atom: &dyn Fn(&A) -> String) -> String {
    match b {
        SvaBool::Const(true) => "1".to_string(),
        SvaBool::Const(false) => "0".to_string(),
        SvaBool::Atom(a) => atom(a),
        SvaBool::Not(inner) => format!("(~{})", bool_to_sva(inner, atom)),
        SvaBool::And(x, y) => {
            format!("({} && {})", bool_to_sva(x, atom), bool_to_sva(y, atom))
        }
        SvaBool::Or(x, y) => {
            format!("({} || {})", bool_to_sva(x, atom), bool_to_sva(y, atom))
        }
    }
}

/// Renders a sequence.
pub fn seq_to_sva<A>(s: &Seq<A>, atom: &dyn Fn(&A) -> String) -> String {
    match s {
        Seq::Bool(b) => bool_to_sva(b, atom),
        Seq::Then(a, b) => format!("{} ##1 {}", seq_to_sva(a, atom), seq_to_sva(b, atom)),
        Seq::Repeat { body, min, max } => {
            let bound = match max {
                Some(max) if max == min => format!("[*{min}]"),
                Some(max) => format!("[*{min}:{max}]"),
                None => format!("[*{min}:$]"),
            };
            format!("({}) {bound}", seq_to_sva(body, atom))
        }
        Seq::Or(a, b) => {
            format!("({} or {})", seq_to_sva(a, atom), seq_to_sva(b, atom))
        }
    }
}

/// Renders a property.
pub fn prop_to_sva<A>(p: &Prop<A>, atom: &dyn Fn(&A) -> String) -> String {
    match p {
        Prop::Seq(s) => format!("({})", seq_to_sva(s, atom)),
        Prop::Implies { antecedent, body } => {
            format!(
                "{} |-> {}",
                bool_to_sva(antecedent, atom),
                prop_to_sva(body, atom)
            )
        }
        Prop::And(children) => join_children(children, " and ", atom),
        Prop::Or(children) => join_children(children, " or ", atom),
        Prop::Never(b) => format!("(not (##[0:$] {}))", bool_to_sva(b, atom)),
    }
}

fn join_children<A>(children: &[Prop<A>], sep: &str, atom: &dyn Fn(&A) -> String) -> String {
    if children.is_empty() {
        return "(1)".to_string();
    }
    let parts: Vec<String> = children.iter().map(|c| prop_to_sva(c, atom)).collect();
    format!("({})", parts.join(sep))
}

/// Renders a complete `assert property` directive on the given clock.
pub fn assert_directive<A>(p: &Prop<A>, atom: &dyn Fn(&A) -> String) -> String {
    format!("assert property (@(posedge clk) {});", prop_to_sva(p, atom))
}

/// Renders a complete `assume property` directive on the given clock.
pub fn assume_directive<A>(p: &Prop<A>, atom: &dyn Fn(&A) -> String) -> String {
    format!("assume property (@(posedge clk) {});", prop_to_sva(p, atom))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn atom(a: &u32) -> String {
        format!("sig{a}")
    }

    #[test]
    fn renders_figure10_shape() {
        // first |-> ((~(ld || st))[*0:$] ##1 ld0 ##1 (~(ld || st))[*0:$] ##1 st)
        let quiet = SvaBool::not(SvaBool::or(SvaBool::atom(1u32), SvaBool::atom(2)));
        let seq = Seq::chain(vec![
            Seq::repeat(Seq::boolean(quiet.clone()), 0, None),
            Seq::boolean(SvaBool::atom(3)),
            Seq::repeat(Seq::boolean(quiet), 0, None),
            Seq::boolean(SvaBool::atom(2)),
        ]);
        let prop = Prop::implies(SvaBool::atom(0), Prop::seq(seq));
        let text = assert_directive(&prop, &atom);
        assert!(
            text.starts_with("assert property (@(posedge clk) sig0 |-> "),
            "{text}"
        );
        assert!(text.contains("[*0:$]"), "{text}");
        assert!(text.contains("##1 sig3 ##1"), "{text}");
        assert!(text.contains("(~(sig1 || sig2))"), "{text}");
        assert!(text.ends_with(");"), "{text}");
    }

    #[test]
    fn renders_delays_and_bounds() {
        let s: Seq<u32> = Seq::delay(2, Some(5), Seq::boolean(SvaBool::atom(7)));
        let text = seq_to_sva(&s, &atom);
        assert_eq!(text, "(1) [*2:5] ##1 sig7");
        let s: Seq<u32> = Seq::repeat(Seq::boolean(SvaBool::atom(7)), 3, Some(3));
        assert_eq!(seq_to_sva(&s, &atom), "(sig7) [*3]");
    }

    #[test]
    fn renders_property_connectives() {
        let a: Prop<u32> = Prop::seq(Seq::boolean(SvaBool::atom(1)));
        let b: Prop<u32> = Prop::seq(Seq::boolean(SvaBool::atom(2)));
        let text = prop_to_sva(&Prop::And(vec![a.clone(), b.clone()]), &atom);
        assert_eq!(text, "((sig1) and (sig2))");
        let text = prop_to_sva(&Prop::Or(vec![a, b]), &atom);
        assert_eq!(text, "((sig1) or (sig2))");
    }

    #[test]
    fn renders_assume_and_never() {
        let p: Prop<u32> = Prop::Never(SvaBool::atom(4));
        let text = assume_directive(&p, &atom);
        assert!(text.starts_with("assume property"), "{text}");
        assert!(text.contains("not (##[0:$] sig4)"), "{text}");
    }
}

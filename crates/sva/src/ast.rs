//! Abstract syntax for the SVA subset.
//!
//! All types are generic over the atom type `A` — the opaque boolean
//! conditions sampled each clock cycle. The RTLCheck core instantiates `A`
//! with RTL signal comparisons; tests often use small integers.

/// A boolean expression over atoms, sampled at one clock cycle.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum SvaBool<A> {
    /// Constant truth value.
    Const(bool),
    /// An opaque atom, evaluated by the environment.
    Atom(A),
    /// Negation.
    Not(Box<SvaBool<A>>),
    /// Conjunction.
    And(Box<SvaBool<A>>, Box<SvaBool<A>>),
    /// Disjunction.
    Or(Box<SvaBool<A>>, Box<SvaBool<A>>),
}

impl<A> SvaBool<A> {
    /// An atom.
    pub fn atom(a: A) -> Self {
        SvaBool::Atom(a)
    }

    /// `~b`.
    #[allow(clippy::should_implement_trait)]
    pub fn not(b: SvaBool<A>) -> Self {
        SvaBool::Not(Box::new(b))
    }

    /// `a && b`.
    pub fn and(a: SvaBool<A>, b: SvaBool<A>) -> Self {
        SvaBool::And(Box::new(a), Box::new(b))
    }

    /// `a || b`.
    pub fn or(a: SvaBool<A>, b: SvaBool<A>) -> Self {
        SvaBool::Or(Box::new(a), Box::new(b))
    }

    /// Conjunction of any number of terms (`true` when empty).
    pub fn all(terms: Vec<SvaBool<A>>) -> Self {
        let mut it = terms.into_iter();
        match it.next() {
            None => SvaBool::Const(true),
            Some(first) => it.fold(first, SvaBool::and),
        }
    }

    /// Disjunction of any number of terms (`false` when empty).
    pub fn any(terms: Vec<SvaBool<A>>) -> Self {
        let mut it = terms.into_iter();
        match it.next() {
            None => SvaBool::Const(false),
            Some(first) => it.fold(first, SvaBool::or),
        }
    }

    /// Evaluates under an atom valuation.
    pub fn eval(&self, env: &dyn Fn(&A) -> bool) -> bool {
        match self {
            SvaBool::Const(c) => *c,
            SvaBool::Atom(a) => env(a),
            SvaBool::Not(b) => !b.eval(env),
            SvaBool::And(a, b) => a.eval(env) && b.eval(env),
            SvaBool::Or(a, b) => a.eval(env) || b.eval(env),
        }
    }

    /// Visits every atom, left to right.
    pub fn for_each_atom<F: FnMut(&A)>(&self, f: &mut F) {
        match self {
            SvaBool::Const(_) => {}
            SvaBool::Atom(a) => f(a),
            SvaBool::Not(b) => b.for_each_atom(f),
            SvaBool::And(a, b) | SvaBool::Or(a, b) => {
                a.for_each_atom(f);
                b.for_each_atom(f);
            }
        }
    }

    /// Rebuilds the expression with every atom mapped through `f`.
    pub fn map_atoms<B, F: FnMut(&A) -> B>(&self, f: &mut F) -> SvaBool<B> {
        match self {
            SvaBool::Const(c) => SvaBool::Const(*c),
            SvaBool::Atom(a) => SvaBool::Atom(f(a)),
            SvaBool::Not(b) => SvaBool::not(b.map_atoms(f)),
            SvaBool::And(a, b) => SvaBool::and(a.map_atoms(f), b.map_atoms(f)),
            SvaBool::Or(a, b) => SvaBool::or(a.map_atoms(f), b.map_atoms(f)),
        }
    }
}

/// A sequence (SVA's regular-expression-like layer over clock cycles).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Seq<A> {
    /// Matches exactly one cycle where the boolean holds.
    Bool(SvaBool<A>),
    /// `a ##1 b`: `b` begins the cycle after `a` ends.
    Then(Box<Seq<A>>, Box<Seq<A>>),
    /// `s[*min:max]`: consecutive repetition; `max = None` is `$`
    /// (unbounded). `min = 0` permits the empty match.
    Repeat {
        /// Repeated sequence.
        body: Box<Seq<A>>,
        /// Minimum repetitions.
        min: u32,
        /// Maximum repetitions (`None` = unbounded).
        max: Option<u32>,
    },
    /// Sequence disjunction: matches if either operand matches.
    Or(Box<Seq<A>>, Box<Seq<A>>),
}

impl<A> Seq<A> {
    /// A single-cycle boolean sequence.
    pub fn boolean(b: SvaBool<A>) -> Self {
        Seq::Bool(b)
    }

    /// `a ##1 b`.
    pub fn then(a: Seq<A>, b: Seq<A>) -> Self {
        Seq::Then(Box::new(a), Box::new(b))
    }

    /// `s[*min:max]`.
    pub fn repeat(body: Seq<A>, min: u32, max: Option<u32>) -> Self {
        Seq::Repeat {
            body: Box::new(body),
            min,
            max,
        }
    }

    /// `##[min:max] s`: an arbitrary delay of `min..=max` cycles, then `s`.
    /// `max = None` renders as `##[min:$]`.
    pub fn delay(min: u32, max: Option<u32>, s: Seq<A>) -> Self {
        let any = Seq::repeat(Seq::boolean(SvaBool::Const(true)), min, max);
        Seq::then(any, s)
    }

    /// `##n s`: exactly `n` cycles of delay, then `s`.
    pub fn delay_exact(n: u32, s: Seq<A>) -> Self {
        Seq::delay(n, Some(n), s)
    }

    /// `a ##1 b ##1 c ##1 …` over a list.
    ///
    /// # Panics
    ///
    /// Panics if `parts` is empty.
    pub fn chain(parts: Vec<Seq<A>>) -> Self {
        let mut it = parts.into_iter();
        let first = it.next().expect("chain of at least one sequence");
        it.fold(first, Seq::then)
    }

    /// Visits every atom, left to right.
    pub fn for_each_atom<F: FnMut(&A)>(&self, f: &mut F) {
        match self {
            Seq::Bool(b) => b.for_each_atom(f),
            Seq::Then(a, b) | Seq::Or(a, b) => {
                a.for_each_atom(f);
                b.for_each_atom(f);
            }
            Seq::Repeat { body, .. } => body.for_each_atom(f),
        }
    }

    /// Rebuilds the sequence with every atom mapped through `f`.
    pub fn map_atoms<B, F: FnMut(&A) -> B>(&self, f: &mut F) -> Seq<B> {
        match self {
            Seq::Bool(b) => Seq::Bool(b.map_atoms(f)),
            Seq::Then(a, b) => Seq::then(a.map_atoms(f), b.map_atoms(f)),
            Seq::Repeat { body, min, max } => Seq::repeat(body.map_atoms(f), *min, *max),
            Seq::Or(a, b) => Seq::Or(Box::new(a.map_atoms(f)), Box::new(b.map_atoms(f))),
        }
    }
}

/// A property.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Prop<A> {
    /// A (weak) sequence property: holds unless the sequence can no longer
    /// match.
    Seq(Seq<A>),
    /// `b |-> p`: if the boolean holds at the attempt's start cycle, `p`
    /// must hold starting that same cycle.
    Implies {
        /// Boolean antecedent, sampled at the attempt's first cycle.
        antecedent: SvaBool<A>,
        /// Consequent property.
        body: Box<Prop<A>>,
    },
    /// Property conjunction (`and`).
    And(Vec<Prop<A>>),
    /// Property disjunction (`or`).
    Or(Vec<Prop<A>>),
    /// Fails if the boolean ever holds at or after the attempt's start.
    /// (Used for `NeverNode` constraints; equivalent to
    /// `always ~b` from the attempt's start.)
    Never(SvaBool<A>),
}

impl<A> Prop<A> {
    /// A sequence property.
    pub fn seq(s: Seq<A>) -> Self {
        Prop::Seq(s)
    }

    /// `b |-> p`.
    pub fn implies(antecedent: SvaBool<A>, body: Prop<A>) -> Self {
        Prop::Implies {
            antecedent,
            body: Box::new(body),
        }
    }

    /// Property conjunction; unwraps singletons and treats empty as `true`
    /// (a property that always holds).
    pub fn all(mut props: Vec<Prop<A>>) -> Self {
        match props.len() {
            1 => props.pop().expect("len checked"),
            _ => Prop::And(props),
        }
    }

    /// Property disjunction; unwraps singletons. An empty disjunction is
    /// unsatisfiable (fails immediately).
    pub fn any(mut props: Vec<Prop<A>>) -> Self {
        match props.len() {
            1 => props.pop().expect("len checked"),
            _ => Prop::Or(props),
        }
    }

    /// Visits every atom, left to right.
    pub fn for_each_atom<F: FnMut(&A)>(&self, f: &mut F) {
        match self {
            Prop::Seq(s) => s.for_each_atom(f),
            Prop::Implies { antecedent, body } => {
                antecedent.for_each_atom(f);
                body.for_each_atom(f);
            }
            Prop::And(ps) | Prop::Or(ps) => {
                for p in ps {
                    p.for_each_atom(f);
                }
            }
            Prop::Never(b) => b.for_each_atom(f),
        }
    }

    /// Rebuilds the property with every atom mapped through `f`. An
    /// injective mapping preserves monitor behaviour exactly: the compiled
    /// NFAs are structural over the atom positions, so a monitor of the
    /// mapped property steps identically to a monitor of the original.
    pub fn map_atoms<B, F: FnMut(&A) -> B>(&self, f: &mut F) -> Prop<B> {
        match self {
            Prop::Seq(s) => Prop::Seq(s.map_atoms(f)),
            Prop::Implies { antecedent, body } => Prop::Implies {
                antecedent: antecedent.map_atoms(f),
                body: Box::new(body.map_atoms(f)),
            },
            Prop::And(ps) => Prop::And(ps.iter().map(|p| p.map_atoms(f)).collect()),
            Prop::Or(ps) => Prop::Or(ps.iter().map(|p| p.map_atoms(f)).collect()),
            Prop::Never(b) => Prop::Never(b.map_atoms(f)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bool_eval() {
        let b: SvaBool<u32> = SvaBool::and(
            SvaBool::atom(1),
            SvaBool::or(SvaBool::not(SvaBool::atom(2)), SvaBool::Const(false)),
        );
        assert!(b.eval(&|v| *v == 1));
        assert!(!b.eval(&|v| *v == 2));
        assert!(!b.eval(&|_| true), "atom 2 true makes the Or false");
    }

    #[test]
    fn all_and_any_fold() {
        let t: SvaBool<u32> = SvaBool::all(vec![]);
        assert!(t.eval(&|_| false));
        let f: SvaBool<u32> = SvaBool::any(vec![]);
        assert!(!f.eval(&|_| true));
        let both = SvaBool::all(vec![SvaBool::atom(0u32), SvaBool::atom(1)]);
        assert!(both.eval(&|_| true));
        assert!(!both.eval(&|v| *v == 0));
    }

    #[test]
    fn chain_builds_left_nested_thens() {
        let s: Seq<u32> = Seq::chain(vec![
            Seq::boolean(SvaBool::atom(0)),
            Seq::boolean(SvaBool::atom(1)),
            Seq::boolean(SvaBool::atom(2)),
        ]);
        match s {
            Seq::Then(ab, c) => {
                assert!(matches!(*c, Seq::Bool(_)));
                assert!(matches!(*ab, Seq::Then(..)));
            }
            other => panic!("expected Then, got {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn chain_rejects_empty() {
        let _: Seq<u32> = Seq::chain(vec![]);
    }

    #[test]
    fn prop_fold_unwraps_singletons() {
        let p: Prop<u32> = Prop::all(vec![Prop::seq(Seq::boolean(SvaBool::atom(0)))]);
        assert!(matches!(p, Prop::Seq(_)));
        let q: Prop<u32> = Prop::any(vec![
            Prop::seq(Seq::boolean(SvaBool::atom(0))),
            Prop::seq(Seq::boolean(SvaBool::atom(1))),
        ]);
        assert!(matches!(q, Prop::Or(ref v) if v.len() == 2));
    }
}

//! Parser for the SVA subset emitted by [`crate::emit`].
//!
//! Together with the emitter this makes the property representation
//! round-trippable: the per-test `.sva` files RTLCheck writes can be read
//! back for inspection, diffing, or re-verification. Atoms are parsed by a
//! caller-supplied function (the inverse of the emitter's atom renderer).
//!
//! Because `or` appears at both the sequence and property levels with
//! identical (weak) semantics, the parser canonicalises: parenthesised
//! `X or Y` groups whose operands are sequences parse as sequence
//! disjunction. Round-trip equality therefore holds *semantically* (same
//! monitor behaviour) rather than syntactically; see the crate's
//! `emit_roundtrip` tests.

use std::error::Error;
use std::fmt;

use crate::ast::{Prop, Seq, SvaBool};

/// An error raised while parsing SVA text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseSvaError {
    /// Byte offset of the error in the input.
    pub at: usize,
    /// Description.
    pub message: String,
}

impl fmt::Display for ParseSvaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SVA parse error at byte {}: {}", self.at, self.message)
    }
}

impl Error for ParseSvaError {}

/// Which directive keyword introduced a parsed property.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DirectiveKeyword {
    /// `assert property (…);`
    Assert,
    /// `assume property (…);`
    Assume,
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Tok {
    LParen,
    RParen,
    Implies,  // |->
    AndAnd,   // &&
    OrOr,     // ||
    Tilde,    // ~
    DelayOne, // ##1 (and ##N generally, carrying N)
    DelayN(u32),
    DelayRange(u32, Option<u32>), // ##[m:n] / ##[m:$]
    Repeat(u32, Option<u32>),     // [*m:n] / [*m:$] / [*m]
    Word(String),                 // and / or / not / 1 / 0 / atom fragments
    Semi,
}

fn lex(src: &str) -> Result<Vec<(Tok, usize)>, ParseSvaError> {
    let b = src.as_bytes();
    let mut i = 0;
    let mut toks = Vec::new();
    while i < b.len() {
        let c = b[i] as char;
        match c {
            ' ' | '\t' | '\n' | '\r' => i += 1,
            '(' => {
                toks.push((Tok::LParen, i));
                i += 1;
            }
            ')' => {
                toks.push((Tok::RParen, i));
                i += 1;
            }
            ';' => {
                toks.push((Tok::Semi, i));
                i += 1;
            }
            '~' => {
                toks.push((Tok::Tilde, i));
                i += 1;
            }
            '|' if src[i..].starts_with("|->") => {
                toks.push((Tok::Implies, i));
                i += 3;
            }
            '|' if src[i..].starts_with("||") => {
                toks.push((Tok::OrOr, i));
                i += 2;
            }
            '&' if src[i..].starts_with("&&") => {
                toks.push((Tok::AndAnd, i));
                i += 2;
            }
            '#' if src[i..].starts_with("##") => {
                let start = i;
                i += 2;
                if i < b.len() && b[i] == b'[' {
                    // ##[m:n] / ##[m:$]
                    i += 1;
                    let num_start = i;
                    while i < b.len() && b[i].is_ascii_digit() {
                        i += 1;
                    }
                    let min: u32 = src[num_start..i]
                        .parse()
                        .map_err(|_| err(start, "malformed ## range"))?;
                    if i >= b.len() || b[i] != b':' {
                        return Err(err(start, "malformed ## range"));
                    }
                    i += 1;
                    let max = if i < b.len() && b[i] == b'$' {
                        i += 1;
                        None
                    } else {
                        let num_start = i;
                        while i < b.len() && b[i].is_ascii_digit() {
                            i += 1;
                        }
                        Some(
                            src[num_start..i]
                                .parse()
                                .map_err(|_| err(start, "malformed ## range"))?,
                        )
                    };
                    if i >= b.len() || b[i] != b']' {
                        return Err(err(start, "unterminated ## range"));
                    }
                    i += 1;
                    toks.push((Tok::DelayRange(min, max), start));
                } else {
                    let num_start = i;
                    while i < b.len() && b[i].is_ascii_digit() {
                        i += 1;
                    }
                    let n: u32 = src[num_start..i]
                        .parse()
                        .map_err(|_| err(start, "malformed ## delay"))?;
                    toks.push((
                        if n == 1 {
                            Tok::DelayOne
                        } else {
                            Tok::DelayN(n)
                        },
                        start,
                    ));
                }
            }
            '[' if src[i..].starts_with("[*") => {
                let start = i;
                i += 2;
                let num_start = i;
                while i < b.len() && b[i].is_ascii_digit() {
                    i += 1;
                }
                let min: u32 = src[num_start..i]
                    .parse()
                    .map_err(|_| err(start, "malformed repetition bound"))?;
                let max = if i < b.len() && b[i] == b':' {
                    i += 1;
                    if i < b.len() && b[i] == b'$' {
                        i += 1;
                        None
                    } else {
                        let num_start = i;
                        while i < b.len() && b[i].is_ascii_digit() {
                            i += 1;
                        }
                        Some(
                            src[num_start..i]
                                .parse()
                                .map_err(|_| err(start, "malformed repetition bound"))?,
                        )
                    }
                } else {
                    Some(min)
                };
                if i >= b.len() || b[i] != b']' {
                    return Err(err(start, "unterminated repetition"));
                }
                i += 1;
                toks.push((Tok::Repeat(min, max), start));
            }
            _ => {
                // A "word": a run of characters that are not structural.
                // Atom text like `core1_PC_WB == 32'd28` is several words
                // which the atom parser reassembles.
                let start = i;
                while i < b.len() {
                    let d = b[i] as char;
                    if d.is_whitespace()
                        || "();~".contains(d)
                        || src[i..].starts_with("|->")
                        || src[i..].starts_with("||")
                        || src[i..].starts_with("&&")
                        || src[i..].starts_with("##")
                        || src[i..].starts_with("[*")
                    {
                        break;
                    }
                    i += 1;
                }
                if start == i {
                    return Err(err(start, format!("unexpected character `{c}`")));
                }
                toks.push((Tok::Word(src[start..i].to_string()), start));
            }
        }
    }
    Ok(toks)
}

fn err(at: usize, message: impl Into<String>) -> ParseSvaError {
    ParseSvaError {
        at,
        message: message.into(),
    }
}

/// Parses a complete `assert property`/`assume property` directive as
/// emitted by [`crate::emit::assert_directive`] /
/// [`crate::emit::assume_directive`].
///
/// `atom` parses one atom from its textual rendering (e.g.
/// `"core1_PC_WB == 32'd28"`); it receives the space-joined words of the
/// atom position.
///
/// # Errors
///
/// Returns a [`ParseSvaError`] on any lexical or syntactic problem, or when
/// `atom` rejects an atom's text.
pub fn parse_directive<A>(
    src: &str,
    atom: &dyn Fn(&str) -> Option<A>,
) -> Result<(DirectiveKeyword, Prop<A>), ParseSvaError> {
    let src = src.trim();
    let (keyword, rest) = if let Some(r) = src.strip_prefix("assert property") {
        (DirectiveKeyword::Assert, r)
    } else if let Some(r) = src.strip_prefix("assume property") {
        (DirectiveKeyword::Assume, r)
    } else {
        return Err(err(0, "expected `assert property` or `assume property`"));
    };
    let rest = rest.trim_start();
    let rest = rest
        .strip_prefix('(')
        .ok_or_else(|| err(0, "expected `(` after `property`"))?;
    let rest = rest.trim_start();
    let rest = rest
        .strip_prefix("@(posedge clk)")
        .ok_or_else(|| err(0, "expected `@(posedge clk)` clocking event"))?;
    let rest = rest
        .trim_end()
        .strip_suffix(';')
        .ok_or_else(|| err(src.len(), "expected trailing `;`"))?
        .trim_end()
        .strip_suffix(')')
        .ok_or_else(|| err(src.len(), "expected closing `)`"))?;

    let toks = lex(rest)?;
    let mut p = Parser { toks, pos: 0, atom };
    let prop = p.prop()?;
    if p.pos != p.toks.len() {
        return Err(err(p.at(), "trailing tokens after property"));
    }
    Ok((keyword, prop))
}

/// Parses a standalone property expression (no directive wrapper).
pub fn parse_prop<A>(
    src: &str,
    atom: &dyn Fn(&str) -> Option<A>,
) -> Result<Prop<A>, ParseSvaError> {
    let toks = lex(src)?;
    let mut p = Parser { toks, pos: 0, atom };
    let prop = p.prop()?;
    if p.pos != p.toks.len() {
        return Err(err(p.at(), "trailing tokens after property"));
    }
    Ok(prop)
}

struct Parser<'a, A> {
    toks: Vec<(Tok, usize)>,
    pos: usize,
    atom: &'a dyn Fn(&str) -> Option<A>,
}

/// An element parsed inside parentheses: not yet committed to being a
/// sequence or a property.
enum Elem<A> {
    Seq(Seq<A>),
    Prop(Prop<A>),
}

impl<A> Elem<A> {
    fn into_prop(self) -> Prop<A> {
        match self {
            Elem::Seq(s) => Prop::seq(s),
            Elem::Prop(p) => p,
        }
    }

    fn into_seq(self, at: usize) -> Result<Seq<A>, ParseSvaError> {
        match self {
            Elem::Seq(s) => Ok(s),
            Elem::Prop(_) => Err(err(at, "expected a sequence, found a property")),
        }
    }
}

impl<A> Parser<'_, A> {
    fn at(&self) -> usize {
        self.toks.get(self.pos).map_or(usize::MAX, |(_, at)| *at)
    }

    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|(t, _)| t)
    }

    fn bump(&mut self) -> Option<Tok> {
        let t = self.peek().cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, tok: Tok) -> Result<(), ParseSvaError> {
        let at = self.at();
        match self.bump() {
            Some(t) if t == tok => Ok(()),
            other => Err(err(at, format!("expected {tok:?}, found {other:?}"))),
        }
    }

    /// prop := bool '|->' prop | element
    fn prop(&mut self) -> Result<Prop<A>, ParseSvaError> {
        // Try a boolean antecedent followed by |->.
        let save = self.pos;
        if let Ok(b) = self.boolean() {
            if self.peek() == Some(&Tok::Implies) {
                self.bump();
                let body = self.prop()?;
                return Ok(Prop::implies(b, body));
            }
        }
        self.pos = save;
        Ok(self.element()?.into_prop())
    }

    /// element := primary (('##N' | '##[m:n]') primary)*
    fn element(&mut self) -> Result<Elem<A>, ParseSvaError> {
        let mut cur = self.primary()?;
        while matches!(
            self.peek(),
            Some(Tok::DelayOne) | Some(Tok::DelayN(_)) | Some(Tok::DelayRange(..))
        ) {
            let at = self.at();
            let delay = self.bump().expect("peeked a delay");
            let lhs = cur.into_seq(at)?;
            let rhs = self.primary()?.into_seq(self.at())?;
            let rhs = match delay {
                Tok::DelayOne => rhs,
                // `a ##N b` = a, N-1 arbitrary cycles, b.
                Tok::DelayN(n) if n >= 1 => Seq::delay_exact(n - 1, rhs),
                Tok::DelayN(_) => {
                    return Err(err(at, "##0 fusion is outside the supported subset"))
                }
                Tok::DelayRange(min, max) => {
                    let min = min
                        .checked_sub(1)
                        .ok_or_else(|| err(at, "##[0:…] between sequences is unsupported"))?;
                    Seq::delay(min, max.map(|m| m - 1), rhs)
                }
                _ => unreachable!("matched a delay token"),
            };
            cur = Elem::Seq(Seq::then(lhs, rhs));
        }
        Ok(cur)
    }

    /// primary := '(' group ')' ['[*m:n]'] | boolean
    fn primary(&mut self) -> Result<Elem<A>, ParseSvaError> {
        if self.peek() == Some(&Tok::LParen) {
            // Could be a parenthesised boolean (e.g. `(a && b)`), a group,
            // or `not (…)`. Try boolean first — booleans are also valid
            // single-cycle sequences, so prefer the tighter reading and
            // let the caller lift as needed.
            let save = self.pos;
            if let Ok(b) = self.boolean() {
                // A boolean followed by a repetition is a sequence.
                return self.apply_repeat(Elem::Seq(Seq::boolean(b)));
            }
            self.pos = save;
            self.bump(); // (
            if matches!(self.peek(), Some(Tok::Word(w)) if w == "not") {
                self.bump();
                // not (##[0:$] b)
                self.expect(Tok::LParen)?;
                match self.bump() {
                    Some(Tok::DelayRange(0, None)) => {}
                    other => {
                        return Err(err(self.at(), format!("expected ##[0:$], found {other:?}")))
                    }
                }
                let b = self.boolean()?;
                self.expect(Tok::RParen)?;
                self.expect(Tok::RParen)?;
                return Ok(Elem::Prop(Prop::Never(b)));
            }
            let inner = self.group()?;
            self.expect(Tok::RParen)?;
            self.apply_repeat(inner)
        } else {
            let b = self.boolean()?;
            self.apply_repeat(Elem::Seq(Seq::boolean(b)))
        }
    }

    fn apply_repeat(&mut self, e: Elem<A>) -> Result<Elem<A>, ParseSvaError> {
        if let Some(Tok::Repeat(min, max)) = self.peek().cloned() {
            let at = self.at();
            self.bump();
            let s = e.into_seq(at)?;
            Ok(Elem::Seq(Seq::repeat(s, min, max)))
        } else {
            Ok(e)
        }
    }

    /// group := element (('and'|'or') element)*
    fn group(&mut self) -> Result<Elem<A>, ParseSvaError> {
        let mut items = vec![self.element()?];
        let mut op: Option<&'static str> = None;
        loop {
            let word = match self.peek() {
                Some(Tok::Word(w)) if w == "and" => "and",
                Some(Tok::Word(w)) if w == "or" => "or",
                _ => break,
            };
            match op {
                None => op = Some(word),
                Some(prev) if prev != word => {
                    return Err(err(self.at(), "mixed and/or without parentheses"))
                }
                _ => {}
            }
            self.bump();
            items.push(self.element()?);
        }
        match op {
            None => Ok(items.pop().expect("at least one element")),
            Some("or") => {
                // Canonicalise: if every operand is a sequence, use
                // sequence disjunction (identical weak semantics).
                if items.iter().all(|e| matches!(e, Elem::Seq(_))) {
                    let mut it = items.into_iter();
                    let first = match it.next() {
                        Some(Elem::Seq(s)) => s,
                        _ => unreachable!("all are sequences"),
                    };
                    let s = it.fold(first, |acc, e| match e {
                        Elem::Seq(s) => Seq::Or(Box::new(acc), Box::new(s)),
                        Elem::Prop(_) => unreachable!("all are sequences"),
                    });
                    Ok(Elem::Seq(s))
                } else {
                    Ok(Elem::Prop(Prop::any(
                        items.into_iter().map(Elem::into_prop).collect(),
                    )))
                }
            }
            Some(_) => Ok(Elem::Prop(Prop::all(
                items.into_iter().map(Elem::into_prop).collect(),
            ))),
        }
    }

    /// boolean := '(' boolean ')' | '(~ b)' | '(a && b)' | '(a || b)'
    ///          | '1' | '0' | atom-words
    ///
    /// The emitter parenthesises every compound boolean, so precedence is
    /// trivial; bare word runs are atoms.
    fn boolean(&mut self) -> Result<SvaBool<A>, ParseSvaError> {
        match self.peek() {
            Some(Tok::Tilde) => {
                self.bump();
                Ok(SvaBool::not(self.boolean()?))
            }
            Some(Tok::LParen) => {
                let save = self.pos;
                self.bump();
                let lhs = match self.boolean() {
                    Ok(b) => b,
                    Err(e) => {
                        self.pos = save;
                        return Err(e);
                    }
                };
                match self.bump() {
                    Some(Tok::RParen) => Ok(lhs),
                    Some(Tok::AndAnd) => {
                        let rhs = self.boolean()?;
                        self.expect(Tok::RParen)?;
                        Ok(SvaBool::and(lhs, rhs))
                    }
                    Some(Tok::OrOr) => {
                        let rhs = self.boolean()?;
                        self.expect(Tok::RParen)?;
                        Ok(SvaBool::or(lhs, rhs))
                    }
                    other => {
                        let at = self.at();
                        self.pos = save;
                        Err(err(
                            at,
                            format!("expected boolean operator, found {other:?}"),
                        ))
                    }
                }
            }
            Some(Tok::Word(_)) => {
                // Consume a run of words as one atom (e.g. `x == 32'd1`).
                let mut words = Vec::new();
                while let Some(Tok::Word(w)) = self.peek() {
                    if w == "and" || w == "or" || w == "not" {
                        break;
                    }
                    words.push(w.clone());
                    self.bump();
                }
                if words.is_empty() {
                    return Err(err(self.at(), "expected an atom"));
                }
                let text = words.join(" ");
                match text.as_str() {
                    "1" => Ok(SvaBool::Const(true)),
                    "0" => Ok(SvaBool::Const(false)),
                    _ => (self.atom)(&text)
                        .map(SvaBool::Atom)
                        .ok_or_else(|| err(self.at(), format!("unrecognised atom `{text}`"))),
                }
            }
            other => Err(err(self.at(), format!("expected boolean, found {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::emit;

    /// Toy atoms: `sigN`.
    fn atom(s: &str) -> Option<u32> {
        s.strip_prefix("sig")?.parse().ok()
    }

    fn roundtrip(p: &Prop<u32>) -> Prop<u32> {
        let text = emit::assert_directive(p, &|a| format!("sig{a}"));
        let (kw, parsed) = parse_directive(&text, &atom).unwrap_or_else(|e| {
            panic!("failed to parse emitted text: {e}\n{text}");
        });
        assert_eq!(kw, DirectiveKeyword::Assert);
        parsed
    }

    #[test]
    fn parses_simple_guarded_sequence() {
        let p = Prop::implies(
            SvaBool::atom(0u32),
            Prop::seq(Seq::then(
                Seq::boolean(SvaBool::atom(1)),
                Seq::boolean(SvaBool::atom(2)),
            )),
        );
        assert_eq!(roundtrip(&p), p);
    }

    #[test]
    fn parses_strict_edge_shape() {
        let quiet = SvaBool::not(SvaBool::or(SvaBool::atom(1u32), SvaBool::atom(2)));
        let p = Prop::implies(
            SvaBool::atom(0),
            Prop::seq(Seq::chain(vec![
                Seq::repeat(Seq::boolean(quiet.clone()), 0, None),
                Seq::boolean(SvaBool::atom(1)),
                Seq::repeat(Seq::boolean(quiet), 0, None),
                Seq::boolean(SvaBool::atom(2)),
            ])),
        );
        assert_eq!(roundtrip(&p), p);
    }

    #[test]
    fn parses_never_and_assume() {
        let p: Prop<u32> = Prop::Never(SvaBool::atom(7));
        let text = emit::assume_directive(&p, &|a| format!("sig{a}"));
        let (kw, parsed) = parse_directive(&text, &atom).unwrap();
        assert_eq!(kw, DirectiveKeyword::Assume);
        assert_eq!(parsed, p);
    }

    #[test]
    fn parses_property_conjunction() {
        let p = Prop::implies(
            SvaBool::atom(0u32),
            Prop::And(vec![
                Prop::seq(Seq::boolean(SvaBool::atom(1))),
                Prop::seq(Seq::boolean(SvaBool::atom(2))),
            ]),
        );
        // `and` of two single-cycle sequences parses back as a property
        // conjunction of sequences (no canonicalisation for `and`).
        assert_eq!(roundtrip(&p), p);
    }

    #[test]
    fn sequence_or_canonicalisation() {
        // A property-level Or of two sequences parses back as a sequence
        // Or — semantically identical under weak evaluation.
        let a = Seq::boolean(SvaBool::atom(1u32));
        let b = Seq::then(
            Seq::boolean(SvaBool::atom(2)),
            Seq::boolean(SvaBool::atom(3)),
        );
        let p = Prop::implies(
            SvaBool::atom(0),
            Prop::Or(vec![Prop::seq(a.clone()), Prop::seq(b.clone())]),
        );
        let expected = Prop::implies(
            SvaBool::atom(0),
            Prop::seq(Seq::Or(Box::new(a), Box::new(b))),
        );
        assert_eq!(roundtrip(&p), expected);
    }

    #[test]
    fn parses_bounded_delays_and_repeats() {
        let p: Prop<u32> = Prop::seq(Seq::delay(2, Some(5), Seq::boolean(SvaBool::atom(3))));
        assert_eq!(roundtrip(&p), p);
        let q: Prop<u32> = Prop::seq(Seq::repeat(Seq::boolean(SvaBool::atom(3)), 2, Some(2)));
        assert_eq!(roundtrip(&q), q);
    }

    #[test]
    fn rejects_malformed_inputs() {
        assert!(parse_directive::<u32>("assert (x);", &atom).is_err());
        assert!(parse_directive::<u32>("assert property (@(posedge clk) sig1)", &atom).is_err());
        assert!(
            parse_directive::<u32>("assert property (@(posedge clk) bogus atom);", &atom).is_err()
        );
        assert!(
            parse_prop::<u32>("(sig1 and sig2 or sig3)", &atom).is_err(),
            "mixed and/or"
        );
        assert!(parse_prop::<u32>("(sig1 ##", &atom).is_err());
        assert!(parse_prop::<u32>("(sig1) [*2", &atom).is_err());
    }

    #[test]
    fn error_positions_are_byte_offsets() {
        let e = parse_prop::<u32>("(sig1 && zork)", &atom).unwrap_err();
        assert!(e.at > 0 && e.at < 20, "{e}");
    }
}

//! A SystemVerilog Assertions (SVA) subset with precise weak-safety
//! semantics.
//!
//! RTLCheck's generated properties use a small but semantically subtle SVA
//! fragment: boolean conditions over design signals, sequence concatenation
//! (`##1`), bounded and unbounded delay (`##[m:n]`, `##[0:$]`), consecutive
//! repetition (`[*m:n]`, `[*0:$]`), sequence disjunction, property
//! `and`/`or`, and implication with a boolean antecedent (`first |-> …`).
//! This crate implements that fragment:
//!
//! * [`ast`] — the expression/sequence/property syntax.
//! * [`nfa`] — Thompson-style compilation of sequences to NFAs with
//!   epsilon transitions, plus a compact bitset state representation.
//! * [`monitor`] — online evaluation faithful to the semantics the paper's
//!   translation challenges hinge on (§3):
//!   - a **match attempt starts at every clock cycle** (§3.4) — RTLCheck's
//!     `first |->` guard exists precisely to filter out all but the first;
//!   - sequences are checked **weakly**: an attempt fails only when its NFA
//!     has no live states and has not matched, so partial executions that
//!     could still extend to a match never fail (§3.1);
//!   - assumptions are enforced only **up to the present cycle** — there is
//!     no lookahead for future violation (§3.1/§3.2).
//! * [`emit`] — rendering as SystemVerilog source text (the artifacts a
//!   JasperGold run would consume; cf. the paper's Figures 8 and 10).
//!
//! # Example
//!
//! ```
//! use rtlcheck_sva::ast::{Prop, Seq, SvaBool};
//! use rtlcheck_sva::monitor::Monitor;
//!
//! // assert property (@(posedge clk) first |-> ##2 st_x_wb);
//! // Atoms here are indices into a per-cycle valuation for brevity; the
//! // RTLCheck core instantiates them as signal comparisons instead.
//! let first = SvaBool::atom(0u32);
//! let st_x_wb = SvaBool::atom(1u32);
//! let prop = Prop::implies(first, Prop::seq(Seq::delay_exact(2, Seq::boolean(st_x_wb))));
//! let mut m = Monitor::new(&prop);
//! // Cycle 0: first=1; cycles 1, 2: st_x_wb rises at cycle 2.
//! m.step(&|v: &u32| *v == 0);
//! m.step(&|_: &u32| false);
//! m.step(&|v: &u32| *v == 1);
//! assert!(!m.failed());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod ast;
pub mod emit;
pub mod monitor;
pub mod nfa;
pub mod parse;

pub use ast::{Prop, Seq, SvaBool};
pub use monitor::{Monitor, MonitorMetrics, MonitorState};
pub use parse::{parse_directive, parse_prop, DirectiveKeyword, ParseSvaError};

//! Robustness properties of the µspec parser: arbitrary input never
//! panics, and pretty-specific mutations of valid sources produce
//! line-accurate errors rather than crashes.

use proptest::prelude::*;
use rtlcheck_uspec::parse;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Arbitrary strings never panic the parser.
    #[test]
    fn arbitrary_input_never_panics(src in "\\PC*") {
        let _ = parse(&src);
    }

    /// Arbitrary sequences of µspec-looking tokens never panic either (a
    /// denser search of the grammar's neighbourhood than raw strings).
    #[test]
    fn token_soup_never_panics(toks in proptest::collection::vec(
        prop_oneof![
            Just("Axiom"), Just("Stage"), Just("DefineMacro"), Just("forall"),
            Just("exists"), Just("microops"), Just("cores"), Just("AddEdge"),
            Just("EdgeExists"), Just("NodeExists"), Just("ExpandMacro"),
            Just("IsAnyRead"), Just("SameData"), Just("\"a\""), Just("\"N\""),
            Just("("), Just(")"), Just("["), Just("]"), Just(","), Just(";"),
            Just(":"), Just("."), Just("/\\"), Just("\\/"), Just("~"),
            Just("=>"), Just("i"), Just("w"), Just("Fetch"), Just("TRUE"),
        ],
        0..24,
    )) {
        let src = toks.join(" ");
        let _ = parse(&src);
    }
}

/// Truncating the Multi-V-scale source at any byte boundary must error
/// (or, at declaration boundaries, succeed) without panicking.
#[test]
fn truncated_builtin_sources_never_panic() {
    for source in [
        rtlcheck_uspec::multi_vscale::SOURCE,
        rtlcheck_uspec::multi_vscale_tso::SOURCE,
    ] {
        for end in (0..source.len()).step_by(7) {
            if source.is_char_boundary(end) {
                let _ = parse(&source[..end]);
            }
        }
    }
}

/// Parse errors report the line of the offending token.
#[test]
fn errors_point_at_the_right_line() {
    let err = parse("Stage \"S\".\n\nAxiom \"A\":\nIsAnyRead .\n").unwrap_err();
    assert_eq!(err.line, 4, "{err}");
}

//! The µspec model of the Multi-Five-Stage processor.
//!
//! Same axiom structure as the Multi-V-scale model, retargeted at a classic
//! five-stage pipeline: memory is accessed (and serialised by the arbiter)
//! at the **Memory** stage, so the total order and the load-value axiom
//! move there, and the in-order-pipeline FIFO axioms chain through two more
//! stages.

use crate::ast::Spec;

/// Stage index of Fetch in [`SOURCE`].
pub const FETCH: usize = 0;
/// Stage index of Decode in [`SOURCE`].
pub const DECODE: usize = 1;
/// Stage index of Execute in [`SOURCE`].
pub const EXECUTE: usize = 2;
/// Stage index of Memory in [`SOURCE`].
pub const MEMORY: usize = 3;
/// Stage index of Writeback in [`SOURCE`].
pub const WRITEBACK: usize = 4;

/// The µspec source for Multi-Five-Stage.
pub const SOURCE: &str = r#"
% Multi-Five-Stage: four classic 5-stage in-order pipelines behind a
% single-ported memory arbitrated at the Memory stage.

Stage "Fetch".
Stage "Decode".
Stage "Execute".
Stage "Memory".
Stage "Writeback".

Axiom "Instr_Path":
forall microops "i",
AddEdge ((i, Fetch), (i, Decode)) /\
AddEdge ((i, Decode), (i, Execute)) /\
AddEdge ((i, Execute), (i, Memory)) /\
AddEdge ((i, Memory), (i, Writeback)).

Axiom "PO_Fetch":
forall microops "a1", "a2",
ProgramOrder a1 a2 =>
AddEdge ((a1, Fetch), (a2, Fetch)).

% The pipeline is in order: each stage is FIFO given the previous one.
Axiom "Decode_FIFO":
forall microops "a1", "a2",
(SameCore a1 a2 /\ ~SameMicroop a1 a2 /\ ProgramOrder a1 a2) =>
EdgeExists ((a1, Fetch), (a2, Fetch)) =>
AddEdge ((a1, Decode), (a2, Decode)).

Axiom "Execute_FIFO":
forall microops "a1", "a2",
(SameCore a1 a2 /\ ~SameMicroop a1 a2 /\ ProgramOrder a1 a2) =>
EdgeExists ((a1, Decode), (a2, Decode)) =>
AddEdge ((a1, Execute), (a2, Execute)).

Axiom "Memory_FIFO":
forall microops "a1", "a2",
(SameCore a1 a2 /\ ~SameMicroop a1 a2 /\ ProgramOrder a1 a2) =>
EdgeExists ((a1, Execute), (a2, Execute)) =>
AddEdge ((a1, Memory), (a2, Memory)).

Axiom "WB_FIFO":
forall cores "c",
forall microops "a1", "a2",
(OnCore c a1 /\ OnCore c a2 /\
  ~SameMicroop a1 a2 /\ ProgramOrder a1 a2) =>
EdgeExists ((a1, Memory), (a2, Memory)) =>
AddEdge ((a1, Writeback), (a2, Writeback)).

% The arbiter serialises memory accesses at the Memory stage.
Axiom "Memory_Total_Order":
forall microops "a1", "a2",
((IsAnyRead a1 \/ IsAnyWrite a1) /\ (IsAnyRead a2 \/ IsAnyWrite a2) /\
  ~SameMicroop a1 a2) =>
(AddEdge ((a1, Memory), (a2, Memory)) \/
 AddEdge ((a2, Memory), (a1, Memory))).

Axiom "Write_Serialization":
forall microops "w1", "w2",
(IsAnyWrite w1 /\ IsAnyWrite w2 /\ ~SameMicroop w1 w2 /\ SameAddress w1 w2) =>
(AddEdge ((w1, Memory), (w2, Memory)) \/
 AddEdge ((w2, Memory), (w1, Memory))).

Axiom "Final_Value":
forall microops "w1", "w2",
(IsAnyWrite w1 /\ IsAnyWrite w2 /\ ~SameMicroop w1 w2 /\ SameAddress w1 w2 /\
  DataFromFinalStateAtPA w2) =>
AddEdge ((w1, Memory), (w2, Memory)).

% Loads read memory during their (granted) Memory cycle; stores commit at
% the end of theirs: a load reads the last same-address store whose Memory
% stage precedes its own, or the initial state before every such store.
DefineMacro "NoInterveningWrite":
exists microop "w", (
  IsAnyWrite w /\ SameAddress w i /\ SameData w i /\
  EdgeExists ((w, Memory), (i, Memory)) /\
  ~(exists microop "w'",
    IsAnyWrite w' /\ SameAddress i w' /\ ~SameMicroop w w' /\
    EdgesExist [((w, Memory), (w', Memory), "");
                ((w', Memory), (i, Memory), "")])).

DefineMacro "BeforeAllWrites":
DataFromInitialStateAtPA i /\
forall microop "w", (
  (IsAnyWrite w /\ SameAddress w i /\ ~SameMicroop i w) =>
  AddEdge ((i, Memory), (w, Memory), "fr", "red")).

Axiom "Read_Values":
forall cores "c",
forall microops "i",
OnCore c i => IsAnyRead i => (
  ExpandMacro BeforeAllWrites \/ ExpandMacro NoInterveningWrite).
"#;

/// Parses and returns the Multi-Five-Stage µspec specification.
///
/// # Panics
///
/// Panics if the built-in source fails to parse (a bug; covered by tests).
pub fn spec() -> Spec {
    crate::parse(SOURCE).expect("built-in Multi-Five-Stage µspec is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ground::{ground, DataMode};
    use rtlcheck_litmus::suite;

    #[test]
    fn source_parses_with_five_stages() {
        let s = spec();
        assert_eq!(s.stages.len(), 5);
        assert_eq!(s.stage_id("Memory"), Some(crate::StageId(MEMORY)));
        assert_eq!(s.stage_id("Writeback"), Some(crate::StageId(WRITEBACK)));
        assert_eq!(s.axioms().count(), 10);
    }

    #[test]
    fn grounds_against_the_whole_suite() {
        let s = spec();
        for t in suite::all() {
            for mode in [DataMode::Outcome, DataMode::Symbolic] {
                let g = ground(&s, &t, mode).unwrap_or_else(|e| panic!("{}: {e}", t.name()));
                assert!(!g.is_empty(), "{}", t.name());
            }
        }
    }
}

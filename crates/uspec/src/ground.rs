//! Grounding of µspec axioms against a concrete litmus test.
//!
//! Grounding eliminates quantifiers (micro-op variables range over the
//! test's instructions, core variables over its cores), expands macros,
//! evaluates static predicates, and pushes negation inwards, yielding
//! negation-free quantifier-free [`GFormula`]s over µhb atoms.
//!
//! # Data-predicate modes
//!
//! The `SameData`, `DataFromInitialStateAtPA`, and `DataFromFinalStateAtPA`
//! predicates depend on the values loads return, which are only known for a
//! *complete* execution:
//!
//! * [`DataMode::Outcome`] evaluates them against the litmus test's outcome
//!   condition, exactly as the Check suite's omniscient axiomatic analysis
//!   does (paper §3.2). This mode feeds the µhb graph enumerator.
//! * [`DataMode::Symbolic`] keeps them symbolic as [`GAtom::LoadValue`]
//!   constraints, so a single grounded formula covers every outcome of the
//!   test. This is RTLCheck's *outcome-aware* translation (§4.2): SVA
//!   verifiers cannot check assumptions against the future, so properties
//!   generated from the grounded formula must hold on partial executions of
//!   all outcomes, not just the outcome under test.
//!
//! # The synthesizable µspec subset
//!
//! A key point of the paper (§2.2) is that µspec must be written in a subset
//! that is "synthesizable" to SVA, much as only a subset of Verilog is
//! synthesizable to hardware. The subset implemented here interprets a
//! *negated* edge `~EdgeExists(src, dst)` as the reversed edge
//! `EdgeExists(dst, src)`, which is sound whenever occupancy of the mapped
//! node events is mutually exclusive (true of Multi-V-scale, whose arbiter
//! serialises memory-stage events). Negated node existence becomes
//! [`GAtom::NeverNode`] in symbolic mode and `false` in outcome mode (every
//! instruction of a complete execution performs all of its stages).

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use rtlcheck_litmus::{InstrRef, InstrUid, LitmusTest, Val};

use crate::ast::{EdgeExpr, Formula, NodeExpr, Predicate, Sort, Spec, StageId};

/// Maximum macro expansion depth before [`GroundError::MacroRecursion`].
const MACRO_DEPTH_LIMIT: usize = 64;

/// A grounded µhb node: one instruction at one pipeline stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct GNode {
    /// The instruction.
    pub instr: InstrUid,
    /// The pipeline stage.
    pub stage: StageId,
}

impl fmt::Display for GNode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.instr, self.stage)
    }
}

/// A grounded happens-before edge between two µhb nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct GEdge {
    /// Source node (happens first).
    pub src: GNode,
    /// Destination node (happens later).
    pub dst: GNode,
}

impl GEdge {
    /// The same edge with source and destination swapped.
    pub fn reversed(self) -> GEdge {
        GEdge {
            src: self.dst,
            dst: self.src,
        }
    }
}

impl fmt::Display for GEdge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} -> {}", self.src, self.dst)
    }
}

/// A constraint that a given load returns a given value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LoadConstraint {
    /// The load instruction.
    pub load: InstrUid,
    /// The value it must return.
    pub value: Val,
}

/// An atom of a grounded formula.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GAtom {
    /// The happens-before edge holds.
    Edge(GEdge),
    /// The node occurs in the execution.
    Node(GNode),
    /// The node never occurs (symbolic mode only).
    NeverNode(GNode),
    /// The load returns the value (symbolic mode only).
    LoadValue(LoadConstraint),
}

/// A grounded, quantifier-free, negation-free formula.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GFormula {
    /// Constant truth.
    True,
    /// Constant falsehood.
    False,
    /// An atomic constraint.
    Atom(GAtom),
    /// Conjunction of sub-formulas.
    And(Vec<GFormula>),
    /// Disjunction of sub-formulas.
    Or(Vec<GFormula>),
}

impl GFormula {
    /// Smart conjunction: drops `True`, collapses on `False`, flattens.
    pub fn and(children: Vec<GFormula>) -> GFormula {
        let mut out = Vec::new();
        for c in children {
            match c {
                GFormula::True => {}
                GFormula::False => return GFormula::False,
                GFormula::And(inner) => out.extend(inner),
                other => out.push(other),
            }
        }
        match out.len() {
            0 => GFormula::True,
            1 => out.pop().expect("len checked"),
            _ => GFormula::And(out),
        }
    }

    /// Smart disjunction: drops `False`, collapses on `True`, flattens.
    pub fn or(children: Vec<GFormula>) -> GFormula {
        let mut out = Vec::new();
        for c in children {
            match c {
                GFormula::False => {}
                GFormula::True => return GFormula::True,
                GFormula::Or(inner) => out.extend(inner),
                other => out.push(other),
            }
        }
        match out.len() {
            0 => GFormula::False,
            1 => out.pop().expect("len checked"),
            _ => GFormula::Or(out),
        }
    }

    /// Whether the formula is the constant `True`.
    pub fn is_trivially_true(&self) -> bool {
        matches!(self, GFormula::True)
    }

    /// Converts the formula to disjunctive normal form.
    ///
    /// Each returned [`Conjunct`] is one way of satisfying the formula.
    /// Grounded per-instance formulas are small, so the worst-case
    /// exponential blow-up is not a concern at this granularity.
    pub fn to_dnf(&self) -> Vec<Conjunct> {
        match self {
            GFormula::True => vec![Conjunct::default()],
            GFormula::False => vec![],
            GFormula::Atom(a) => {
                let mut c = Conjunct::default();
                c.push(*a);
                vec![c]
            }
            GFormula::Or(children) => children.iter().flat_map(GFormula::to_dnf).collect(),
            GFormula::And(children) => {
                let mut acc = vec![Conjunct::default()];
                for child in children {
                    let child_dnf = child.to_dnf();
                    let mut next = Vec::with_capacity(acc.len() * child_dnf.len().max(1));
                    for base in &acc {
                        for extension in &child_dnf {
                            let mut merged = base.clone();
                            merged.merge(extension);
                            next.push(merged);
                        }
                    }
                    acc = next;
                }
                acc
            }
        }
    }

    /// All atoms appearing anywhere in the formula.
    pub fn atoms(&self) -> Vec<GAtom> {
        let mut out = Vec::new();
        self.collect_atoms(&mut out);
        out
    }

    fn collect_atoms(&self, out: &mut Vec<GAtom>) {
        match self {
            GFormula::True | GFormula::False => {}
            GFormula::Atom(a) => out.push(*a),
            GFormula::And(cs) | GFormula::Or(cs) => {
                for c in cs {
                    c.collect_atoms(out);
                }
            }
        }
    }
}

/// One satisfied branch of a grounded formula in DNF: the atoms that must
/// all hold together.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Conjunct {
    /// Required happens-before edges.
    pub edges: Vec<GEdge>,
    /// Required node occurrences.
    pub nodes: Vec<GNode>,
    /// Required node non-occurrences.
    pub never_nodes: Vec<GNode>,
    /// Required load values.
    pub constraints: Vec<LoadConstraint>,
}

impl Conjunct {
    fn push(&mut self, atom: GAtom) {
        match atom {
            GAtom::Edge(e) => {
                if !self.edges.contains(&e) {
                    self.edges.push(e);
                }
            }
            GAtom::Node(n) => {
                if !self.nodes.contains(&n) {
                    self.nodes.push(n);
                }
            }
            GAtom::NeverNode(n) => {
                if !self.never_nodes.contains(&n) {
                    self.never_nodes.push(n);
                }
            }
            GAtom::LoadValue(c) => {
                if !self.constraints.contains(&c) {
                    self.constraints.push(c);
                }
            }
        }
    }

    fn merge(&mut self, other: &Conjunct) {
        for &e in &other.edges {
            self.push(GAtom::Edge(e));
        }
        for &n in &other.nodes {
            self.push(GAtom::Node(n));
        }
        for &n in &other.never_nodes {
            self.push(GAtom::NeverNode(n));
        }
        for &c in &other.constraints {
            self.push(GAtom::LoadValue(c));
        }
    }

    /// The load-value constraints that apply to a given instruction.
    pub fn constraints_on(&self, instr: InstrUid) -> Vec<LoadConstraint> {
        self.constraints
            .iter()
            .copied()
            .filter(|c| c.load == instr)
            .collect()
    }

    /// Whether two constraints pin the same load to different values,
    /// making the conjunct unsatisfiable.
    pub fn has_contradictory_constraints(&self) -> bool {
        self.constraints.iter().enumerate().any(|(i, a)| {
            self.constraints[i + 1..]
                .iter()
                .any(|b| a.load == b.load && a.value != b.value)
        })
    }
}

/// How data predicates are evaluated during grounding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataMode {
    /// Evaluate against the litmus outcome (Check-suite omniscience).
    Outcome,
    /// Keep symbolic as load-value constraints (RTLCheck outcome-awareness).
    Symbolic,
}

/// A grounded axiom instance: one binding of the axiom's outermost
/// universal quantifiers, simplified.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GroundedAxiom {
    /// Name of the originating axiom.
    pub axiom: String,
    /// Human-readable description of the variable binding, e.g.
    /// `"a1 = i1, a2 = i2"`.
    pub instance: String,
    /// The grounded, simplified formula. Never trivially `True` (such
    /// instances are dropped).
    pub formula: GFormula,
}

/// An error raised during grounding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GroundError {
    /// A node or edge expression refers to an unknown stage name.
    UnknownStage(String),
    /// A formula refers to an unbound variable.
    UnboundVar(String),
    /// A variable was bound at the wrong sort for a predicate.
    SortMismatch(String),
    /// `ExpandMacro` refers to an undefined macro.
    UnknownMacro(String),
    /// Macro expansion exceeded the depth limit (likely recursive macros).
    MacroRecursion(String),
    /// In outcome mode, a load's value is needed but the litmus condition
    /// does not pin it.
    UnpinnedLoad(InstrUid),
    /// A predicate usage falls outside the synthesizable subset (e.g.
    /// `SameData` between two loads in symbolic mode).
    NotSynthesizable(String),
}

impl fmt::Display for GroundError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GroundError::UnknownStage(s) => write!(f, "unknown stage `{s}`"),
            GroundError::UnboundVar(v) => write!(f, "unbound variable `{v}`"),
            GroundError::SortMismatch(v) => write!(f, "variable `{v}` used at the wrong sort"),
            GroundError::UnknownMacro(m) => write!(f, "unknown macro `{m}`"),
            GroundError::MacroRecursion(m) => {
                write!(f, "macro expansion depth limit exceeded expanding `{m}`")
            }
            GroundError::UnpinnedLoad(i) => {
                write!(f, "outcome mode requires the condition to pin load {i}")
            }
            GroundError::NotSynthesizable(msg) => write!(f, "not synthesizable: {msg}"),
        }
    }
}

impl Error for GroundError {}

/// Grounds every axiom of `spec` against `test`.
///
/// One [`GroundedAxiom`] is produced per binding of each axiom's outermost
/// block of universal quantifiers; instances that simplify to `True` are
/// dropped. Inner quantifiers are expanded into conjunctions/disjunctions.
///
/// # Errors
///
/// See [`GroundError`].
pub fn ground(
    spec: &Spec,
    test: &LitmusTest,
    mode: DataMode,
) -> Result<Vec<GroundedAxiom>, GroundError> {
    let grounder = Grounder { spec, test, mode };
    let mut out = Vec::new();
    for (name, body) in spec.axioms() {
        grounder.ground_axiom(name, body, &mut out)?;
    }
    Ok(out)
}

#[derive(Clone, Copy)]
enum Binding {
    Uop(InstrRef),
    Core(rtlcheck_litmus::CoreId),
}

type Env = HashMap<String, Binding>;

struct Grounder<'a> {
    spec: &'a Spec,
    test: &'a LitmusTest,
    mode: DataMode,
}

impl Grounder<'_> {
    /// Splits off the outermost universal block and produces one grounded
    /// instance per binding.
    fn ground_axiom(
        &self,
        name: &str,
        body: &Formula,
        out: &mut Vec<GroundedAxiom>,
    ) -> Result<(), GroundError> {
        // Collect the outer forall chain.
        let mut binders: Vec<(Sort, &str)> = Vec::new();
        let mut inner = body;
        while let Formula::Forall { sort, var, body } = inner {
            binders.push((*sort, var));
            inner = body;
        }
        let instrs: Vec<InstrRef> = self.test.instructions().collect();
        let cores = self.test.num_cores();

        // Enumerate bindings of the outer block.
        let mut stack: Vec<(Env, usize, String)> = vec![(Env::new(), 0, String::new())];
        while let Some((env, depth, desc)) = stack.pop() {
            if depth == binders.len() {
                let formula = self.ground_formula(inner, &env, true, 0)?;
                if !formula.is_trivially_true() {
                    out.push(GroundedAxiom {
                        axiom: name.to_string(),
                        instance: desc.clone(),
                        formula,
                    });
                }
                continue;
            }
            let (sort, var) = binders[depth];
            match sort {
                Sort::Microop => {
                    for &i in &instrs {
                        let mut env2 = env.clone();
                        env2.insert(var.to_string(), Binding::Uop(i));
                        let desc2 = extend_desc(&desc, var, &i.uid.to_string());
                        stack.push((env2, depth + 1, desc2));
                    }
                }
                Sort::Core => {
                    for c in 0..cores {
                        let mut env2 = env.clone();
                        env2.insert(var.to_string(), Binding::Core(rtlcheck_litmus::CoreId(c)));
                        let desc2 = extend_desc(&desc, var, &format!("C{c}"));
                        stack.push((env2, depth + 1, desc2));
                    }
                }
            }
        }
        Ok(())
    }

    /// Grounds a formula under `env` with the given polarity (`true` =
    /// positive). Negation is eliminated on the fly, producing NNF.
    fn ground_formula(
        &self,
        f: &Formula,
        env: &Env,
        positive: bool,
        macro_depth: usize,
    ) -> Result<GFormula, GroundError> {
        Ok(match f {
            Formula::True => {
                if positive {
                    GFormula::True
                } else {
                    GFormula::False
                }
            }
            Formula::False => {
                if positive {
                    GFormula::False
                } else {
                    GFormula::True
                }
            }
            Formula::Not(inner) => self.ground_formula(inner, env, !positive, macro_depth)?,
            // And/Or/Implies short-circuit on their first operand so that
            // guard predicates (e.g. `IsAnyWrite w`) protect data predicates
            // from being grounded for instructions they do not apply to.
            Formula::And(a, b) => {
                let ga = self.ground_formula(a, env, positive, macro_depth)?;
                if positive {
                    if ga == GFormula::False {
                        return Ok(GFormula::False);
                    }
                    let gb = self.ground_formula(b, env, positive, macro_depth)?;
                    GFormula::and(vec![ga, gb])
                } else {
                    if ga == GFormula::True {
                        return Ok(GFormula::True);
                    }
                    let gb = self.ground_formula(b, env, positive, macro_depth)?;
                    GFormula::or(vec![ga, gb])
                }
            }
            Formula::Or(a, b) => {
                let ga = self.ground_formula(a, env, positive, macro_depth)?;
                if positive {
                    if ga == GFormula::True {
                        return Ok(GFormula::True);
                    }
                    let gb = self.ground_formula(b, env, positive, macro_depth)?;
                    GFormula::or(vec![ga, gb])
                } else {
                    if ga == GFormula::False {
                        return Ok(GFormula::False);
                    }
                    let gb = self.ground_formula(b, env, positive, macro_depth)?;
                    GFormula::and(vec![ga, gb])
                }
            }
            Formula::Implies(a, b) => {
                // a => b  ≡  ~a \/ b
                let ga = self.ground_formula(a, env, !positive, macro_depth)?;
                if positive {
                    if ga == GFormula::True {
                        return Ok(GFormula::True);
                    }
                    let gb = self.ground_formula(b, env, positive, macro_depth)?;
                    GFormula::or(vec![ga, gb])
                } else {
                    if ga == GFormula::False {
                        return Ok(GFormula::False);
                    }
                    let gb = self.ground_formula(b, env, positive, macro_depth)?;
                    GFormula::and(vec![ga, gb])
                }
            }
            Formula::Forall { sort, var, body } | Formula::Exists { sort, var, body } => {
                let universal = matches!(f, Formula::Forall { .. });
                let mut children = Vec::new();
                match sort {
                    Sort::Microop => {
                        for i in self.test.instructions() {
                            let mut env2 = env.clone();
                            env2.insert(var.clone(), Binding::Uop(i));
                            children.push(self.ground_formula(
                                body,
                                &env2,
                                positive,
                                macro_depth,
                            )?);
                        }
                    }
                    Sort::Core => {
                        for c in 0..self.test.num_cores() {
                            let mut env2 = env.clone();
                            env2.insert(var.clone(), Binding::Core(rtlcheck_litmus::CoreId(c)));
                            children.push(self.ground_formula(
                                body,
                                &env2,
                                positive,
                                macro_depth,
                            )?);
                        }
                    }
                }
                // forall ≡ big-and when positive, big-or when negated;
                // exists is the dual.
                if universal == positive {
                    GFormula::and(children)
                } else {
                    GFormula::or(children)
                }
            }
            Formula::Pred(p) => self.ground_pred(p, env, positive)?,
            Formula::AddEdge(e) | Formula::EdgeExists(e) => self.ground_edge(e, env, positive)?,
            Formula::EdgesExist(edges) => {
                let children = edges
                    .iter()
                    .map(|e| self.ground_edge(e, env, positive))
                    .collect::<Result<Vec<_>, _>>()?;
                if positive {
                    GFormula::and(children)
                } else {
                    GFormula::or(children)
                }
            }
            Formula::NodeExists(n) => {
                let node = self.resolve_node(n, env)?;
                if positive {
                    GFormula::Atom(GAtom::Node(node))
                } else {
                    match self.mode {
                        // In a complete execution every instruction performs
                        // every stage, so "node absent" is unsatisfiable.
                        DataMode::Outcome => GFormula::False,
                        DataMode::Symbolic => GFormula::Atom(GAtom::NeverNode(node)),
                    }
                }
            }
            Formula::ExpandMacro(name) => {
                if macro_depth >= MACRO_DEPTH_LIMIT {
                    return Err(GroundError::MacroRecursion(name.clone()));
                }
                let body = self
                    .spec
                    .macro_body(name)
                    .ok_or_else(|| GroundError::UnknownMacro(name.clone()))?;
                self.ground_formula(body, env, positive, macro_depth + 1)?
            }
        })
    }

    /// Grounds an edge expression. A negated edge is interpreted as the
    /// reversed edge (synthesizable subset, see module docs); a self-edge is
    /// unsatisfiable and its negation trivially true.
    fn ground_edge(
        &self,
        e: &EdgeExpr,
        env: &Env,
        positive: bool,
    ) -> Result<GFormula, GroundError> {
        let src = self.resolve_node(&e.src, env)?;
        let dst = self.resolve_node(&e.dst, env)?;
        if src == dst {
            return Ok(if positive {
                GFormula::False
            } else {
                GFormula::True
            });
        }
        let edge = GEdge { src, dst };
        Ok(GFormula::Atom(GAtom::Edge(if positive {
            edge
        } else {
            edge.reversed()
        })))
    }

    fn resolve_node(&self, n: &NodeExpr, env: &Env) -> Result<GNode, GroundError> {
        let instr = self.lookup_uop(&n.uop, env)?;
        let stage = self
            .spec
            .stage_id(&n.stage)
            .ok_or_else(|| GroundError::UnknownStage(n.stage.clone()))?;
        Ok(GNode {
            instr: instr.uid,
            stage,
        })
    }

    fn lookup_uop(&self, var: &str, env: &Env) -> Result<InstrRef, GroundError> {
        match env.get(var) {
            Some(Binding::Uop(i)) => Ok(*i),
            Some(Binding::Core(_)) => Err(GroundError::SortMismatch(var.to_string())),
            None => Err(GroundError::UnboundVar(var.to_string())),
        }
    }

    fn lookup_core(&self, var: &str, env: &Env) -> Result<rtlcheck_litmus::CoreId, GroundError> {
        match env.get(var) {
            Some(Binding::Core(c)) => Ok(*c),
            Some(Binding::Uop(_)) => Err(GroundError::SortMismatch(var.to_string())),
            None => Err(GroundError::UnboundVar(var.to_string())),
        }
    }

    /// The values a load could possibly return in any execution of the
    /// test: the initial value of its location plus every stored value.
    fn possible_load_values(&self, load: InstrRef) -> Vec<Val> {
        let loc = load.loc().expect("loads access a location");
        let mut vals = vec![self.test.initial_value(loc)];
        for s in self.test.stores_to(loc) {
            let v = s.store_value().expect("stores carry values");
            if !vals.contains(&v) {
                vals.push(v);
            }
        }
        vals
    }

    /// The value instruction `i` carries in the outcome under test: a
    /// store's immediate, or the condition-pinned value of a load.
    fn outcome_data(&self, i: InstrRef) -> Result<Val, GroundError> {
        if let Some(v) = i.store_value() {
            return Ok(v);
        }
        self.test
            .expected_load_value(&i)
            .ok_or(GroundError::UnpinnedLoad(i.uid))
    }

    fn bool_formula(value: bool, positive: bool) -> GFormula {
        if value == positive {
            GFormula::True
        } else {
            GFormula::False
        }
    }

    /// Constrains load `i` to carry `value` (symbolic mode), honouring
    /// polarity: a negative constraint becomes the disjunction of all other
    /// possible values of the load.
    fn load_value_formula(&self, load: InstrRef, value: Val, positive: bool) -> GFormula {
        let possible = self.possible_load_values(load);
        if positive {
            if possible.contains(&value) {
                GFormula::Atom(GAtom::LoadValue(LoadConstraint {
                    load: load.uid,
                    value,
                }))
            } else {
                // The load can never return this value in any execution.
                GFormula::False
            }
        } else {
            GFormula::or(
                possible
                    .into_iter()
                    .filter(|&v| v != value)
                    .map(|v| {
                        GFormula::Atom(GAtom::LoadValue(LoadConstraint {
                            load: load.uid,
                            value: v,
                        }))
                    })
                    .collect(),
            )
        }
    }

    fn ground_pred(
        &self,
        p: &Predicate,
        env: &Env,
        positive: bool,
    ) -> Result<GFormula, GroundError> {
        Ok(match p {
            Predicate::OnCore(c, i) => {
                let core = self.lookup_core(c, env)?;
                let instr = self.lookup_uop(i, env)?;
                Self::bool_formula(instr.core == core, positive)
            }
            Predicate::IsAnyRead(i) => {
                Self::bool_formula(self.lookup_uop(i, env)?.is_load(), positive)
            }
            Predicate::IsAnyWrite(i) => {
                Self::bool_formula(self.lookup_uop(i, env)?.is_store(), positive)
            }
            Predicate::IsAnyFence(i) => {
                Self::bool_formula(self.lookup_uop(i, env)?.is_fence(), positive)
            }
            Predicate::SameMicroop(a, b) => {
                let (a, b) = (self.lookup_uop(a, env)?, self.lookup_uop(b, env)?);
                Self::bool_formula(a.uid == b.uid, positive)
            }
            Predicate::ProgramOrder(a, b) => {
                let (a, b) = (self.lookup_uop(a, env)?, self.lookup_uop(b, env)?);
                Self::bool_formula(a.core == b.core && a.index < b.index, positive)
            }
            Predicate::SameCore(a, b) => {
                let (a, b) = (self.lookup_uop(a, env)?, self.lookup_uop(b, env)?);
                Self::bool_formula(a.core == b.core, positive)
            }
            Predicate::SameAddress(a, b) => {
                let (a, b) = (self.lookup_uop(a, env)?, self.lookup_uop(b, env)?);
                // Fences access no location: SameAddress with a fence is
                // false, like the Check suite's treatment of non-memory ops.
                let same = match (a.loc(), b.loc()) {
                    (Some(la), Some(lb)) => la == lb,
                    _ => false,
                };
                Self::bool_formula(same, positive)
            }
            Predicate::SameData(a, b) => {
                let (a, b) = (self.lookup_uop(a, env)?, self.lookup_uop(b, env)?);
                match self.mode {
                    DataMode::Outcome => {
                        let same = self.outcome_data(a)? == self.outcome_data(b)?;
                        Self::bool_formula(same, positive)
                    }
                    DataMode::Symbolic => match (a.store_value(), b.store_value()) {
                        (Some(va), Some(vb)) => Self::bool_formula(va == vb, positive),
                        (Some(v), None) => self.load_value_formula(b, v, positive),
                        (None, Some(v)) => self.load_value_formula(a, v, positive),
                        (None, None) => {
                            return Err(GroundError::NotSynthesizable(format!(
                                "SameData between two loads ({}, {}) in symbolic mode",
                                a.uid, b.uid
                            )))
                        }
                    },
                }
            }
            Predicate::DataFromInitialStateAtPA(i) => {
                let instr = self.lookup_uop(i, env)?;
                let Some(loc) = instr.loc() else {
                    // A fence carries no data: it never matches the initial
                    // state.
                    return Ok(Self::bool_formula(false, positive));
                };
                let init = self.test.initial_value(loc);
                if instr.is_store() {
                    // A store "reads" nothing; it matches the initial state
                    // only if it writes the same value, mirroring the data
                    // comparison the Check suite performs.
                    let same = instr.store_value() == Some(init);
                    return Ok(Self::bool_formula(same, positive));
                }
                match self.mode {
                    DataMode::Outcome => {
                        let same = self.outcome_data(instr)? == init;
                        Self::bool_formula(same, positive)
                    }
                    DataMode::Symbolic => self.load_value_formula(instr, init, positive),
                }
            }
            Predicate::DataFromFinalStateAtPA(i) => {
                let instr = self.lookup_uop(i, env)?;
                let Some(loc) = instr.loc() else {
                    return Ok(Self::bool_formula(false, positive));
                };
                match self.mode {
                    DataMode::Outcome => {
                        let fin = self.test.condition().mem_value(loc);
                        let same = fin.is_some() && Some(self.outcome_data(instr)?) == fin;
                        Self::bool_formula(same, positive)
                    }
                    // §4.2: SVA verifiers cannot enforce that a write is the
                    // execution's last, so the translation conservatively
                    // evaluates this predicate to false.
                    DataMode::Symbolic => Self::bool_formula(false, positive),
                }
            }
        })
    }
}

fn extend_desc(desc: &str, var: &str, value: &str) -> String {
    if desc.is_empty() {
        format!("{var} = {value}")
    } else {
        format!("{desc}, {var} = {value}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;
    use rtlcheck_litmus::suite;

    fn mini_spec() -> Spec {
        parse(
            r#"
            Stage "Fetch".
            Stage "DecodeExecute".
            Stage "Writeback".

            Axiom "WB_FIFO":
            forall cores "c",
            forall microops "a1", "a2",
            (OnCore c a1 /\ OnCore c a2 /\
              ~SameMicroop a1 a2 /\ ProgramOrder a1 a2) =>
            EdgeExists ((a1, DecodeExecute), (a2, DecodeExecute)) =>
            AddEdge ((a1, Writeback), (a2, Writeback)).
        "#,
        )
        .unwrap()
    }

    #[test]
    fn wb_fifo_grounds_to_per_pair_instances() {
        let spec = mini_spec();
        let mp = suite::get("mp").unwrap();
        let grounded = ground(&spec, &mp, DataMode::Outcome).unwrap();
        // mp has two cores with two instructions each: one program-order
        // pair per core (and per bound core variable), so two instances.
        assert_eq!(grounded.len(), 2);
        for g in &grounded {
            assert_eq!(g.axiom, "WB_FIFO");
            // ~EdgeExists(DX) \/ AddEdge(WB): an Or of the reversed premise
            // edge and the conclusion edge.
            match &g.formula {
                GFormula::Or(children) => assert_eq!(children.len(), 2),
                other => panic!("expected or, got {other:?}"),
            }
        }
    }

    #[test]
    fn premise_edge_negation_reverses() {
        let spec = mini_spec();
        let mp = suite::get("mp").unwrap();
        let grounded = ground(&spec, &mp, DataMode::Outcome).unwrap();
        let g = &grounded[0];
        let atoms = g.formula.atoms();
        let edges: Vec<GEdge> = atoms
            .iter()
            .filter_map(|a| match a {
                GAtom::Edge(e) => Some(*e),
                _ => None,
            })
            .collect();
        assert_eq!(edges.len(), 2);
        // One edge is on DX (reversed premise), one on WB (conclusion).
        let dx = StageId(1);
        let wb = StageId(2);
        let dx_edge = edges.iter().find(|e| e.src.stage == dx).unwrap();
        let wb_edge = edges.iter().find(|e| e.src.stage == wb).unwrap();
        // Premise reversed: the later instruction's DX before the earlier's.
        assert!(dx_edge.src.instr > dx_edge.dst.instr);
        assert!(wb_edge.src.instr < wb_edge.dst.instr);
    }

    #[test]
    fn exists_becomes_or_and_forall_becomes_and() {
        let spec = parse(
            r#"
            Stage "WB".
            Axiom "A":
            forall microops "i",
            IsAnyRead i =>
            exists microop "w",
            (IsAnyWrite w /\ AddEdge ((w, WB), (i, WB))).
        "#,
        )
        .unwrap();
        let mp = suite::get("mp").unwrap();
        let grounded = ground(&spec, &mp, DataMode::Outcome).unwrap();
        // Two loads in mp → two instances; each is an Or over mp's 2 writes.
        assert_eq!(grounded.len(), 2);
        for g in &grounded {
            match &g.formula {
                GFormula::Or(children) => assert_eq!(children.len(), 2),
                other => panic!("expected or over writes, got {other:?}"),
            }
        }
    }

    #[test]
    fn macros_expand_with_dynamic_scope() {
        let spec = parse(
            r#"
            Stage "WB".
            DefineMacro "HasWriteBefore":
            exists microop "w",
            (IsAnyWrite w /\ AddEdge ((w, WB), (i, WB))).
            Axiom "A":
            forall microops "i",
            IsAnyRead i => ExpandMacro HasWriteBefore.
        "#,
        )
        .unwrap();
        let mp = suite::get("mp").unwrap();
        let grounded = ground(&spec, &mp, DataMode::Outcome).unwrap();
        assert_eq!(grounded.len(), 2, "macro body must see the enclosing `i`");
    }

    #[test]
    fn recursive_macro_errors() {
        let spec = parse(
            r#"
            Stage "WB".
            DefineMacro "Loop": ExpandMacro Loop.
            Axiom "A": ExpandMacro Loop.
        "#,
        )
        .unwrap();
        let mp = suite::get("mp").unwrap();
        let err = ground(&spec, &mp, DataMode::Outcome).unwrap_err();
        assert_eq!(err, GroundError::MacroRecursion("Loop".into()));
    }

    #[test]
    fn unknown_stage_and_macro_error() {
        let mp = suite::get("mp").unwrap();
        let spec =
            parse(r#"Stage "WB". Axiom "A": forall microops "i", NodeExists (i, Bogus)."#).unwrap();
        assert_eq!(
            ground(&spec, &mp, DataMode::Outcome).unwrap_err(),
            GroundError::UnknownStage("Bogus".into())
        );
        let spec = parse(r#"Stage "WB". Axiom "A": ExpandMacro Missing."#).unwrap();
        assert_eq!(
            ground(&spec, &mp, DataMode::Outcome).unwrap_err(),
            GroundError::UnknownMacro("Missing".into())
        );
    }

    #[test]
    fn symbolic_same_data_pins_load_values() {
        let spec = parse(
            r#"
            Stage "WB".
            Axiom "A":
            forall microops "w", forall microops "i",
            (IsAnyWrite w /\ IsAnyRead i /\ SameAddress w i) =>
            (SameData w i => AddEdge ((w, WB), (i, WB))).
        "#,
        )
        .unwrap();
        let mp = suite::get("mp").unwrap();
        let grounded = ground(&spec, &mp, DataMode::Symbolic).unwrap();
        // mp: write x / read x and write y / read y → 2 instances.
        assert_eq!(grounded.len(), 2);
        for g in &grounded {
            let atoms = g.formula.atoms();
            assert!(
                atoms.iter().any(|a| matches!(a, GAtom::LoadValue(_))),
                "negated SameData should expand to alternative load values: {atoms:?}"
            );
        }
    }

    #[test]
    fn symbolic_negated_same_data_covers_other_values() {
        // For mp's load of x, values are {0 (initial), 1 (store)}. The
        // negation of SameData(store-of-1, load) is the single constraint
        // load = 0.
        let spec = parse(
            r#"
            Stage "WB".
            Axiom "A":
            forall microops "w", forall microops "i",
            (IsAnyWrite w /\ IsAnyRead i /\ SameAddress w i /\ ~SameData w i) =>
            AddEdge ((i, WB), (w, WB)).
        "#,
        )
        .unwrap();
        let mp = suite::get("mp").unwrap();
        let grounded = ground(&spec, &mp, DataMode::Symbolic).unwrap();
        assert_eq!(grounded.len(), 2);
        for g in &grounded {
            let dnf = g.formula.to_dnf();
            // Branch 1: load = store value (premise false);
            // branch 2: load = 0 and edge.
            assert_eq!(dnf.len(), 2, "{:?}", g.formula);
            assert!(dnf.iter().any(|c| !c.edges.is_empty()));
        }
    }

    #[test]
    fn outcome_mode_requires_pinned_loads() {
        let spec = parse(
            r#"
            Stage "WB".
            Axiom "A":
            forall microops "w", forall microops "i",
            (IsAnyWrite w /\ IsAnyRead i /\ SameAddress w i /\ SameData w i) =>
            AddEdge ((w, WB), (i, WB)).
        "#,
        )
        .unwrap();
        let unpinned = rtlcheck_litmus::parse(
            "test t\n{ x = 0; }\ncore 0 { st x, 1; }\ncore 1 { r1 = ld x; r2 = ld x; }\npermit ( 1:r1 = 1 )",
        )
        .unwrap();
        let err = ground(&spec, &unpinned, DataMode::Outcome).unwrap_err();
        assert!(matches!(err, GroundError::UnpinnedLoad(_)));
        // Symbolic mode handles the same test fine.
        assert!(ground(&spec, &unpinned, DataMode::Symbolic).is_ok());
    }

    #[test]
    fn dnf_distributes_and_over_or() {
        let a = GFormula::Atom(GAtom::Node(GNode {
            instr: InstrUid(0),
            stage: StageId(0),
        }));
        let b = GFormula::Atom(GAtom::Node(GNode {
            instr: InstrUid(1),
            stage: StageId(0),
        }));
        let c = GFormula::Atom(GAtom::Node(GNode {
            instr: InstrUid(2),
            stage: StageId(0),
        }));
        let f = GFormula::and(vec![a, GFormula::or(vec![b, c])]);
        let dnf = f.to_dnf();
        assert_eq!(dnf.len(), 2);
        assert!(dnf.iter().all(|conj| conj.nodes.len() == 2));
    }

    #[test]
    fn conjunct_detects_contradictions() {
        let mut c = Conjunct::default();
        c.push(GAtom::LoadValue(LoadConstraint {
            load: InstrUid(0),
            value: Val(0),
        }));
        assert!(!c.has_contradictory_constraints());
        c.push(GAtom::LoadValue(LoadConstraint {
            load: InstrUid(0),
            value: Val(1),
        }));
        assert!(c.has_contradictory_constraints());
    }

    #[test]
    fn smart_constructors_simplify() {
        assert_eq!(
            GFormula::and(vec![GFormula::True, GFormula::True]),
            GFormula::True
        );
        assert_eq!(
            GFormula::and(vec![GFormula::False, GFormula::True]),
            GFormula::False
        );
        assert_eq!(
            GFormula::or(vec![GFormula::False, GFormula::False]),
            GFormula::False
        );
        assert_eq!(
            GFormula::or(vec![GFormula::True, GFormula::False]),
            GFormula::True
        );
        let atom = GFormula::Atom(GAtom::Node(GNode {
            instr: InstrUid(0),
            stage: StageId(0),
        }));
        assert_eq!(GFormula::and(vec![GFormula::True, atom.clone()]), atom);
    }

    #[test]
    fn self_edges_are_false_and_negations_true() {
        let spec = parse(
            r#"
            Stage "WB".
            Axiom "SelfEdge":
            forall microops "i", AddEdge ((i, WB), (i, WB)).
            Axiom "NotSelfEdge":
            forall microops "i", ~EdgeExists ((i, WB), (i, WB)).
        "#,
        )
        .unwrap();
        let mp = suite::get("mp").unwrap();
        let grounded = ground(&spec, &mp, DataMode::Outcome).unwrap();
        // SelfEdge instances are all False (kept); NotSelfEdge are all True
        // (dropped).
        assert_eq!(grounded.len(), mp.num_instructions());
        assert!(grounded.iter().all(|g| g.formula == GFormula::False));
    }
}

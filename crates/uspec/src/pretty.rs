//! Pretty-printing of µspec specifications (the inverse of [`crate::parse`]).
//!
//! Rendering is fully parenthesised, so `parse(&spec.to_string())` always
//! round-trips structurally (verified against the built-in models and by a
//! property test over the parser's output).

use std::fmt;

use crate::ast::{EdgeExpr, Formula, Item, NodeExpr, Predicate, Sort, Spec};

impl fmt::Display for NodeExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.uop, self.stage)
    }
}

impl fmt::Display for EdgeExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.src, self.dst)
    }
}

impl fmt::Display for Predicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Predicate::OnCore(c, i) => write!(f, "OnCore {c} {i}"),
            Predicate::IsAnyRead(i) => write!(f, "IsAnyRead {i}"),
            Predicate::IsAnyWrite(i) => write!(f, "IsAnyWrite {i}"),
            Predicate::IsAnyFence(i) => write!(f, "IsAnyFence {i}"),
            Predicate::SameMicroop(a, b) => write!(f, "SameMicroop {a} {b}"),
            Predicate::ProgramOrder(a, b) => write!(f, "ProgramOrder {a} {b}"),
            Predicate::SameCore(a, b) => write!(f, "SameCore {a} {b}"),
            Predicate::SameAddress(a, b) => write!(f, "SameAddress {a} {b}"),
            Predicate::SameData(a, b) => write!(f, "SameData {a} {b}"),
            Predicate::DataFromInitialStateAtPA(i) => {
                write!(f, "DataFromInitialStateAtPA {i}")
            }
            Predicate::DataFromFinalStateAtPA(i) => {
                write!(f, "DataFromFinalStateAtPA {i}")
            }
        }
    }
}

impl fmt::Display for Formula {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Formula::True => write!(f, "TRUE"),
            Formula::False => write!(f, "FALSE"),
            Formula::Forall { sort, var, body } => {
                write!(f, "forall {} \"{var}\", {body}", sort_keyword(*sort))
            }
            Formula::Exists { sort, var, body } => {
                write!(f, "exists {} \"{var}\", {body}", sort_keyword(*sort))
            }
            Formula::Not(inner) => write!(f, "~({inner})"),
            Formula::And(a, b) => write!(f, "(({a}) /\\ ({b}))"),
            Formula::Or(a, b) => write!(f, "(({a}) \\/ ({b}))"),
            Formula::Implies(a, b) => write!(f, "(({a}) => ({b}))"),
            Formula::Pred(p) => write!(f, "{p}"),
            Formula::AddEdge(e) => write!(f, "AddEdge {e}"),
            Formula::EdgeExists(e) => write!(f, "EdgeExists {e}"),
            Formula::EdgesExist(es) => {
                write!(f, "EdgesExist [")?;
                for (i, e) in es.iter().enumerate() {
                    if i > 0 {
                        write!(f, "; ")?;
                    }
                    write!(f, "{e}")?;
                }
                write!(f, "]")
            }
            Formula::NodeExists(n) => write!(f, "NodeExists {n}"),
            Formula::ExpandMacro(name) => write!(f, "ExpandMacro {name}"),
        }
    }
}

fn sort_keyword(sort: Sort) -> &'static str {
    match sort {
        Sort::Microop => "microop",
        Sort::Core => "core",
    }
}

impl fmt::Display for Item {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Item::Axiom { name, body } => write!(f, "Axiom \"{name}\":\n{body}."),
            Item::Macro { name, body } => write!(f, "DefineMacro \"{name}\":\n{body}."),
        }
    }
}

impl fmt::Display for Spec {
    /// Renders the specification in the concrete syntax accepted by
    /// [`crate::parse`].
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for stage in &self.stages {
            writeln!(f, "Stage \"{stage}\".")?;
        }
        for item in &self.items {
            writeln!(f, "\n{item}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use crate::{five_stage, multi_vscale, multi_vscale_tso, parse};

    /// Every built-in specification round-trips through Display + parse.
    #[test]
    fn builtin_specs_roundtrip() {
        for (name, spec) in [
            ("multi_vscale", multi_vscale::spec()),
            ("multi_vscale_tso", multi_vscale_tso::spec()),
            ("five_stage", five_stage::spec()),
        ] {
            let rendered = spec.to_string();
            let reparsed = parse(&rendered).unwrap_or_else(|e| {
                panic!("{name}: rendered spec failed to parse: {e}\n{rendered}")
            });
            assert_eq!(spec, reparsed, "{name}: round-trip mismatch");
        }
    }

    #[test]
    fn rendered_specs_ground_identically() {
        use crate::ground::{ground, DataMode};
        let spec = multi_vscale::spec();
        let reparsed = parse(&spec.to_string()).unwrap();
        let mp = rtlcheck_litmus::suite::get("mp").unwrap();
        let a = ground(&spec, &mp, DataMode::Symbolic).unwrap();
        let b = ground(&reparsed, &mp, DataMode::Symbolic).unwrap();
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.formula, y.formula, "{}", x.axiom);
        }
    }

    #[test]
    fn display_examples() {
        let spec = parse(
            r#"Stage "WB". Axiom "A": forall microops "i", ~IsAnyRead i => NodeExists (i, WB)."#,
        )
        .unwrap();
        let text = spec.to_string();
        assert!(text.contains("Stage \"WB\"."), "{text}");
        assert!(text.contains("forall microop \"i\""), "{text}");
        assert!(text.contains("~(IsAnyRead i)"), "{text}");
        assert!(text.contains("NodeExists (i, WB)"), "{text}");
    }
}

//! The µspec model of the Multi-V-scale processor (paper §5.3).
//!
//! Multi-V-scale is four three-stage in-order V-scale pipelines (Fetch,
//! DecodeExecute, Writeback) sharing a data memory through an arbiter that
//! grants at most one core per cycle. Its µspec model has one node per
//! instruction per pipeline stage and the following axioms:
//!
//! * `Instr_Path` — every instruction flows IF → DX → WB.
//! * `PO_Fetch` — same-core instructions fetch in program order.
//! * `DX_FIFO` / `WB_FIFO` — the pipeline stages are FIFO (Figure 3b).
//! * `DX_Total_Order` — the arbiter serialises the memory-access (DX)
//!   events of all memory instructions across cores.
//! * `Write_Serialization` — writes to one address reach memory in a total
//!   order.
//! * `Final_Value` — a write carrying the litmus test's final memory value
//!   is coherence-last (meaningful in outcome mode; conservatively dropped
//!   in symbolic mode, §4.2).
//! * `Read_Values` — Figure 5: a load either reads the initial state of
//!   memory before all writes to its address, or reads from the most recent
//!   write (no intervening write), with every same-address write ordered
//!   either before or after it at DX.

use crate::ast::Spec;

/// Stage index of Fetch in [`SOURCE`].
pub const FETCH: usize = 0;
/// Stage index of DecodeExecute in [`SOURCE`].
pub const DECODE_EXECUTE: usize = 1;
/// Stage index of Writeback in [`SOURCE`].
pub const WRITEBACK: usize = 2;

/// The µspec source for Multi-V-scale.
pub const SOURCE: &str = r#"
% Multi-V-scale: four 3-stage in-order V-scale pipelines behind a memory
% arbiter (RTLCheck, MICRO-50, Section 5.3).

Stage "Fetch".
Stage "DecodeExecute".
Stage "Writeback".

% Every instruction passes through its pipeline stages in order.
Axiom "Instr_Path":
forall microops "i",
AddEdge ((i, Fetch), (i, DecodeExecute)) /\
AddEdge ((i, DecodeExecute), (i, Writeback)).

% In-order fetch.
Axiom "PO_Fetch":
forall microops "a1", "a2",
ProgramOrder a1 a2 =>
AddEdge ((a1, Fetch), (a2, Fetch)).

% The Decode-Execute stage is FIFO.
Axiom "DX_FIFO":
forall microops "a1", "a2",
(SameCore a1 a2 /\ ~SameMicroop a1 a2 /\ ProgramOrder a1 a2) =>
EdgeExists ((a1, Fetch), (a2, Fetch)) =>
AddEdge ((a1, DecodeExecute), (a2, DecodeExecute)).

% The Writeback stage is FIFO (Figure 3b).
Axiom "WB_FIFO":
forall cores "c",
forall microops "a1", "a2",
(OnCore c a1 /\ OnCore c a2 /\
  ~SameMicroop a1 a2 /\ ProgramOrder a1 a2) =>
EdgeExists ((a1, DecodeExecute), (a2, DecodeExecute)) =>
AddEdge ((a1, Writeback), (a2, Writeback)).

% The arbiter lets only one core access memory at a time, so the DX
% (memory-access) events of all memory instructions are totally ordered.
Axiom "DX_Total_Order":
forall microops "a1", "a2",
((IsAnyRead a1 \/ IsAnyWrite a1) /\ (IsAnyRead a2 \/ IsAnyWrite a2) /\
  ~SameMicroop a1 a2) =>
(AddEdge ((a1, DecodeExecute), (a2, DecodeExecute)) \/
 AddEdge ((a2, DecodeExecute), (a1, DecodeExecute))).

% Writes to the same address are serialised at Writeback.
Axiom "Write_Serialization":
forall microops "w1", "w2",
(IsAnyWrite w1 /\ IsAnyWrite w2 /\ ~SameMicroop w1 w2 /\ SameAddress w1 w2) =>
(AddEdge ((w1, Writeback), (w2, Writeback)) \/
 AddEdge ((w2, Writeback), (w1, Writeback))).

% A write of the final memory value is coherence-last. (Evaluated against
% the outcome by the axiomatic flow; conservatively false at RTL, where the
% final-value assumption takes over this role.)
Axiom "Final_Value":
forall microops "w1", "w2",
(IsAnyWrite w1 /\ IsAnyWrite w2 /\ ~SameMicroop w1 w2 /\ SameAddress w1 w2 /\
  DataFromFinalStateAtPA w2) =>
AddEdge ((w1, Writeback), (w2, Writeback)).

% Figure 5: orderings and value requirements for loads.
DefineMacro "NoInterveningWrite":
exists microop "w", (
  IsAnyWrite w /\ SameAddress w i /\ SameData w i /\
  EdgeExists ((w, Writeback), (i, Writeback)) /\
  ~(exists microop "w'",
    IsAnyWrite w' /\ SameAddress i w' /\ ~SameMicroop w w' /\
    EdgesExist [((w, Writeback), (w', Writeback), "");
                ((w', Writeback), (i, Writeback), "")])).

DefineMacro "BeforeAllWrites":
DataFromInitialStateAtPA i /\
forall microop "w", (
  (IsAnyWrite w /\ SameAddress w i /\ ~SameMicroop i w) =>
  AddEdge ((i, Writeback), (w, Writeback), "fr", "red")).

DefineMacro "BeforeOrAfterEveryWrite":
forall microop "w", (
  (IsAnyWrite w /\ SameAddress w i) =>
  (AddEdge ((w, DecodeExecute), (i, DecodeExecute)) \/
   AddEdge ((i, DecodeExecute), (w, DecodeExecute)))).

Axiom "Read_Values":
forall cores "c",
forall microops "i",
OnCore c i => IsAnyRead i => (
  ExpandMacro BeforeAllWrites
  \/
  (ExpandMacro NoInterveningWrite
   /\ ExpandMacro BeforeOrAfterEveryWrite)).
"#;

/// Parses and returns the Multi-V-scale µspec specification.
///
/// # Panics
///
/// Panics if the built-in source fails to parse, which would be a bug in
/// this crate (it is covered by tests).
pub fn spec() -> Spec {
    crate::parse(SOURCE).expect("built-in Multi-V-scale µspec is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::StageId;
    use crate::ground::{ground, DataMode, GAtom, GFormula};
    use rtlcheck_litmus::suite;

    #[test]
    fn source_parses_with_three_stages_and_eight_axioms() {
        let s = spec();
        assert_eq!(s.stages, ["Fetch", "DecodeExecute", "Writeback"]);
        assert_eq!(s.stage_id("Fetch"), Some(StageId(FETCH)));
        assert_eq!(s.stage_id("DecodeExecute"), Some(StageId(DECODE_EXECUTE)));
        assert_eq!(s.stage_id("Writeback"), Some(StageId(WRITEBACK)));
        assert_eq!(s.axioms().count(), 8);
        assert!(s.macro_body("NoInterveningWrite").is_some());
        assert!(s.macro_body("BeforeAllWrites").is_some());
        assert!(s.macro_body("BeforeOrAfterEveryWrite").is_some());
    }

    #[test]
    fn grounds_against_the_whole_suite_in_both_modes() {
        let s = spec();
        for t in suite::all() {
            let outcome =
                ground(&s, &t, DataMode::Outcome).unwrap_or_else(|e| panic!("{}: {e}", t.name()));
            assert!(!outcome.is_empty(), "{} grounded to nothing", t.name());
            let symbolic =
                ground(&s, &t, DataMode::Symbolic).unwrap_or_else(|e| panic!("{}: {e}", t.name()));
            assert!(!symbolic.is_empty(), "{} grounded to nothing", t.name());
        }
    }

    /// For mp's load of x (which reads 0 in the outcome under test), the
    /// Check suite's omniscient simplification reduces Read_Values to
    /// BeforeAllWrites: an fr edge Ld x @WB → St x @WB (paper §3.2).
    #[test]
    fn outcome_mode_simplifies_read_values_for_mp_load_of_x() {
        let s = spec();
        let mp = suite::get("mp").unwrap();
        let grounded = ground(&s, &mp, DataMode::Outcome).unwrap();
        // Load of x is i4 (uid 3); find its Read_Values instance.
        let inst = grounded
            .iter()
            .find(|g| g.axiom == "Read_Values" && g.instance.contains("i = i4"))
            .expect("Read_Values instance for i4");
        let edges: Vec<_> = inst
            .formula
            .atoms()
            .into_iter()
            .filter_map(|a| match a {
                GAtom::Edge(e) => Some(e),
                _ => None,
            })
            .collect();
        // BeforeAllWrites contributes the fr edge (i4, WB) -> (i1, WB).
        assert!(
            edges.iter().any(|e| e.src.instr.0 == 3
                && e.dst.instr.0 == 0
                && e.src.stage == StageId(WRITEBACK)),
            "expected fr edge from load of x to store of x, got {edges:?}"
        );
    }

    /// In symbolic mode the same instance must keep BOTH branches — the
    /// load-returns-0 branch and the load-returns-1 branch — because RTL
    /// verifiers explore partial executions of every outcome (§3.2/§4.2).
    #[test]
    fn symbolic_mode_keeps_both_outcomes_for_mp_load_of_x() {
        let s = spec();
        let mp = suite::get("mp").unwrap();
        let grounded = ground(&s, &mp, DataMode::Symbolic).unwrap();
        let inst = grounded
            .iter()
            .find(|g| g.axiom == "Read_Values" && g.instance.contains("i = i4"))
            .expect("Read_Values instance for i4");
        let dnf = inst.formula.to_dnf();
        let load = rtlcheck_litmus::InstrUid(3);
        let values: std::collections::BTreeSet<u32> = dnf
            .iter()
            .flat_map(|c| c.constraints_on(load))
            .map(|c| c.value.0)
            .collect();
        assert_eq!(values, [0u32, 1].into_iter().collect(), "dnf: {dnf:?}");
    }

    #[test]
    fn final_value_axiom_vanishes_in_symbolic_mode() {
        let s = spec();
        // ssl's condition pins x = 1 (final memory), so Final_Value fires in
        // outcome mode but must disappear in symbolic mode.
        let ssl = suite::get("ssl").unwrap();
        let outcome = ground(&s, &ssl, DataMode::Outcome).unwrap();
        assert!(
            outcome.iter().any(|g| g.axiom == "Final_Value"),
            "Final_Value should ground non-trivially for ssl in outcome mode"
        );
        let symbolic = ground(&s, &ssl, DataMode::Symbolic).unwrap();
        assert!(
            !symbolic.iter().any(|g| g.axiom == "Final_Value"),
            "Final_Value must be conservatively dropped in symbolic mode"
        );
    }

    #[test]
    fn no_grounded_formula_is_constant_true() {
        let s = spec();
        let mp = suite::get("mp").unwrap();
        for g in ground(&s, &mp, DataMode::Symbolic).unwrap() {
            assert!(!matches!(g.formula, GFormula::True));
        }
    }
}

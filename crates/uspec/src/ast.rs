//! Abstract syntax for µspec specifications.

use std::fmt;

/// Index of a pipeline stage in the specification's stage table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct StageId(pub usize);

impl fmt::Display for StageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "stage{}", self.0)
    }
}

/// The sort of a quantified variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Sort {
    /// Ranges over the micro-operations (instructions) of the litmus test.
    Microop,
    /// Ranges over the cores of the litmus test.
    Core,
}

/// A `(microop, Stage)` node expression as written in µspec, e.g.
/// `(a1, Writeback)`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct NodeExpr {
    /// Name of the micro-op variable.
    pub uop: String,
    /// Stage name (resolved against [`Spec::stages`] during grounding).
    pub stage: String,
}

/// An edge expression `((a, S1), (b, S2))`, optionally labelled in the
/// source syntax (labels and colours are parsed but not semantically
/// relevant).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct EdgeExpr {
    /// Source node.
    pub src: NodeExpr,
    /// Destination node.
    pub dst: NodeExpr,
}

/// An atomic µspec predicate over quantified variables.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Predicate {
    /// `OnCore c i` — micro-op `i` executes on core `c`.
    OnCore(String, String),
    /// `IsAnyRead i` — `i` is a load.
    IsAnyRead(String),
    /// `IsAnyWrite i` — `i` is a store.
    IsAnyWrite(String),
    /// `IsAnyFence i` — `i` is a memory fence.
    IsAnyFence(String),
    /// `SameMicroop a b` — `a` and `b` are the same instruction.
    SameMicroop(String, String),
    /// `ProgramOrder a b` — same core and `a` precedes `b` in program order.
    ProgramOrder(String, String),
    /// `SameCore a b` — `a` and `b` execute on the same core.
    SameCore(String, String),
    /// `SameAddress a b` — `a` and `b` access the same location.
    SameAddress(String, String),
    /// `SameData a b` — `a` and `b` carry the same data value (outcome- or
    /// constraint-based depending on the grounding mode).
    SameData(String, String),
    /// `DataFromInitialStateAtPA i` — load `i` returns the initial value of
    /// its address.
    DataFromInitialStateAtPA(String),
    /// `DataFromFinalStateAtPA i` — store `i` writes the final value of its
    /// address (conservatively `false` in symbolic mode, §4.2).
    DataFromFinalStateAtPA(String),
}

/// A µspec formula.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Formula {
    /// Constant truth.
    True,
    /// Constant falsehood.
    False,
    /// Universal quantification over a sort.
    Forall {
        /// Sort of the bound variable.
        sort: Sort,
        /// Variable name.
        var: String,
        /// Scope of the quantifier.
        body: Box<Formula>,
    },
    /// Existential quantification over a sort.
    Exists {
        /// Sort of the bound variable.
        sort: Sort,
        /// Variable name.
        var: String,
        /// Scope of the quantifier.
        body: Box<Formula>,
    },
    /// Logical negation `~f`.
    Not(Box<Formula>),
    /// Conjunction `a /\ b`.
    And(Box<Formula>, Box<Formula>),
    /// Disjunction `a \/ b`.
    Or(Box<Formula>, Box<Formula>),
    /// Implication `a => b`.
    Implies(Box<Formula>, Box<Formula>),
    /// An atomic predicate.
    Pred(Predicate),
    /// `AddEdge ((a,S1),(b,S2))` — assert the happens-before edge.
    AddEdge(EdgeExpr),
    /// `EdgeExists ((a,S1),(b,S2))` — test the happens-before edge.
    ///
    /// In the synthesizable µspec subset used here, `EdgeExists` and
    /// `AddEdge` have the same grounded meaning ("this edge holds in the
    /// execution"); the distinction is stylistic, marking premises versus
    /// conclusions.
    EdgeExists(EdgeExpr),
    /// `EdgesExist [e1; e2; ...]` — conjunction of edges.
    EdgesExist(Vec<EdgeExpr>),
    /// `NodeExists (a, S)` — the node occurs in the execution.
    NodeExists(NodeExpr),
    /// `ExpandMacro Name` — splice in a macro body (free variables resolve
    /// at the expansion site, matching the Check suite's macro semantics).
    ExpandMacro(String),
}

impl Formula {
    /// Convenience constructor for `a /\ b`.
    pub fn and(a: Formula, b: Formula) -> Formula {
        Formula::And(Box::new(a), Box::new(b))
    }

    /// Convenience constructor for `a \/ b`.
    pub fn or(a: Formula, b: Formula) -> Formula {
        Formula::Or(Box::new(a), Box::new(b))
    }

    /// Convenience constructor for `a => b`.
    pub fn implies(a: Formula, b: Formula) -> Formula {
        Formula::Implies(Box::new(a), Box::new(b))
    }

    /// Convenience constructor for `~a`.
    #[allow(clippy::should_implement_trait)]
    pub fn not(a: Formula) -> Formula {
        Formula::Not(Box::new(a))
    }
}

/// A top-level µspec declaration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Item {
    /// `Axiom "Name": body.`
    Axiom {
        /// Axiom name.
        name: String,
        /// Axiom body.
        body: Formula,
    },
    /// `DefineMacro "Name": body.`
    Macro {
        /// Macro name.
        name: String,
        /// Macro body.
        body: Formula,
    },
}

/// A complete µspec specification: a pipeline-stage table plus axioms and
/// macros.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Spec {
    /// Ordered pipeline stage names (`Stage "Fetch".` declarations).
    pub stages: Vec<String>,
    /// Axioms and macros in declaration order.
    pub items: Vec<Item>,
}

impl Spec {
    /// Resolves a stage name to its index.
    pub fn stage_id(&self, name: &str) -> Option<StageId> {
        self.stages.iter().position(|s| s == name).map(StageId)
    }

    /// All axioms, in declaration order.
    pub fn axioms(&self) -> impl Iterator<Item = (&str, &Formula)> {
        self.items.iter().filter_map(|i| match i {
            Item::Axiom { name, body } => Some((name.as_str(), body)),
            Item::Macro { .. } => None,
        })
    }

    /// Looks up a macro body by name.
    pub fn macro_body(&self, name: &str) -> Option<&Formula> {
        self.items.iter().find_map(|i| match i {
            Item::Macro { name: n, body } if n == name => Some(body),
            _ => None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_lookups() {
        let spec = Spec {
            stages: vec!["Fetch".into(), "DecodeExecute".into(), "Writeback".into()],
            items: vec![
                Item::Macro {
                    name: "m".into(),
                    body: Formula::True,
                },
                Item::Axiom {
                    name: "a".into(),
                    body: Formula::False,
                },
            ],
        };
        assert_eq!(spec.stage_id("Writeback"), Some(StageId(2)));
        assert_eq!(spec.stage_id("WB"), None);
        assert_eq!(spec.axioms().count(), 1);
        assert_eq!(spec.macro_body("m"), Some(&Formula::True));
        assert_eq!(spec.macro_body("a"), None);
    }

    #[test]
    fn formula_constructors_nest() {
        let f = Formula::implies(
            Formula::and(Formula::True, Formula::not(Formula::False)),
            Formula::or(Formula::False, Formula::True),
        );
        match f {
            Formula::Implies(a, b) => {
                assert!(matches!(*a, Formula::And(..)));
                assert!(matches!(*b, Formula::Or(..)));
            }
            _ => panic!("expected implication"),
        }
    }
}

//! Recursive-descent parser for the µspec concrete syntax.
//!
//! The accepted grammar follows the µspec fragments shown in the RTLCheck
//! paper (Figures 3b and 5):
//!
//! ```text
//! spec      := item*
//! item      := "Stage" STR "."
//!            | "Axiom" STR ":" formula "."
//!            | "DefineMacro" STR ":" formula "."
//! formula   := or ("=>" formula)?                      (right-assoc)
//! or        := and ("\/" and)*
//! and       := unary ("/\" unary)*
//! unary     := "~" unary | quantifier | atom
//! quantifier:= ("forall"|"exists") sort STR ("," STR)* "," formula
//! sort      := "microop" | "microops" | "core" | "cores"
//! atom      := "AddEdge" edge | "EdgeExists" edge
//!            | "EdgesExist" "[" edge (";" edge)* "]"
//!            | "NodeExists" node | "ExpandMacro" IDENT
//!            | "TRUE" | "FALSE" | predicate | "(" formula ")"
//! edge      := "(" node "," node ("," STR)* ")"        (labels ignored)
//! node      := "(" IDENT "," IDENT ")"
//! predicate := PRED-NAME IDENT+
//! ```
//!
//! Quantifier scope extends as far right as possible. `%` starts a comment.

use std::error::Error;
use std::fmt;

use crate::ast::{EdgeExpr, Formula, Item, NodeExpr, Predicate, Sort, Spec};
use crate::lexer::{lex, Spanned, Tok};

/// An error raised while parsing µspec source.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseSpecError {
    /// 1-based source line.
    pub line: usize,
    /// Description of the problem.
    pub message: String,
}

impl fmt::Display for ParseSpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "µspec parse error at line {}: {}",
            self.line, self.message
        )
    }
}

impl Error for ParseSpecError {}

/// Parses a µspec specification.
///
/// # Errors
///
/// Returns a [`ParseSpecError`] pointing at the offending source line for
/// any lexical or syntactic problem, a duplicate stage declaration, or a
/// duplicate axiom/macro name.
///
/// # Example
///
/// ```
/// let spec = rtlcheck_uspec::parse(r#"
///     Stage "Fetch".
///     Stage "Writeback".
///     Axiom "PO_Fetch":
///     forall microops "a1", "a2",
///     ProgramOrder a1 a2 => AddEdge ((a1, Fetch), (a2, Fetch)).
/// "#)?;
/// assert_eq!(spec.stages.len(), 2);
/// assert_eq!(spec.axioms().count(), 1);
/// # Ok::<(), rtlcheck_uspec::ParseSpecError>(())
/// ```
pub fn parse(src: &str) -> Result<Spec, ParseSpecError> {
    let toks = lex(src).map_err(|(line, message)| ParseSpecError { line, message })?;
    Parser { toks, pos: 0 }.spec()
}

struct Parser {
    toks: Vec<Spanned>,
    pos: usize,
}

impl Parser {
    fn line(&self) -> usize {
        self.toks
            .get(self.pos)
            .or_else(|| self.toks.last())
            .map_or(0, |(_, l)| *l)
    }

    fn err(&self, msg: impl Into<String>) -> ParseSpecError {
        ParseSpecError {
            line: self.line(),
            message: msg.into(),
        }
    }

    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|(t, _)| t)
    }

    fn bump(&mut self) -> Option<Tok> {
        let t = self.peek().cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat_punct(&mut self, c: char) -> Result<(), ParseSpecError> {
        match self.bump() {
            Some(Tok::Punct(p)) if p == c => Ok(()),
            Some(t) => Err(self.err(format!("expected `{c}`, found {t}"))),
            None => Err(self.err(format!("expected `{c}`, found end of input"))),
        }
    }

    fn eat_str(&mut self) -> Result<String, ParseSpecError> {
        match self.bump() {
            Some(Tok::Str(s)) => Ok(s),
            Some(t) => Err(self.err(format!("expected string literal, found {t}"))),
            None => Err(self.err("expected string literal, found end of input")),
        }
    }

    fn eat_ident(&mut self) -> Result<String, ParseSpecError> {
        match self.bump() {
            Some(Tok::Ident(s)) => Ok(s),
            Some(t) => Err(self.err(format!("expected identifier, found {t}"))),
            None => Err(self.err("expected identifier, found end of input")),
        }
    }

    fn spec(mut self) -> Result<Spec, ParseSpecError> {
        let mut spec = Spec::default();
        while let Some(tok) = self.peek() {
            let head = match tok {
                Tok::Ident(s) => s.clone(),
                t => return Err(self.err(format!("expected declaration, found {t}"))),
            };
            self.bump();
            match head.as_str() {
                "Stage" => {
                    let name = self.eat_str()?;
                    self.eat_punct('.')?;
                    if spec.stages.contains(&name) {
                        return Err(self.err(format!("stage `{name}` declared twice")));
                    }
                    spec.stages.push(name);
                }
                "Axiom" | "DefineMacro" => {
                    let name = self.eat_str()?;
                    self.eat_punct(':')?;
                    let body = self.formula()?;
                    self.eat_punct('.')?;
                    let dup = spec.items.iter().any(|i| match i {
                        Item::Axiom { name: n, .. } | Item::Macro { name: n, .. } => *n == name,
                    });
                    if dup {
                        return Err(self.err(format!("`{name}` declared twice")));
                    }
                    spec.items.push(if head == "Axiom" {
                        Item::Axiom { name, body }
                    } else {
                        Item::Macro { name, body }
                    });
                }
                other => {
                    return Err(self.err(format!(
                        "expected `Stage`, `Axiom`, or `DefineMacro`, found `{other}`"
                    )))
                }
            }
        }
        Ok(spec)
    }

    fn formula(&mut self) -> Result<Formula, ParseSpecError> {
        let lhs = self.or_formula()?;
        if self.peek() == Some(&Tok::Implies) {
            self.bump();
            let rhs = self.formula()?; // right-associative
            Ok(Formula::implies(lhs, rhs))
        } else {
            Ok(lhs)
        }
    }

    fn or_formula(&mut self) -> Result<Formula, ParseSpecError> {
        let mut f = self.and_formula()?;
        while self.peek() == Some(&Tok::Or) {
            self.bump();
            let rhs = self.and_formula()?;
            f = Formula::or(f, rhs);
        }
        Ok(f)
    }

    fn and_formula(&mut self) -> Result<Formula, ParseSpecError> {
        let mut f = self.unary()?;
        while self.peek() == Some(&Tok::And) {
            self.bump();
            let rhs = self.unary()?;
            f = Formula::and(f, rhs);
        }
        Ok(f)
    }

    fn unary(&mut self) -> Result<Formula, ParseSpecError> {
        match self.peek() {
            Some(Tok::Not) => {
                self.bump();
                Ok(Formula::not(self.unary()?))
            }
            Some(Tok::Ident(s)) if s == "forall" || s == "exists" => self.quantifier(),
            _ => self.atom(),
        }
    }

    fn quantifier(&mut self) -> Result<Formula, ParseSpecError> {
        let kw = self.eat_ident()?;
        let universal = kw == "forall";
        let sort = match self.eat_ident()?.as_str() {
            "microop" | "microops" => Sort::Microop,
            "core" | "cores" => Sort::Core,
            other => {
                return Err(self.err(format!(
                    "expected `microop(s)` or `core(s)`, found `{other}`"
                )))
            }
        };
        // One or more quoted variable names, each followed by a comma; the
        // last comma separates the binder list from the body.
        let mut vars = vec![self.eat_str()?];
        self.eat_punct(',')?;
        while matches!(self.peek(), Some(Tok::Str(_))) {
            vars.push(self.eat_str()?);
            self.eat_punct(',')?;
        }
        let mut f = self.formula()?;
        for var in vars.into_iter().rev() {
            f = if universal {
                Formula::Forall {
                    sort,
                    var,
                    body: Box::new(f),
                }
            } else {
                Formula::Exists {
                    sort,
                    var,
                    body: Box::new(f),
                }
            };
        }
        Ok(f)
    }

    fn atom(&mut self) -> Result<Formula, ParseSpecError> {
        let head = match self.peek() {
            Some(Tok::Punct('(')) => {
                self.bump();
                let f = self.formula()?;
                self.eat_punct(')')?;
                return Ok(f);
            }
            Some(Tok::Ident(s)) => s.clone(),
            Some(t) => return Err(self.err(format!("expected formula atom, found {t}"))),
            None => return Err(self.err("expected formula atom, found end of input")),
        };
        self.bump();
        match head.as_str() {
            "TRUE" => Ok(Formula::True),
            "FALSE" => Ok(Formula::False),
            "AddEdge" => Ok(Formula::AddEdge(self.edge()?)),
            "EdgeExists" => Ok(Formula::EdgeExists(self.edge()?)),
            "EdgesExist" => {
                self.eat_punct('[')?;
                let mut edges = vec![self.edge()?];
                while self.peek() == Some(&Tok::Punct(';')) {
                    self.bump();
                    edges.push(self.edge()?);
                }
                self.eat_punct(']')?;
                Ok(Formula::EdgesExist(edges))
            }
            "NodeExists" => {
                let node = self.node()?;
                Ok(Formula::NodeExists(node))
            }
            "ExpandMacro" => Ok(Formula::ExpandMacro(self.eat_ident()?)),
            _ => self.predicate(head),
        }
    }

    fn predicate(&mut self, name: String) -> Result<Formula, ParseSpecError> {
        let arg = |p: &mut Self| p.eat_ident();
        let pred = match name.as_str() {
            "OnCore" => Predicate::OnCore(arg(self)?, arg(self)?),
            "IsAnyRead" => Predicate::IsAnyRead(arg(self)?),
            "IsAnyWrite" => Predicate::IsAnyWrite(arg(self)?),
            "IsAnyFence" => Predicate::IsAnyFence(arg(self)?),
            "SameMicroop" => Predicate::SameMicroop(arg(self)?, arg(self)?),
            "ProgramOrder" => Predicate::ProgramOrder(arg(self)?, arg(self)?),
            "SameCore" => Predicate::SameCore(arg(self)?, arg(self)?),
            "SameAddress" => Predicate::SameAddress(arg(self)?, arg(self)?),
            "SameData" => Predicate::SameData(arg(self)?, arg(self)?),
            "DataFromInitialStateAtPA" => Predicate::DataFromInitialStateAtPA(arg(self)?),
            "DataFromFinalStateAtPA" => Predicate::DataFromFinalStateAtPA(arg(self)?),
            other => return Err(self.err(format!("unknown predicate `{other}`"))),
        };
        Ok(Formula::Pred(pred))
    }

    /// Parses `((a, S1), (b, S2))` with optional trailing `, "label"`
    /// strings, which are accepted and discarded.
    fn edge(&mut self) -> Result<EdgeExpr, ParseSpecError> {
        self.eat_punct('(')?;
        let src = self.node()?;
        self.eat_punct(',')?;
        let dst = self.node()?;
        while self.peek() == Some(&Tok::Punct(',')) {
            self.bump();
            self.eat_str()?; // label or colour, ignored
        }
        self.eat_punct(')')?;
        Ok(EdgeExpr { src, dst })
    }

    fn node(&mut self) -> Result<NodeExpr, ParseSpecError> {
        self.eat_punct('(')?;
        let uop = self.eat_ident()?;
        self.eat_punct(',')?;
        let stage = self.eat_ident()?;
        self.eat_punct(')')?;
        Ok(NodeExpr { uop, stage })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The WB_FIFO axiom exactly as printed in the paper's Figure 3b
    /// (modulo an explicit core quantifier).
    const WB_FIFO: &str = r#"
        Stage "Fetch".
        Stage "DecodeExecute".
        Stage "Writeback".
        Axiom "WB_FIFO":
        forall cores "c",
        forall microops "a1", "a2",
        (OnCore c a1 /\ OnCore c a2 /\
          ~SameMicroop a1 a2 /\ ProgramOrder a1 a2) =>
        EdgeExists ((a1, DecodeExecute), (a2, DecodeExecute)) =>
        AddEdge ((a1, Writeback), (a2, Writeback)).
    "#;

    #[test]
    fn parses_wb_fifo() {
        let spec = parse(WB_FIFO).unwrap();
        assert_eq!(spec.stages.len(), 3);
        let (name, body) = spec.axioms().next().unwrap();
        assert_eq!(name, "WB_FIFO");
        // forall c . forall a1 . forall a2 . (…) => (… => …)
        let mut f = body;
        for expected in ["c", "a1", "a2"] {
            match f {
                Formula::Forall { var, body, .. } => {
                    assert_eq!(var, expected);
                    f = body;
                }
                other => panic!("expected forall {expected}, got {other:?}"),
            }
        }
        assert!(matches!(f, Formula::Implies(..)));
    }

    #[test]
    fn parses_edges_with_labels_and_lists() {
        let spec = parse(
            r#"
            Stage "WB".
            Axiom "A":
            forall microops "i", forall microop "w", forall microop "w'",
            EdgesExist [ ((w, WB), (w', WB), "");
                         ((w', WB), (i, WB), "") ] \/
            AddEdge ((i, WB), (w, WB), "fr", "red").
        "#,
        )
        .unwrap();
        let (_, body) = spec.axioms().next().unwrap();
        fn strip(mut f: &Formula) -> &Formula {
            while let Formula::Forall { body, .. } = f {
                f = body;
            }
            f
        }
        match strip(body) {
            Formula::Or(l, r) => {
                assert!(matches!(**l, Formula::EdgesExist(ref es) if es.len() == 2));
                assert!(matches!(**r, Formula::AddEdge(_)));
            }
            other => panic!("expected or, got {other:?}"),
        }
    }

    #[test]
    fn operator_precedence_and_over_or_over_implies() {
        let spec = parse(
            r#"
            Stage "S".
            Axiom "P":
            forall microops "a", forall microops "b",
            IsAnyRead a /\ IsAnyWrite b \/ SameMicroop a b => ProgramOrder a b.
        "#,
        )
        .unwrap();
        let (_, body) = spec.axioms().next().unwrap();
        let mut f = body;
        while let Formula::Forall { body, .. } = f {
            f = body;
        }
        // ((a /\ b) \/ c) => d
        match f {
            Formula::Implies(lhs, _) => match &**lhs {
                Formula::Or(l, _) => assert!(matches!(**l, Formula::And(..))),
                other => panic!("expected or on lhs, got {other:?}"),
            },
            other => panic!("expected implies at top, got {other:?}"),
        }
    }

    #[test]
    fn implies_is_right_associative() {
        let spec = parse(r#"Stage "S". Axiom "A": TRUE => FALSE => TRUE."#).unwrap();
        let (_, body) = spec.axioms().next().unwrap();
        match body {
            Formula::Implies(_, rhs) => assert!(matches!(**rhs, Formula::Implies(..))),
            other => panic!("expected implies, got {other:?}"),
        }
    }

    #[test]
    fn macros_parse_and_resolve() {
        let spec = parse(
            r#"
            Stage "S".
            DefineMacro "M": TRUE.
            Axiom "A": ExpandMacro M.
        "#,
        )
        .unwrap();
        assert_eq!(spec.macro_body("M"), Some(&Formula::True));
    }

    #[test]
    fn duplicate_declarations_rejected() {
        assert!(parse(r#"Stage "S". Stage "S"."#).is_err());
        assert!(parse(r#"Axiom "A": TRUE. Axiom "A": TRUE."#).is_err());
        assert!(parse(r#"Axiom "A": TRUE. DefineMacro "A": TRUE."#).is_err());
    }

    #[test]
    fn errors_carry_line_numbers() {
        let err = parse("Stage \"S\".\nAxiom \"A\":\nFrob x.").unwrap_err();
        assert_eq!(err.line, 3);
        assert!(err.message.contains("Frob"));
    }

    #[test]
    fn primed_variables_are_identifiers() {
        let spec = parse(
            r#"
            Stage "S".
            Axiom "A": exists microop "w'", IsAnyWrite w'.
        "#,
        )
        .unwrap();
        let (_, body) = spec.axioms().next().unwrap();
        assert!(matches!(body, Formula::Exists { var, .. } if var == "w'"));
    }
}

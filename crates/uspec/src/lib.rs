//! The µspec microarchitectural ordering-axiom language.
//!
//! µspec is the first-order logic modelling language used by the Check suite
//! (PipeCheck, CCICheck, COATCheck, TriCheck) and by RTLCheck to describe
//! *microarchitectural happens-before* orderings: axioms quantify over the
//! micro-operations of a litmus test and add edges between `(instruction,
//! pipeline-stage)` nodes of a µhb graph.
//!
//! This crate provides:
//!
//! * [`ast`] — the abstract syntax (formulas, predicates, node/edge
//!   expressions, axiom and macro declarations).
//! * [`parse`] — a parser for the concrete syntax used in the RTLCheck paper
//!   (Figures 3b and 5), including `DefineMacro`/`ExpandMacro`.
//! * [`ground`] — grounding of the quantified axioms against a concrete
//!   litmus test, producing quantifier-free [`ground::GFormula`]s over µhb
//!   edge/node atoms. Grounding has two data-predicate modes:
//!   [`ground::DataMode::Outcome`] (the Check suite's omniscient evaluation,
//!   used by the axiomatic verifier) and [`ground::DataMode::Symbolic`]
//!   (RTLCheck's outcome-aware evaluation, in which `SameData`/
//!   `DataFromInitialStateAtPA` become load-value constraints so the
//!   generated RTL properties cover *every* outcome of the test — see §3.2
//!   and §4.2 of the paper).
//! * [`multi_vscale`] — the µspec model of the Multi-V-scale processor used
//!   throughout the paper's evaluation.
//!
//! # Example
//!
//! ```
//! use rtlcheck_uspec::{parse, ground, multi_vscale};
//!
//! let spec = multi_vscale::spec();
//! let mp = rtlcheck_litmus::suite::get("mp").unwrap();
//! let grounded = ground::ground(&spec, &mp, ground::DataMode::Outcome).unwrap();
//! assert!(!grounded.is_empty());
//! # let _ = parse(multi_vscale::SOURCE).unwrap();
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod ast;
pub mod five_stage;
pub mod ground;
pub mod multi_vscale;
pub mod multi_vscale_tso;

mod lexer;
mod parser;
mod pretty;

pub use ast::{EdgeExpr, Formula, Item, NodeExpr, Predicate, Sort, Spec, StageId};
pub use parser::{parse, ParseSpecError};

//! The µspec model of the Multi-V-scale-TSO processor.
//!
//! The TSO variant adds a per-core single-entry FIFO store buffer between
//! Writeback and the shared memory. The µspec model gains a fourth stage —
//! `Memory`, the cycle a store drains from the buffer into the array — and
//! replaces the SC model's `Read_Values` with a TSO one:
//!
//! a load `i` either
//!
//! * **forwards** from the latest program-order-earlier same-address store
//!   of its own core whose drain has not yet happened (`STBFwd`), or
//! * reads the **memory array**: all of its core's earlier same-address
//!   stores have drained (`NoSTBFwd`), and `i` reads the initial value
//!   before any same-address drain (`BeforeAllMem`) or the value of the
//!   last same-address drain before its Writeback (`ReadFromMem`).
//!
//! Ordering axioms: the pipeline stages stay FIFO; same-core stores drain
//! in order (`Mem_FIFO`, the FIFO buffer); drains of all stores are
//! serialised by the single memory port (`Mem_Total_Order`).
//!
//! The memory-order position of a load is its Writeback cycle (loads read
//! the array combinationally during WB) and of a store its Memory (drain)
//! cycle — which is exactly how store→load reordering (`sb`) becomes
//! observable while coherence and store→store order are preserved.

use crate::ast::Spec;

/// Stage index of Fetch in [`SOURCE`].
pub const FETCH: usize = 0;
/// Stage index of DecodeExecute in [`SOURCE`].
pub const DECODE_EXECUTE: usize = 1;
/// Stage index of Writeback in [`SOURCE`].
pub const WRITEBACK: usize = 2;
/// Stage index of Memory (store-buffer drain) in [`SOURCE`].
pub const MEMORY: usize = 3;

/// The µspec source for Multi-V-scale-TSO.
pub const SOURCE: &str = r#"
% Multi-V-scale-TSO: V-scale pipelines with per-core single-entry store
% buffers. Stores drain to memory at the Memory stage; loads read memory at
% Writeback with store-buffer forwarding.

Stage "Fetch".
Stage "DecodeExecute".
Stage "Writeback".
Stage "Memory".

Axiom "Instr_Path":
forall microops "i",
AddEdge ((i, Fetch), (i, DecodeExecute)) /\
AddEdge ((i, DecodeExecute), (i, Writeback)) /\
(IsAnyWrite i => AddEdge ((i, Writeback), (i, Memory))).

Axiom "PO_Fetch":
forall microops "a1", "a2",
ProgramOrder a1 a2 =>
AddEdge ((a1, Fetch), (a2, Fetch)).

Axiom "DX_FIFO":
forall microops "a1", "a2",
(SameCore a1 a2 /\ ~SameMicroop a1 a2 /\ ProgramOrder a1 a2) =>
EdgeExists ((a1, Fetch), (a2, Fetch)) =>
AddEdge ((a1, DecodeExecute), (a2, DecodeExecute)).

Axiom "WB_FIFO":
forall cores "c",
forall microops "a1", "a2",
(OnCore c a1 /\ OnCore c a2 /\
  ~SameMicroop a1 a2 /\ ProgramOrder a1 a2) =>
EdgeExists ((a1, DecodeExecute), (a2, DecodeExecute)) =>
AddEdge ((a1, Writeback), (a2, Writeback)).

% The store buffer is FIFO: same-core stores drain in program order.
Axiom "Mem_FIFO":
forall microops "w1", "w2",
(IsAnyWrite w1 /\ IsAnyWrite w2 /\ SameCore w1 w2 /\
  ~SameMicroop w1 w2 /\ ProgramOrder w1 w2) =>
AddEdge ((w1, Memory), (w2, Memory)).

% The single memory write port serialises all drains.
Axiom "Mem_Total_Order":
forall microops "w1", "w2",
(IsAnyWrite w1 /\ IsAnyWrite w2 /\ ~SameMicroop w1 w2) =>
(AddEdge ((w1, Memory), (w2, Memory)) \/
 AddEdge ((w2, Memory), (w1, Memory))).

% A fence drains the store buffer: every program-order-earlier store of
% its core reaches memory before the fence completes Writeback. This is
% what restores store->load order across an mfence.
Axiom "Fence_Order":
forall microops "f", "w",
(IsAnyFence f /\ IsAnyWrite w /\ SameCore w f /\ ProgramOrder w f) =>
AddEdge ((w, Memory), (f, Writeback)).

% A write of the final memory value drains last among same-address writes.
Axiom "Final_Value":
forall microops "w1", "w2",
(IsAnyWrite w1 /\ IsAnyWrite w2 /\ ~SameMicroop w1 w2 /\ SameAddress w1 w2 /\
  DataFromFinalStateAtPA w2) =>
AddEdge ((w1, Memory), (w2, Memory)).

% Store-buffer forwarding: i reads its own core's latest not-yet-drained
% same-address store.
DefineMacro "STBFwd":
exists microop "w", (
  IsAnyWrite w /\ SameCore w i /\ SameAddress w i /\ SameData w i /\
  ProgramOrder w i /\
  EdgeExists ((w, Writeback), (i, Writeback)) /\
  EdgeExists ((i, Writeback), (w, Memory)) /\
  ~(exists microop "w'",
    IsAnyWrite w' /\ SameCore w' i /\ SameAddress w' i /\ ~SameMicroop w w' /\
    ProgramOrder w' i /\
    EdgesExist [((w, Writeback), (w', Writeback), "");
                ((w', Writeback), (i, Writeback), "")])).

% No forwarding: all of i's core's earlier same-address stores drained
% before i's Writeback.
DefineMacro "NoSTBFwd":
forall microop "w", (
  (IsAnyWrite w /\ SameCore w i /\ SameAddress w i /\ ProgramOrder w i) =>
  AddEdge ((w, Memory), (i, Writeback))).

DefineMacro "BeforeAllMem":
DataFromInitialStateAtPA i /\
forall microop "w", (
  (IsAnyWrite w /\ SameAddress w i /\ ~SameMicroop i w) =>
  AddEdge ((i, Writeback), (w, Memory), "fr", "red")).

DefineMacro "ReadFromMem":
exists microop "w", (
  IsAnyWrite w /\ SameAddress w i /\ SameData w i /\
  EdgeExists ((w, Memory), (i, Writeback)) /\
  ~(exists microop "w'",
    IsAnyWrite w' /\ SameAddress i w' /\ ~SameMicroop w w' /\
    EdgesExist [((w, Memory), (w', Memory), "");
                ((w', Memory), (i, Writeback), "")])).

Axiom "Read_Values":
forall cores "c",
forall microops "i",
OnCore c i => IsAnyRead i => (
  ExpandMacro STBFwd
  \/
  (ExpandMacro NoSTBFwd /\
   (ExpandMacro BeforeAllMem \/ ExpandMacro ReadFromMem))).
"#;

/// Parses and returns the Multi-V-scale-TSO µspec specification.
///
/// # Panics
///
/// Panics if the built-in source fails to parse (a bug; covered by tests).
pub fn spec() -> Spec {
    crate::parse(SOURCE).expect("built-in Multi-V-scale-TSO µspec is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ground::{ground, DataMode};
    use rtlcheck_litmus::suite;

    #[test]
    fn source_parses_with_four_stages() {
        let s = spec();
        assert_eq!(s.stages, ["Fetch", "DecodeExecute", "Writeback", "Memory"]);
        assert_eq!(s.stage_id("Memory"), Some(crate::StageId(MEMORY)));
        assert_eq!(s.axioms().count(), 9);
        for m in ["STBFwd", "NoSTBFwd", "BeforeAllMem", "ReadFromMem"] {
            assert!(s.macro_body(m).is_some(), "missing macro {m}");
        }
    }

    #[test]
    fn grounds_against_the_whole_suite_in_both_modes() {
        let s = spec();
        for t in suite::all() {
            for mode in [DataMode::Outcome, DataMode::Symbolic] {
                let g = ground(&s, &t, mode).unwrap_or_else(|e| panic!("{}: {e}", t.name()));
                assert!(!g.is_empty(), "{}", t.name());
            }
        }
    }

    /// The symbolic grounding of Read_Values for sb's load of y must carry
    /// both outcome branches (0 from initial memory, 1 from the store).
    #[test]
    fn symbolic_grounding_covers_both_sb_load_values() {
        let s = spec();
        let sb = suite::get("sb").unwrap();
        let grounded = ground(&s, &sb, DataMode::Symbolic).unwrap();
        let inst = grounded
            .iter()
            .find(|g| g.axiom == "Read_Values" && g.instance.contains("i = i2"))
            .expect("Read_Values for core 0's load");
        let load = rtlcheck_litmus::InstrUid(1);
        let values: std::collections::BTreeSet<u32> = inst
            .formula
            .to_dnf()
            .iter()
            .flat_map(|c| c.constraints_on(load))
            .map(|c| c.value.0)
            .collect();
        assert_eq!(values, [0u32, 1].into_iter().collect());
    }
}

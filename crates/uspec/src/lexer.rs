//! Tokeniser for the µspec concrete syntax.

use std::fmt;

/// A µspec token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum Tok {
    /// An identifier or keyword (`forall`, `Axiom`, `AddEdge`, stage names…).
    Ident(String),
    /// A quoted string literal (variable names, axiom names, labels).
    Str(String),
    /// `/\`
    And,
    /// `\/`
    Or,
    /// `=>`
    Implies,
    /// `~`
    Not,
    /// Single punctuation: `( ) [ ] , ; : .`
    Punct(char),
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "`{s}`"),
            Tok::Str(s) => write!(f, "\"{s}\""),
            Tok::And => write!(f, "`/\\`"),
            Tok::Or => write!(f, "`\\/`"),
            Tok::Implies => write!(f, "`=>`"),
            Tok::Not => write!(f, "`~`"),
            Tok::Punct(c) => write!(f, "`{c}`"),
        }
    }
}

/// A token plus its 1-based source line, for error reporting.
pub(crate) type Spanned = (Tok, usize);

/// Tokenises µspec source. `%` starts a line comment (as in the Check
/// suite's µspec files).
///
/// Returns `Err((line, message))` on a lexical error.
pub(crate) fn lex(src: &str) -> Result<Vec<Spanned>, (usize, String)> {
    let mut toks = Vec::new();
    for (lineno, raw) in src.lines().enumerate() {
        let line = lineno + 1;
        let mut chars = raw.chars().peekable();
        while let Some(&c) = chars.peek() {
            match c {
                '%' => break, // comment to end of line
                _ if c.is_whitespace() => {
                    chars.next();
                }
                '"' => {
                    chars.next();
                    let mut s = String::new();
                    loop {
                        match chars.next() {
                            Some('"') => break,
                            Some(ch) => s.push(ch),
                            None => return Err((line, "unterminated string".into())),
                        }
                    }
                    toks.push((Tok::Str(s), line));
                }
                '/' => {
                    chars.next();
                    match chars.next() {
                        Some('\\') => toks.push((Tok::And, line)),
                        other => {
                            return Err((line, format!("expected `\\` after `/`, found {other:?}")))
                        }
                    }
                }
                '\\' => {
                    chars.next();
                    match chars.next() {
                        Some('/') => toks.push((Tok::Or, line)),
                        other => {
                            return Err((line, format!("expected `/` after `\\`, found {other:?}")))
                        }
                    }
                }
                '=' => {
                    chars.next();
                    match chars.next() {
                        Some('>') => toks.push((Tok::Implies, line)),
                        other => {
                            return Err((line, format!("expected `>` after `=`, found {other:?}")))
                        }
                    }
                }
                '~' => {
                    chars.next();
                    toks.push((Tok::Not, line));
                }
                '(' | ')' | '[' | ']' | ',' | ';' | ':' | '.' => {
                    chars.next();
                    toks.push((Tok::Punct(c), line));
                }
                _ if c.is_alphanumeric() || c == '_' => {
                    let mut s = String::new();
                    while let Some(&d) = chars.peek() {
                        if d.is_alphanumeric() || d == '_' || d == '\'' {
                            s.push(d);
                            chars.next();
                        } else {
                            break;
                        }
                    }
                    toks.push((Tok::Ident(s), line));
                }
                _ => return Err((line, format!("unexpected character `{c}`"))),
            }
        }
    }
    Ok(toks)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexes_operators_and_strings() {
        let toks = lex(r#"Axiom "A": a /\ b \/ ~c => d."#).unwrap();
        let kinds: Vec<Tok> = toks.into_iter().map(|(t, _)| t).collect();
        assert_eq!(
            kinds,
            vec![
                Tok::Ident("Axiom".into()),
                Tok::Str("A".into()),
                Tok::Punct(':'),
                Tok::Ident("a".into()),
                Tok::And,
                Tok::Ident("b".into()),
                Tok::Or,
                Tok::Not,
                Tok::Ident("c".into()),
                Tok::Implies,
                Tok::Ident("d".into()),
                Tok::Punct('.'),
            ]
        );
    }

    #[test]
    fn comments_and_primes() {
        let toks = lex("w' % trailing comment /\\ ignored\nx").unwrap();
        let kinds: Vec<Tok> = toks.into_iter().map(|(t, _)| t).collect();
        assert_eq!(kinds, vec![Tok::Ident("w'".into()), Tok::Ident("x".into())]);
    }

    #[test]
    fn tracks_line_numbers() {
        let toks = lex("a\nb\n\nc").unwrap();
        let lines: Vec<usize> = toks.iter().map(|(_, l)| *l).collect();
        assert_eq!(lines, vec![1, 2, 4]);
    }

    #[test]
    fn rejects_lone_slash() {
        assert!(lex("a / b").is_err());
        assert!(lex("a = b").is_err());
        assert!(lex("\"unterminated").is_err());
    }
}

//! Node and program mapping functions.
//!
//! RTLCheck is parameterised by two user-provided mappings (paper Figure 7):
//!
//! * the **node mapping function** translates a µhb node — a specific
//!   microarchitectural event of a specific instruction — into a Verilog
//!   expression that is true exactly while the event occurs (Figure 9);
//! * the **program mapping function** translates the litmus test's
//!   instructions, initial conditions, and outcome values into RTL
//!   constraints (driving the Assumption Generator, §4.1).
//!
//! [`MultiVscaleMapping`] implements both for the Multi-V-scale design,
//! mirroring Figure 9's pseudocode: `PC_<stage> == pc && ~stall_<stage>`,
//! with the load-value constraint applied in the Writeback arm.

use rtlcheck_litmus::{InstrRef, LitmusTest, Val};
use rtlcheck_rtl::isa;
use rtlcheck_rtl::isa::BUBBLE_PC;
use rtlcheck_rtl::multi_vscale::MultiVscale;
use rtlcheck_sva::SvaBool;
use rtlcheck_uspec::ground::GNode;
use rtlcheck_uspec::multi_vscale::{DECODE_EXECUTE, FETCH, WRITEBACK};
use rtlcheck_uspec::multi_vscale_tso::MEMORY;
use rtlcheck_verif::RtlAtom;

/// A boolean over the design's signals.
pub type RtlBool = SvaBool<RtlAtom>;

/// Maps µhb nodes onto RTL expressions.
///
/// `constraint` carries a load-value constraint (§4.2): when mapping the
/// node of a load instruction for a non-delay position of an edge encoding,
/// the returned expression must additionally require the load to return that
/// value. Delay-cycle occurrences are mapped with `constraint = None` so
/// that delays exclude events of interest *regardless of data values*
/// (§3.3/§4.3).
pub trait NodeMapping {
    /// The RTL expression for the occurrence of `node`.
    fn map_node(&self, node: GNode, constraint: Option<Val>) -> RtlBool;
}

/// The Figure 9 node mapping for Multi-V-scale.
#[derive(Debug, Clone, Copy)]
pub struct MultiVscaleMapping<'a> {
    /// The design handles.
    pub mv: &'a MultiVscale,
    /// The litmus test providing instruction placement context.
    pub test: &'a LitmusTest,
}

impl<'a> MultiVscaleMapping<'a> {
    /// Creates the mapping for a design built from the same test.
    pub fn new(mv: &'a MultiVscale, test: &'a LitmusTest) -> Self {
        MultiVscaleMapping { mv, test }
    }

    /// The program counter of an instruction (context information: per-core
    /// base PC plus program-order index).
    pub fn pc_of(&self, instr: &InstrRef) -> u64 {
        isa::pc_of(instr.core.0, instr.index)
    }
}

impl NodeMapping for MultiVscaleMapping<'_> {
    fn map_node(&self, node: GNode, constraint: Option<Val>) -> RtlBool {
        let instr = self.test.instr(node.instr);
        let pc = self.pc_of(&instr);
        let core = &self.mv.cores[instr.core.0];
        match node.stage.0 {
            FETCH => SvaBool::and(
                SvaBool::atom(RtlAtom::eq(core.pc_if, pc)),
                SvaBool::atom(RtlAtom::eq(core.stall_if, 0)),
            ),
            DECODE_EXECUTE => SvaBool::and(
                SvaBool::atom(RtlAtom::eq(core.pc_dx, pc)),
                SvaBool::atom(RtlAtom::eq(core.stall_dx, 0)),
            ),
            WRITEBACK => {
                let mut expr = SvaBool::and(
                    SvaBool::atom(RtlAtom::eq(core.pc_wb, pc)),
                    SvaBool::atom(RtlAtom::eq(core.stall_wb, 0)),
                );
                if let Some(v) = constraint {
                    debug_assert!(instr.is_load(), "value constraints only apply to loads");
                    expr = SvaBool::and(
                        expr,
                        SvaBool::atom(RtlAtom::eq(core.load_data_wb, u64::from(v.0))),
                    );
                }
                expr
            }
            // The TSO design's Memory stage: the cycle this store's
            // buffered entry drains to the array. The buffered instruction
            // is identified by the recorded `sbuf_pc`. Ignoring `BUBBLE_PC`
            // keeps the check specific to real stores.
            MEMORY => {
                let tso = self
                    .mv
                    .tso
                    .as_ref()
                    .expect("the Memory stage exists only in the TSO design");
                debug_assert!(instr.is_store(), "only stores have a Memory stage event");
                debug_assert_ne!(pc, BUBBLE_PC);
                let t = &tso[instr.core.0];
                SvaBool::and(
                    SvaBool::atom(RtlAtom::is_true(t.drain)),
                    SvaBool::atom(RtlAtom::eq(t.sbuf_pc, pc)),
                )
            }
            other => panic!("Multi-V-scale has no stage {other}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtlcheck_litmus::{suite, InstrUid};
    use rtlcheck_rtl::multi_vscale::MemoryImpl;
    use rtlcheck_sva::emit::bool_to_sva;
    use rtlcheck_uspec::StageId;

    fn setup() -> (MultiVscale, LitmusTest) {
        let mp = suite::get("mp").unwrap();
        let mv = MultiVscale::build(&mp, MemoryImpl::Fixed);
        (mv, mp)
    }

    #[test]
    fn wb_node_renders_like_figure_9() {
        let (mv, mp) = setup();
        let m = MultiVscaleMapping::new(&mv, &mp);
        // i4 = load of x on core 1, index 1 → PC = 64 + 4 = 68.
        let node = GNode {
            instr: InstrUid(3),
            stage: StageId(WRITEBACK),
        };
        let expr = m.map_node(node, Some(Val(0)));
        let text = bool_to_sva(&expr, &|a| a.render(&mv.design));
        assert!(text.contains("core1_PC_WB == 32'd68"), "{text}");
        assert!(text.contains("core1_stall_WB == 1'd0"), "{text}");
        assert!(text.contains("core1_load_data_WB == 32'd0"), "{text}");
    }

    #[test]
    fn delay_mapping_is_value_agnostic() {
        let (mv, mp) = setup();
        let m = MultiVscaleMapping::new(&mv, &mp);
        let node = GNode {
            instr: InstrUid(3),
            stage: StageId(WRITEBACK),
        };
        let text = bool_to_sva(&m.map_node(node, None), &|a| a.render(&mv.design));
        assert!(!text.contains("load_data"), "{text}");
    }

    #[test]
    fn dx_and_if_nodes_map_with_stalls() {
        let (mv, mp) = setup();
        let m = MultiVscaleMapping::new(&mv, &mp);
        let dx = GNode {
            instr: InstrUid(0),
            stage: StageId(DECODE_EXECUTE),
        };
        let text = bool_to_sva(&m.map_node(dx, None), &|a| a.render(&mv.design));
        assert!(text.contains("core0_PC_DX == 32'd0"), "{text}");
        assert!(text.contains("core0_stall_DX == 1'd0"), "{text}");
        let iff = GNode {
            instr: InstrUid(1),
            stage: StageId(FETCH),
        };
        let text = bool_to_sva(&m.map_node(iff, None), &|a| a.render(&mv.design));
        assert!(text.contains("core0_PC_IF == 32'd4"), "{text}");
        assert!(text.contains("core0_stall_IF == 1'd0"), "{text}");
    }

    #[test]
    fn memory_stage_maps_to_the_drain_event() {
        let sb = suite::get("sb").unwrap();
        let mv = MultiVscale::build(&sb, MemoryImpl::Tso);
        let m = MultiVscaleMapping::new(&mv, &sb);
        // i1 = store of x on core 0.
        let node = GNode {
            instr: InstrUid(0),
            stage: StageId(3),
        };
        let text = bool_to_sva(&m.map_node(node, None), &|a| a.render(&mv.design));
        assert!(text.contains("core0_drain == 1'd1"), "{text}");
        assert!(text.contains("core0_sbuf_pc == 32'd0"), "{text}");
    }

    #[test]
    #[should_panic(expected = "Memory stage exists only in the TSO design")]
    fn memory_stage_requires_the_tso_design() {
        let (mv, mp) = setup();
        let m = MultiVscaleMapping::new(&mv, &mp);
        let node = GNode {
            instr: InstrUid(0),
            stage: StageId(3),
        };
        let _ = m.map_node(node, None);
    }

    #[test]
    #[should_panic(expected = "no stage")]
    fn unknown_stage_panics() {
        let (mv, mp) = setup();
        let m = MultiVscaleMapping::new(&mv, &mp);
        let node = GNode {
            instr: InstrUid(0),
            stage: StageId(9),
        };
        let _ = m.map_node(node, None);
    }
}

//! RTLCheck instantiated for the Multi-Five-Stage processor.
//!
//! This module is the second user of the microarchitecture-agnostic
//! generators (the paper's "arbitrary Verilog design" claim): its own node
//! mapping function (Figure 9's role, for a five-stage pipeline whose
//! memory access and load data live in the **Memory** stage), its own
//! program mapping / assumption generation, and a small driver mirroring
//! [`crate::Rtlcheck::check_test`].

use rtlcheck_litmus::{CondClause, LitmusTest, Val};
use rtlcheck_rtl::five_stage::FiveStage;
use rtlcheck_rtl::isa;
use rtlcheck_sva::{Prop, Seq, SvaBool};
use rtlcheck_uspec::five_stage as fs_spec;
use rtlcheck_uspec::ground::GNode;
use rtlcheck_verif::{Directive, Problem, RtlAtom, VerifyConfig};

use crate::assert_gen::{self, AssertionOptions};
use crate::assume::GeneratedAssumptions;
use crate::mapping::{NodeMapping, RtlBool};
use crate::report::TestReport;

/// The node mapping for Multi-Five-Stage.
///
/// Fetch through Execute are PC-equality events qualified by the
/// whole-pipeline stall; the Memory stage additionally requires the grant
/// (via `~stall`) and carries load-value constraints on `load_data_MEM`;
/// Writeback is the retire cycle.
#[derive(Debug, Clone, Copy)]
pub struct FiveStageMapping<'a> {
    /// Design handles.
    pub fs: &'a FiveStage,
    /// The litmus test providing placement context.
    pub test: &'a LitmusTest,
}

impl NodeMapping for FiveStageMapping<'_> {
    fn map_node(&self, node: GNode, constraint: Option<Val>) -> RtlBool {
        let instr = self.test.instr(node.instr);
        let pc = isa::pc_of(instr.core.0, instr.index);
        let core = &self.fs.cores[instr.core.0];
        let not_stalled = SvaBool::atom(RtlAtom::eq(core.stall, 0));
        let at = |sig| SvaBool::and(SvaBool::atom(RtlAtom::eq(sig, pc)), not_stalled.clone());
        match node.stage.0 {
            fs_spec::FETCH => at(core.pc_if),
            fs_spec::DECODE => at(core.pc_id),
            fs_spec::EXECUTE => at(core.pc_ex),
            fs_spec::MEMORY => {
                let mut expr = at(core.pc_mem);
                if let Some(v) = constraint {
                    debug_assert!(instr.is_load(), "value constraints only apply to loads");
                    expr = SvaBool::and(
                        expr,
                        SvaBool::atom(RtlAtom::eq(core.load_data_mem, u64::from(v.0))),
                    );
                }
                expr
            }
            fs_spec::WRITEBACK => SvaBool::atom(RtlAtom::eq(core.pc_wb, pc)),
            other => panic!("Multi-Five-Stage has no stage {other}"),
        }
    }
}

/// The Assumption Generator for Multi-Five-Stage (§4.1, retargeted):
/// memory/instruction initialisation, load values at the Memory stage, and
/// the final-value assumption over the halt flags.
pub fn generate_assumptions(fs: &FiveStage, test: &LitmusTest) -> GeneratedAssumptions {
    let mapping = FiveStageMapping { fs, test };
    let mut directives = Vec::new();
    let mut init_pins = Vec::new();
    let first = SvaBool::atom(RtlAtom::is_true(fs.first));

    for (loc_idx, &mem_sig) in fs.mem.iter().enumerate() {
        let value = if loc_idx < test.num_locations() {
            u64::from(test.initial_value(rtlcheck_litmus::Loc(loc_idx)).0)
        } else {
            0
        };
        directives.push(Directive::assume(
            format!("init_mem_{loc_idx}"),
            Prop::implies(
                first.clone(),
                Prop::seq(Seq::boolean(SvaBool::atom(RtlAtom::eq(mem_sig, value)))),
            ),
        ));
        init_pins.push((mem_sig, value));
    }
    for (c, slots) in fs.imem.iter().enumerate() {
        for (s, &imem_sig) in slots.iter().enumerate() {
            let packed = fs.programs[c][s].packed();
            directives.push(Directive::assume(
                format!("init_imem_c{c}_s{s}"),
                Prop::implies(
                    first.clone(),
                    Prop::seq(Seq::boolean(SvaBool::atom(RtlAtom::eq(imem_sig, packed)))),
                ),
            ));
        }
    }
    for instr in test.instructions().filter(|i| i.is_load()) {
        if let Some(v) = test.expected_load_value(&instr) {
            let mem_node = GNode {
                instr: instr.uid,
                stage: rtlcheck_uspec::StageId(fs_spec::MEMORY),
            };
            let antecedent = mapping.map_node(mem_node, None);
            let consequent = mapping.map_node(mem_node, Some(v));
            directives.push(Directive::assume(
                format!("value_{}", instr.uid),
                Prop::implies(antecedent, Prop::seq(Seq::boolean(consequent))),
            ));
        }
    }
    let all_halted = SvaBool::all(
        fs.cores
            .iter()
            .map(|c| SvaBool::atom(RtlAtom::is_true(c.halted)))
            .collect(),
    );
    let final_values = SvaBool::all(
        test.condition()
            .clauses()
            .iter()
            .filter_map(|clause| match *clause {
                CondClause::MemEq { loc, val } => {
                    Some(SvaBool::atom(RtlAtom::eq(fs.mem[loc.0], u64::from(val.0))))
                }
                CondClause::RegEq { .. } => None,
            })
            .collect(),
    );
    directives.push(Directive::assume(
        "final_values",
        Prop::implies(
            all_halted.clone(),
            Prop::seq(Seq::boolean(final_values.clone())),
        ),
    ));
    let cover = SvaBool::and(all_halted, final_values);

    GeneratedAssumptions {
        directives,
        init_pins,
        cover,
    }
}

/// Runs the full RTLCheck flow on one litmus test against Multi-Five-Stage.
///
/// # Panics
///
/// Panics if the test does not fit the design.
pub fn check_test(test: &LitmusTest, config: &VerifyConfig) -> TestReport {
    check_test_observed(test, config, &rtlcheck_obs::NullCollector)
}

/// [`check_test`] with instrumentation, mirroring
/// [`crate::Rtlcheck::check_test_observed`].
///
/// # Panics
///
/// As [`check_test`].
pub fn check_test_observed(
    test: &LitmusTest,
    config: &VerifyConfig,
    collector: &dyn rtlcheck_obs::Collector,
) -> TestReport {
    check_test_mutated(
        test,
        None,
        config,
        rtlcheck_verif::BackendChoice::default(),
        None,
        rtlcheck_verif::Incremental::Off,
        collector,
    )
    .expect("no mutation to fail")
}

/// [`check_test_observed`] on an optional **mutant** of the five-stage
/// design, through an optional graph cache — the five-stage leg of the
/// mutation campaign, mirroring [`crate::Rtlcheck::check_test_mutated`].
/// With `incremental` enabled and a cache present, the mutant's graph is
/// spliced from the baseline design's published core when possible.
///
/// # Errors
///
/// Returns the [`rtlcheck_rtl::mutate::MutateError`] if the mutation does
/// not apply.
///
/// # Panics
///
/// As [`check_test`].
#[allow(clippy::too_many_arguments)]
pub fn check_test_mutated(
    test: &LitmusTest,
    mutation: Option<&rtlcheck_rtl::mutate::Mutation>,
    config: &VerifyConfig,
    backend: rtlcheck_verif::BackendChoice,
    cache: Option<&rtlcheck_verif::GraphCache>,
    incremental: rtlcheck_verif::Incremental,
    collector: &dyn rtlcheck_obs::Collector,
) -> Result<TestReport, rtlcheck_rtl::mutate::MutateError> {
    use rtlcheck_obs::{attrs, span};

    let mut flow = span(
        collector,
        "check_test",
        attrs!["test" => test.name(), "config" => &config.name],
    );
    if let Some(m) = mutation {
        flow.attr("mutant", m.name.as_str());
    }

    let mut g = span(collector, "design_build", attrs!["test" => test.name()]);
    let mut fs = FiveStage::build(test);
    let mut baseline: Option<rtlcheck_rtl::Design> = None;
    if let Some(m) = mutation {
        if incremental.enabled() && cache.is_some() {
            baseline = Some(fs.design.clone());
        }
        fs.design = m.apply(&fs.design)?;
        g.attr("mutant", m.name.as_str());
    }
    let fs = fs;
    let spec = fs_spec::spec();
    let mapping = FiveStageMapping { fs: &fs, test };
    g.finish();

    let mut g = span(collector, "assumption_gen", attrs!["test" => test.name()]);
    let assumptions = generate_assumptions(&fs, test);
    g.attr("assumptions", assumptions.directives.len());
    g.finish();

    let mut g = span(collector, "assertion_gen", attrs!["test" => test.name()]);
    let assertions =
        assert_gen::generate_with(&spec, &mapping, fs.first, test, AssertionOptions::paper())
            .expect("Multi-Five-Stage µspec is synthesizable");
    g.attr("assertions", assertions.len());
    g.finish();

    let mut problem = Problem::new(&fs.design);
    problem.init_pins = assumptions.init_pins.clone();
    problem.assumptions = assumptions.directives.clone();
    problem.cover = Some(assumptions.cover.clone());

    let report = crate::check::run_flow_cached(
        test.name(),
        &problem,
        &assertions,
        config,
        backend,
        cache,
        baseline.as_ref().map(|b| (b, incremental.validate())),
        collector,
    );
    flow.attr(
        "verdict",
        if report.bug_found() {
            "violation"
        } else if report.verified() {
            "verified"
        } else {
            "inconclusive"
        },
    );
    flow.finish();
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtlcheck_litmus::suite;
    use rtlcheck_sva::emit::bool_to_sva;
    use rtlcheck_uspec::StageId;

    #[test]
    fn memory_node_maps_with_load_constraint() {
        let mp = suite::get("mp").unwrap();
        let fs = FiveStage::build(&mp);
        let m = FiveStageMapping { fs: &fs, test: &mp };
        let node = GNode {
            instr: rtlcheck_litmus::InstrUid(3),
            stage: StageId(fs_spec::MEMORY),
        };
        let text = bool_to_sva(&m.map_node(node, Some(Val(0))), &|a| a.render(&fs.design));
        assert!(text.contains("core1_PC_MEM == 32'd68"), "{text}");
        assert!(text.contains("core1_stall_MEM == 1'd0"), "{text}");
        assert!(text.contains("core1_load_data_MEM == 32'd0"), "{text}");
    }

    #[test]
    fn mp_verifies_end_to_end() {
        let mp = suite::get("mp").unwrap();
        let report = check_test(&mp, &VerifyConfig::quick());
        assert!(report.verified(), "{report}");
        assert!(report.verified_by_assumptions());
        assert!(!report.vacuous);
    }

    #[test]
    fn sb_verifies_end_to_end() {
        let sb = suite::get("sb").unwrap();
        let report = check_test(&sb, &VerifyConfig::quick());
        assert!(report.verified(), "{report}");
        assert_eq!(
            report
                .properties
                .iter()
                .filter(|p| p.verdict.is_falsified())
                .count(),
            0,
            "{report}"
        );
    }
}

//! The end-to-end RTLCheck driver (paper Figure 7).

use std::fmt::Write as _;
use std::time::Instant;

use rtlcheck_litmus::LitmusTest;
use rtlcheck_rtl::multi_vscale::{MemoryImpl, MultiVscale};
use rtlcheck_sva::emit;
use rtlcheck_uspec::Spec;
use rtlcheck_verif::{
    check_cover, verify_property, CoverVerdict, Problem, VerifyConfig,
};

use crate::assert_gen::{self, AssertionOptions};
use crate::assume;
use crate::report::{CoverOutcome, PropertyReport, TestReport};

/// The RTLCheck tool: µspec model + RTL design variant + translation
/// options.
///
/// Checking a litmus test (Figure 7's flow):
///
/// 1. build the Multi-V-scale design loaded with the test's programs;
/// 2. run the Assumption Generator (§4.1) and the Assertion Generator
///    (§4.2–4.4);
/// 3. search for a covering trace of the final-value assumption — an
///    unreachable cover verifies the test outright, a covered one is a
///    violation witness;
/// 4. run the configuration's proof engines on every generated assertion.
#[derive(Debug, Clone)]
pub struct Rtlcheck {
    memory: MemoryImpl,
    spec: Spec,
    options: AssertionOptions,
}

impl Rtlcheck {
    /// RTLCheck for Multi-V-scale with the given memory implementation and
    /// the matching µspec model (the SC model for [`MemoryImpl::Buggy`] /
    /// [`MemoryImpl::Fixed`], the TSO model for [`MemoryImpl::Tso`]) and the
    /// paper's translation options.
    pub fn new(memory: MemoryImpl) -> Self {
        let spec = match memory {
            MemoryImpl::Buggy | MemoryImpl::Fixed => rtlcheck_uspec::multi_vscale::spec(),
            MemoryImpl::Tso => rtlcheck_uspec::multi_vscale_tso::spec(),
        };
        Rtlcheck { memory, spec, options: AssertionOptions::paper() }
    }

    /// RTLCheck for the Total Store Order variant of Multi-V-scale with the
    /// TSO µspec model — the repository's demonstration that the flow
    /// "supports arbitrary ISA-level MCMs, including x86-TSO" (paper §1).
    ///
    /// Note the verdict reinterpretation: on a TSO design, a covering trace
    /// for an SC-`forbid` outcome (e.g. `sb`) is a legitimate TSO
    /// reordering, not a bug; genuine TSO violations show up as assertion
    /// counterexamples against the TSO axioms.
    pub fn tso() -> Self {
        Rtlcheck::new(MemoryImpl::Tso)
    }

    /// Overrides the µspec specification.
    pub fn with_spec(mut self, spec: Spec) -> Self {
        self.spec = spec;
        self
    }

    /// Overrides the translation options (for the §3 ablations).
    pub fn with_options(mut self, options: AssertionOptions) -> Self {
        self.options = options;
        self
    }

    /// The active translation options.
    pub fn options(&self) -> AssertionOptions {
        self.options
    }

    /// Builds the design for a test (exposed for inspection/emission).
    pub fn build_design(&self, test: &LitmusTest) -> MultiVscale {
        MultiVscale::build(test, self.memory)
    }

    /// Runs the full flow on one litmus test.
    ///
    /// # Panics
    ///
    /// Panics if the test does not fit the design (more than four cores) or
    /// the µspec model falls outside the synthesizable subset.
    pub fn check_test(&self, test: &LitmusTest, config: &VerifyConfig) -> TestReport {
        let mv = self.build_design(test);
        let assumptions = assume::generate(&mv, test);
        let assertions = assert_gen::generate(&self.spec, &mv, test, self.options)
            .expect("Multi-V-scale µspec is synthesizable");

        let mut problem = Problem::new(&mv.design);
        problem.init_pins = assumptions.init_pins.clone();
        problem.assumptions = assumptions.directives.clone();
        problem.cover = Some(assumptions.cover.clone());

        // Phase 1: covering-trace search (§4.1).
        let start = Instant::now();
        let cover_verdict = check_cover(&problem, config.cover_engine());
        let cover_elapsed = start.elapsed();
        let vacuous = cover_verdict.stats().vacuous();
        let cover = match cover_verdict {
            CoverVerdict::Unreachable(_) => CoverOutcome::VerifiedUnreachable,
            CoverVerdict::Covered(trace, _) => CoverOutcome::BugWitness(Box::new(trace)),
            CoverVerdict::Unknown(_) => CoverOutcome::Inconclusive,
        };

        // Phase 2: per-property proofs.
        let mut properties = Vec::with_capacity(assertions.len());
        for a in &assertions {
            let start = Instant::now();
            let verdict = verify_property(&problem, &a.directive.prop, config);
            properties.push(PropertyReport {
                name: a.directive.name.clone(),
                axiom: a.axiom.clone(),
                verdict,
                elapsed: start.elapsed(),
            });
        }

        TestReport {
            test: test.name().to_string(),
            config: config.name.clone(),
            cover,
            cover_elapsed,
            properties,
            vacuous,
        }
    }

    /// Emits the complete per-test SystemVerilog property file — the
    /// artifact RTLCheck hands to the RTL verifier (one file per litmus
    /// test, §6): all generated assumptions followed by all assertions.
    pub fn emit_sva(&self, test: &LitmusTest) -> String {
        let mv = self.build_design(test);
        let assumptions = assume::generate(&mv, test);
        let assertions = assert_gen::generate(&self.spec, &mv, test, self.options)
            .expect("Multi-V-scale µspec is synthesizable");
        let render = |a: &rtlcheck_verif::RtlAtom| a.render(&mv.design);
        let mut out = String::new();
        let _ = writeln!(out, "// RTLCheck-generated properties for litmus test `{}`", test.name());
        let _ = writeln!(out, "// Design: {}\n", mv.design.name());
        let _ = writeln!(out, "// ---- assumptions (§4.1) ----");
        for d in &assumptions.directives {
            let _ = writeln!(out, "// {}", d.name);
            let _ = writeln!(out, "{}", emit::assume_directive(&d.prop, &render));
        }
        let _ = writeln!(out, "\n// ---- assertions (§4.2-4.4) ----");
        for a in &assertions {
            let _ = writeln!(out, "// {}", a.directive.name);
            let _ = writeln!(out, "{}", emit::assert_directive(&a.directive.prop, &render));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtlcheck_litmus::suite;

    #[test]
    fn mp_verifies_on_the_fixed_design() {
        let mp = suite::get("mp").unwrap();
        let report = Rtlcheck::new(MemoryImpl::Fixed).check_test(&mp, &VerifyConfig::quick());
        assert!(report.verified(), "{report}");
        assert!(report.verified_by_assumptions(), "mp's outcome should be unreachable");
        assert!(!report.vacuous);
        assert!(
            report.properties.iter().all(|p| !p.verdict.is_falsified()),
            "{report}"
        );
    }

    /// §7.1: RTLCheck discovers the V-scale store-drop bug on mp.
    #[test]
    fn mp_finds_the_bug_on_the_buggy_design() {
        let mp = suite::get("mp").unwrap();
        let report = Rtlcheck::new(MemoryImpl::Buggy).check_test(&mp, &VerifyConfig::quick());
        assert!(report.bug_found(), "{report}");
        // The covering trace is an execution of the forbidden outcome…
        assert!(matches!(report.cover, crate::report::CoverOutcome::BugWitness(_)));
        // …and, as in the paper, a Read_Values property has a
        // counterexample.
        let (name, trace) = report.first_counterexample().expect("a falsified property");
        assert!(name.starts_with("Read_Values"), "{name}");
        assert!(trace.len() >= 4, "the violation needs the pipelined schedule");
    }

    #[test]
    fn emit_sva_contains_assumptions_and_assertions() {
        let mp = suite::get("mp").unwrap();
        let text = Rtlcheck::new(MemoryImpl::Fixed).emit_sva(&mp);
        assert!(text.contains("assume property"), "{text}");
        assert!(text.contains("assert property"), "{text}");
        assert!(text.contains("Read_Values"), "{text}");
        assert!(text.contains("first == 1'd1 |->"), "{text}");
    }
}

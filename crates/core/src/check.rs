//! The end-to-end RTLCheck driver (paper Figure 7).

use std::fmt::Write as _;

use rtlcheck_litmus::LitmusTest;
use rtlcheck_obs::{attrs, span, Collector, NullCollector};
use rtlcheck_rtl::multi_vscale::{MemoryImpl, MultiVscale};
use rtlcheck_rtl::mutate::{MutateError, Mutation};
use rtlcheck_rtl::Design;
use rtlcheck_sva::emit;
use rtlcheck_uspec::Spec;
use rtlcheck_verif::{
    build_graph, check_cover_on_graph_observed, explore, verify_property_on_graph_observed,
    Backend, BackendChoice, BackendKind, ComposedFallback, ComposedGraph, CoverVerdict, GraphCache,
    Incremental, Problem, PropertyVerdict, SymbolicGraph, VerifyConfig,
};

use crate::assert_gen::{self, AssertionOptions, GeneratedAssertion};
use crate::assume;
use crate::report::{CoverOutcome, PropertyReport, TestReport};

/// The RTLCheck tool: µspec model + RTL design variant + translation
/// options.
///
/// Checking a litmus test (Figure 7's flow):
///
/// 1. build the Multi-V-scale design loaded with the test's programs;
/// 2. run the Assumption Generator (§4.1) and the Assertion Generator
///    (§4.2–4.4);
/// 3. search for a covering trace of the final-value assumption — an
///    unreachable cover verifies the test outright, a covered one is a
///    violation witness;
/// 4. run the configuration's proof engines on every generated assertion.
#[derive(Debug, Clone)]
pub struct Rtlcheck {
    memory: MemoryImpl,
    spec: Spec,
    options: AssertionOptions,
    backend: BackendChoice,
}

impl Rtlcheck {
    /// RTLCheck for Multi-V-scale with the given memory implementation and
    /// the matching µspec model (the SC model for [`MemoryImpl::Buggy`] /
    /// [`MemoryImpl::Fixed`], the TSO model for [`MemoryImpl::Tso`]) and the
    /// paper's translation options.
    pub fn new(memory: MemoryImpl) -> Self {
        let spec = match memory {
            MemoryImpl::Buggy | MemoryImpl::Fixed => rtlcheck_uspec::multi_vscale::spec(),
            MemoryImpl::Tso => rtlcheck_uspec::multi_vscale_tso::spec(),
        };
        Rtlcheck {
            memory,
            spec,
            options: AssertionOptions::paper(),
            backend: BackendChoice::default(),
        }
    }

    /// RTLCheck for the Total Store Order variant of Multi-V-scale with the
    /// TSO µspec model — the repository's demonstration that the flow
    /// "supports arbitrary ISA-level MCMs, including x86-TSO" (paper §1).
    ///
    /// Note the verdict reinterpretation: on a TSO design, a covering trace
    /// for an SC-`forbid` outcome (e.g. `sb`) is a legitimate TSO
    /// reordering, not a bug; genuine TSO violations show up as assertion
    /// counterexamples against the TSO axioms.
    pub fn tso() -> Self {
        Rtlcheck::new(MemoryImpl::Tso)
    }

    /// Overrides the µspec specification.
    pub fn with_spec(mut self, spec: Spec) -> Self {
        self.spec = spec;
        self
    }

    /// Overrides the translation options (for the §3 ablations).
    pub fn with_options(mut self, options: AssertionOptions) -> Self {
        self.options = options;
        self
    }

    /// Selects the reachable-set backend for the verification phases:
    /// explicit per-valuation enumeration (the default), the symbolic BDD
    /// backend, or [`BackendChoice::Auto`] — which routes each per-test
    /// design by its input width and register count.
    pub fn with_backend(mut self, backend: BackendChoice) -> Self {
        self.backend = backend;
        self
    }

    /// The active translation options.
    pub fn options(&self) -> AssertionOptions {
        self.options
    }

    /// The active backend choice.
    pub fn backend(&self) -> BackendChoice {
        self.backend
    }

    /// Builds the design for a test (exposed for inspection/emission).
    pub fn build_design(&self, test: &LitmusTest) -> MultiVscale {
        MultiVscale::build(test, self.memory)
    }

    /// Runs the full flow on one litmus test.
    ///
    /// # Panics
    ///
    /// Panics if the test does not fit the design (more than four cores) or
    /// the µspec model falls outside the synthesizable subset.
    pub fn check_test(&self, test: &LitmusTest, config: &VerifyConfig) -> TestReport {
        self.check_test_observed(test, config, &NullCollector)
    }

    /// [`Rtlcheck::check_test`] with instrumentation: every Figure-7 phase
    /// (design build, assumption generation, assertion generation, cover
    /// search, per-property engine runs) reports to `collector` as a timed
    /// span, and all report durations are sourced from those spans — the
    /// CLI's times and the metrics' times are the same measurements.
    ///
    /// # Panics
    ///
    /// As [`Rtlcheck::check_test`].
    pub fn check_test_observed(
        &self,
        test: &LitmusTest,
        config: &VerifyConfig,
        collector: &dyn Collector,
    ) -> TestReport {
        self.check_test_inner(test, config, None, collector)
    }

    /// [`Rtlcheck::check_test_observed`] through a [`GraphCache`]: the
    /// state graph is requested from the cache instead of always being
    /// built cold, and — when the cache has a directory and this call cold-
    /// built the graph — the post-walk core is persisted for later runs.
    ///
    /// The cache's own `graph_cache.*` counters are **not** reported here:
    /// call [`GraphCache::report_to`] once per run after all tests, so the
    /// metrics stream stays independent of scheduling.
    ///
    /// # Panics
    ///
    /// As [`Rtlcheck::check_test`].
    pub fn check_test_cached(
        &self,
        test: &LitmusTest,
        config: &VerifyConfig,
        cache: &GraphCache,
        collector: &dyn Collector,
    ) -> TestReport {
        self.check_test_inner(test, config, Some(cache), collector)
    }

    /// [`Rtlcheck::check_test_observed`] on a **mutant** of the per-test
    /// design: the design is built, `mutation` is applied to its IR, and the
    /// unchanged Figure-7 flow (assumption gen, assertion gen, cover search,
    /// property proofs) runs against the mutated design. The mutation
    /// campaign uses this to measure whether the generated properties kill
    /// injected bugs.
    ///
    /// Cache safety: the mutant's module name differs from the original's
    /// and from every other mutant's, so the graph-cache fingerprint never
    /// collides across mutants.
    ///
    /// With `incremental` enabled **and** a cache present, the mutant's
    /// state graph is spliced from the baseline design's published core
    /// when the dirty-cone analysis allows it (see
    /// [`GraphCache::build_graph_incremental`]); the result is bit-identical
    /// to a cold build, so reports and caches are unaffected — only the
    /// construction cost and the `cone.*` counters change.
    ///
    /// # Errors
    ///
    /// Returns the [`MutateError`] if the mutation does not apply to this
    /// design.
    ///
    /// # Panics
    ///
    /// As [`Rtlcheck::check_test`].
    pub fn check_test_mutated(
        &self,
        test: &LitmusTest,
        mutation: &Mutation,
        config: &VerifyConfig,
        cache: Option<&GraphCache>,
        incremental: Incremental,
        collector: &dyn Collector,
    ) -> Result<TestReport, MutateError> {
        self.check_test_mutated_inner(test, Some(mutation), config, cache, incremental, collector)
    }

    fn check_test_inner(
        &self,
        test: &LitmusTest,
        config: &VerifyConfig,
        cache: Option<&GraphCache>,
        collector: &dyn Collector,
    ) -> TestReport {
        self.check_test_mutated_inner(test, None, config, cache, Incremental::Off, collector)
            .expect("no mutation to fail")
    }

    fn check_test_mutated_inner(
        &self,
        test: &LitmusTest,
        mutation: Option<&Mutation>,
        config: &VerifyConfig,
        cache: Option<&GraphCache>,
        incremental: Incremental,
        collector: &dyn Collector,
    ) -> Result<TestReport, MutateError> {
        let mut flow = span(
            collector,
            "check_test",
            attrs!["test" => test.name(), "config" => &config.name],
        );
        if let Some(m) = mutation {
            flow.attr("mutant", m.name.as_str());
        }

        let mut g = span(collector, "design_build", attrs!["test" => test.name()]);
        let mut mv = self.build_design(test);
        let mut baseline: Option<Design> = None;
        if let Some(m) = mutation {
            // The pre-mutation design is the splice baseline: its cache
            // key is what the campaign's baseline pass published under.
            if incremental.enabled() && cache.is_some() {
                baseline = Some(mv.design.clone());
            }
            // The mutant keeps every signal id, so the assumption and
            // assertion generators' handles stay valid.
            mv.design = m.apply(&mv.design)?;
            g.attr("mutant", m.name.as_str());
        }
        let mv = mv;
        g.finish();

        let mut g = span(collector, "assumption_gen", attrs!["test" => test.name()]);
        let assumptions = assume::generate(&mv, test);
        g.attr("assumptions", assumptions.directives.len());
        g.finish();

        let mut g = span(collector, "assertion_gen", attrs!["test" => test.name()]);
        let assertions = assert_gen::generate(&self.spec, &mv, test, self.options)
            .expect("Multi-V-scale µspec is synthesizable");
        g.attr("assertions", assertions.len());
        g.finish();

        let mut problem = Problem::new(&mv.design);
        problem.init_pins = assumptions.init_pins.clone();
        problem.assumptions = assumptions.directives.clone();
        problem.cover = Some(assumptions.cover.clone());

        let report = run_flow_cached(
            test.name(),
            &problem,
            &assertions,
            config,
            self.backend,
            cache,
            baseline.as_ref().map(|b| (b, incremental.validate())),
            collector,
        );
        flow.attr(
            "verdict",
            if report.bug_found() {
                "violation"
            } else if report.verified() {
                "verified"
            } else {
                "inconclusive"
            },
        );
        flow.finish();
        Ok(report)
    }

    /// The graph-cache fingerprint this test's verification problem would
    /// be keyed under, without building the graph: the design is built and
    /// the assumption/assertion generators run (cheap), but no state is
    /// explored. Two tests with equal fingerprints are served by one
    /// cached graph, so batch drivers (the fuzzing campaign's escalation
    /// path) use this to bucket work units that can share an engine run.
    pub fn problem_fingerprint(&self, test: &LitmusTest) -> rtlcheck_verif::GraphKey {
        let mv = self.build_design(test);
        let assumptions = assume::generate(&mv, test);
        let assertions = assert_gen::generate(&self.spec, &mv, test, self.options)
            .expect("Multi-V-scale µspec is synthesizable");
        let mut problem = Problem::new(&mv.design);
        problem.init_pins = assumptions.init_pins.clone();
        problem.assumptions = assumptions.directives.clone();
        problem.cover = Some(assumptions.cover.clone());
        let props: Vec<_> = assertions.iter().map(|a| &a.directive.prop).collect();
        rtlcheck_verif::fingerprint_problem(&problem, &props)
    }

    /// The fingerprint batch drivers should coalesce this test's work
    /// under. Identical to [`Rtlcheck::problem_fingerprint`] unless the
    /// active backend resolves to the composed one for this test's design,
    /// in which case it is the module-structured key
    /// ([`rtlcheck_verif::fingerprint_modules`]): jobs bucket together
    /// only when they share the whole graph *and* its module
    /// decomposition. A composed test that would take the flat fallback
    /// keys like a flat one.
    pub fn coalescing_fingerprint(&self, test: &LitmusTest) -> rtlcheck_verif::GraphKey {
        let mv = self.build_design(test);
        let assumptions = assume::generate(&mv, test);
        let assertions = assert_gen::generate(&self.spec, &mv, test, self.options)
            .expect("Multi-V-scale µspec is synthesizable");
        let mut problem = Problem::new(&mv.design);
        problem.init_pins = assumptions.init_pins.clone();
        problem.assumptions = assumptions.directives.clone();
        problem.cover = Some(assumptions.cover.clone());
        let props: Vec<_> = assertions.iter().map(|a| &a.directive.prop).collect();
        if self.backend.resolve(&mv.design) == BackendKind::Composed {
            if let Some(key) = rtlcheck_verif::fingerprint_modules(&problem, &props) {
                return key;
            }
        }
        rtlcheck_verif::fingerprint_problem(&problem, &props)
    }

    /// Emits the complete per-test SystemVerilog property file — the
    /// artifact RTLCheck hands to the RTL verifier (one file per litmus
    /// test, §6): all generated assumptions followed by all assertions.
    pub fn emit_sva(&self, test: &LitmusTest) -> String {
        let mv = self.build_design(test);
        let assumptions = assume::generate(&mv, test);
        let assertions = assert_gen::generate(&self.spec, &mv, test, self.options)
            .expect("Multi-V-scale µspec is synthesizable");
        let render = |a: &rtlcheck_verif::RtlAtom| a.render(&mv.design);
        let mut out = String::new();
        let _ = writeln!(
            out,
            "// RTLCheck-generated properties for litmus test `{}`",
            test.name()
        );
        let _ = writeln!(out, "// Design: {}\n", mv.design.name());
        let _ = writeln!(out, "// ---- assumptions (§4.1) ----");
        for d in &assumptions.directives {
            let _ = writeln!(out, "// {}", d.name);
            let _ = writeln!(out, "{}", emit::assume_directive(&d.prop, &render));
        }
        let _ = writeln!(out, "\n// ---- assertions (§4.2-4.4) ----");
        for a in &assertions {
            let _ = writeln!(out, "// {}", a.directive.name);
            let _ = writeln!(
                out,
                "{}",
                emit::assert_directive(&a.directive.prop, &render)
            );
        }
        out
    }
}

/// Runs the verification phases (cover search + per-property proofs) of the
/// Figure-7 flow on a prepared [`Problem`], reporting to `collector`.
///
/// Shared by the Multi-V-scale driver and the five-stage flow. The stats
/// written into the report are the same values emitted as `cover.*` /
/// `property.*` counters, and both `cover_elapsed` and every property's
/// `elapsed` are the span measurements — a single source of truth for the
/// CLI and the metrics view.
///
/// With a [`GraphCache`], the graph comes from the cache (in-memory hit,
/// disk hit, or cold build) and a cold-built graph's final core is stored
/// back after the walks. The `graph_build` span gains a `cache` attribute
/// saying where the graph came from. When `incremental` carries a baseline
/// design (and a validate flag), the explicit+cache path additionally tries
/// to splice the graph from the baseline's published core before falling
/// back to the ordinary levels — the `cache` attribute then reads
/// `spliced`.
///
/// `backend` selects the reachable-set representation; under
/// [`BackendChoice::Auto`] the per-design resolution happens here, so a
/// design whose input space would overflow the explicit enumeration is
/// routed to the symbolic backend instead of panicking. The symbolic
/// backend bypasses the graph cache: its rows are cheap to rebuild and the
/// snapshot format is explicit-row shaped.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_flow_cached(
    test_name: &str,
    problem: &Problem<'_>,
    assertions: &[GeneratedAssertion],
    config: &VerifyConfig,
    backend: BackendChoice,
    cache: Option<&GraphCache>,
    incremental: Option<(&Design, bool)>,
    collector: &dyn Collector,
) -> TestReport {
    /// The built graph, either representation, plus the explicit cache
    /// ticket when there is one.
    enum BuiltGraph<'p, 'd> {
        Explicit(
            rtlcheck_verif::StateGraph<'p, 'd>,
            Option<rtlcheck_verif::CacheTicket>,
        ),
        Symbolic(SymbolicGraph<'p, 'd>),
        Composed(ComposedGraph<'p, 'd>, Option<rtlcheck_verif::CacheTicket>),
    }

    // Phase 0: build the shared state graph — the design × assumption
    // product that the cover search and every property walk reuse. Warmed
    // under the cover engine's budget; walks extend it lazily if their own
    // budget reaches further.
    let kind = backend.resolve(problem.design);
    let mut g = span(collector, "graph_build", attrs!["test" => test_name]);
    g.attr("backend", kind.label());
    let build_explicit = || match cache {
        Some(cache) => {
            let props: Vec<_> = assertions.iter().map(|a| &a.directive.prop).collect();
            let (graph, ticket) = match incremental {
                Some((baseline, validate)) => cache.build_graph_incremental(
                    problem,
                    &props,
                    config.cover_engine(),
                    baseline,
                    validate,
                ),
                None => cache.build_graph(problem, &props, config.cover_engine()),
            };
            BuiltGraph::Explicit(graph, Some(ticket))
        }
        None => {
            let graph = build_graph(
                problem,
                assertions.iter().map(|a| &a.directive.prop),
                config.cover_engine(),
            );
            BuiltGraph::Explicit(graph, None)
        }
    };
    let built = match kind {
        BackendKind::Explicit => build_explicit(),
        BackendKind::Symbolic => BuiltGraph::Symbolic(SymbolicGraph::build(
            problem,
            assertions.iter().map(|a| &a.directive.prop),
            config.cover_engine(),
        )),
        BackendKind::Composed => {
            let attempt: Result<BuiltGraph<'_, '_>, ComposedFallback> = match cache {
                Some(cache) => {
                    let props: Vec<_> = assertions.iter().map(|a| &a.directive.prop).collect();
                    cache
                        .build_graph_composed(problem, &props, config.cover_engine())
                        .map(|(graph, ticket)| BuiltGraph::Composed(graph, Some(ticket)))
                }
                None => ComposedGraph::build(
                    problem,
                    assertions.iter().map(|a| &a.directive.prop),
                    config.cover_engine(),
                )
                .map(|graph| BuiltGraph::Composed(graph, None)),
            };
            match attempt {
                Ok(built) => built,
                Err(fb) => {
                    // The cut is non-conservative for this problem (single
                    // region, or nothing to partition): never wrong, only
                    // sometimes no faster — revert to the flat engine.
                    g.attr("fallback", "explicit");
                    collector.event(
                        "composed.fallback",
                        attrs!["test" => test_name, "reason" => fb.reason()],
                    );
                    collector.counter(
                        "composed.fallback",
                        1,
                        attrs!["test" => test_name, "reason" => fb.reason()],
                    );
                    build_explicit()
                }
            }
        }
    };
    let graph: &dyn Backend = match &built {
        BuiltGraph::Explicit(graph, _) => graph,
        BuiltGraph::Symbolic(graph) => graph,
        BuiltGraph::Composed(graph, _) => graph,
    };
    collector.counter(
        &format!("backend.{}", kind.label()),
        1,
        attrs!["test" => test_name],
    );
    let gs = graph.stats();
    g.attr("nodes", gs.nodes);
    g.attr("edges", gs.edges);
    g.attr("complete", gs.complete);
    match &built {
        BuiltGraph::Explicit(_, Some(t)) | BuiltGraph::Composed(_, Some(t)) => {
            g.attr("cache", t.source().label());
        }
        _ => {}
    }
    g.finish();

    // Phase 1: covering-trace search (§4.1).
    let mut g = span(collector, "cover_search", attrs!["test" => test_name]);
    let cover_verdict = check_cover_on_graph_observed(graph, config.cover_engine(), collector);
    let cover_stats = cover_verdict.stats();
    g.attr("states", cover_stats.states);
    let cover_elapsed = g.finish();
    collector.counter(
        "cover.states",
        cover_stats.states as u64,
        attrs!["test" => test_name],
    );
    collector.counter(
        "cover.transitions",
        cover_stats.transitions,
        attrs!["test" => test_name],
    );
    collector.counter(
        "cover.pruned",
        cover_stats.pruned_by_assumptions,
        attrs!["test" => test_name],
    );
    let vacuous = cover_stats.vacuous();
    if vacuous {
        collector.event(
            "vacuous_proof",
            attrs!["test" => test_name, "scope" => "cover"],
        );
    }
    let cover = match cover_verdict {
        CoverVerdict::Unreachable(_) => CoverOutcome::VerifiedUnreachable,
        CoverVerdict::Covered(trace, _) => CoverOutcome::BugWitness(Box::new(trace)),
        CoverVerdict::Unknown(_) => CoverOutcome::Inconclusive,
    };

    // Phase 2: per-property proofs.
    let mut properties = Vec::with_capacity(assertions.len());
    for a in assertions {
        let name = &a.directive.name;
        let mut g = span(
            collector,
            "property",
            attrs!["test" => test_name, "property" => name, "axiom" => &a.axiom],
        );
        let verdict =
            verify_property_on_graph_observed(graph, &a.directive.prop, config, name, collector);
        let stats = verdict.stats();
        collector.counter(
            "property.states",
            stats.states as u64,
            attrs!["property" => name],
        );
        collector.counter(
            "property.transitions",
            stats.transitions,
            attrs!["property" => name],
        );
        collector.counter(
            "property.pruned",
            stats.pruned_by_assumptions,
            attrs!["property" => name],
        );
        let label = match &verdict {
            PropertyVerdict::Proven { .. } => "proven",
            PropertyVerdict::Bounded { .. } => "bounded",
            PropertyVerdict::Falsified { .. } => "falsified",
        };
        collector.event(&format!("verdict.{label}"), attrs!["property" => name]);
        if verdict.is_proven() && stats.vacuous() {
            collector.event(
                "vacuous_proof",
                attrs!["property" => name, "scope" => "property"],
            );
        }
        g.attr("verdict", label);
        let elapsed = g.finish();
        properties.push(PropertyReport {
            name: name.clone(),
            axiom: a.axiom.clone(),
            verdict,
            elapsed,
        });
    }

    // The graph's construction/reuse counters and the shared assumption
    // monitors' metrics, once per test.
    graph.report_to(collector);

    // Persist the final (post-walk) core if this call is the cache's
    // designated writer for the key — a later run then replays the whole
    // exploration from disk. Symbolic graphs are never persisted.
    if let Some(cache) = cache {
        match &built {
            BuiltGraph::Explicit(explicit, Some(ticket)) => cache.store_final(ticket, explicit),
            // A composed core is byte-identical to a flat one, so it is
            // stored through the same writer path (and a later flat run
            // can load it).
            BuiltGraph::Composed(graph, Some(ticket)) => {
                cache.store_final(ticket, graph.as_flat());
            }
            _ => {}
        }
    }

    TestReport {
        test: test_name.to_string(),
        config: config.name.clone(),
        cover,
        cover_elapsed,
        cover_stats,
        properties,
        vacuous,
    }
}

/// Reference (pre-split) flow: re-explores the product per property via the
/// monolithic reference engine. Exists only as the oracle for the
/// differential tests — not part of the supported API.
#[doc(hidden)]
pub fn run_flow_reference(
    test_name: &str,
    problem: &Problem<'_>,
    assertions: &[GeneratedAssertion],
    config: &VerifyConfig,
) -> TestReport {
    let cover_start = std::time::Instant::now();
    let cover_verdict = explore::check_cover_reference(problem, config.cover_engine());
    let cover_elapsed = cover_start.elapsed();
    let cover_stats = cover_verdict.stats();
    let vacuous = cover_stats.vacuous();
    let cover = match cover_verdict {
        CoverVerdict::Unreachable(_) => CoverOutcome::VerifiedUnreachable,
        CoverVerdict::Covered(trace, _) => CoverOutcome::BugWitness(Box::new(trace)),
        CoverVerdict::Unknown(_) => CoverOutcome::Inconclusive,
    };
    let properties = assertions
        .iter()
        .map(|a| {
            let start = std::time::Instant::now();
            let verdict = explore::verify_property_reference(problem, &a.directive.prop, config);
            PropertyReport {
                name: a.directive.name.clone(),
                axiom: a.axiom.clone(),
                verdict,
                elapsed: start.elapsed(),
            }
        })
        .collect();
    TestReport {
        test: test_name.to_string(),
        config: config.name.clone(),
        cover,
        cover_elapsed,
        cover_stats,
        properties,
        vacuous,
    }
}

impl Rtlcheck {
    /// [`Rtlcheck::check_test`] through the reference (pre-split) engine;
    /// see [`run_flow_reference`].
    #[doc(hidden)]
    pub fn check_test_reference(&self, test: &LitmusTest, config: &VerifyConfig) -> TestReport {
        let mv = self.build_design(test);
        let assumptions = assume::generate(&mv, test);
        let assertions = assert_gen::generate(&self.spec, &mv, test, self.options)
            .expect("Multi-V-scale µspec is synthesizable");
        let mut problem = Problem::new(&mv.design);
        problem.init_pins = assumptions.init_pins.clone();
        problem.assumptions = assumptions.directives.clone();
        problem.cover = Some(assumptions.cover.clone());
        run_flow_reference(test.name(), &problem, &assertions, config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtlcheck_litmus::suite;

    #[test]
    fn mp_verifies_on_the_fixed_design() {
        let mp = suite::get("mp").unwrap();
        let report = Rtlcheck::new(MemoryImpl::Fixed).check_test(&mp, &VerifyConfig::quick());
        assert!(report.verified(), "{report}");
        assert!(
            report.verified_by_assumptions(),
            "mp's outcome should be unreachable"
        );
        assert!(!report.vacuous);
        assert!(
            report.properties.iter().all(|p| !p.verdict.is_falsified()),
            "{report}"
        );
    }

    /// §7.1: RTLCheck discovers the V-scale store-drop bug on mp.
    #[test]
    fn mp_finds_the_bug_on_the_buggy_design() {
        let mp = suite::get("mp").unwrap();
        let report = Rtlcheck::new(MemoryImpl::Buggy).check_test(&mp, &VerifyConfig::quick());
        assert!(report.bug_found(), "{report}");
        // The covering trace is an execution of the forbidden outcome…
        assert!(matches!(
            report.cover,
            crate::report::CoverOutcome::BugWitness(_)
        ));
        // …and, as in the paper, a Read_Values property has a
        // counterexample.
        let (name, trace) = report.first_counterexample().expect("a falsified property");
        assert!(name.starts_with("Read_Values"), "{name}");
        assert!(
            trace.len() >= 4,
            "the violation needs the pipelined schedule"
        );
    }

    #[test]
    fn emit_sva_contains_assumptions_and_assertions() {
        let mp = suite::get("mp").unwrap();
        let text = Rtlcheck::new(MemoryImpl::Fixed).emit_sva(&mp);
        assert!(text.contains("assume property"), "{text}");
        assert!(text.contains("assert property"), "{text}");
        assert!(text.contains("Read_Values"), "{text}");
        assert!(text.contains("first == 1'd1 |->"), "{text}");
    }
}

//! The Assumption Generator (paper §4.1).
//!
//! Per litmus test, the generated assumptions:
//!
//! 1. **initialise data memory** to the test's initial values (these are
//!    also recognised as initial-state pins for the design's free-init
//!    memory registers, the way an RTL verifier solves first-cycle equality
//!    constraints);
//! 2. **initialise instruction memory** with the test's (encoded)
//!    instructions — in this design's ISA the address and data fields live
//!    inside the instruction word, so the paper's separate
//!    register-initialisation assumptions are subsumed here;
//! 3. **guide load values**: whenever a load performs its Writeback, it
//!    returns the value from the outcome under test. These cannot *enforce*
//!    the outcome (SVA verifiers do not check assumptions against the
//!    future, §3.1) but they prune the verifier's search;
//! 4. **the final-value assumption**: once every core has halted, the final
//!    memory values required by the test hold. Its covering condition — all
//!    cores halted with the value assumptions still satisfied — is an
//!    execution of the complete litmus outcome, so proving it unreachable
//!    verifies the test without touching any assertion.

use rtlcheck_litmus::{CondClause, LitmusTest};
use rtlcheck_rtl::multi_vscale::MultiVscale;
use rtlcheck_rtl::SignalId;
use rtlcheck_sva::{Prop, Seq, SvaBool};
use rtlcheck_verif::{Directive, RtlAtom};

use crate::mapping::{MultiVscaleMapping, RtlBool};

/// Everything the Assumption Generator produces for one litmus test.
#[derive(Debug, Clone)]
pub struct GeneratedAssumptions {
    /// The `assume property` directives, in generation order.
    pub directives: Vec<Directive>,
    /// Initial-value pins for free-init registers, extracted from the
    /// first-cycle memory-initialisation assumptions.
    pub init_pins: Vec<(SignalId, u64)>,
    /// The final-value assumption's covering condition: all cores halted
    /// and the outcome's final memory values in place.
    pub cover: RtlBool,
}

/// Runs the Assumption Generator for `test` on the given design.
pub fn generate(mv: &MultiVscale, test: &LitmusTest) -> GeneratedAssumptions {
    let mapping = MultiVscaleMapping::new(mv, test);
    let mut directives = Vec::new();
    let mut init_pins = Vec::new();
    let first = SvaBool::atom(RtlAtom::is_true(mv.first));

    // (1) Data memory initialisation:  first |-> mem[i] == init.
    for (loc_idx, &mem_sig) in mv.mem.iter().enumerate() {
        // The design has one word per litmus location (plus one scratch
        // word for location-free tests, initialised to zero).
        let value = if loc_idx < test.num_locations() {
            u64::from(test.initial_value(rtlcheck_litmus::Loc(loc_idx)).0)
        } else {
            0
        };
        directives.push(Directive::assume(
            format!("init_mem_{loc_idx}"),
            Prop::implies(
                first.clone(),
                Prop::seq(Seq::boolean(SvaBool::atom(RtlAtom::eq(mem_sig, value)))),
            ),
        ));
        init_pins.push((mem_sig, value));
    }

    // (2) Instruction memory initialisation:
    //     first |-> core{c}_imem_{s} == <encoded instruction>.
    for (c, slots) in mv.imem.iter().enumerate() {
        for (s, &imem_sig) in slots.iter().enumerate() {
            let packed = mv.programs[c][s].packed();
            directives.push(Directive::assume(
                format!("init_imem_c{c}_s{s}"),
                Prop::implies(
                    first.clone(),
                    Prop::seq(Seq::boolean(SvaBool::atom(RtlAtom::eq(imem_sig, packed)))),
                ),
            ));
        }
    }

    // (3) Load value assumptions: (load @WB) |-> (load @WB with its outcome
    //     value). Unguarded: enforced at every cycle, from the cycle the
    //     load actually performs (no future-violation checking).
    for instr in test.instructions().filter(|i| i.is_load()) {
        if let Some(v) = test.expected_load_value(&instr) {
            let wb = rtlcheck_uspec::ground::GNode {
                instr: instr.uid,
                stage: rtlcheck_uspec::StageId(rtlcheck_uspec::multi_vscale::WRITEBACK),
            };
            let antecedent = crate::mapping::NodeMapping::map_node(&mapping, wb, None);
            let consequent = crate::mapping::NodeMapping::map_node(&mapping, wb, Some(v));
            directives.push(Directive::assume(
                format!("value_{}", instr.uid),
                Prop::implies(antecedent, Prop::seq(Seq::boolean(consequent))),
            ));
        }
    }

    // (4) Final value assumption: all cores halted (and not stalled in WB)
    //     implies the required final memory values (or `1` if the test has
    //     none — still valuable, §4.1: its covering trace is a complete
    //     execution of the test outcome).
    let all_halted = SvaBool::all(
        mv.cores
            .iter()
            .flat_map(|core| {
                [
                    SvaBool::atom(RtlAtom::is_true(core.halted)),
                    SvaBool::atom(RtlAtom::eq(core.stall_wb, 0)),
                ]
            })
            .collect(),
    );
    let final_values = SvaBool::all(
        test.condition()
            .clauses()
            .iter()
            .filter_map(|clause| match *clause {
                CondClause::MemEq { loc, val } => {
                    Some(SvaBool::atom(RtlAtom::eq(mv.mem[loc.0], u64::from(val.0))))
                }
                CondClause::RegEq { .. } => None,
            })
            .collect(),
    );
    directives.push(Directive::assume(
        "final_values",
        Prop::implies(
            all_halted.clone(),
            Prop::seq(Seq::boolean(final_values.clone())),
        ),
    ));
    let cover = SvaBool::and(all_halted, final_values);

    GeneratedAssumptions {
        directives,
        init_pins,
        cover,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtlcheck_litmus::suite;
    use rtlcheck_rtl::multi_vscale::MemoryImpl;
    use rtlcheck_sva::emit::{assume_directive, bool_to_sva};

    fn generate_for(name: &str) -> (MultiVscale, LitmusTest, GeneratedAssumptions) {
        let test = suite::get(name).unwrap();
        let mv = MultiVscale::build(&test, MemoryImpl::Fixed);
        let gen = generate(&mv, &test);
        (mv, test, gen)
    }

    #[test]
    fn mp_generates_all_assumption_families() {
        let (mv, _, gen) = generate_for("mp");
        let names: Vec<&str> = gen.directives.iter().map(|d| d.name.as_str()).collect();
        // 2 memory words, 4 cores × (program slots), 2 loads, 1 final.
        assert!(names.contains(&"init_mem_0"));
        assert!(names.contains(&"init_mem_1"));
        assert!(names.contains(&"init_imem_c0_s0"));
        assert!(names.contains(&"init_imem_c3_s0"));
        assert!(names.contains(&"value_i3"));
        assert!(names.contains(&"value_i4"));
        assert!(names.contains(&"final_values"));
        assert_eq!(gen.init_pins.len(), mv.mem.len());
    }

    #[test]
    fn memory_init_renders_like_figure_8() {
        let (mv, _, gen) = generate_for("mp");
        let d = gen
            .directives
            .iter()
            .find(|d| d.name == "init_mem_0")
            .unwrap();
        let text = assume_directive(&d.prop, &|a| a.render(&mv.design));
        assert!(
            text.starts_with("assume property (@(posedge clk) first == 1'd1 |-> "),
            "{text}"
        );
        assert!(text.contains("mem_0 == 32'd0"), "{text}");
    }

    #[test]
    fn value_assumption_checks_load_data_at_wb() {
        let (mv, _, gen) = generate_for("mp");
        // i3 = load of y on core 1, expected value 1.
        let d = gen
            .directives
            .iter()
            .find(|d| d.name == "value_i3")
            .unwrap();
        let text = assume_directive(&d.prop, &|a| a.render(&mv.design));
        assert!(text.contains("core1_PC_WB == 32'd64"), "{text}");
        assert!(text.contains("core1_load_data_WB == 32'd1"), "{text}");
    }

    #[test]
    fn final_value_assumption_covers_all_cores() {
        let (mv, _, gen) = generate_for("mp");
        let d = gen
            .directives
            .iter()
            .find(|d| d.name == "final_values")
            .unwrap();
        let text = assume_directive(&d.prop, &|a| a.render(&mv.design));
        for c in 0..4 {
            assert!(text.contains(&format!("core{c}_halted == 1'd1")), "{text}");
        }
        // mp has no final memory requirements: the consequent is `1`.
        assert!(text.contains("|-> (1)"), "{text}");
    }

    #[test]
    fn mem_clauses_appear_in_cover_and_final_assumption() {
        // ssl's condition requires x = 1 in final memory.
        let (mv, test, gen) = generate_for("ssl");
        let x = test.loc_by_name("x").unwrap();
        let cover_text = bool_to_sva(&gen.cover, &|a| a.render(&mv.design));
        assert!(
            cover_text.contains(&format!("mem_{} == 32'd1", x.0)),
            "{cover_text}"
        );
    }

    #[test]
    fn init_pins_match_test_initial_values() {
        let (_, test, gen) = generate_for("safe003");
        for (loc_idx, (_, v)) in gen.init_pins.iter().enumerate() {
            assert_eq!(
                *v,
                u64::from(test.initial_value(rtlcheck_litmus::Loc(loc_idx)).0)
            );
        }
    }
}

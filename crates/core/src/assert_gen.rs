//! The outcome-aware Assertion Generator (paper §4.2–§4.4).
//!
//! Each grounded µspec axiom instance becomes one `assert property`
//! directive. Three translation decisions — each motivated by a semantic
//! mismatch described in §3 — are individually controllable through
//! [`AssertionOptions`] so their necessity can be demonstrated (the
//! repository's ablation tests and benches flip them one at a time):
//!
//! * **outcome-aware translation** (§3.2/§4.2, default *on*): axioms are
//!   grounded symbolically, keeping every load-value branch, because an SVA
//!   verifier explores partial executions of *all* outcomes of the test.
//!   Turned off, axioms are first simplified under the litmus outcome (the
//!   Check suite's omniscient evaluation) — which produces properties that
//!   spuriously fail on correct designs.
//! * **strict edge encoding** (§3.3/§4.3, default *on*): a µhb edge
//!   `src → dst` becomes
//!   `(~(src|dst))[*0:$] ##1 src ##1 (~(src|dst))[*0:$] ##1 dst`, with the
//!   delay repetitions built from *value-agnostic* node maps. Turned off,
//!   the standard `##[0:$] src ##[1:$] dst` unbounded ranges are used —
//!   which let violating traces slip through (Figure 6).
//! * **match-attempt filtering** (§3.4/§4.4, default *on*): every assertion
//!   is guarded by `first |->`. Turned off, SVA's attempt-per-cycle
//!   semantics make later attempts fail spuriously.

use rtlcheck_litmus::LitmusTest;
use rtlcheck_rtl::multi_vscale::MultiVscale;
use rtlcheck_rtl::SignalId;
use rtlcheck_sva::{Prop, Seq, SvaBool};
use rtlcheck_uspec::ground::{
    self, Conjunct, DataMode, GEdge, GNode, GroundedAxiom, LoadConstraint,
};
use rtlcheck_uspec::multi_vscale::WRITEBACK;
use rtlcheck_uspec::{Spec, StageId};
use rtlcheck_verif::{Directive, RtlAtom};

use crate::mapping::{MultiVscaleMapping, NodeMapping};

/// Translation switches (all `true` reproduces the paper's generator; each
/// `false` reproduces one of §3's broken naive translations).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AssertionOptions {
    /// Ground axioms symbolically so assertions cover all test outcomes.
    pub outcome_aware: bool,
    /// Use the strict §4.3 edge encoding instead of unbounded ranges.
    pub strict_edges: bool,
    /// Guard assertions with `first |->`.
    pub first_guard: bool,
}

impl Default for AssertionOptions {
    fn default() -> Self {
        AssertionOptions {
            outcome_aware: true,
            strict_edges: true,
            first_guard: true,
        }
    }
}

impl AssertionOptions {
    /// The paper's generator.
    pub fn paper() -> Self {
        Self::default()
    }

    /// §3.2's naive translation: simplify under the litmus outcome first.
    pub fn naive_outcome() -> Self {
        AssertionOptions {
            outcome_aware: false,
            ..Self::default()
        }
    }

    /// §3.3's naive translation: standard unbounded delay ranges.
    pub fn naive_edges() -> Self {
        AssertionOptions {
            strict_edges: false,
            ..Self::default()
        }
    }

    /// §3.4's naive translation: no match-attempt filtering.
    pub fn unguarded() -> Self {
        AssertionOptions {
            first_guard: false,
            ..Self::default()
        }
    }
}

/// One generated assertion with its provenance.
#[derive(Debug, Clone)]
pub struct GeneratedAssertion {
    /// Originating axiom name.
    pub axiom: String,
    /// Variable binding (e.g. `"a1 = i1, a2 = i2"`).
    pub instance: String,
    /// The directive handed to the verifier.
    pub directive: Directive,
}

/// Generates the per-test assertions for `test` on the Multi-V-scale
/// design, one per grounded axiom instance.
///
/// # Errors
///
/// Propagates [`ground::GroundError`] from grounding (e.g. a µspec feature
/// outside the synthesizable subset).
pub fn generate(
    spec: &Spec,
    mv: &MultiVscale,
    test: &LitmusTest,
    options: AssertionOptions,
) -> Result<Vec<GeneratedAssertion>, ground::GroundError> {
    let mapping = MultiVscaleMapping::new(mv, test);
    generate_with(spec, &mapping, mv.first, test, options)
}

/// Generates assertions against an arbitrary design through its
/// [`NodeMapping`] — the generator itself is microarchitecture-agnostic
/// (the paper's generality claim: "applies generally to an arbitrary
/// Verilog design"). `first` is the design's first-post-reset signal used
/// for match-attempt filtering (§4.4).
///
/// # Errors
///
/// Propagates [`ground::GroundError`] from grounding.
pub fn generate_with(
    spec: &Spec,
    mapping: &dyn NodeMapping,
    first: SignalId,
    test: &LitmusTest,
    options: AssertionOptions,
) -> Result<Vec<GeneratedAssertion>, ground::GroundError> {
    let mode = if options.outcome_aware {
        DataMode::Symbolic
    } else {
        DataMode::Outcome
    };
    let grounded = ground::ground(spec, test, mode)?;
    let first = SvaBool::atom(RtlAtom::is_true(first));
    Ok(grounded
        .iter()
        .map(|g| {
            let body = translate_formula(g, mapping, test, options);
            let prop = if options.first_guard {
                Prop::implies(first.clone(), body)
            } else {
                body
            };
            GeneratedAssertion {
                axiom: g.axiom.clone(),
                instance: g.instance.clone(),
                directive: Directive::assert(format!("{}[{}]", g.axiom, g.instance), prop),
            }
        })
        .collect())
}

/// Translates one grounded instance: DNF over the formula, one property
/// disjunct per satisfiable conjunct.
fn translate_formula(
    g: &GroundedAxiom,
    mapping: &dyn NodeMapping,
    test: &LitmusTest,
    options: AssertionOptions,
) -> Prop<RtlAtom> {
    let mut branches = Vec::new();
    for conjunct in g.formula.to_dnf() {
        let conjunct = if options.outcome_aware {
            conjunct
        } else {
            // Naive translation: attach the outcome's load values as
            // constraints after outcome-mode simplification (§3.2/§3.3's
            // `Ld x=0 @WB` nodes).
            attach_outcome_constraints(conjunct, test)
        };
        if conjunct.has_contradictory_constraints() {
            continue; // unsatisfiable branch
        }
        branches.push(translate_conjunct(&conjunct, mapping, options));
    }
    if branches.is_empty() {
        // The instance is unsatisfiable: no execution can satisfy the
        // axiom, so the assertion must fail whenever an execution exists.
        // Encode as a property that fails immediately.
        return Prop::seq(Seq::boolean(SvaBool::Const(false)));
    }
    Prop::any(branches)
}

fn attach_outcome_constraints(mut conjunct: Conjunct, test: &LitmusTest) -> Conjunct {
    let mentioned: Vec<GNode> = conjunct
        .edges
        .iter()
        .flat_map(|e| [e.src, e.dst])
        .chain(conjunct.nodes.iter().copied())
        .collect();
    for node in mentioned {
        let instr = test.instr(node.instr);
        if instr.is_load() && node.stage == StageId(WRITEBACK) {
            if let Some(v) = test.expected_load_value(&instr) {
                let c = LoadConstraint {
                    load: node.instr,
                    value: v,
                };
                if !conjunct.constraints.contains(&c) {
                    conjunct.constraints.push(c);
                }
            }
        }
    }
    conjunct
}

/// Translates one conjunct: the conjunction of its edge sequences, node
/// existence sequences, never-node properties, and (for loads not otherwise
/// mentioned) value-pinned WB existence sequences.
fn translate_conjunct(
    conjunct: &Conjunct,
    mapping: &dyn NodeMapping,
    options: AssertionOptions,
) -> Prop<RtlAtom> {
    let lc = |node: GNode| -> Option<rtlcheck_litmus::Val> {
        conjunct
            .constraints
            .iter()
            .find(|c| c.load == node.instr && node.stage == StageId(WRITEBACK))
            .map(|c| c.value)
    };
    let mut parts: Vec<Prop<RtlAtom>> = Vec::new();
    let mut covered_loads: Vec<rtlcheck_litmus::InstrUid> = Vec::new();
    for &edge in &conjunct.edges {
        parts.push(Prop::seq(edge_sequence(edge, mapping, &lc, options)));
        for node in [edge.src, edge.dst] {
            if lc(node).is_some() {
                covered_loads.push(node.instr);
            }
        }
    }
    for &node in &conjunct.nodes {
        parts.push(Prop::seq(node_sequence(node, mapping, lc(node))));
        if lc(node).is_some() {
            covered_loads.push(node.instr);
        }
    }
    for &node in &conjunct.never_nodes {
        parts.push(Prop::Never(mapping.map_node(node, None)));
    }
    // Load-value constraints whose load is mentioned by no edge or node
    // still constrain the branch: encode as the existence of the load's WB
    // with that value.
    for c in &conjunct.constraints {
        if !covered_loads.contains(&c.load) {
            let wb = GNode {
                instr: c.load,
                stage: StageId(WRITEBACK),
            };
            parts.push(Prop::seq(node_sequence(wb, mapping, Some(c.value))));
            covered_loads.push(c.load);
        }
    }
    if parts.is_empty() {
        // A satisfiable conjunct with no atoms (e.g. `True` branches of an
        // implication) holds trivially.
        return Prop::seq(Seq::boolean(SvaBool::Const(true)));
    }
    Prop::all(parts)
}

/// §4.3's edge mapping:
///
/// ```text
/// (~(map(src,None) || map(dst,None))) [*0:$]
/// ##1 map(src, lc) ##1
/// (~(map(src,None) || map(dst,None))) [*0:$]
/// ##1 map(dst, lc)
/// ```
///
/// With `strict_edges` off, the naive `##[0:$] src ##[1:$] dst` unbounded
/// ranges are produced instead (the encoding §3.3 shows to be unsound).
fn edge_sequence(
    edge: GEdge,
    mapping: &dyn NodeMapping,
    lc: &dyn Fn(GNode) -> Option<rtlcheck_litmus::Val>,
    options: AssertionOptions,
) -> Seq<RtlAtom> {
    let src = mapping.map_node(edge.src, lc(edge.src));
    let dst = mapping.map_node(edge.dst, lc(edge.dst));
    if options.strict_edges {
        let quiet = || {
            SvaBool::not(SvaBool::or(
                mapping.map_node(edge.src, None),
                mapping.map_node(edge.dst, None),
            ))
        };
        Seq::chain(vec![
            Seq::repeat(Seq::boolean(quiet()), 0, None),
            Seq::boolean(src),
            Seq::repeat(Seq::boolean(quiet()), 0, None),
            Seq::boolean(dst),
        ])
    } else {
        Seq::delay(
            0,
            None,
            Seq::then(Seq::boolean(src), Seq::delay(0, None, Seq::boolean(dst))),
        )
    }
}

/// §4.3's node-existence mapping:
/// `(~map(node,None))[*0:$] ##1 map(node, lc)`.
fn node_sequence(
    node: GNode,
    mapping: &dyn NodeMapping,
    lc: Option<rtlcheck_litmus::Val>,
) -> Seq<RtlAtom> {
    let quiet = SvaBool::not(mapping.map_node(node, None));
    Seq::then(
        Seq::repeat(Seq::boolean(quiet), 0, None),
        Seq::boolean(mapping.map_node(node, lc)),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtlcheck_litmus::suite;
    use rtlcheck_rtl::multi_vscale::MemoryImpl;
    use rtlcheck_sva::emit::assert_directive;
    use rtlcheck_uspec::multi_vscale as mv_spec;

    fn generate_mp(options: AssertionOptions) -> (MultiVscale, Vec<GeneratedAssertion>) {
        let test = suite::get("mp").unwrap();
        let mv = MultiVscale::build(&test, MemoryImpl::Fixed);
        let spec = mv_spec::spec();
        let asserts = generate(&spec, &mv, &test, options).unwrap();
        (mv, asserts)
    }

    #[test]
    fn generates_assertions_for_every_axiom_family() {
        let (_, asserts) = generate_mp(AssertionOptions::paper());
        let axioms: std::collections::BTreeSet<&str> =
            asserts.iter().map(|a| a.axiom.as_str()).collect();
        for expected in [
            "Instr_Path",
            "PO_Fetch",
            "DX_FIFO",
            "WB_FIFO",
            "DX_Total_Order",
            "Read_Values",
        ] {
            assert!(axioms.contains(expected), "missing {expected}: {axioms:?}");
        }
    }

    /// The generated Read_Values assertion for mp's load of x must mention
    /// BOTH load values (0 and 1): the outcome-aware requirement of §4.2.
    #[test]
    fn read_values_assertion_is_outcome_aware() {
        let (mv, asserts) = generate_mp(AssertionOptions::paper());
        let a = asserts
            .iter()
            .find(|a| a.axiom == "Read_Values" && a.instance.contains("i = i4"))
            .expect("Read_Values instance for the load of x");
        let text = assert_directive(&a.directive.prop, &|at| at.render(&mv.design));
        assert!(text.contains("core1_load_data_WB == 32'd0"), "{text}");
        assert!(text.contains("core1_load_data_WB == 32'd1"), "{text}");
    }

    /// The naive outcome translation keeps only the outcome's branch.
    #[test]
    fn naive_outcome_translation_keeps_one_branch() {
        let (mv, asserts) = generate_mp(AssertionOptions::naive_outcome());
        let a = asserts
            .iter()
            .find(|a| a.axiom == "Read_Values" && a.instance.contains("i = i4"))
            .expect("Read_Values instance for the load of x");
        let text = assert_directive(&a.directive.prop, &|at| at.render(&mv.design));
        assert!(text.contains("core1_load_data_WB == 32'd0"), "{text}");
        assert!(
            !text.contains("core1_load_data_WB == 32'd1"),
            "naive translation must not cover the other outcome: {text}"
        );
    }

    /// Figure 10's shape: strict delays built from value-agnostic node maps,
    /// guarded by `first |->`.
    #[test]
    fn strict_edges_render_like_figure_10() {
        let (mv, asserts) = generate_mp(AssertionOptions::paper());
        let a = asserts
            .iter()
            .find(|a| a.axiom == "WB_FIFO")
            .expect("a WB_FIFO assertion");
        let text = assert_directive(&a.directive.prop, &|at| at.render(&mv.design));
        assert!(text.contains("first == 1'd1 |->"), "{text}");
        assert!(text.contains("[*0:$]"), "{text}");
        assert!(text.contains("(~("), "{text}");
    }

    #[test]
    fn naive_edges_use_unbounded_ranges() {
        let (mv, asserts) = generate_mp(AssertionOptions::naive_edges());
        let a = asserts.iter().find(|a| a.axiom == "WB_FIFO").unwrap();
        let text = assert_directive(&a.directive.prop, &|at| at.render(&mv.design));
        assert!(
            text.contains("(1) [*0:$]"),
            "naive delays are unconstrained: {text}"
        );
    }

    #[test]
    fn unguarded_assertions_lack_first() {
        let (mv, asserts) = generate_mp(AssertionOptions::unguarded());
        for a in &asserts {
            let text = assert_directive(&a.directive.prop, &|at| at.render(&mv.design));
            assert!(!text.contains("first == "), "{text}");
        }
    }

    #[test]
    fn generates_for_the_whole_suite() {
        let spec = mv_spec::spec();
        for test in suite::all() {
            let mv = MultiVscale::build(&test, MemoryImpl::Fixed);
            let asserts = generate(&spec, &mv, &test, AssertionOptions::paper())
                .unwrap_or_else(|e| panic!("{}: {e}", test.name()));
            assert!(
                !asserts.is_empty(),
                "{} generated no assertions",
                test.name()
            );
        }
    }

    #[test]
    fn assertion_names_carry_provenance() {
        let (_, asserts) = generate_mp(AssertionOptions::paper());
        for a in &asserts {
            assert!(
                a.directive.name.starts_with(&a.axiom),
                "{}",
                a.directive.name
            );
            assert!(
                a.directive.name.contains(&a.instance),
                "{}",
                a.directive.name
            );
        }
    }
}

//! Per-test verification reports.

use std::fmt;
use std::time::Duration;

use rtlcheck_rtl::waveform::Trace;
use rtlcheck_verif::{ExploreStats, PropertyVerdict};

/// Outcome of the covering-trace phase (§4.1's assumption-only fast path).
#[derive(Debug, Clone)]
pub enum CoverOutcome {
    /// The outcome's covering condition is unreachable: the test is
    /// verified without checking assertions.
    VerifiedUnreachable,
    /// An admissible execution of the complete (forbidden) outcome exists:
    /// the design violates the test.
    BugWitness(Box<Trace>),
    /// The cover budget ran out; assertion proofs decide the test.
    Inconclusive,
}

/// The verification result of one generated property.
#[derive(Debug, Clone)]
pub struct PropertyReport {
    /// Property name (`Axiom[instance]`).
    pub name: String,
    /// Originating axiom.
    pub axiom: String,
    /// The verifier's verdict.
    pub verdict: PropertyVerdict,
    /// Wall-clock time spent on this property.
    pub elapsed: Duration,
}

impl PropertyReport {
    /// The exploration statistics of the decisive engine run.
    pub fn stats(&self) -> ExploreStats {
        self.verdict.stats()
    }

    /// Whether this property was "proven" only because the assumptions
    /// admitted no execution at all.
    pub fn vacuously_proven(&self) -> bool {
        self.verdict.is_proven() && self.stats().vacuous()
    }
}

/// The full report for one litmus test under one configuration.
#[derive(Debug, Clone)]
pub struct TestReport {
    /// Litmus test name.
    pub test: String,
    /// Configuration name (e.g. `"Hybrid"`).
    pub config: String,
    /// Covering-trace phase outcome.
    pub cover: CoverOutcome,
    /// Time spent in the covering-trace phase.
    pub cover_elapsed: Duration,
    /// Exploration statistics of the covering-trace phase.
    pub cover_stats: ExploreStats,
    /// Per-property results (empty if assertions were skipped).
    pub properties: Vec<PropertyReport>,
    /// Whether the assumption set was contradictory (vacuous verification —
    /// reported rather than silently "proving" everything).
    pub vacuous: bool,
}

impl TestReport {
    /// Whether the test verified: no bug witness and no falsified property.
    pub fn verified(&self) -> bool {
        !self.vacuous && !self.bug_found()
    }

    /// Whether a consistency violation was found (by covering trace or by
    /// an assertion counterexample).
    pub fn bug_found(&self) -> bool {
        matches!(self.cover, CoverOutcome::BugWitness(_))
            || self.properties.iter().any(|p| p.verdict.is_falsified())
    }

    /// Whether the test verified through the unreachable-assumption fast
    /// path alone.
    pub fn verified_by_assumptions(&self) -> bool {
        matches!(self.cover, CoverOutcome::VerifiedUnreachable)
    }

    /// Number of properties with complete proofs.
    pub fn num_proven(&self) -> usize {
        self.properties
            .iter()
            .filter(|p| p.verdict.is_proven())
            .count()
    }

    /// Fraction of properties completely proven (1.0 when there are none).
    pub fn proven_fraction(&self) -> f64 {
        if self.properties.is_empty() {
            return 1.0;
        }
        self.num_proven() as f64 / self.properties.len() as f64
    }

    /// Cycle bounds of the bounded-only proofs.
    pub fn bounded_depths(&self) -> Vec<u32> {
        self.properties
            .iter()
            .filter_map(|p| match p.verdict {
                PropertyVerdict::Bounded { depth, .. } => Some(depth),
                _ => None,
            })
            .collect()
    }

    /// Mean bound of bounded-only proofs, if any.
    pub fn average_bound(&self) -> Option<f64> {
        let depths = self.bounded_depths();
        if depths.is_empty() {
            None
        } else {
            Some(depths.iter().map(|&d| f64::from(d)).sum::<f64>() / depths.len() as f64)
        }
    }

    /// Runtime-to-verification (paper Figure 13): for tests verified by
    /// unreachable assumptions, the cover-phase time alone; otherwise cover
    /// plus all property runtimes.
    pub fn runtime_to_verification(&self) -> Duration {
        if self.verified_by_assumptions() {
            self.cover_elapsed
        } else {
            self.cover_elapsed + self.properties.iter().map(|p| p.elapsed).sum::<Duration>()
        }
    }

    /// Names of properties that were "proven" only vacuously (the
    /// assumption set admitted no execution during their runs).
    pub fn vacuous_properties(&self) -> Vec<&str> {
        self.properties
            .iter()
            .filter(|p| p.vacuously_proven())
            .map(|p| p.name.as_str())
            .collect()
    }

    /// Aggregate exploration statistics over the whole flow: the cover
    /// phase plus every property's decisive engine run. These are the
    /// totals the metrics counters (`cover.*` + `property.*`) sum to.
    pub fn total_stats(&self) -> ExploreStats {
        let mut total = self.cover_stats;
        for p in &self.properties {
            let s = p.stats();
            total.states += s.states;
            total.transitions += s.transitions;
            total.pruned_by_assumptions += s.pruned_by_assumptions;
            total.depth_completed = total.depth_completed.max(s.depth_completed);
        }
        total
    }

    /// The first counterexample trace, if any property was falsified.
    pub fn first_counterexample(&self) -> Option<(&str, &Trace)> {
        self.properties.iter().find_map(|p| match &p.verdict {
            PropertyVerdict::Falsified { trace, .. } => Some((p.name.as_str(), trace.as_ref())),
            _ => None,
        })
    }
}

impl fmt::Display for TestReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "test {} [{}]", self.test, self.config)?;
        match &self.cover {
            CoverOutcome::VerifiedUnreachable => writeln!(
                f,
                "  cover: outcome unreachable — verified by assumptions alone"
            )?,
            CoverOutcome::BugWitness(t) => writeln!(
                f,
                "  cover: OUTCOME OBSERVABLE in {} cycles — bug witness found",
                t.len()
            )?,
            CoverOutcome::Inconclusive => writeln!(f, "  cover: inconclusive (budget)")?,
        }
        if self.vacuous {
            writeln!(
                f,
                "  WARNING: contradictory assumptions — vacuous verification"
            )?;
        }
        let vacuous_props = self.vacuous_properties();
        if !self.vacuous && !vacuous_props.is_empty() {
            writeln!(
                f,
                "  WARNING: {} propert{} proven vacuously (no admissible execution): {}",
                vacuous_props.len(),
                if vacuous_props.len() == 1 { "y" } else { "ies" },
                vacuous_props.join(", "),
            )?;
        }
        if !self.properties.is_empty() {
            writeln!(
                f,
                "  properties: {}/{} proven ({:.0}%), {} bounded, {} falsified",
                self.num_proven(),
                self.properties.len(),
                100.0 * self.proven_fraction(),
                self.bounded_depths().len(),
                self.properties
                    .iter()
                    .filter(|p| p.verdict.is_falsified())
                    .count(),
            )?;
        }
        write!(
            f,
            "  verdict: {}",
            if self.bug_found() {
                "VIOLATION"
            } else if self.verified() {
                "verified"
            } else {
                "inconclusive"
            }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtlcheck_verif::ExploreStats;

    fn prop(name: &str, verdict: PropertyVerdict) -> PropertyReport {
        PropertyReport {
            name: name.into(),
            axiom: name.split('[').next().unwrap_or(name).into(),
            verdict,
            elapsed: Duration::from_millis(10),
        }
    }

    fn stats() -> ExploreStats {
        ExploreStats {
            transitions: 1,
            ..ExploreStats::default()
        }
    }

    #[test]
    fn fractions_and_bounds() {
        let report = TestReport {
            test: "t".into(),
            config: "Quick".into(),
            cover: CoverOutcome::Inconclusive,
            cover_elapsed: Duration::from_millis(5),
            cover_stats: stats(),
            properties: vec![
                prop("A[1]", PropertyVerdict::Proven { stats: stats() }),
                prop(
                    "B[1]",
                    PropertyVerdict::Bounded {
                        depth: 20,
                        stats: stats(),
                    },
                ),
                prop(
                    "B[2]",
                    PropertyVerdict::Bounded {
                        depth: 40,
                        stats: stats(),
                    },
                ),
                prop("C[1]", PropertyVerdict::Proven { stats: stats() }),
            ],
            vacuous: false,
        };
        assert!(report.verified());
        assert_eq!(report.num_proven(), 2);
        assert!((report.proven_fraction() - 0.5).abs() < 1e-9);
        assert_eq!(report.average_bound(), Some(30.0));
        assert_eq!(report.runtime_to_verification(), Duration::from_millis(45));
        let text = report.to_string();
        assert!(text.contains("2/4 proven"), "{text}");
        assert!(text.contains("verified"), "{text}");
    }

    #[test]
    fn assumption_fast_path_runtime() {
        let report = TestReport {
            test: "mp".into(),
            config: "Hybrid".into(),
            cover: CoverOutcome::VerifiedUnreachable,
            cover_elapsed: Duration::from_millis(7),
            cover_stats: stats(),
            properties: vec![prop("A[1]", PropertyVerdict::Proven { stats: stats() })],
            vacuous: false,
        };
        assert!(report.verified_by_assumptions());
        assert_eq!(report.runtime_to_verification(), Duration::from_millis(7));
    }

    #[test]
    fn vacuously_proven_properties_are_flagged() {
        let vac = ExploreStats::default(); // transitions == 0 → vacuous
        let report = TestReport {
            test: "t".into(),
            config: "Quick".into(),
            cover: CoverOutcome::Inconclusive,
            cover_elapsed: Duration::ZERO,
            cover_stats: stats(),
            properties: vec![
                prop("A[1]", PropertyVerdict::Proven { stats: vac }),
                prop("B[1]", PropertyVerdict::Proven { stats: stats() }),
            ],
            vacuous: false,
        };
        assert_eq!(report.vacuous_properties(), vec!["A[1]"]);
        let text = report.to_string();
        assert!(
            text.contains("WARNING: 1 property proven vacuously"),
            "{text}"
        );
        assert!(text.contains("A[1]"), "{text}");
        // Totals aggregate the cover phase and both properties.
        assert_eq!(report.total_stats().transitions, 2);
    }

    #[test]
    fn vacuous_reports_are_not_verified() {
        let report = TestReport {
            test: "t".into(),
            config: "Quick".into(),
            cover: CoverOutcome::VerifiedUnreachable,
            cover_elapsed: Duration::ZERO,
            cover_stats: ExploreStats::default(),
            properties: vec![],
            vacuous: true,
        };
        assert!(!report.verified());
        assert!(report.to_string().contains("vacuous"));
    }
}

//! RTLCheck: verifying the memory consistency of RTL designs.
//!
//! This crate is the paper's primary contribution — the automated flow from
//! axiomatic microarchitectural ordering specifications (µspec) to temporal
//! SystemVerilog Assertions over a concrete RTL design, per litmus test:
//!
//! 1. The **Assumption Generator** ([`assume`], §4.1) constrains the
//!    verifier's search to executions of the litmus test: data/instruction
//!    memory initialisation, load-value guidance, and the final-value
//!    assumption whose covering trace doubles as the assumption-only
//!    verification fast path.
//! 2. The **Assertion Generator** ([`assert_gen`], §4.2–4.4) translates
//!    each grounded µspec axiom into SVA, surmounting the three
//!    axiomatic/temporal semantic mismatches of §3:
//!    *outcome-aware* translation (assertions cover every outcome of the
//!    test, not just the one under test), *strict edge encodings* (delay
//!    cycles exclude value-agnostic occurrences of the edge's endpoints),
//!    and *match-attempt filtering* (a `first |->` guard keeps only the
//!    attempt aligned with the start of execution).
//! 3. The **driver** ([`Rtlcheck`]) runs the covering-trace phase and the
//!    per-property proof engines, producing a [`TestReport`] with complete
//!    proofs, bounded proofs, or counterexample traces.
//!
//! The user-supplied connection between the abstract µspec world and the
//! design is the pair of mapping functions in [`mapping`] — the
//! [`mapping::NodeMapping`] of the paper's Figure 9 and the program mapping
//! driving assumption generation.
//!
//! # Example
//!
//! ```
//! use rtlcheck_core::Rtlcheck;
//! use rtlcheck_rtl::multi_vscale::MemoryImpl;
//! use rtlcheck_verif::VerifyConfig;
//!
//! let mp = rtlcheck_litmus::suite::get("mp").unwrap();
//! let report = Rtlcheck::new(MemoryImpl::Fixed).check_test(&mp, &VerifyConfig::quick());
//! assert!(report.verified());
//! assert!(!report.bug_found());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod assert_gen;
pub mod assume;
pub mod check;
pub mod five_stage;
pub mod mapping;
pub mod report;

pub use assert_gen::{AssertionOptions, GeneratedAssertion};
pub use check::Rtlcheck;
pub use report::{CoverOutcome, PropertyReport, TestReport};

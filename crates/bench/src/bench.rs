//! The `rtlcheck bench` harness: warmup + timed iterations over named
//! workload cases, per-phase breakdowns from the `obs` metrics, and the
//! versioned `rtlcheck-bench/1` JSON document with baseline regression
//! gating (`--baseline FILE --tolerance PCT`).
//!
//! The harness is workload-agnostic: the CLI hands [`run_case`] a closure
//! that executes one iteration of suite/mutate/check against a fresh
//! [`MetricsCollector`], and the harness owns the timing discipline —
//! `warmup` untimed iterations (which also warm any `--graph-cache`
//! directory), then `iterations` timed ones. Reported statistics are
//! min/median/max of the timed wall-clocks; the per-phase table comes from
//! the *last* timed iteration's metrics summary, so phases always sum to
//! roughly the reported wall-clock of a real run.
//!
//! Regression gating compares the **median** (robust to one noisy
//! iteration) of each case present in both documents: a case regresses
//! when `current > baseline * (1 + tolerance/100)`. Cases present in only
//! one document are ignored, so baselines survive workload additions.

use std::time::Instant;

use rtlcheck_obs::json::Json;
use rtlcheck_obs::{fmt_us, MetricsCollector, MetricsSummary};

/// Schema tag of the bench JSON document.
pub const SCHEMA: &str = "rtlcheck-bench/1";

/// Identity of one benchmark case — the key regression gating matches on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CaseKey {
    /// Workload kind: `suite`, `mutate`, or `check`.
    pub workload: String,
    /// Verification configuration name (e.g. `hybrid`).
    pub config: String,
    /// Backend choice label (`explicit`, `symbolic`, `auto`).
    pub backend: String,
    /// Worker threads.
    pub jobs: usize,
    /// Whether a graph cache was in play.
    pub graph_cache: bool,
}

impl CaseKey {
    /// Stable display form, e.g. `suite/hybrid/explicit/jobs=8/cache=off`.
    pub fn label(&self) -> String {
        format!(
            "{}/{}/{}/jobs={}/cache={}",
            self.workload,
            self.config,
            self.backend,
            self.jobs,
            if self.graph_cache { "on" } else { "off" }
        )
    }
}

/// One phase row of a case's breakdown (from the metrics summary).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseRow {
    /// Span name (e.g. `graph_build`).
    pub name: String,
    /// Instances in the last timed iteration.
    pub count: u64,
    /// Total wall-clock in the last timed iteration, µs.
    pub total_us: u64,
}

/// A measured benchmark case.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchCase {
    /// What was measured.
    pub key: CaseKey,
    /// Untimed warmup iterations that preceded the timed ones.
    pub warmup: usize,
    /// Timed iteration wall-clocks, in run order, µs.
    pub times_us: Vec<u64>,
    /// Per-phase breakdown of the last timed iteration.
    pub phases: Vec<PhaseRow>,
}

impl BenchCase {
    /// Fastest timed iteration, µs.
    pub fn min_us(&self) -> u64 {
        self.times_us.iter().copied().min().unwrap_or(0)
    }

    /// Median timed iteration, µs (upper median for even counts).
    pub fn median_us(&self) -> u64 {
        if self.times_us.is_empty() {
            return 0;
        }
        let mut sorted = self.times_us.clone();
        sorted.sort_unstable();
        sorted[sorted.len() / 2]
    }

    /// Slowest timed iteration, µs.
    pub fn max_us(&self) -> u64 {
        self.times_us.iter().copied().max().unwrap_or(0)
    }
}

/// Runs one benchmark case: `warmup` untimed then `iterations` timed runs
/// of `run`, each against a fresh [`MetricsCollector`]. The phase table
/// comes from the last timed iteration.
pub fn run_case(
    key: CaseKey,
    warmup: usize,
    iterations: usize,
    mut run: impl FnMut(&MetricsCollector),
) -> BenchCase {
    for _ in 0..warmup {
        run(&MetricsCollector::new());
    }
    let mut times_us = Vec::with_capacity(iterations);
    let mut last: Option<MetricsSummary> = None;
    for _ in 0..iterations.max(1) {
        let metrics = MetricsCollector::new();
        let start = Instant::now();
        run(&metrics);
        times_us.push(start.elapsed().as_micros() as u64);
        last = Some(metrics.summary());
    }
    let phases = last
        .map(|s| {
            s.spans
                .iter()
                .map(|sp| PhaseRow {
                    name: sp.name.clone(),
                    count: sp.hist.count(),
                    total_us: sp.hist.sum_us(),
                })
                .collect()
        })
        .unwrap_or_default();
    BenchCase {
        key,
        warmup,
        times_us,
        phases,
    }
}

/// A complete bench document (`rtlcheck-bench/1`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BenchReport {
    /// Measured cases, in run order.
    pub cases: Vec<BenchCase>,
}

/// Failure to interpret a bench JSON document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchError {
    /// What was wrong.
    pub message: String,
}

impl std::fmt::Display for BenchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid bench document: {}", self.message)
    }
}

impl std::error::Error for BenchError {}

fn bad(what: &str) -> BenchError {
    BenchError {
        message: format!("missing or malformed `{what}`"),
    }
}

impl BenchReport {
    /// Serializes to the `rtlcheck-bench/1` document. Derived statistics
    /// (`min_us`/`median_us`/`max_us`) are included for readability but
    /// recomputed from `times_us` on load.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("schema", Json::Str(SCHEMA.into())),
            (
                "cases",
                Json::Arr(
                    self.cases
                        .iter()
                        .map(|c| {
                            Json::obj(vec![
                                ("workload", Json::Str(c.key.workload.clone())),
                                ("config", Json::Str(c.key.config.clone())),
                                ("backend", Json::Str(c.key.backend.clone())),
                                ("jobs", Json::Uint(c.key.jobs as u64)),
                                ("graph_cache", Json::Bool(c.key.graph_cache)),
                                ("warmup", Json::Uint(c.warmup as u64)),
                                (
                                    "times_us",
                                    Json::Arr(c.times_us.iter().map(|&t| Json::Uint(t)).collect()),
                                ),
                                ("min_us", Json::Uint(c.min_us())),
                                ("median_us", Json::Uint(c.median_us())),
                                ("max_us", Json::Uint(c.max_us())),
                                (
                                    "phases",
                                    Json::Arr(
                                        c.phases
                                            .iter()
                                            .map(|p| {
                                                Json::obj(vec![
                                                    ("name", Json::Str(p.name.clone())),
                                                    ("count", Json::Uint(p.count)),
                                                    ("total_us", Json::Uint(p.total_us)),
                                                ])
                                            })
                                            .collect(),
                                    ),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Deserializes an `rtlcheck-bench/1` document.
    pub fn from_json(v: &Json) -> Result<BenchReport, BenchError> {
        match v.get("schema").and_then(Json::as_str) {
            Some(SCHEMA) => {}
            Some(other) => {
                return Err(BenchError {
                    message: format!("unknown schema `{other}` (expected `{SCHEMA}`)"),
                })
            }
            None => return Err(bad("schema")),
        }
        let str_field = |c: &Json, k: &str| {
            c.get(k)
                .and_then(Json::as_str)
                .map(String::from)
                .ok_or_else(|| bad(k))
        };
        let u64_field = |c: &Json, k: &str| c.get(k).and_then(Json::as_u64).ok_or_else(|| bad(k));
        let mut cases = Vec::new();
        for c in v
            .get("cases")
            .and_then(Json::as_arr)
            .ok_or_else(|| bad("cases"))?
        {
            let times_us = c
                .get("times_us")
                .and_then(Json::as_arr)
                .ok_or_else(|| bad("times_us"))?
                .iter()
                .map(|t| t.as_u64().ok_or_else(|| bad("times_us entry")))
                .collect::<Result<Vec<u64>, _>>()?;
            let mut phases = Vec::new();
            for p in c
                .get("phases")
                .and_then(Json::as_arr)
                .ok_or_else(|| bad("phases"))?
            {
                phases.push(PhaseRow {
                    name: str_field(p, "name")?,
                    count: u64_field(p, "count")?,
                    total_us: u64_field(p, "total_us")?,
                });
            }
            cases.push(BenchCase {
                key: CaseKey {
                    workload: str_field(c, "workload")?,
                    config: str_field(c, "config")?,
                    backend: str_field(c, "backend")?,
                    jobs: u64_field(c, "jobs")? as usize,
                    graph_cache: c
                        .get("graph_cache")
                        .and_then(Json::as_bool)
                        .ok_or_else(|| bad("graph_cache"))?,
                },
                warmup: u64_field(c, "warmup")? as usize,
                times_us,
                phases,
            });
        }
        Ok(BenchReport { cases })
    }

    /// Parses a serialized bench document.
    pub fn parse(src: &str) -> Result<BenchReport, BenchError> {
        let v = Json::parse(src).map_err(|e| BenchError {
            message: e.to_string(),
        })?;
        BenchReport::from_json(&v)
    }

    /// Human-readable bench table.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "RTLCheck benchmark ({SCHEMA})");
        let width = self
            .cases
            .iter()
            .map(|c| c.key.label().len())
            .max()
            .unwrap_or(4)
            .max(4);
        let _ = writeln!(
            out,
            "  {:width$}  {:>5}  {:>10}  {:>10}  {:>10}",
            "case", "iters", "min", "median", "max"
        );
        for c in &self.cases {
            let _ = writeln!(
                out,
                "  {:width$}  {:>5}  {:>10}  {:>10}  {:>10}",
                c.key.label(),
                c.times_us.len(),
                fmt_us(c.min_us()),
                fmt_us(c.median_us()),
                fmt_us(c.max_us()),
            );
        }
        for c in &self.cases {
            if c.phases.is_empty() {
                continue;
            }
            let _ = writeln!(out, "\n  {} (last iteration phases):", c.key.label());
            let pw = c
                .phases
                .iter()
                .map(|p| p.name.len())
                .max()
                .unwrap_or(5)
                .max(5);
            for p in &c.phases {
                let _ = writeln!(
                    out,
                    "    {:pw$}  {:>7}  {:>10}",
                    p.name,
                    p.count,
                    fmt_us(p.total_us)
                );
            }
        }
        out
    }

    fn case(&self, key: &CaseKey) -> Option<&BenchCase> {
        self.cases.iter().find(|c| &c.key == key)
    }
}

/// One case that exceeded the regression tolerance.
#[derive(Debug, Clone, PartialEq)]
pub struct Regression {
    /// Case identity label.
    pub case: String,
    /// Baseline median, µs.
    pub baseline_us: u64,
    /// Current median, µs.
    pub current_us: u64,
    /// Percent change from baseline.
    pub pct: f64,
}

/// Compares `current` against `baseline`: a case regresses when its median
/// exceeds the baseline median by more than `tolerance_pct` percent. Only
/// cases present in both documents are compared.
pub fn regressions(
    current: &BenchReport,
    baseline: &BenchReport,
    tolerance_pct: f64,
) -> Vec<Regression> {
    let mut found = Vec::new();
    for c in &current.cases {
        let Some(b) = baseline.case(&c.key) else {
            continue;
        };
        let (cur, base) = (c.median_us(), b.median_us());
        if base == 0 {
            continue;
        }
        let pct = 100.0 * (cur as f64 - base as f64) / base as f64;
        if pct > tolerance_pct {
            found.push(Regression {
                case: c.key.label(),
                baseline_us: base,
                current_us: cur,
                pct,
            });
        }
    }
    found
}

/// Renders the regression comparison (both the clean and the failing
/// outcomes name every compared case).
pub fn render_comparison(
    current: &BenchReport,
    baseline: &BenchReport,
    tolerance_pct: f64,
) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let regs = regressions(current, baseline, tolerance_pct);
    let _ = writeln!(out, "Baseline comparison (tolerance {tolerance_pct:.0}%):");
    let mut compared = 0usize;
    for c in &current.cases {
        let Some(b) = baseline.case(&c.key) else {
            let _ = writeln!(out, "  {:<40}  (no baseline case)", c.key.label());
            continue;
        };
        compared += 1;
        let (cur, base) = (c.median_us(), b.median_us());
        let pct = if base > 0 {
            100.0 * (cur as f64 - base as f64) / base as f64
        } else {
            0.0
        };
        let verdict = if pct > tolerance_pct {
            "REGRESSED"
        } else {
            "ok"
        };
        let _ = writeln!(
            out,
            "  {:<40}  {:>10} -> {:>10}  {:>+7.1}%  {verdict}",
            c.key.label(),
            fmt_us(base),
            fmt_us(cur),
            pct,
        );
    }
    let _ = writeln!(
        out,
        "{} case(s) compared, {} regression(s)",
        compared,
        regs.len()
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtlcheck_obs::{attrs, Collector, SpanId};
    use std::time::Duration;

    fn key(workload: &str, jobs: usize) -> CaseKey {
        CaseKey {
            workload: workload.into(),
            config: "hybrid".into(),
            backend: "explicit".into(),
            jobs,
            graph_cache: false,
        }
    }

    fn case(workload: &str, jobs: usize, times: &[u64]) -> BenchCase {
        BenchCase {
            key: key(workload, jobs),
            warmup: 1,
            times_us: times.to_vec(),
            phases: vec![PhaseRow {
                name: "graph_build".into(),
                count: 2,
                total_us: 500,
            }],
        }
    }

    #[test]
    fn run_case_times_iterations_and_collects_phases() {
        let mut calls = 0;
        let c = run_case(key("suite", 1), 1, 3, |metrics| {
            calls += 1;
            metrics.span_exit(
                SpanId(0),
                "graph_build",
                Duration::from_micros(40),
                attrs![],
            );
        });
        assert_eq!(calls, 4, "1 warmup + 3 timed");
        assert_eq!(c.times_us.len(), 3);
        assert_eq!(c.phases.len(), 1);
        assert_eq!(c.phases[0].name, "graph_build");
        assert_eq!(c.phases[0].total_us, 40);
        assert!(c.min_us() <= c.median_us() && c.median_us() <= c.max_us());
    }

    #[test]
    fn stats_and_json_round_trip() {
        let report = BenchReport {
            cases: vec![case("suite", 8, &[300, 100, 200])],
        };
        assert_eq!(report.cases[0].min_us(), 100);
        assert_eq!(report.cases[0].median_us(), 200);
        assert_eq!(report.cases[0].max_us(), 300);
        let text = report.to_json().pretty();
        assert!(text.contains("rtlcheck-bench/1"), "{text}");
        let back = BenchReport::parse(&text).unwrap();
        assert_eq!(back, report);
    }

    #[test]
    fn parse_rejects_wrong_and_missing_schema() {
        let err = BenchReport::parse(r#"{"schema":"rtlcheck-metrics/1"}"#).unwrap_err();
        assert!(err.message.contains("rtlcheck-bench/1"), "{err}");
        assert!(BenchReport::parse("{}").is_err());
        assert!(BenchReport::parse("not json").is_err());
    }

    #[test]
    fn regression_gate_fires_only_beyond_tolerance() {
        let baseline = BenchReport {
            cases: vec![case("suite", 1, &[100, 100, 100]), case("mutate", 1, &[50])],
        };
        let current = BenchReport {
            cases: vec![
                case("suite", 1, &[140, 140, 140]), // +40%
                case("mutate", 1, &[50]),           // flat
                case("check", 1, &[999]),           // no baseline: ignored
            ],
        };
        assert!(regressions(&current, &baseline, 50.0).is_empty());
        let regs = regressions(&current, &baseline, 25.0);
        assert_eq!(regs.len(), 1);
        assert_eq!(regs[0].case, "suite/hybrid/explicit/jobs=1/cache=off");
        assert!((regs[0].pct - 40.0).abs() < 1e-9);
        let text = render_comparison(&current, &baseline, 25.0);
        assert!(text.contains("REGRESSED"), "{text}");
        assert!(text.contains("no baseline case"), "{text}");
    }

    #[test]
    fn render_lists_cases_and_phases() {
        let report = BenchReport {
            cases: vec![case("suite", 8, &[300, 100, 200])],
        };
        let text = report.render();
        assert!(
            text.contains("suite/hybrid/explicit/jobs=8/cache=off"),
            "{text}"
        );
        assert!(text.contains("graph_build"), "{text}");
        assert!(text.contains("median"), "{text}");
    }
}

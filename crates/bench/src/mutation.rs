//! The mutation campaign: run the litmus suite against every catalogued
//! mutant of a design and measure whether the generated properties kill it.
//!
//! RealityCheck and TriCheck argue that a verification flow must be
//! validated against seeded bug *families*, not a single known defect. This
//! module is that validation for the RTLCheck reproduction: the
//! [`rtlcheck_rtl::mutate`] catalogs inject stall-drops, forwarding
//! removals, priority flips, buffer overwrites, reset skips, and commit
//! reorderings into the Multi-V-scale / five-stage / TSO designs, and the
//! campaign classifies each mutant as **killed**, **survived**, or
//! **budget-limited**.
//!
//! ## Kill classification
//!
//! Every litmus test is first checked on the *unmutated* design — the
//! baseline verdict matters because a bug signal is only meaningful
//! relative to it (on the TSO design, `sb`'s SC-forbidden outcome is
//! legitimately reachable, so a covering trace there is not a kill). A
//! mutant is **killed by test t** when its bug verdict on `t` *differs*
//! from the baseline's:
//!
//! * baseline clean, mutant finds a bug (cover witness or falsified
//!   assertion) — the classic kill; the killing axioms are the falsified
//!   properties' axioms plus the `cover` pseudo-axiom for a witness;
//! * baseline finds a bug, mutant does not — the mutation removed an
//!   execution the real design exhibits; attributed to `cover`.
//!
//! A mutant killed by no test is **budget-limited** if any of its runs was
//! inconclusive (the cover budget ran out, so reachability was never
//! decided), otherwise **survived**. Survivors name the weakest axioms —
//! the axioms that killed nothing across the whole campaign.
//!
//! ## Determinism
//!
//! The campaign reuses the suite runner's scheduling pattern: a
//! self-scheduling worker pool over the flat (design × test) work list,
//! per-item [`BufferCollector`]s replayed in input order. The report
//! contains no timing data, so its text and JSON renderings are
//! byte-identical across `--jobs` values.
//!
//! ## Incremental recomputation
//!
//! With [`CampaignOptions::incremental`] enabled (the default), mutant
//! checks splice their state graphs from the baseline design's published
//! core instead of rebuilding cold — only the mutation's dirty cones are
//! re-simulated (see [`rtlcheck_verif::GraphCache::build_graph_incremental`]).
//! The spliced graph is bit-identical to a cold build, so the kill matrix
//! and JSON report are byte-identical across incremental-vs-cold too. To
//! guarantee the baseline cores exist before any mutant asks for them, a
//! parallel campaign runs in two phases — all baseline items first, then
//! all mutant items — over the same fixed result slots, which leaves the
//! deterministic collector stream unchanged. When the caller passes no
//! cache, an internal in-memory cache carries the baseline cores; its
//! counters are not reported.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use rtlcheck_core::{five_stage, CoverOutcome, Rtlcheck, TestReport};
use rtlcheck_litmus::{suite, LitmusTest};
use rtlcheck_obs::json::Json;
use rtlcheck_obs::{
    attrs, progress::UNIT_DONE, BufferCollector, Collector, MultiCollector, TrackSink,
};
use rtlcheck_rtl::five_stage::FiveStage;
use rtlcheck_rtl::multi_vscale::{MemoryImpl, MultiVscale};
use rtlcheck_rtl::mutate::{catalog, CatalogTarget, Mutation};
use rtlcheck_verif::{BackendChoice, GraphCache, Incremental, VerifyConfig};

/// The pseudo-axiom credited when the kill signal is the covering trace
/// (a forbidden outcome becoming reachable, or a witnessed outcome
/// disappearing) rather than a falsified assertion.
pub const COVER_AXIOM: &str = "cover";

/// Campaign parameters.
#[derive(Debug, Clone)]
pub struct CampaignOptions {
    /// Which design's mutant catalog to run.
    pub target: CatalogTarget,
    /// Worker threads (≤ 1 runs inline).
    pub jobs: usize,
    /// If set, only mutants with these names run.
    pub mutants: Option<Vec<String>>,
    /// If set, only suite tests with these names run.
    pub tests: Option<Vec<String>>,
    /// Reachable-set backend for every check in the campaign.
    pub backend: BackendChoice,
    /// Whether mutant graphs splice from the baseline cores
    /// (`--incremental`; [`Incremental::Off`] preserves the cold path for
    /// differential CI).
    pub incremental: Incremental,
}

impl CampaignOptions {
    /// Options for a full single-threaded campaign on `target`.
    pub fn new(target: CatalogTarget) -> Self {
        CampaignOptions {
            target,
            jobs: 1,
            mutants: None,
            tests: None,
            backend: BackendChoice::default(),
            incremental: Incremental::default(),
        }
    }
}

/// A mutant's campaign classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MutantVerdict {
    /// At least one test's bug verdict differs from the baseline's.
    Killed,
    /// No test distinguishes the mutant and every run was conclusive.
    Survived,
    /// No kill, but at least one run exhausted its cover budget.
    BudgetLimited,
}

impl MutantVerdict {
    /// Stable lower-snake label (reports and JSON).
    pub fn label(self) -> &'static str {
        match self {
            MutantVerdict::Killed => "killed",
            MutantVerdict::Survived => "survived",
            MutantVerdict::BudgetLimited => "budget_limited",
        }
    }
}

/// One test's contribution to a mutant's kill.
#[derive(Debug, Clone)]
pub struct KillRecord {
    /// The litmus test that distinguished the mutant.
    pub test: String,
    /// Axioms whose properties were falsified on the mutant (plus
    /// [`COVER_AXIOM`] when the covering trace flipped), deduplicated, in
    /// property order.
    pub axioms: Vec<String>,
}

/// A mutant's full campaign result.
#[derive(Debug, Clone)]
pub struct MutantResult {
    /// Mutation name (see [`rtlcheck_rtl::mutate::catalog`]).
    pub name: String,
    /// Taxonomy family label.
    pub family: String,
    /// Human description of the injected bug.
    pub description: String,
    /// Classification.
    pub verdict: MutantVerdict,
    /// The resolved reachable-set backend this unit's checks ran on
    /// ([`rtlcheck_verif::BackendKind::label`], resolved once per campaign
    /// against the first selected test's baseline design).
    pub backend: String,
    /// The tests that killed it (empty for survivors).
    pub killed_by: Vec<KillRecord>,
}

impl MutantResult {
    /// Every axiom that contributed to killing this mutant, deduplicated,
    /// in first-seen order.
    pub fn killing_axioms(&self) -> Vec<&str> {
        let mut seen = Vec::new();
        for k in &self.killed_by {
            for a in &k.axioms {
                if !seen.contains(&a.as_str()) {
                    seen.push(a.as_str());
                }
            }
        }
        seen
    }
}

/// The campaign's aggregate result: the mutation-score report.
#[derive(Debug, Clone)]
pub struct CampaignReport {
    /// Design label ([`CatalogTarget::label`]).
    pub design: String,
    /// Verification configuration name.
    pub config: String,
    /// The litmus tests that ran, in suite order.
    pub tests: Vec<String>,
    /// Per-mutant results, in catalog order.
    pub mutants: Vec<MutantResult>,
    /// Every axiom the baseline generated across the tests (plus
    /// [`COVER_AXIOM`]), in first-seen order — the kill-matrix columns.
    pub axioms: Vec<String>,
}

impl CampaignReport {
    /// Number of killed mutants.
    pub fn killed(&self) -> usize {
        self.count(MutantVerdict::Killed)
    }

    /// Number of surviving mutants.
    pub fn survived(&self) -> usize {
        self.count(MutantVerdict::Survived)
    }

    /// Number of budget-limited mutants.
    pub fn budget_limited(&self) -> usize {
        self.count(MutantVerdict::BudgetLimited)
    }

    fn count(&self, v: MutantVerdict) -> usize {
        self.mutants.iter().filter(|m| m.verdict == v).count()
    }

    /// Mutation score: killed / total mutants, as a percentage.
    pub fn score_pct(&self) -> f64 {
        100.0 * self.killed() as f64 / self.mutants.len().max(1) as f64
    }

    /// Survivor names (the mutants the suite cannot distinguish).
    pub fn survivors(&self) -> Vec<&str> {
        self.mutants
            .iter()
            .filter(|m| m.verdict != MutantVerdict::Killed)
            .map(|m| m.name.as_str())
            .collect()
    }

    /// How many mutants each axiom killed — the kill matrix marginals, in
    /// [`CampaignReport::axioms`] order.
    pub fn axiom_kill_counts(&self) -> Vec<(&str, usize)> {
        self.axioms
            .iter()
            .map(|a| {
                let kills = self
                    .mutants
                    .iter()
                    .filter(|m| m.killing_axioms().contains(&a.as_str()))
                    .count();
                (a.as_str(), kills)
            })
            .collect()
    }

    /// The weakest axioms: those that killed no mutant at all. When
    /// mutants survive, these name where the generated property set is
    /// blind.
    pub fn weakest_axioms(&self) -> Vec<&str> {
        self.axiom_kill_counts()
            .into_iter()
            .filter(|&(_, kills)| kills == 0)
            .map(|(a, _)| a)
            .collect()
    }

    /// Renders the text report. Contains no timing data, so the output is
    /// byte-identical across job counts.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "Mutation campaign: {} ({} mutants x {} tests, config {})",
            self.design,
            self.mutants.len(),
            self.tests.len(),
            self.config
        );
        let _ = writeln!(out);
        for m in &self.mutants {
            let _ = writeln!(
                out,
                "  {:<28} {:<14} [{}]",
                m.name,
                m.verdict.label(),
                m.family
            );
            for k in &m.killed_by {
                let _ = writeln!(
                    out,
                    "    killed by {:<12} via {}",
                    k.test,
                    k.axioms.join(", ")
                );
            }
        }
        let _ = writeln!(out);
        let _ = writeln!(
            out,
            "Score: {}/{} killed ({:.1}%), {} survived, {} budget-limited",
            self.killed(),
            self.mutants.len(),
            self.score_pct(),
            self.survived(),
            self.budget_limited()
        );
        let survivors = self.survivors();
        if !survivors.is_empty() {
            let _ = writeln!(out, "Survivors: {}", survivors.join(", "));
        }
        let _ = writeln!(out);
        let _ = writeln!(out, "Axiom kill matrix (mutants killed per axiom):");
        let width = self
            .axioms
            .iter()
            .map(String::len)
            .max()
            .unwrap_or(5)
            .max(5);
        for (axiom, kills) in self.axiom_kill_counts() {
            let mark = if kills == 0 { "  <- weakest" } else { "" };
            let _ = writeln!(out, "  {axiom:<width$} {kills}{mark}");
        }
        out
    }

    /// Serializes the report as JSON (same content as [`render`], same
    /// determinism guarantee).
    ///
    /// [`render`]: CampaignReport::render
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("design", Json::Str(self.design.clone())),
            ("config", Json::Str(self.config.clone())),
            (
                "tests",
                Json::Arr(self.tests.iter().cloned().map(Json::Str).collect()),
            ),
            (
                "mutants",
                Json::Arr(
                    self.mutants
                        .iter()
                        .map(|m| {
                            Json::obj(vec![
                                ("name", Json::Str(m.name.clone())),
                                ("family", Json::Str(m.family.clone())),
                                ("description", Json::Str(m.description.clone())),
                                ("verdict", Json::Str(m.verdict.label().to_string())),
                                ("backend", Json::Str(m.backend.clone())),
                                (
                                    "killed_by",
                                    Json::Arr(
                                        m.killed_by
                                            .iter()
                                            .map(|k| {
                                                Json::obj(vec![
                                                    ("test", Json::Str(k.test.clone())),
                                                    (
                                                        "axioms",
                                                        Json::Arr(
                                                            k.axioms
                                                                .iter()
                                                                .cloned()
                                                                .map(Json::Str)
                                                                .collect(),
                                                        ),
                                                    ),
                                                ])
                                            })
                                            .collect(),
                                    ),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("killed", Json::Num(self.killed() as f64)),
            ("survived", Json::Num(self.survived() as f64)),
            ("budget_limited", Json::Num(self.budget_limited() as f64)),
            ("score_pct", Json::Num(self.score_pct())),
            (
                "survivors",
                Json::Arr(
                    self.survivors()
                        .into_iter()
                        .map(|s| Json::Str(s.to_string()))
                        .collect(),
                ),
            ),
            (
                "weakest_axioms",
                Json::Arr(
                    self.weakest_axioms()
                        .into_iter()
                        .map(|s| Json::Str(s.to_string()))
                        .collect(),
                ),
            ),
        ])
    }
}

/// One (design variant, test) check in the flat work list. `mutant` is
/// `None` for the baseline run of the unmutated design.
#[allow(clippy::too_many_arguments)]
fn check_one(
    target: CatalogTarget,
    backend: BackendChoice,
    mutant: Option<&Mutation>,
    test: &LitmusTest,
    config: &VerifyConfig,
    cache: Option<&GraphCache>,
    incremental: Incremental,
    collector: &dyn Collector,
) -> TestReport {
    let tool = match target {
        CatalogTarget::MultiVscale => Some(Rtlcheck::new(MemoryImpl::Fixed)),
        CatalogTarget::Tso => Some(Rtlcheck::tso()),
        CatalogTarget::FiveStage => None,
    }
    .map(|t| t.with_backend(backend));
    let run = match (tool, mutant) {
        (Some(tool), Some(m)) => {
            tool.check_test_mutated(test, m, config, cache, incremental, collector)
        }
        (Some(tool), None) => Ok(match cache {
            Some(c) => tool.check_test_cached(test, config, c, collector),
            None => tool.check_test_observed(test, config, collector),
        }),
        (None, _) => five_stage::check_test_mutated(
            test,
            mutant,
            config,
            backend,
            cache,
            incremental,
            collector,
        ),
    };
    run.unwrap_or_else(|e| {
        panic!(
            "catalog mutation `{}` must apply to every {} build: {e}",
            mutant.map_or("<baseline>", |m| m.name.as_str()),
            target
        )
    })
}

/// Runs the mutation campaign.
///
/// All (1 + mutants) × tests checks — the baseline suite pass plus every
/// mutant's pass — run on a self-scheduling pool of `jobs` workers with
/// the suite runner's determinism contract: per-item instrumentation is
/// buffered and replayed to `collector` in input order, and the campaign's
/// own `mutation.*` counters and per-mutant verdict events are emitted
/// after all replays, so the observability stream is independent of the
/// job count.
///
/// # Errors
///
/// Returns an error if a `mutants`/`tests` filter names an unknown mutant
/// or test.
///
/// # Panics
///
/// Panics if a catalog mutation fails to apply to its design — a catalog
/// invariant, tested in `rtlcheck_rtl::mutate`.
pub fn run_campaign(
    options: &CampaignOptions,
    config: &VerifyConfig,
    collector: &dyn Collector,
    cache: Option<&GraphCache>,
) -> Result<CampaignReport, String> {
    run_campaign_live(options, config, collector, cache, &[])
}

/// [`run_campaign`] plus live side-channel sinks ([`TrackSink`]): each
/// worker additionally reports through its own live track as checks happen
/// (real timestamps, real schedule — what `--trace-out` and `--progress`
/// consume), and marks every completed (design, test) item with a
/// [`UNIT_DONE`] event on the live tracks **only**. The deterministic
/// stream into `collector` is byte-identical with or without live sinks.
pub fn run_campaign_live(
    options: &CampaignOptions,
    config: &VerifyConfig,
    collector: &dyn Collector,
    cache: Option<&GraphCache>,
    live: &[&dyn TrackSink],
) -> Result<CampaignReport, String> {
    let all_tests = suite::all();
    let tests: Vec<LitmusTest> = match &options.tests {
        None => all_tests,
        Some(names) => {
            let mut picked = Vec::new();
            for n in names {
                let t = all_tests
                    .iter()
                    .find(|t| t.name() == n)
                    .ok_or_else(|| format!("unknown litmus test `{n}`"))?;
                picked.push(t.clone());
            }
            picked
        }
    };
    let full_catalog = catalog(options.target);
    let mutants: Vec<Mutation> = match &options.mutants {
        None => full_catalog,
        Some(names) => {
            let mut picked = Vec::new();
            for n in names {
                let m = full_catalog
                    .iter()
                    .find(|m| &m.name == n)
                    .ok_or_else(|| format!("unknown mutant `{n}` for {}", options.target))?;
                picked.push(m.clone());
            }
            picked
        }
    };
    if tests.is_empty() {
        return Err("no litmus tests selected".into());
    }

    // The campaign-level backend label for the report: the choice resolved
    // against the first selected test's baseline design (every unit of a
    // target resolves the same way — the catalog mutations keep the input
    // space and register count).
    let backend_kind = {
        let design = match options.target {
            CatalogTarget::MultiVscale => MultiVscale::build(&tests[0], MemoryImpl::Fixed).design,
            CatalogTarget::Tso => MultiVscale::build(&tests[0], MemoryImpl::Tso).design,
            CatalogTarget::FiveStage => FiveStage::build(&tests[0]).design,
        };
        options.backend.resolve(&design)
    };

    // Splicing needs somewhere to publish the baseline cores: use the
    // caller's cache when there is one, otherwise an internal in-memory
    // cache whose counters are never reported (so the deterministic
    // stream matches the cache-less cold campaign).
    let own_cache = (cache.is_none() && options.incremental.enabled()).then(GraphCache::in_memory);
    let unit_cache: Option<&GraphCache> = cache.or(own_cache.as_ref());

    // Flat work list: item 0..T is the baseline, then each mutant's T
    // checks. Workers self-schedule over it; results land in fixed slots.
    let designs: Vec<Option<&Mutation>> = std::iter::once(None)
        .chain(mutants.iter().map(Some))
        .collect();
    let items: Vec<(usize, usize)> = (0..designs.len())
        .flat_map(|d| (0..tests.len()).map(move |t| (d, t)))
        .collect();

    let workers = options.jobs.max(1).min(items.len());
    let reports: Vec<TestReport> = if workers <= 1 {
        let tracks: Vec<Box<dyn Collector + '_>> = live.iter().map(|s| s.track(1)).collect();
        items
            .iter()
            .map(|&(d, t)| {
                let report = {
                    let mut sinks: Vec<&dyn Collector> = vec![collector];
                    sinks.extend(tracks.iter().map(|b| &**b));
                    check_one(
                        options.target,
                        options.backend,
                        designs[d],
                        &tests[t],
                        config,
                        unit_cache,
                        options.incremental,
                        &MultiCollector::new(sinks),
                    )
                };
                for track in &tracks {
                    track.event(UNIT_DONE, attrs!["test" => tests[t].name()]);
                }
                report
            })
            .collect()
    } else {
        let slots: Vec<Mutex<Option<(TestReport, BufferCollector)>>> =
            items.iter().map(|_| Mutex::new(None)).collect();
        // With splicing on, every baseline core must be published before
        // any mutant item asks for it: the baseline items run as their own
        // phase, then the mutant items. Both phases self-schedule over
        // their range of the same fixed slots, so the replayed stream is
        // identical to the single-phase schedule's.
        let barrier = if options.incremental.enabled() {
            tests.len()
        } else {
            0
        };
        for range in [0..barrier, barrier..items.len()] {
            if range.is_empty() {
                continue;
            }
            let next = AtomicUsize::new(range.start);
            let end = range.end;
            let phase_workers = workers.min(end - range.start);
            std::thread::scope(|scope| {
                let (next, slots, items, designs, tests) =
                    (&next, &slots, &items, &designs, &tests);
                for w in 0..phase_workers {
                    scope.spawn(move || {
                        let tracks: Vec<Box<dyn Collector + '_>> =
                            live.iter().map(|s| s.track(w as u64 + 1)).collect();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= end {
                                break;
                            }
                            let (d, t) = items[i];
                            let buf = BufferCollector::new();
                            let report = {
                                let mut sinks: Vec<&dyn Collector> = vec![&buf];
                                sinks.extend(tracks.iter().map(|b| &**b));
                                check_one(
                                    options.target,
                                    options.backend,
                                    designs[d],
                                    &tests[t],
                                    config,
                                    unit_cache,
                                    options.incremental,
                                    &MultiCollector::new(sinks),
                                )
                            };
                            for track in &tracks {
                                track.event(UNIT_DONE, attrs!["test" => tests[t].name()]);
                            }
                            *slots[i].lock().unwrap_or_else(|e| e.into_inner()) =
                                Some((report, buf));
                        }
                    });
                }
            });
        }
        slots
            .into_iter()
            .map(|slot| {
                let (report, buf) = slot
                    .into_inner()
                    .unwrap_or_else(|e| e.into_inner())
                    .expect("every work slot is filled once its worker finishes");
                buf.replay_into(collector);
                report
            })
            .collect()
    };
    if let Some(cache) = cache {
        cache.report_to(collector);
    }

    let (baseline, mutant_reports) = reports.split_at(tests.len());
    let report = classify(
        options,
        config,
        &tests,
        &mutants,
        baseline,
        mutant_reports,
        backend_kind.label(),
    );

    // Campaign counters and per-mutant events, in fixed (catalog) order —
    // after all replays, so the stream is scheduling-independent.
    let design = options.target.label();
    collector.counter(
        "mutation.mutants",
        report.mutants.len() as u64,
        attrs!["design" => design],
    );
    collector.counter(
        "mutation.killed",
        report.killed() as u64,
        attrs!["design" => design],
    );
    collector.counter(
        "mutation.survived",
        report.survived() as u64,
        attrs!["design" => design],
    );
    collector.counter(
        "mutation.budget_limited",
        report.budget_limited() as u64,
        attrs!["design" => design],
    );
    collector.counter(
        "mutation.checks",
        reports.len() as u64,
        attrs!["design" => design],
    );
    for m in &report.mutants {
        collector.event(
            "mutant_verdict",
            attrs!["mutant" => &m.name, "verdict" => m.verdict.label()],
        );
    }
    Ok(report)
}

/// Folds the raw reports into the campaign classification.
#[allow(clippy::too_many_arguments)]
fn classify(
    options: &CampaignOptions,
    config: &VerifyConfig,
    tests: &[LitmusTest],
    mutants: &[Mutation],
    baseline: &[TestReport],
    mutant_reports: &[TestReport],
    backend: &str,
) -> CampaignReport {
    // Kill-matrix columns: cover first, then every axiom the baseline's
    // properties mention, in first-seen order.
    let mut axioms: Vec<String> = vec![COVER_AXIOM.to_string()];
    for r in baseline {
        for p in &r.properties {
            if !axioms.contains(&p.axiom) {
                axioms.push(p.axiom.clone());
            }
        }
    }

    let results = mutants
        .iter()
        .enumerate()
        .map(|(mi, m)| {
            let runs = &mutant_reports[mi * tests.len()..(mi + 1) * tests.len()];
            let mut killed_by = Vec::new();
            let mut inconclusive = false;
            for (ti, run) in runs.iter().enumerate() {
                let base = &baseline[ti];
                if matches!(run.cover, CoverOutcome::Inconclusive) {
                    inconclusive = true;
                }
                if run.bug_found() == base.bug_found() {
                    continue;
                }
                let mut kill_axioms = Vec::new();
                if matches!(run.cover, CoverOutcome::BugWitness(_))
                    != matches!(base.cover, CoverOutcome::BugWitness(_))
                {
                    kill_axioms.push(COVER_AXIOM.to_string());
                }
                for p in &run.properties {
                    if p.verdict.is_falsified() && !kill_axioms.contains(&p.axiom) {
                        kill_axioms.push(p.axiom.clone());
                    }
                }
                killed_by.push(KillRecord {
                    test: tests[ti].name().to_string(),
                    axioms: kill_axioms,
                });
            }
            let verdict = if !killed_by.is_empty() {
                MutantVerdict::Killed
            } else if inconclusive {
                MutantVerdict::BudgetLimited
            } else {
                MutantVerdict::Survived
            };
            MutantResult {
                name: m.name.clone(),
                family: m.family.label().to_string(),
                description: m.description.clone(),
                verdict,
                backend: backend.to_string(),
                killed_by,
            }
        })
        .collect();

    CampaignReport {
        design: options.target.label().to_string(),
        config: config.name.clone(),
        tests: tests.iter().map(|t| t.name().to_string()).collect(),
        mutants: results,
        axioms,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result(name: &str, verdict: MutantVerdict, killed_by: Vec<KillRecord>) -> MutantResult {
        MutantResult {
            name: name.into(),
            family: "drop_stall".into(),
            description: String::new(),
            verdict,
            backend: "explicit".into(),
            killed_by,
        }
    }

    fn sample() -> CampaignReport {
        CampaignReport {
            design: "multi_vscale".into(),
            config: "T".into(),
            tests: vec!["mp".into(), "sb".into()],
            mutants: vec![
                result(
                    "a",
                    MutantVerdict::Killed,
                    vec![KillRecord {
                        test: "mp".into(),
                        axioms: vec![COVER_AXIOM.into(), "Read_Values".into()],
                    }],
                ),
                result("b", MutantVerdict::Survived, vec![]),
            ],
            axioms: vec![COVER_AXIOM.into(), "Read_Values".into(), "PO_Fetch".into()],
        }
    }

    #[test]
    fn score_and_survivors() {
        let r = sample();
        assert_eq!(r.killed(), 1);
        assert_eq!(r.survived(), 1);
        assert!((r.score_pct() - 50.0).abs() < 1e-9);
        assert_eq!(r.survivors(), vec!["b"]);
        assert_eq!(r.weakest_axioms(), vec!["PO_Fetch"]);
    }

    #[test]
    fn render_names_survivors_and_weakest_axioms() {
        let text = sample().render();
        assert!(text.contains("1/2 killed (50.0%)"), "{text}");
        assert!(text.contains("Survivors: b"), "{text}");
        assert!(text.contains("PO_Fetch"), "{text}");
        assert!(text.contains("<- weakest"), "{text}");
    }

    #[test]
    fn json_lists_survivors_by_name() {
        let v = sample().to_json();
        let text = v.render();
        assert!(text.contains("\"survivors\":[\"b\"]"), "{text}");
        assert!(text.contains("\"verdict\":\"killed\""), "{text}");
        assert!(text.contains("\"backend\":\"explicit\""), "{text}");
        let parsed = Json::parse(&text).unwrap();
        assert_eq!(
            parsed.get("score_pct").and_then(Json::as_u64),
            Some(50),
            "{text}"
        );
    }
}

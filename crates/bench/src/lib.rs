//! Shared harness for regenerating the RTLCheck paper's tables and figures.
//!
//! Each binary in `src/bin/` regenerates one artifact of the paper's
//! evaluation (§7):
//!
//! | Binary          | Paper artifact                                          |
//! |-----------------|---------------------------------------------------------|
//! | `table1`        | Table 1 — engine configurations                         |
//! | `figure12`      | §7.1/Fig. 12 — the V-scale store-drop bug               |
//! | `figure13`      | Fig. 13 — runtime to verification, 56 tests × 2 configs |
//! | `figure14`      | Fig. 14 — % fully-proven properties per test            |
//! | `summary_stats` | §7.2 — aggregate statistics                             |
//! | `ablations`     | §3.2–3.4 — naive-translation failure demonstrations     |
//!
//! The shared [`run_suite`] entry point runs the full flow for every litmus
//! test in the suite under one configuration and collects the per-test
//! numbers the figures plot.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Duration;

use rtlcheck_core::{Rtlcheck, TestReport};
use rtlcheck_litmus::{suite, LitmusTest};
pub use rtlcheck_obs::json::Json;
use rtlcheck_obs::{
    attrs, progress::UNIT_DONE, BufferCollector, Collector, MultiCollector, NullCollector,
    TrackSink,
};
use rtlcheck_rtl::multi_vscale::MemoryImpl;
use rtlcheck_verif::{GraphCache, VerifyConfig};

pub mod bench;
pub mod composed;
pub mod fuzz;
pub mod mutation;
pub mod serve;

/// One row of the per-test results (one bar of Figures 13/14).
#[derive(Debug, Clone)]
pub struct TestRow {
    /// Litmus test name.
    pub test: String,
    /// Configuration name.
    pub config: String,
    /// Runtime to verification (Figure 13's y-axis).
    pub runtime: Duration,
    /// Properties completely proven.
    pub proven: usize,
    /// Total properties generated.
    pub total: usize,
    /// Whether the test verified through the unreachable-assumption fast
    /// path.
    pub by_assumptions: bool,
    /// Bounds of the bounded-only proofs.
    pub bounded_depths: Vec<u32>,
    /// Whether any violation was found (must be false on the fixed design).
    pub violated: bool,
}

impl TestRow {
    /// Percentage of fully proven properties (Figure 14's y-axis).
    pub fn proven_pct(&self) -> f64 {
        if self.total == 0 {
            100.0
        } else {
            100.0 * self.proven as f64 / self.total as f64
        }
    }

    /// Builds a row from a driver report.
    pub fn from_report(report: &TestReport) -> TestRow {
        TestRow {
            test: report.test.clone(),
            config: report.config.clone(),
            runtime: report.runtime_to_verification(),
            proven: report.num_proven(),
            total: report.properties.len(),
            by_assumptions: report.verified_by_assumptions(),
            bounded_depths: report.bounded_depths(),
            violated: report.bug_found(),
        }
    }

    /// Serializes the row as JSON (`runtime_us` carries the duration).
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("test", Json::Str(self.test.clone())),
            ("config", Json::Str(self.config.clone())),
            ("runtime_us", Json::Num(self.runtime.as_micros() as f64)),
            ("proven", Json::Num(self.proven as f64)),
            ("total", Json::Num(self.total as f64)),
            ("by_assumptions", Json::Bool(self.by_assumptions)),
            (
                "bounded_depths",
                Json::Arr(
                    self.bounded_depths
                        .iter()
                        .map(|&d| Json::Num(f64::from(d)))
                        .collect(),
                ),
            ),
            ("violated", Json::Bool(self.violated)),
        ])
    }

    /// Deserializes a row written by [`TestRow::to_json`].
    pub fn from_json(v: &Json) -> Result<TestRow, String> {
        let str_field = |k: &str| {
            v.get(k)
                .and_then(Json::as_str)
                .map(String::from)
                .ok_or(format!("missing `{k}`"))
        };
        let num_field = |k: &str| {
            v.get(k)
                .and_then(Json::as_u64)
                .ok_or(format!("missing `{k}`"))
        };
        let bool_field = |k: &str| {
            v.get(k)
                .and_then(Json::as_bool)
                .ok_or(format!("missing `{k}`"))
        };
        Ok(TestRow {
            test: str_field("test")?,
            config: str_field("config")?,
            runtime: Duration::from_micros(num_field("runtime_us")?),
            proven: num_field("proven")? as usize,
            total: num_field("total")? as usize,
            by_assumptions: bool_field("by_assumptions")?,
            bounded_depths: v
                .get("bounded_depths")
                .and_then(Json::as_arr)
                .ok_or("missing `bounded_depths`")?
                .iter()
                .map(|d| d.as_u64().map(|d| d as u32).ok_or("bad depth".to_string()))
                .collect::<Result<_, _>>()?,
            violated: bool_field("violated")?,
        })
    }
}

/// Results of one configuration over the whole suite.
#[derive(Debug, Clone)]
pub struct SuiteResults {
    /// Configuration name.
    pub config: String,
    /// Per-test rows, in Figure 13 order.
    pub rows: Vec<TestRow>,
}

impl SuiteResults {
    /// Overall fraction of properties completely proven.
    pub fn overall_proven_pct(&self) -> f64 {
        let proven: usize = self.rows.iter().map(|r| r.proven).sum();
        let total: usize = self.rows.iter().map(|r| r.total).sum();
        100.0 * proven as f64 / total.max(1) as f64
    }

    /// Mean of the per-test proven percentages (the paper reports both).
    pub fn mean_per_test_proven_pct(&self) -> f64 {
        self.rows.iter().map(TestRow::proven_pct).sum::<f64>() / self.rows.len().max(1) as f64
    }

    /// Mean bound of bounded-only proofs, across the suite.
    pub fn mean_bound(&self) -> Option<f64> {
        let all: Vec<u32> = self
            .rows
            .iter()
            .flat_map(|r| r.bounded_depths.iter().copied())
            .collect();
        if all.is_empty() {
            None
        } else {
            Some(all.iter().map(|&d| f64::from(d)).sum::<f64>() / all.len() as f64)
        }
    }

    /// Number of tests verified by the unreachable-assumption fast path.
    pub fn num_by_assumptions(&self) -> usize {
        self.rows.iter().filter(|r| r.by_assumptions).count()
    }

    /// Mean runtime-to-verification across the suite.
    pub fn mean_runtime(&self) -> Duration {
        let total: Duration = self.rows.iter().map(|r| r.runtime).sum();
        total / self.rows.len().max(1) as u32
    }

    /// Total runtime across the suite (the paper's "total CPU time").
    pub fn total_runtime(&self) -> Duration {
        self.rows.iter().map(|r| r.runtime).sum()
    }

    /// Serializes the results as JSON.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("config", Json::Str(self.config.clone())),
            (
                "rows",
                Json::Arr(self.rows.iter().map(TestRow::to_json).collect()),
            ),
        ])
    }
}

/// Runs every suite test under `config` on the given memory implementation.
pub fn run_suite(memory: MemoryImpl, config: &VerifyConfig) -> SuiteResults {
    run_suite_observed(memory, config, &NullCollector)
}

/// [`run_suite`] with instrumentation: every per-test Figure-7 phase
/// reports to `collector` (see `rtlcheck_core::Rtlcheck::check_test_observed`).
pub fn run_suite_observed(
    memory: MemoryImpl,
    config: &VerifyConfig,
    collector: &dyn Collector,
) -> SuiteResults {
    run_suite_jobs_observed(memory, config, 1, collector)
}

/// [`run_suite`] with `jobs` worker threads; see [`check_tests_observed`]
/// for the parallel execution and determinism contract.
pub fn run_suite_jobs(memory: MemoryImpl, config: &VerifyConfig, jobs: usize) -> SuiteResults {
    run_suite_jobs_observed(memory, config, jobs, &NullCollector)
}

/// [`run_suite_jobs`] with instrumentation.
pub fn run_suite_jobs_observed(
    memory: MemoryImpl,
    config: &VerifyConfig,
    jobs: usize,
    collector: &dyn Collector,
) -> SuiteResults {
    let reports = check_tests_observed(memory, &suite::all(), config, jobs, collector);
    SuiteResults {
        config: config.name.clone(),
        rows: reports.iter().map(TestRow::from_report).collect(),
    }
}

/// [`run_suite_jobs_observed`] through a [`GraphCache`]; see
/// [`check_tests_cached`].
pub fn run_suite_jobs_cached(
    memory: MemoryImpl,
    config: &VerifyConfig,
    jobs: usize,
    collector: &dyn Collector,
    cache: &GraphCache,
) -> SuiteResults {
    let reports = check_tests_cached(memory, &suite::all(), config, jobs, collector, cache);
    SuiteResults {
        config: config.name.clone(),
        rows: reports.iter().map(TestRow::from_report).collect(),
    }
}

/// Runs the full flow on each test with a pool of `jobs` worker threads
/// (self-scheduling over the test list; tests are independent, so no finer
/// decomposition is needed), returning the reports **in input order**.
///
/// Determinism contract: the returned reports and everything `collector`
/// observes are independent of `jobs`. Each worker records its test's
/// instrumentation into a private [`BufferCollector`]; once all workers
/// finish, the buffers are replayed into `collector` in input order, so the
/// collector sees exactly the stream a sequential run would have produced
/// (span durations are the workers' original measurements). The
/// observability invariants — counters summing to report totals, balanced
/// spans — therefore hold under any job count.
///
/// `jobs` ≤ 1 runs inline on the calling thread, reporting straight to
/// `collector` with no buffering.
pub fn check_tests_observed(
    memory: MemoryImpl,
    tests: &[LitmusTest],
    config: &VerifyConfig,
    jobs: usize,
    collector: &dyn Collector,
) -> Vec<TestReport> {
    check_tests_inner(
        &Rtlcheck::new(memory),
        tests,
        config,
        jobs,
        collector,
        None,
        &[],
    )
}

/// [`check_tests_observed`] through a cross-test [`GraphCache`]: each test's
/// state graph is requested from the cache (shared warm cores in memory,
/// optionally persisted on disk) instead of always being built cold.
///
/// The determinism contract extends to the cache: graph construction is
/// *build-once, read-many* — the first request of each distinct fingerprint
/// builds and publishes the core while concurrent same-key requests block —
/// so `graph_cache.*` counters are pure functions of the test list, not of
/// scheduling. The counters (and any corruption warnings) are reported to
/// `collector` here, once, after all per-test streams have been replayed.
pub fn check_tests_cached(
    memory: MemoryImpl,
    tests: &[LitmusTest],
    config: &VerifyConfig,
    jobs: usize,
    collector: &dyn Collector,
    cache: &GraphCache,
) -> Vec<TestReport> {
    let tool = Rtlcheck::new(memory);
    let reports = check_tests_inner(&tool, tests, config, jobs, collector, Some(cache), &[]);
    cache.report_to(collector);
    reports
}

/// [`check_tests_observed`] with a caller-configured [`Rtlcheck`] tool —
/// the entry point for non-default backends (`--backend symbolic`/`auto`)
/// or translation-option overrides, with the same worker-pool determinism
/// contract and optional [`GraphCache`].
pub fn check_tests_with(
    tool: &Rtlcheck,
    tests: &[LitmusTest],
    config: &VerifyConfig,
    jobs: usize,
    collector: &dyn Collector,
    cache: Option<&GraphCache>,
) -> Vec<TestReport> {
    check_tests_live(tool, tests, config, jobs, collector, cache, &[])
}

/// [`check_tests_with`] plus live side-channel sinks ([`TrackSink`]):
/// each worker additionally reports, as work happens and on its own track,
/// to every sink in `live` — this is how `--trace-out` sees the real
/// parallel schedule and `--progress` ticks in real time. The deterministic
/// stream into `collector` is unaffected: live sinks are *extra* receivers,
/// and the per-unit [`UNIT_DONE`] completion event goes **only** to them
/// (its arrival order depends on scheduling, so it must never enter the
/// buffered stream).
#[allow(clippy::too_many_arguments)]
pub fn check_tests_live(
    tool: &Rtlcheck,
    tests: &[LitmusTest],
    config: &VerifyConfig,
    jobs: usize,
    collector: &dyn Collector,
    cache: Option<&GraphCache>,
    live: &[&dyn TrackSink],
) -> Vec<TestReport> {
    let reports = check_tests_inner(tool, tests, config, jobs, collector, cache, live);
    if let Some(cache) = cache {
        cache.report_to(collector);
        let tracks: Vec<Box<dyn Collector + '_>> = live.iter().map(|s| s.track(0)).collect();
        for t in &tracks {
            cache.report_to(&**t);
        }
    }
    reports
}

fn check_tests_inner(
    tool: &Rtlcheck,
    tests: &[LitmusTest],
    config: &VerifyConfig,
    jobs: usize,
    collector: &dyn Collector,
    cache: Option<&GraphCache>,
    live: &[&dyn TrackSink],
) -> Vec<TestReport> {
    let check = |tool: &Rtlcheck, test: &LitmusTest, sink: &dyn Collector| match cache {
        Some(cache) => tool.check_test_cached(test, config, cache, sink),
        None => tool.check_test_observed(test, config, sink),
    };
    let workers = jobs.max(1).min(tests.len().max(1));
    if workers <= 1 {
        let tracks: Vec<Box<dyn Collector + '_>> = live.iter().map(|s| s.track(1)).collect();
        return tests
            .iter()
            .map(|t| {
                let report = {
                    let mut sinks: Vec<&dyn Collector> = vec![collector];
                    sinks.extend(tracks.iter().map(|b| &**b));
                    check(tool, t, &MultiCollector::new(sinks))
                };
                for track in &tracks {
                    track.event(UNIT_DONE, attrs!["test" => t.name()]);
                }
                report
            })
            .collect();
    }

    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<(TestReport, BufferCollector)>>> =
        tests.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        let (next, slots, check) = (&next, &slots, &check);
        for w in 0..workers {
            scope.spawn(move || {
                let tool = tool.clone();
                let tracks: Vec<Box<dyn Collector + '_>> =
                    live.iter().map(|s| s.track(w as u64 + 1)).collect();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(test) = tests.get(i) else { break };
                    let buf = BufferCollector::new();
                    let report = {
                        let mut sinks: Vec<&dyn Collector> = vec![&buf];
                        sinks.extend(tracks.iter().map(|b| &**b));
                        check(&tool, test, &MultiCollector::new(sinks))
                    };
                    for track in &tracks {
                        track.event(UNIT_DONE, attrs!["test" => test.name()]);
                    }
                    *slots[i].lock().unwrap_or_else(|e| e.into_inner()) = Some((report, buf));
                }
            });
        }
    });

    slots
        .into_iter()
        .map(|slot| {
            let (report, buf) = slot
                .into_inner()
                .unwrap_or_else(|e| e.into_inner())
                .expect("every test slot is filled once its worker finishes");
            buf.replay_into(collector);
            report
        })
        .collect()
}

/// Renders an ASCII bar chart: one row per `(label, value)`, scaled to
/// `width` columns, annotated with the formatted value.
pub fn bar_chart(items: &[(String, f64)], width: usize, unit: &str) -> String {
    let max = items.iter().map(|(_, v)| *v).fold(f64::EPSILON, f64::max);
    let label_w = items.iter().map(|(l, _)| l.len()).max().unwrap_or(4);
    let mut out = String::new();
    for (label, value) in items {
        let bar = "#".repeat(((value / max) * width as f64).round() as usize);
        out.push_str(&format!(
            "{label:label_w$} | {bar:width$} {value:.3}{unit}\n"
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(test: &str, proven: usize, total: usize, runtime_ms: u64) -> TestRow {
        TestRow {
            test: test.into(),
            config: "T".into(),
            runtime: Duration::from_millis(runtime_ms),
            proven,
            total,
            by_assumptions: false,
            bounded_depths: vec![],
            violated: false,
        }
    }

    #[test]
    fn aggregates() {
        let results = SuiteResults {
            config: "T".into(),
            rows: vec![row("a", 9, 10, 10), row("b", 5, 10, 30)],
        };
        assert!((results.overall_proven_pct() - 70.0).abs() < 1e-9);
        assert!((results.mean_per_test_proven_pct() - 70.0).abs() < 1e-9);
        assert_eq!(results.mean_runtime(), Duration::from_millis(20));
        assert_eq!(results.total_runtime(), Duration::from_millis(40));
        assert_eq!(results.mean_bound(), None);
    }

    #[test]
    fn bar_chart_scales() {
        let chart = bar_chart(&[("aa".into(), 1.0), ("b".into(), 2.0)], 10, "s");
        assert!(chart.contains("aa | #####"), "{chart}");
        assert!(chart.contains("b  | ##########"), "{chart}");
    }

    #[test]
    fn rows_round_trip_through_json() {
        let mut r = row("mp", 24, 24, 5);
        r.bounded_depths = vec![40, 210];
        let text = r.to_json().render();
        assert!(text.contains("\"test\":\"mp\""), "{text}");
        let back = TestRow::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back.test, "mp");
        assert_eq!(back.runtime, Duration::from_millis(5));
        assert_eq!(back.bounded_depths, vec![40, 210]);
        assert!(TestRow::from_json(&Json::parse("{}").unwrap()).is_err());
    }
}

//! Regenerates Table 1: the engine configurations used for verification.
//!
//! The paper's configurations budget JasperGold engine *time* (1 h covering
//! traces + 10 h proof engines); this reproduction budgets the explicit-state
//! verifier's *product states*, calibrated to land at the same points of the
//! per-property difficulty distribution (see EXPERIMENTS.md).

use rtlcheck_verif::{EngineKind, VerifyConfig};

fn main() {
    println!("Table 1: verifier configurations\n");
    println!(
        "{:<11} {:<28} {:<30} {:<12}",
        "Config", "Covering-trace run", "Proof engine runs", "Budget/prop"
    );
    for config in [VerifyConfig::hybrid(), VerifyConfig::full_proof()] {
        let engines: Vec<String> = config
            .engines
            .iter()
            .map(|e| match e.kind {
                EngineKind::Bounded => {
                    format!("bounded(depth {})", e.max_depth.unwrap_or(0))
                }
                EngineKind::Full => "full-proof".to_string(),
            })
            .collect();
        let budget = config
            .engines
            .iter()
            .map(|e| format!("{}", e.max_states))
            .collect::<Vec<_>>()
            .join("+");
        println!(
            "{:<11} {:<28} {:<30} {:<12}",
            config.name,
            format!("full search, {} states", config.cover_max_states),
            engines.join(", "),
            format!("{budget} states"),
        );
    }
    println!("\nPaper: Hybrid = 1h autoprover + bounded/full engines (K I N AM AD, 9h),");
    println!("       Full_Proof = 1h cover + full engines (I N AM AD, 10h).");
}

//! Regenerates §7.1 / Figure 12: the store-drop bug RTLCheck found in the
//! V-scale memory implementation.
//!
//! Runs the mp litmus test against the *buggy* Multi-V-scale: the verifier
//! reports a counterexample for a Read_Values property and a covering trace
//! exhibiting the forbidden outcome; both are rendered as timing diagrams.
//! The fixed design is then shown to verify.

use rtlcheck_core::{CoverOutcome, Rtlcheck};
use rtlcheck_rtl::multi_vscale::MemoryImpl;
use rtlcheck_verif::VerifyConfig;

const FIG12_SIGNALS: &[&str] = &[
    "arbiter_grant",
    "core0_PC_DX",
    "core0_PC_WB",
    "core0_store_data_WB",
    "core1_PC_DX",
    "core1_PC_WB",
    "core1_load_data_WB",
    "mem_wdata",
    "mem_waddr",
    "mem_wpending",
    "mem_0",
    "mem_1",
];

fn main() {
    let mp = rtlcheck_litmus::suite::get("mp").unwrap();
    let config = VerifyConfig::quick();

    println!("=== mp on the BUGGY V-scale memory (§7.1) ===\n");
    let tool = Rtlcheck::new(MemoryImpl::Buggy);
    let mv = tool.build_design(&mp);
    let report = tool.check_test(&mp, &config);
    assert!(report.bug_found(), "the buggy memory must violate mp");

    if let CoverOutcome::BugWitness(trace) = &report.cover {
        println!(
            "covering trace: the forbidden outcome (r1 = 1, r2 = 0) IS observable ({} cycles)\n",
            trace.len()
        );
        println!("{}", trace.render(&mv.design, FIG12_SIGNALS));
    }
    if let Some((name, trace)) = report.first_counterexample() {
        println!("counterexample for property `{name}` (Figure 12):\n");
        println!("{}", trace.render(&mv.design, FIG12_SIGNALS));
        println!("Diagnosis: two stores reach memory in successive cycles; the second");
        println!("transaction pushes `mem_wdata` to memory *before* it has captured the");
        println!("first store's data, so the store of x is dropped (mem_0 stays 0) and");
        println!("the load of x later returns 0 while the load of y is bypassed as 1.\n");
    }

    println!("=== mp on the FIXED memory ===\n");
    let report = Rtlcheck::new(MemoryImpl::Fixed).check_test(&mp, &config);
    assert!(report.verified(), "the fixed memory must verify mp");
    println!("{report}");
}

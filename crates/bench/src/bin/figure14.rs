//! Regenerates Figure 14: percentage of fully proven properties for all 56
//! litmus tests under both configurations.

use rtlcheck_bench::run_suite;
use rtlcheck_rtl::multi_vscale::MemoryImpl;
use rtlcheck_verif::VerifyConfig;

fn main() {
    let hybrid = run_suite(MemoryImpl::Fixed, &VerifyConfig::hybrid());
    let full = run_suite(MemoryImpl::Fixed, &VerifyConfig::full_proof());

    println!("Figure 14: % fully proven properties (fixed Multi-V-scale, 56 tests)\n");
    println!(
        "{:<12} {:>8} {:>11} {:>7}",
        "test", "Hybrid", "Full_Proof", "#props"
    );
    for (h, f) in hybrid.rows.iter().zip(&full.rows) {
        println!(
            "{:<12} {:>7.1}% {:>10.1}% {:>7}",
            h.test,
            h.proven_pct(),
            f.proven_pct(),
            h.total
        );
    }
    println!(
        "\nPer-test mean:  Hybrid {:.1}%  Full_Proof {:.1}%   (paper: 81% / 90%)",
        hybrid.mean_per_test_proven_pct(),
        full.mean_per_test_proven_pct()
    );
    println!(
        "Overall:        Hybrid {:.1}%  Full_Proof {:.1}%   (paper: 81% / 89%)",
        hybrid.overall_proven_pct(),
        full.overall_proven_pct()
    );
}

//! Demonstrates the §3 naive-translation failure modes as ablations.
//!
//! Each ablation flips one of the Assertion Generator's three translation
//! decisions and shows the resulting miscompilation:
//!
//! * §3.2 naive outcome: spurious counterexamples on the CORRECT design;
//! * §3.3 naive edges:   the V-scale bug's violation goes UNDETECTED;
//! * §3.4 unguarded:     spurious counterexamples from late match attempts.

use rtlcheck_core::{AssertionOptions, Rtlcheck};
use rtlcheck_rtl::multi_vscale::MemoryImpl;
use rtlcheck_verif::VerifyConfig;

fn main() {
    let mp = rtlcheck_litmus::suite::get("mp").unwrap();
    let config = VerifyConfig::quick();
    println!("Ablations of the assertion generator on mp\n");
    println!(
        "{:<28} {:<10} {:>9} {:>10}",
        "translation", "design", "falsified", "expected"
    );
    let cases: [(&str, AssertionOptions, MemoryImpl, &str); 5] = [
        (
            "paper (outcome-aware)",
            AssertionOptions::paper(),
            MemoryImpl::Fixed,
            "0",
        ),
        (
            "paper (outcome-aware)",
            AssertionOptions::paper(),
            MemoryImpl::Buggy,
            ">0",
        ),
        (
            "naive outcome (§3.2)",
            AssertionOptions::naive_outcome(),
            MemoryImpl::Fixed,
            ">0 (spurious)",
        ),
        (
            "naive edges (§3.3)",
            AssertionOptions::naive_edges(),
            MemoryImpl::Buggy,
            "0 (missed!)",
        ),
        (
            "unguarded (§3.4)",
            AssertionOptions::unguarded(),
            MemoryImpl::Fixed,
            ">0 (spurious)",
        ),
    ];
    for (name, options, memory, expected) in cases {
        let tool = Rtlcheck::new(memory).with_options(options);
        let report = tool.check_test(&mp, &config);
        let falsified = report
            .properties
            .iter()
            .filter(|p| p.verdict.is_falsified())
            .count();
        println!(
            "{:<28} {:<10} {:>9} {:>10}",
            name,
            format!("{memory:?}"),
            falsified,
            expected
        );
    }
    println!("\nOnly the paper's translation is both sound (no spurious failures on the");
    println!("fixed design) and effective (catches the bug on the buggy design).");
}

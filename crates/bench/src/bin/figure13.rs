//! Regenerates Figure 13: runtime to verification for all 56 litmus tests
//! under both configurations, on the fixed Multi-V-scale design.
//!
//! Pass `--json <path>` to also dump the rows as JSON.

use rtlcheck_bench::{bar_chart, run_suite};
use rtlcheck_rtl::multi_vscale::MemoryImpl;
use rtlcheck_verif::VerifyConfig;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let json_path = args
        .iter()
        .position(|a| a == "--json")
        .and_then(|i| args.get(i + 1))
        .cloned();

    let hybrid = run_suite(MemoryImpl::Fixed, &VerifyConfig::hybrid());
    let full = run_suite(MemoryImpl::Fixed, &VerifyConfig::full_proof());

    println!("Figure 13: runtime to verification (fixed Multi-V-scale, 56 tests)\n");
    println!(
        "{:<12} {:>14} {:>14}   (verified-by-assumptions marked *)",
        "test", "Hybrid", "Full_Proof"
    );
    for (h, f) in hybrid.rows.iter().zip(&full.rows) {
        assert_eq!(h.test, f.test);
        println!(
            "{:<12} {:>12.3}ms{} {:>12.3}ms{}",
            h.test,
            h.runtime.as_secs_f64() * 1e3,
            if h.by_assumptions { "*" } else { " " },
            f.runtime.as_secs_f64() * 1e3,
            if f.by_assumptions { "*" } else { " " },
        );
    }
    println!(
        "\nMean runtime: Hybrid {:.3}ms, Full_Proof {:.3}ms (paper: 6.2h per test for both)",
        hybrid.mean_runtime().as_secs_f64() * 1e3,
        full.mean_runtime().as_secs_f64() * 1e3
    );
    println!(
        "Total runtime: Hybrid {:.3}s, Full_Proof {:.3}s (paper: 1733h / 1390h CPU)",
        hybrid.total_runtime().as_secs_f64(),
        full.total_runtime().as_secs_f64()
    );

    let items: Vec<(String, f64)> = hybrid
        .rows
        .iter()
        .map(|r| (r.test.clone(), r.runtime.as_secs_f64() * 1e3))
        .collect();
    println!(
        "\nHybrid runtime profile (ms):\n{}",
        bar_chart(&items, 50, "ms")
    );

    if let Some(path) = json_path {
        let all = rtlcheck_bench::Json::Arr(
            hybrid
                .rows
                .iter()
                .chain(&full.rows)
                .map(|r| r.to_json())
                .collect(),
        );
        std::fs::write(&path, all.pretty() + "\n").expect("write JSON output");
        println!("rows written to {path}");
    }
}

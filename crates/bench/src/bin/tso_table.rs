//! TSO classification table (extension beyond the paper's evaluation).
//!
//! For every suite test plus the fenced variants: the outcome's
//! observability under the operational x86-TSO oracle and on the
//! Multi-V-scale-TSO RTL, plus the TSO-axiom proof status — the three
//! columns must tell one coherent story.

use rtlcheck_core::{CoverOutcome, Rtlcheck};
use rtlcheck_litmus::{fenced, suite, tso};
use rtlcheck_verif::VerifyConfig;

fn main() {
    let tool = Rtlcheck::tso();
    let config = VerifyConfig::quick();
    println!("TSO classification (Multi-V-scale-TSO, TSO µspec axioms)\n");
    println!(
        "{:<20} {:>12} {:>12} {:>14}",
        "test", "oracle", "RTL", "axioms"
    );
    let mut relaxed = 0;
    let tests = suite::all().into_iter().chain(fenced::all());
    for test in tests {
        let oracle = tso::observable(&test);
        let report = tool.check_test(&test, &config);
        let rtl = matches!(report.cover, CoverOutcome::BugWitness(_));
        let falsified = report
            .properties
            .iter()
            .filter(|p| p.verdict.is_falsified())
            .count();
        let axioms = if falsified == 0 { "hold" } else { "VIOLATED" };
        println!(
            "{:<20} {:>12} {:>12} {:>14}",
            test.name(),
            if oracle { "observable" } else { "forbidden" },
            if rtl { "observable" } else { "unreachable" },
            axioms,
        );
        assert_eq!(oracle, rtl, "{}: oracle/RTL disagreement", test.name());
        assert_eq!(falsified, 0, "{}: TSO axiom falsified", test.name());
        relaxed += usize::from(oracle);
    }
    println!("\n{relaxed} outcomes are TSO-relaxed; every verdict agrees with the oracle.");
    println!("Note `sb` vs `sb+fences` and the one-sided-fence pitfall.");
}

//! Regenerates the §7.2 aggregate statistics: proven-property percentages,
//! average bounded-proof depths, assumption-fast-path counts, and runtimes.

use rtlcheck_bench::run_suite;
use rtlcheck_rtl::multi_vscale::MemoryImpl;
use rtlcheck_verif::VerifyConfig;

fn main() {
    println!("§7.2 summary statistics (fixed Multi-V-scale, 56-test suite)\n");
    println!(
        "{:<28} {:>12} {:>12} {:>16}",
        "metric", "Hybrid", "Full_Proof", "paper (H / FP)"
    );
    let hybrid = run_suite(MemoryImpl::Fixed, &VerifyConfig::hybrid());
    let full = run_suite(MemoryImpl::Fixed, &VerifyConfig::full_proof());
    let row = |name: &str, h: String, f: String, paper: &str| {
        println!("{name:<28} {h:>12} {f:>12} {paper:>16}");
    };
    row(
        "properties proven (overall)",
        format!("{:.1}%", hybrid.overall_proven_pct()),
        format!("{:.1}%", full.overall_proven_pct()),
        "81% / 89%",
    );
    row(
        "properties proven (per test)",
        format!("{:.1}%", hybrid.mean_per_test_proven_pct()),
        format!("{:.1}%", full.mean_per_test_proven_pct()),
        "81% / 90%",
    );
    row(
        "avg bounded-proof depth",
        hybrid
            .mean_bound()
            .map_or("-".into(), |b| format!("{b:.1}")),
        full.mean_bound().map_or("-".into(), |b| format!("{b:.1}")),
        "43 / 22 cycles",
    );
    row(
        "tests verified by assumptions",
        format!("{}/56", hybrid.num_by_assumptions()),
        format!("{}/56", full.num_by_assumptions()),
        "22 / 22",
    );
    row(
        "mean runtime per test",
        format!("{:.2}ms", hybrid.mean_runtime().as_secs_f64() * 1e3),
        format!("{:.2}ms", full.mean_runtime().as_secs_f64() * 1e3),
        "6.2h / 6.2h",
    );
    row(
        "violations on fixed design",
        hybrid
            .rows
            .iter()
            .filter(|r| r.violated)
            .count()
            .to_string(),
        full.rows.iter().filter(|r| r.violated).count().to_string(),
        "0 / 0",
    );
    let props = hybrid.rows.iter().map(|r| r.total).sum::<usize>();
    println!("\ntotal properties generated: {props} across 56 tests");
}

//! The `composed` bench workload: flat-vs-modular graph construction on
//! the scaled hub-and-lanes design ([`rtlcheck_rtl::scaled`]).
//!
//! The workload isolates exactly the cost the composed backend attacks —
//! warm graph construction — on a design with ≥2× Multi-V-scale's cone
//! count. Each iteration builds the full warm state graph of the scaled
//! design under one property per lane (plus a pruning input assumption),
//! using whichever backend the bench case selects; verdicts and graph
//! cores are byte-identical across backends, so the timed difference is
//! pure construction cost. `rtlcheck bench --workload composed --backend
//! explicit,composed` produces the EXPERIMENTS.md comparison pair.

use rtlcheck_obs::{attrs, span, Collector};
use rtlcheck_rtl::scaled;
use rtlcheck_rtl::Design;
use rtlcheck_sva::Prop;
use rtlcheck_sva::SvaBool;
use rtlcheck_verif::{
    Backend, BackendChoice, BackendKind, ComposedGraph, Engine, Problem, RtlAtom, StateGraph,
    SymbolicGraph,
};

/// Builds the scaled design and its per-lane property set: one `Never`
/// assertion per lane (each pinned to that lane's region), one on the hub,
/// and a `Never(op == 3)` assumption that prunes a quarter of every edge
/// row — so composition has real per-region atoms, monitors, and pruning
/// to reproduce, not just next-state functions.
pub fn scaled_problem(lanes: usize) -> (Design, Vec<Prop<RtlAtom>>) {
    let design = scaled::build(lanes);
    let hub = design.signal_by_name("hub").expect("scaled design has hub");
    let mut props = vec![Prop::Never(SvaBool::atom(RtlAtom::eq(hub, 255)))];
    for j in 0..lanes {
        let lane = design
            .signal_by_name(&format!("lane{j:03}"))
            .expect("scaled design names its lanes");
        props.push(Prop::Never(SvaBool::atom(RtlAtom::eq(lane, 15))));
    }
    (design, props)
}

/// Runs one iteration of the `composed` bench workload: build the warm
/// state graph of the scaled design on the chosen backend, reporting the
/// build span and the graph's counters (including `composed.*` when the
/// modular backend ran) to `collector`.
///
/// The composed backend is exercised through the same resolve-or-fallback
/// path as the real flow: a non-decomposable problem would build flat and
/// count `composed.fallback` rather than fail the bench.
pub fn run_composed_build(
    choice: BackendChoice,
    lanes: usize,
    engine: Engine,
    collector: &dyn Collector,
) {
    let (design, props) = scaled_problem(lanes);
    let mut problem = Problem::new(&design);
    let op = design.signal_by_name("op").expect("scaled design has op");
    problem.assumptions.push(rtlcheck_verif::Directive::assume(
        "op_bounded",
        Prop::Never(SvaBool::atom(RtlAtom::eq(op, 3))),
    ));
    let kind = choice.resolve(&design);
    let mut g = span(collector, "graph_build", attrs!["test" => "scaled"]);
    g.attr("backend", kind.label());
    collector.counter(
        &format!("backend.{}", kind.label()),
        1,
        attrs!["test" => "scaled"],
    );
    match kind {
        BackendKind::Composed => match ComposedGraph::build(&problem, props.iter(), engine) {
            Ok(graph) => graph.report_to(collector),
            Err(fb) => {
                g.attr("fallback", "explicit");
                collector.counter(
                    "composed.fallback",
                    1,
                    attrs!["test" => "scaled", "reason" => fb.reason()],
                );
                StateGraph::build(&problem, props.iter(), engine).report_to(collector);
            }
        },
        BackendKind::Symbolic => {
            SymbolicGraph::build(&problem, props.iter(), engine).report_to(collector);
        }
        BackendKind::Explicit => {
            StateGraph::build(&problem, props.iter(), engine).report_to(collector);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtlcheck_obs::MetricsCollector;

    /// A small lane count keeps the test fast; the workload itself runs
    /// with [`scaled::DEFAULT_LANES`].
    const LANES: usize = 8;

    #[test]
    fn composed_workload_decomposes_and_matches_flat() {
        let (design, props) = scaled_problem(LANES);
        let problem = Problem::new(&design);
        let composed = ComposedGraph::build(&problem, props.iter(), Engine::full(100_000))
            .expect("scaled design decomposes");
        assert_eq!(composed.regions(), LANES + 1, "hub + one region per lane");
        let flat = StateGraph::build(&problem, props.iter(), Engine::full(100_000));
        assert_eq!(composed.snapshot(), flat.snapshot(), "byte-identical core");
    }

    #[test]
    fn run_composed_build_reports_backend_and_composition_counters() {
        let collector = MetricsCollector::new();
        run_composed_build(
            BackendChoice::Composed,
            LANES,
            Engine::full(100_000),
            &collector,
        );
        let summary = collector.summary();
        assert!(summary.counter("backend.composed").is_some());
        assert_eq!(
            summary.counter("composed.regions").map(|c| c.total),
            Some(LANES as u64 + 1)
        );
        assert!(summary.counter("composed.fallback").is_none());

        let collector = MetricsCollector::new();
        run_composed_build(
            BackendChoice::Explicit,
            LANES,
            Engine::full(100_000),
            &collector,
        );
        let summary = collector.summary();
        assert!(summary.counter("backend.explicit").is_some());
        assert!(summary.counter("composed.regions").is_none());
    }
}

//! The fuzzing campaign: generate litmus tests from random critical
//! cycles by the hundred-thousand, dedup them by canonical cycle shape,
//! triage every unique shape with the polynomial consistency oracle, and
//! escalate the interesting survivors to the full RTL engine.
//!
//! Roy et al.'s polynomial-time MCM checking and QED's litmus-free
//! validation argue the same division of labour this module implements:
//! an `O(n·log n)` axiomatic check ([`rtlcheck_litmus::oracle`]) settles
//! the overwhelming majority of generated outcomes, and the expensive
//! NFA-walk engine runs only on shapes that are *novel* (high-frequency
//! representatives), *undecided* (the oracle returned
//! [`Verdict::Unknown`]), or *alarming* (an SC-observable outcome from a
//! generator whose every product must be SC-forbidden — a generator
//! soundness violation).
//!
//! ## Pipeline
//!
//! 1. **Generate** — a seeded loop over [`diy::random_cycle`] /
//!    [`diy::generate`] samples `count` cycles of length
//!    `min_len..=max_len`.
//! 2. **Dedup** — each cycle canonicalises to its
//!    [`diy::CycleSignature`] (rotation/reflection-invariant); only the
//!    first spelling of a shape is kept, later hits just bump its count.
//! 3. **Triage** — the oracle checks every unique shape under SC and
//!    under the design's model, and names the axioms a forbidden outcome
//!    exercises (the kill-matrix analogue: dropping the axiom flips the
//!    verdict).
//! 4. **Escalate** — mandatory escalations (unknown / violation) plus the
//!    most frequent remaining shapes, up to the escalation budget, are
//!    bucketed by graph-cache fingerprint
//!    ([`Rtlcheck::problem_fingerprint`]) and each bucket runs the full
//!    engine **once**; every shape in the bucket shares the verdict.
//!
//! ## Determinism
//!
//! Generation and triage are sequential and seeded; the engine phase runs
//! on the suite runner's self-scheduling pool over the flat bucket list
//! with per-item [`BufferCollector`]s replayed in input order, and the
//! campaign's `fuzz.*` counters are emitted after all replays. The report
//! carries no timing data, so its text and JSON renderings are
//! byte-identical across `--jobs` values and with or without a graph
//! cache.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rtlcheck_core::{Rtlcheck, TestReport};
use rtlcheck_litmus::diy::{self, CycleSignature, Edge};
use rtlcheck_litmus::oracle::{self, Model, Verdict};
use rtlcheck_litmus::LitmusTest;
use rtlcheck_obs::json::Json;
use rtlcheck_obs::{
    attrs, progress::UNIT_DONE, BufferCollector, Collector, MultiCollector, TrackSink,
};
use rtlcheck_rtl::multi_vscale::MemoryImpl;
use rtlcheck_verif::{BackendChoice, GraphCache, VerifyConfig};

/// The largest litmus test the Multi-V-scale design accommodates; shapes
/// with more cores are triaged by the oracle but cannot be escalated.
pub const MAX_DESIGN_CORES: usize = 4;

/// Campaign parameters.
#[derive(Debug, Clone)]
pub struct FuzzOptions {
    /// How many cycles to sample.
    pub count: usize,
    /// RNG seed; same seed, same campaign.
    pub seed: u64,
    /// The design variant escalations run against; also selects the
    /// oracle's design model ([`Model::Tso`] for [`MemoryImpl::Tso`],
    /// [`Model::Sc`] otherwise).
    pub memory: MemoryImpl,
    /// Worker threads for the engine phase (≤ 1 runs inline).
    pub jobs: usize,
    /// Reachable-set backend for escalated checks.
    pub backend: BackendChoice,
    /// Smallest cycle length sampled.
    pub min_len: usize,
    /// Largest cycle length sampled.
    pub max_len: usize,
    /// Engine escalations beyond the mandatory ones (unknown verdicts and
    /// generator violations always escalate). `None` means a tenth of the
    /// unique shapes, at least one.
    pub escalate_budget: Option<usize>,
}

impl FuzzOptions {
    /// Default campaign on `memory`: 10k samples of length 3..=6, seed 0,
    /// sequential, automatic escalation budget.
    pub fn new(memory: MemoryImpl) -> Self {
        FuzzOptions {
            count: 10_000,
            seed: 0,
            memory,
            jobs: 1,
            backend: BackendChoice::default(),
            min_len: 3,
            max_len: 6,
            escalate_budget: None,
        }
    }

    /// The oracle model matching the design variant.
    pub fn model(&self) -> Model {
        match self.memory {
            MemoryImpl::Tso => Model::Tso,
            MemoryImpl::Buggy | MemoryImpl::Fixed => Model::Sc,
        }
    }
}

/// Why a shape was (or was not) handed to the engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Escalation {
    /// Triage settled it; the budget did not reach it.
    OracleOnly,
    /// The oracle returned [`Verdict::Unknown`] under the design model.
    Unknown,
    /// The shape is SC-observable — every diy product must be
    /// SC-forbidden, so this is a generator soundness violation.
    Violation,
    /// Escalated as a high-frequency representative within the budget.
    Budget,
    /// The test needs more cores than the design has; not escalatable.
    BeyondDesign,
}

impl Escalation {
    /// Stable lower-snake label (reports and JSON).
    pub fn label(self) -> &'static str {
        match self {
            Escalation::OracleOnly => "oracle_only",
            Escalation::Unknown => "unknown",
            Escalation::Violation => "violation",
            Escalation::Budget => "budget",
            Escalation::BeyondDesign => "beyond_design",
        }
    }

    fn escalates(self) -> bool {
        matches!(
            self,
            Escalation::Unknown | Escalation::Violation | Escalation::Budget
        )
    }
}

/// One unique shape's campaign result.
#[derive(Debug, Clone)]
pub struct ShapeResult {
    /// Canonical cycle, diy-style (`"PodWR Fre PodWR Fre"`).
    pub signature: String,
    /// Classic litmus name when the shape is a well-known one.
    pub known_name: Option<&'static str>,
    /// Cycle length.
    pub len: usize,
    /// Cores the generated test needs.
    pub cores: usize,
    /// How many sampled cycles canonicalised to this shape.
    pub count: usize,
    /// Oracle verdict under SC.
    pub sc_verdict: Verdict,
    /// Oracle verdict under the design model.
    pub design_verdict: Verdict,
    /// Axioms the (forbidden) outcome exercises under the design model.
    pub axioms: Vec<&'static str>,
    /// Why the shape did or did not escalate.
    pub escalation: Escalation,
    /// Index into [`FuzzReport::bucket_sizes`] when escalated.
    pub bucket: Option<usize>,
    /// Engine verdict (`bug` / `clean` / `inconclusive`) when escalated.
    pub engine: Option<&'static str>,
    /// Oracle/engine agreement when escalated: `agree`, `disagree`,
    /// `resolved` (the engine settled an unknown), or `inconclusive`.
    pub agreement: Option<&'static str>,
}

/// The campaign's aggregate result.
#[derive(Debug, Clone)]
pub struct FuzzReport {
    /// RNG seed.
    pub seed: u64,
    /// Cycles requested.
    pub requested: usize,
    /// Design variant label.
    pub memory: String,
    /// Oracle design model.
    pub model: Model,
    /// Verification configuration name.
    pub config: String,
    /// Resolved backend label for escalated checks (`-` if none ran).
    pub backend: String,
    /// Sampled length range, inclusive.
    pub len_range: (usize, usize),
    /// Cycles that failed to sample (no well-formed cycle found).
    pub sample_failures: usize,
    /// Cycles that mapped to an already-seen shape.
    pub duplicates: usize,
    /// The effective escalation budget (mandatory escalations excluded).
    pub escalate_budget: usize,
    /// Unique shapes, in first-seen order.
    pub shapes: Vec<ShapeResult>,
    /// Axiom columns of the exercise matrix (the design model's axioms).
    pub axioms: Vec<&'static str>,
    /// Escalated shapes per engine bucket, in first-run order.
    pub bucket_sizes: Vec<usize>,
}

impl FuzzReport {
    /// Cycles that sampled and generated successfully.
    pub fn generated(&self) -> usize {
        self.requested - self.sample_failures
    }

    /// Shapes the oracle fully decided (no `Unknown` under either model).
    pub fn oracle_resolved(&self) -> usize {
        self.shapes
            .iter()
            .filter(|s| s.sc_verdict != Verdict::Unknown && s.design_verdict != Verdict::Unknown)
            .count()
    }

    /// [`oracle_resolved`](Self::oracle_resolved) as a percentage of the
    /// unique shapes.
    pub fn oracle_resolved_pct(&self) -> f64 {
        100.0 * self.oracle_resolved() as f64 / self.shapes.len().max(1) as f64
    }

    /// Duplicates as a percentage of generated tests.
    pub fn dedup_pct(&self) -> f64 {
        100.0 * self.duplicates as f64 / self.generated().max(1) as f64
    }

    fn design_verdicts(&self, v: Verdict) -> usize {
        self.shapes.iter().filter(|s| s.design_verdict == v).count()
    }

    /// Shapes handed to the engine.
    pub fn escalated(&self) -> usize {
        self.shapes
            .iter()
            .filter(|s| s.escalation.escalates())
            .count()
    }

    /// Shapes too wide for the design (never escalatable).
    pub fn beyond_design(&self) -> usize {
        self.shapes
            .iter()
            .filter(|s| s.escalation == Escalation::BeyondDesign)
            .count()
    }

    /// Generator soundness violations (SC-observable shapes). Must be
    /// zero; anything else is a diy bug.
    pub fn violations(&self) -> usize {
        self.shapes
            .iter()
            .filter(|s| s.sc_verdict == Verdict::Observable)
            .count()
    }

    fn agreement_count(&self, which: &str) -> usize {
        self.shapes
            .iter()
            .filter(|s| s.agreement == Some(which))
            .count()
    }

    /// Escalated shapes whose engine verdict confirmed the oracle's.
    pub fn agreements(&self) -> usize {
        self.agreement_count("agree")
    }

    /// Escalated shapes whose engine verdict contradicted the oracle's.
    pub fn disagreements(&self) -> usize {
        self.agreement_count("disagree")
    }

    /// Escalated shapes the engine could not decide within budget.
    pub fn engine_inconclusive(&self) -> usize {
        self.agreement_count("inconclusive")
    }

    /// How many shapes exercise each axiom of the design model — the
    /// exercise matrix marginals, in [`FuzzReport::axioms`] order.
    pub fn axiom_exercise_counts(&self) -> Vec<(&'static str, usize)> {
        self.axioms
            .iter()
            .map(|&a| {
                let shapes = self.shapes.iter().filter(|s| s.axioms.contains(&a)).count();
                (a, shapes)
            })
            .collect()
    }

    /// Axioms no generated shape exercises — where the campaign's
    /// coverage of the model is blind.
    pub fn weakest_axioms(&self) -> Vec<&'static str> {
        self.axiom_exercise_counts()
            .into_iter()
            .filter(|&(_, n)| n == 0)
            .map(|(a, _)| a)
            .collect()
    }

    /// Shapes sorted by frequency (descending), first-seen order breaking
    /// ties.
    fn by_frequency(&self) -> Vec<&ShapeResult> {
        let mut order: Vec<(usize, &ShapeResult)> = self.shapes.iter().enumerate().collect();
        order.sort_by(|(ia, a), (ib, b)| b.count.cmp(&a.count).then(ia.cmp(ib)));
        order.into_iter().map(|(_, s)| s).collect()
    }

    /// Renders the text report. Contains no timing data, so the output is
    /// byte-identical across job counts.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        const TOP: usize = 20;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "Fuzz campaign: memory {}, model {} (seed {}, {} cycles requested, config {})",
            self.memory,
            self.model.label(),
            self.seed,
            self.requested,
            self.config
        );
        let _ = writeln!(out);
        let _ = writeln!(
            out,
            "  generated  {} tests, lengths {}..={} ({} sampling failures)",
            self.generated(),
            self.len_range.0,
            self.len_range.1,
            self.sample_failures
        );
        let _ = writeln!(
            out,
            "  unique     {} shapes ({} duplicates, {:.2}% dedup)",
            self.shapes.len(),
            self.duplicates,
            self.dedup_pct()
        );
        let _ = writeln!(
            out,
            "  oracle     {}/{} resolved ({:.1}%): {} forbidden, {} observable, {} unknown under {}",
            self.oracle_resolved(),
            self.shapes.len(),
            self.oracle_resolved_pct(),
            self.design_verdicts(Verdict::Forbidden),
            self.design_verdicts(Verdict::Observable),
            self.design_verdicts(Verdict::Unknown),
            self.model.label()
        );
        let _ = writeln!(
            out,
            "  escalated  {} shapes in {} engine buckets (budget {}, backend {}): \
             {} agree, {} disagree, {} inconclusive",
            self.escalated(),
            self.bucket_sizes.len(),
            self.escalate_budget,
            self.backend,
            self.agreements(),
            self.disagreements(),
            self.engine_inconclusive()
        );
        if self.beyond_design() > 0 {
            let _ = writeln!(
                out,
                "  beyond     {} shapes need more than {MAX_DESIGN_CORES} cores (oracle-only)",
                self.beyond_design()
            );
        }
        if self.violations() > 0 {
            let _ = writeln!(
                out,
                "  VIOLATION  {} SC-observable shapes — diy generator soundness bug",
                self.violations()
            );
        }
        let _ = writeln!(out);
        let _ = writeln!(out, "Shapes (by frequency):");
        let _ = writeln!(
            out,
            "  {:>7}  {:<3} {:<5} {:<10} {:<10} {:<7} shape",
            "count",
            "len",
            "cores",
            "sc",
            self.model.label(),
            "engine"
        );
        let ranked = self.by_frequency();
        for s in ranked.iter().take(TOP) {
            let name = s.known_name.map(|n| format!(" ({n})")).unwrap_or_default();
            let _ = writeln!(
                out,
                "  {:>7}  {:<3} {:<5} {:<10} {:<10} {:<7} {}{}",
                s.count,
                s.len,
                s.cores,
                s.sc_verdict.label(),
                s.design_verdict.label(),
                s.engine.unwrap_or("-"),
                s.signature,
                name
            );
        }
        if ranked.len() > TOP {
            let _ = writeln!(out, "  ... and {} more shapes", ranked.len() - TOP);
        }
        let _ = writeln!(out);
        let _ = writeln!(
            out,
            "Axiom exercise matrix (shapes exercising each {} axiom):",
            self.model.label()
        );
        let width = self
            .axioms
            .iter()
            .map(|a| a.len())
            .max()
            .unwrap_or(5)
            .max(5);
        for (axiom, n) in self.axiom_exercise_counts() {
            let mark = if n == 0 { "  <- weakest" } else { "" };
            let _ = writeln!(out, "  {axiom:<width$} {n}{mark}");
        }
        out
    }

    /// Serializes the report as JSON (same content as [`render`], same
    /// determinism guarantee).
    ///
    /// [`render`]: FuzzReport::render
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("seed", Json::Num(self.seed as f64)),
            ("requested", Json::Num(self.requested as f64)),
            ("memory", Json::Str(self.memory.clone())),
            ("model", Json::Str(self.model.label().to_string())),
            ("config", Json::Str(self.config.clone())),
            ("backend", Json::Str(self.backend.clone())),
            ("min_len", Json::Num(self.len_range.0 as f64)),
            ("max_len", Json::Num(self.len_range.1 as f64)),
            ("generated", Json::Num(self.generated() as f64)),
            ("sample_failures", Json::Num(self.sample_failures as f64)),
            ("duplicates", Json::Num(self.duplicates as f64)),
            ("dedup_pct", Json::Num(self.dedup_pct())),
            ("unique_shapes", Json::Num(self.shapes.len() as f64)),
            ("oracle_resolved", Json::Num(self.oracle_resolved() as f64)),
            ("oracle_resolved_pct", Json::Num(self.oracle_resolved_pct())),
            ("escalate_budget", Json::Num(self.escalate_budget as f64)),
            ("escalated", Json::Num(self.escalated() as f64)),
            ("beyond_design", Json::Num(self.beyond_design() as f64)),
            ("violations", Json::Num(self.violations() as f64)),
            ("buckets", Json::Num(self.bucket_sizes.len() as f64)),
            (
                "bucket_sizes",
                Json::Arr(
                    self.bucket_sizes
                        .iter()
                        .map(|&n| Json::Num(n as f64))
                        .collect(),
                ),
            ),
            ("agreements", Json::Num(self.agreements() as f64)),
            ("disagreements", Json::Num(self.disagreements() as f64)),
            (
                "engine_inconclusive",
                Json::Num(self.engine_inconclusive() as f64),
            ),
            (
                "shapes",
                Json::Arr(
                    self.by_frequency()
                        .into_iter()
                        .map(|s| {
                            Json::obj(vec![
                                ("signature", Json::Str(s.signature.clone())),
                                (
                                    "known_name",
                                    match s.known_name {
                                        Some(n) => Json::Str(n.to_string()),
                                        None => Json::Null,
                                    },
                                ),
                                ("len", Json::Num(s.len as f64)),
                                ("cores", Json::Num(s.cores as f64)),
                                ("count", Json::Num(s.count as f64)),
                                ("sc", Json::Str(s.sc_verdict.label().to_string())),
                                ("design", Json::Str(s.design_verdict.label().to_string())),
                                (
                                    "axioms",
                                    Json::Arr(
                                        s.axioms.iter().map(|a| Json::Str(a.to_string())).collect(),
                                    ),
                                ),
                                ("escalation", Json::Str(s.escalation.label().to_string())),
                                (
                                    "bucket",
                                    match s.bucket {
                                        Some(b) => Json::Num(b as f64),
                                        None => Json::Null,
                                    },
                                ),
                                (
                                    "engine",
                                    match s.engine {
                                        Some(e) => Json::Str(e.to_string()),
                                        None => Json::Null,
                                    },
                                ),
                                (
                                    "agreement",
                                    match s.agreement {
                                        Some(a) => Json::Str(a.to_string()),
                                        None => Json::Null,
                                    },
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "axiom_exercise",
                Json::obj(
                    self.axiom_exercise_counts()
                        .into_iter()
                        .map(|(a, n)| (a, Json::Num(n as f64)))
                        .collect(),
                ),
            ),
            (
                "weakest_axioms",
                Json::Arr(
                    self.weakest_axioms()
                        .into_iter()
                        .map(|a| Json::Str(a.to_string()))
                        .collect(),
                ),
            ),
        ])
    }
}

/// One unique shape during the campaign, before classification.
struct Shape {
    signature: CycleSignature,
    cycle: Vec<Edge>,
    test: LitmusTest,
    count: usize,
}

fn memory_label(memory: MemoryImpl) -> &'static str {
    match memory {
        MemoryImpl::Buggy => "buggy",
        MemoryImpl::Fixed => "fixed",
        MemoryImpl::Tso => "tso",
    }
}

fn engine_label(report: &TestReport) -> &'static str {
    if report.bug_found() {
        "bug"
    } else if report.verified() {
        "clean"
    } else {
        "inconclusive"
    }
}

/// Runs the fuzzing campaign.
///
/// See the module docs for the pipeline; the observability stream into
/// `collector` is deterministic across job counts (engine-phase
/// instrumentation is buffered per bucket and replayed in input order,
/// campaign counters follow all replays).
///
/// # Errors
///
/// Returns an error for empty or inverted parameter ranges.
///
/// # Panics
///
/// Panics if a sampled cycle fails to generate — [`diy::random_cycle`]
/// only returns cycles that [`diy::generate`] accepts.
pub fn run_fuzz(
    options: &FuzzOptions,
    config: &VerifyConfig,
    collector: &dyn Collector,
    cache: Option<&GraphCache>,
) -> Result<FuzzReport, String> {
    run_fuzz_live(options, config, collector, cache, &[])
}

/// [`run_fuzz`] plus live side-channel sinks ([`TrackSink`]): engine
/// workers additionally report through their own live tracks as buckets
/// complete (real timestamps, real schedule — what `--trace-out` and
/// `--progress` consume), marking each finished bucket with a
/// [`UNIT_DONE`] event on the live tracks **only**. The deterministic
/// stream into `collector` is byte-identical with or without live sinks.
pub fn run_fuzz_live(
    options: &FuzzOptions,
    config: &VerifyConfig,
    collector: &dyn Collector,
    cache: Option<&GraphCache>,
    live: &[&dyn TrackSink],
) -> Result<FuzzReport, String> {
    if options.count == 0 {
        return Err("fuzz campaign needs a positive --count".into());
    }
    if options.min_len < 2 || options.min_len > options.max_len {
        return Err(format!(
            "invalid length range {}..={} (need 2 <= min <= max)",
            options.min_len, options.max_len
        ));
    }
    let model = options.model();

    // Phase 1+2: seeded generation and shape dedup, strictly sequential.
    let mut rng = StdRng::seed_from_u64(options.seed);
    let span = options.max_len - options.min_len + 1;
    let mut shapes: Vec<Shape> = Vec::new();
    let mut index: HashMap<CycleSignature, usize> = HashMap::new();
    let mut sample_failures = 0usize;
    let mut duplicates = 0usize;
    for _ in 0..options.count {
        let len = options.min_len + rng.gen_index(span);
        let cycle = match diy::random_cycle(&mut rng, len) {
            Ok(cycle) => cycle,
            Err(_) => {
                sample_failures += 1;
                continue;
            }
        };
        let signature = CycleSignature::of(&cycle);
        match index.get(&signature) {
            Some(&i) => {
                shapes[i].count += 1;
                duplicates += 1;
            }
            None => {
                let name = format!("fz{:04}", shapes.len());
                let test = diy::generate(&name, &cycle)
                    .expect("random_cycle only returns generate-accepted cycles");
                index.insert(signature.clone(), shapes.len());
                shapes.push(Shape {
                    signature,
                    cycle,
                    test,
                    count: 1,
                });
            }
        }
    }

    // Phase 3: oracle triage of every unique shape.
    let mut results: Vec<ShapeResult> = shapes
        .iter()
        .map(|s| {
            let sc_verdict = oracle::check(&s.test, Model::Sc);
            let design_verdict = match model {
                Model::Sc => sc_verdict,
                Model::Tso => oracle::check(&s.test, Model::Tso),
            };
            let axioms = if design_verdict == Verdict::Forbidden {
                oracle::exercised_axioms(&s.test, model)
            } else {
                Vec::new()
            };
            ShapeResult {
                signature: s.signature.to_string(),
                known_name: s.signature.known_name(),
                len: s.cycle.len(),
                cores: s.test.num_cores(),
                count: s.count,
                sc_verdict,
                design_verdict,
                axioms,
                escalation: Escalation::OracleOnly,
                bucket: None,
                engine: None,
                agreement: None,
            }
        })
        .collect();

    // Phase 4a: pick the escalation set. Mandatory: unknown verdicts and
    // generator violations. Then the most frequent remaining shapes fill
    // the budget (ties broken by first-seen order). Shapes wider than the
    // design can never escalate.
    let budget = options
        .escalate_budget
        .unwrap_or_else(|| (results.len() / 10).max(1));
    for r in results.iter_mut() {
        if r.cores > MAX_DESIGN_CORES {
            r.escalation = Escalation::BeyondDesign;
        } else if r.sc_verdict == Verdict::Observable {
            r.escalation = Escalation::Violation;
        } else if r.design_verdict == Verdict::Unknown {
            r.escalation = Escalation::Unknown;
        }
    }
    let mut ranked: Vec<usize> = (0..results.len()).collect();
    ranked.sort_by(|&a, &b| results[b].count.cmp(&results[a].count).then(a.cmp(&b)));
    let mut remaining = budget;
    for i in ranked {
        if remaining == 0 {
            break;
        }
        if results[i].escalation == Escalation::OracleOnly {
            results[i].escalation = Escalation::Budget;
            remaining -= 1;
        }
    }

    // Phase 4b: bucket escalated shapes by graph-cache fingerprint — two
    // shapes whose generated tests compile to the same verification
    // problem share one engine run. Buckets are numbered in first-seen
    // (shape) order.
    let tool = Rtlcheck::new(options.memory).with_backend(options.backend);
    let mut buckets: Vec<Vec<usize>> = Vec::new();
    let mut bucket_index: HashMap<(u64, u64), usize> = HashMap::new();
    for (i, r) in results.iter_mut().enumerate() {
        if !r.escalation.escalates() {
            continue;
        }
        let key = tool.problem_fingerprint(&shapes[i].test);
        let b = *bucket_index.entry((key.key, key.check)).or_insert_with(|| {
            buckets.push(Vec::new());
            buckets.len() - 1
        });
        buckets[b].push(i);
        r.bucket = Some(b);
    }
    let backend_label = match buckets.first() {
        Some(bucket) => {
            let design = tool.build_design(&shapes[bucket[0]].test).design;
            options.backend.resolve(&design).label().to_string()
        }
        None => "-".to_string(),
    };

    // Phase 4c: one engine run per bucket, on the suite runner's
    // deterministic pool.
    let check_bucket = |b: usize, collector: &dyn Collector| -> TestReport {
        let test = &shapes[buckets[b][0]].test;
        match cache {
            Some(cache) => tool.check_test_cached(test, config, cache, collector),
            None => tool.check_test_observed(test, config, collector),
        }
    };
    let workers = options.jobs.max(1).min(buckets.len().max(1));
    let bucket_reports: Vec<TestReport> = if workers <= 1 {
        let tracks: Vec<Box<dyn Collector + '_>> = live.iter().map(|s| s.track(1)).collect();
        (0..buckets.len())
            .map(|b| {
                let report = {
                    let mut sinks: Vec<&dyn Collector> = vec![collector];
                    sinks.extend(tracks.iter().map(|t| &**t));
                    check_bucket(b, &MultiCollector::new(sinks))
                };
                for track in &tracks {
                    track.event(UNIT_DONE, attrs!["bucket" => b]);
                }
                report
            })
            .collect()
    } else {
        let slots: Vec<Mutex<Option<(TestReport, BufferCollector)>>> =
            buckets.iter().map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            let (next, slots, check_bucket) = (&next, &slots, &check_bucket);
            for w in 0..workers {
                scope.spawn(move || {
                    let tracks: Vec<Box<dyn Collector + '_>> =
                        live.iter().map(|s| s.track(w as u64 + 1)).collect();
                    loop {
                        let b = next.fetch_add(1, Ordering::Relaxed);
                        if b >= slots.len() {
                            break;
                        }
                        let buf = BufferCollector::new();
                        let report = {
                            let mut sinks: Vec<&dyn Collector> = vec![&buf];
                            sinks.extend(tracks.iter().map(|t| &**t));
                            check_bucket(b, &MultiCollector::new(sinks))
                        };
                        for track in &tracks {
                            track.event(UNIT_DONE, attrs!["bucket" => b]);
                        }
                        *slots[b].lock().unwrap_or_else(|e| e.into_inner()) = Some((report, buf));
                    }
                });
            }
        });
        slots
            .into_iter()
            .map(|slot| {
                let (report, buf) = slot
                    .into_inner()
                    .unwrap_or_else(|e| e.into_inner())
                    .expect("every bucket slot is filled once its worker finishes");
                buf.replay_into(collector);
                report
            })
            .collect()
    };
    if let Some(cache) = cache {
        cache.report_to(collector);
    }

    // Fold engine verdicts back into the shapes.
    for (b, report) in bucket_reports.iter().enumerate() {
        let engine = engine_label(report);
        for &i in &buckets[b] {
            let r = &mut results[i];
            r.engine = Some(engine);
            r.agreement = Some(match (engine, r.design_verdict) {
                ("inconclusive", _) => "inconclusive",
                (_, Verdict::Unknown) => "resolved",
                ("bug", Verdict::Observable) | ("clean", Verdict::Forbidden) => "agree",
                _ => "disagree",
            });
        }
    }

    let report = FuzzReport {
        seed: options.seed,
        requested: options.count,
        memory: memory_label(options.memory).to_string(),
        model,
        config: config.name.clone(),
        backend: backend_label,
        len_range: (options.min_len, options.max_len),
        sample_failures,
        duplicates,
        escalate_budget: budget,
        shapes: results,
        axioms: model.axioms().to_vec(),
        bucket_sizes: buckets.iter().map(Vec::len).collect(),
    };

    // Campaign counters and per-escalation events, in fixed order — after
    // all replays, so the stream is scheduling-independent.
    let mem = &report.memory;
    collector.counter(
        "fuzz.requested",
        report.requested as u64,
        attrs!["memory" => mem],
    );
    collector.counter(
        "fuzz.generated",
        report.generated() as u64,
        attrs!["memory" => mem],
    );
    collector.counter(
        "fuzz.sample_failures",
        report.sample_failures as u64,
        attrs!["memory" => mem],
    );
    collector.counter(
        "fuzz.duplicates",
        report.duplicates as u64,
        attrs!["memory" => mem],
    );
    collector.counter(
        "fuzz.shapes",
        report.shapes.len() as u64,
        attrs!["memory" => mem],
    );
    collector.counter(
        "fuzz.oracle_resolved",
        report.oracle_resolved() as u64,
        attrs!["memory" => mem],
    );
    collector.counter(
        "fuzz.escalated",
        report.escalated() as u64,
        attrs!["memory" => mem],
    );
    collector.counter(
        "fuzz.buckets",
        report.bucket_sizes.len() as u64,
        attrs!["memory" => mem],
    );
    collector.counter(
        "fuzz.agreements",
        report.agreements() as u64,
        attrs!["memory" => mem],
    );
    collector.counter(
        "fuzz.disagreements",
        report.disagreements() as u64,
        attrs!["memory" => mem],
    );
    collector.counter(
        "fuzz.violations",
        report.violations() as u64,
        attrs!["memory" => mem],
    );
    for s in report.shapes.iter().filter(|s| s.escalation.escalates()) {
        collector.event(
            "escalation",
            attrs![
                "shape" => &s.signature,
                "reason" => s.escalation.label(),
                "engine" => s.engine.unwrap_or("-"),
                "agreement" => s.agreement.unwrap_or("-")
            ],
        );
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shape(signature: &str, count: usize, verdict: Verdict) -> ShapeResult {
        ShapeResult {
            signature: signature.into(),
            known_name: None,
            len: 4,
            cores: 2,
            count,
            sc_verdict: Verdict::Forbidden,
            design_verdict: verdict,
            axioms: if verdict == Verdict::Forbidden {
                vec!["po", "fr"]
            } else {
                Vec::new()
            },
            escalation: Escalation::OracleOnly,
            bucket: None,
            engine: None,
            agreement: None,
        }
    }

    fn sample() -> FuzzReport {
        let mut escalated = shape("PodWR Fre PodWR Fre", 40, Verdict::Forbidden);
        escalated.known_name = Some("sb");
        escalated.escalation = Escalation::Budget;
        escalated.bucket = Some(0);
        escalated.engine = Some("clean");
        escalated.agreement = Some("agree");
        FuzzReport {
            seed: 7,
            requested: 100,
            memory: "fixed".into(),
            model: Model::Sc,
            config: "T".into(),
            backend: "explicit".into(),
            len_range: (3, 6),
            sample_failures: 2,
            duplicates: 96,
            escalate_budget: 1,
            shapes: vec![
                escalated,
                shape("PodWW Rfe PodRR Fre", 58, Verdict::Forbidden),
            ],
            axioms: vec!["po", "rf", "co", "fr"],
            bucket_sizes: vec![1],
        }
    }

    #[test]
    fn report_arithmetic() {
        let r = sample();
        assert_eq!(r.generated(), 98);
        assert_eq!(r.oracle_resolved(), 2);
        assert!((r.oracle_resolved_pct() - 100.0).abs() < 1e-9);
        assert_eq!(r.escalated(), 1);
        assert_eq!(r.agreements(), 1);
        assert_eq!(r.disagreements(), 0);
        assert_eq!(r.violations(), 0);
        assert_eq!(r.weakest_axioms(), vec!["rf", "co"]);
    }

    #[test]
    fn render_is_timing_free_and_names_known_shapes() {
        let text = sample().render();
        assert!(text.contains("2/2 resolved (100.0%)"), "{text}");
        assert!(text.contains("(sb)"), "{text}");
        assert!(text.contains("<- weakest"), "{text}");
        assert!(text.contains("1 agree, 0 disagree"), "{text}");
        assert!(!text.to_lowercase().contains("elapsed"), "{text}");
    }

    #[test]
    fn json_round_trips_core_counts() {
        let text = sample().to_json().render();
        let parsed = Json::parse(&text).unwrap();
        assert_eq!(parsed.get("unique_shapes").and_then(Json::as_u64), Some(2));
        assert_eq!(parsed.get("disagreements").and_then(Json::as_u64), Some(0));
        assert!(text.contains("\"known_name\":\"sb\""), "{text}");
    }

    /// A tiny end-to-end campaign: deterministic across job counts, all
    /// escalations agree with the oracle on the fixed design.
    #[test]
    fn small_campaign_is_deterministic_and_agrees() {
        let mut options = FuzzOptions::new(MemoryImpl::Fixed);
        options.count = 200;
        options.seed = 0xF0;
        let config = VerifyConfig::quick();
        let a = run_fuzz(&options, &config, &rtlcheck_obs::NullCollector, None).unwrap();
        options.jobs = 4;
        let b = run_fuzz(&options, &config, &rtlcheck_obs::NullCollector, None).unwrap();
        assert_eq!(a.render(), b.render());
        assert_eq!(a.to_json().render(), b.to_json().render());
        assert!(a.duplicates > 0, "200 samples must collide");
        assert_eq!(a.disagreements(), 0, "{}", a.render());
        assert_eq!(a.violations(), 0, "{}", a.render());
    }
}
